//! # fedtune
//!
//! Facade crate for the Rust reproduction of *"On Noisy Evaluation in
//! Federated Hyperparameter Tuning"* (Kuo et al., MLSys 2023).
//!
//! The workspace is organised as a stack of substrates (re-exported here):
//!
//! - [`fedmath`] — numerical primitives (matrices, statistics, seeded RNG).
//! - [`feddata`] — synthetic federated datasets and partitioning.
//! - [`fedmodels`] — models with hand-written gradients and local SGD.
//! - [`fedsim`] — the cross-device federated-learning simulator.
//! - [`feddp`] — the differential-privacy substrate (Laplace, one-shot top-k).
//! - [`fedhpo`] — hyperparameter-optimization methods (RS, TPE, Hyperband,
//!   BOHB, ASHA, the re-evaluation mitigation) behind the batched ask/tell
//!   scheduler interface.
//! - [`fedproxy`] — proxy-data tuning and HP-transfer analysis.
//! - [`fedpop`] — lazy virtual client populations: O(cohort)
//!   materialization of million-client federations, cohort sampling, and
//!   availability windows.
//! - [`fedtune_core`] — noise-aware evaluation pipeline and the per-figure
//!   experiment runners (the paper's primary contribution as a library).
//! - [`fedstore`] — the persistent trial ledger and tabular surrogate
//!   objectives: record live campaigns once, then replay method sweeps
//!   against the table and resume interrupted campaigns bit-identically.
//! - [`fedtrace`] — deterministic observability: the sharded metrics
//!   registry, the bounded event journal, and the Chrome `trace_event`
//!   exporters over the virtual-time executor timeline. Accounting, never
//!   semantics: tracing on/off cannot move a result bit.
//!
//! See `examples/` for runnable entry points and `crates/bench` for the
//! benchmark harness that regenerates every table and figure of the paper.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use feddata;
pub use feddp;
pub use fedhpo;
pub use fedmath;
pub use fedmodels;
pub use fedpop;
pub use fedproxy;
pub use fedsim;
pub use fedstore;
pub use fedtrace;
pub use fedtune_core;

/// Workspace version string (matches every member crate).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
