//! Federated evaluation (Eq. 2): per-client error rates combined by a
//! uniform or example-weighted average, over the full validation pool or a
//! subsample of it.

use crate::exec::{self, ExecutionPolicy};
use crate::sampling::ClientSampler;
use crate::{Result, SimError};
use feddata::{ClientData, FederatedDataset, Split};
use fedmodels::Model;
use serde::{Deserialize, Serialize};

/// How per-client errors are weighted when aggregating (footnote 1 of §2.2).
///
/// The paper uses the example-weighted objective by default and switches to
/// the uniform objective whenever differential privacy is applied, so that
/// the sensitivity of the aggregate does not depend on any client's local
/// dataset size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum WeightingScheme {
    /// Every sampled client counts equally (`p_k = 1`).
    Uniform,
    /// Clients are weighted by their number of local examples.
    #[default]
    ByExamples,
}

impl WeightingScheme {
    /// The weight assigned to a client with `num_examples` local examples.
    pub fn weight(&self, num_examples: usize) -> f64 {
        match self {
            WeightingScheme::Uniform => 1.0,
            WeightingScheme::ByExamples => num_examples as f64,
        }
    }
}

/// Evaluation result for a single client.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientEvaluation {
    /// Index of the client within its pool.
    pub client_index: usize,
    /// Error rate on the client's local data, in `[0, 1]`.
    pub error_rate: f64,
    /// Mean cross-entropy loss on the client's local data.
    pub loss: f64,
    /// Number of local examples evaluated.
    pub num_examples: usize,
}

impl ClientEvaluation {
    /// The client's accuracy (`1 - error_rate`).
    pub fn accuracy(&self) -> f64 {
        1.0 - self.error_rate
    }
}

/// The result of one federated evaluation call: per-client metrics plus the
/// weighting scheme used to aggregate them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederatedEvaluation {
    per_client: Vec<ClientEvaluation>,
    weighting: WeightingScheme,
}

impl FederatedEvaluation {
    /// Creates an evaluation result from per-client metrics.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `per_client` is empty.
    pub fn new(per_client: Vec<ClientEvaluation>, weighting: WeightingScheme) -> Result<Self> {
        if per_client.is_empty() {
            return Err(SimError::InvalidConfig {
                message: "federated evaluation needs at least one client".into(),
            });
        }
        Ok(FederatedEvaluation {
            per_client,
            weighting,
        })
    }

    /// Per-client evaluation results.
    pub fn per_client(&self) -> &[ClientEvaluation] {
        &self.per_client
    }

    /// The weighting scheme used for aggregation.
    pub fn weighting(&self) -> WeightingScheme {
        self.weighting
    }

    /// Number of clients evaluated.
    pub fn num_clients(&self) -> usize {
        self.per_client.len()
    }

    fn weights(&self) -> Vec<f64> {
        self.per_client
            .iter()
            .map(|c| self.weighting.weight(c.num_examples))
            .collect()
    }

    /// The aggregated (weighted) error rate of Eq. 2, in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns an error if all weights are zero (only possible when every
    /// evaluated client has zero examples under example weighting).
    pub fn weighted_error(&self) -> Result<f64> {
        let errors: Vec<f64> = self.per_client.iter().map(|c| c.error_rate).collect();
        fedmath::stats::weighted_mean(&errors, &self.weights()).map_err(SimError::from)
    }

    /// The aggregated (weighted) loss.
    ///
    /// # Errors
    ///
    /// Same conditions as [`weighted_error`](Self::weighted_error).
    pub fn weighted_loss(&self) -> Result<f64> {
        let losses: Vec<f64> = self.per_client.iter().map(|c| c.loss).collect();
        fedmath::stats::weighted_mean(&losses, &self.weights()).map_err(SimError::from)
    }

    /// The aggregated accuracy (`1 - weighted_error`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`weighted_error`](Self::weighted_error).
    pub fn weighted_accuracy(&self) -> Result<f64> {
        Ok(1.0 - self.weighted_error()?)
    }

    /// The smallest per-client error (y-axis of Fig. 7).
    pub fn min_client_error(&self) -> f64 {
        self.per_client
            .iter()
            .map(|c| c.error_rate)
            .fold(f64::INFINITY, f64::min)
    }

    /// The largest per-client error.
    pub fn max_client_error(&self) -> f64 {
        self.per_client
            .iter()
            .map(|c| c.error_rate)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Per-client accuracies, indexed like [`per_client`](Self::per_client).
    pub fn client_accuracies(&self) -> Vec<f64> {
        self.per_client.iter().map(|c| c.accuracy()).collect()
    }
}

/// Evaluates `model` on the listed clients (by index into `clients`).
///
/// Clients with no local examples are skipped; if every selected client is
/// empty an error is returned.
///
/// # Errors
///
/// Returns [`SimError::Sampling`] for out-of-range indices,
/// [`SimError::InvalidConfig`] if no non-empty client remains, and propagates
/// model evaluation failures.
pub fn evaluate_clients<M: Model>(
    model: &M,
    clients: &[ClientData],
    indices: &[usize],
    weighting: WeightingScheme,
) -> Result<FederatedEvaluation> {
    evaluate_clients_with(
        &ExecutionPolicy::Sequential,
        model,
        clients,
        indices,
        weighting,
    )
}

/// [`evaluate_clients`] with an explicit execution policy: per-client
/// evaluation fans out over threads under [`ExecutionPolicy::Parallel`].
/// Evaluation consumes no randomness, and results are collected in selection
/// order, so the output is identical under every policy.
///
/// # Errors
///
/// Same conditions as [`evaluate_clients`].
pub fn evaluate_clients_with<M: Model>(
    policy: &ExecutionPolicy,
    model: &M,
    clients: &[ClientData],
    indices: &[usize],
    weighting: WeightingScheme,
) -> Result<FederatedEvaluation> {
    let evaluated: Vec<Result<Option<ClientEvaluation>>> =
        exec::map_indexed(policy, indices, |_, &idx| {
            let client = clients.get(idx).ok_or_else(|| SimError::Sampling {
                message: format!(
                    "client index {idx} out of range for pool of {}",
                    clients.len()
                ),
            })?;
            if client.is_empty() {
                return Ok(None);
            }
            let metrics = model.evaluate(client.examples())?;
            Ok(Some(ClientEvaluation {
                client_index: idx,
                error_rate: metrics.error_rate,
                loss: metrics.loss,
                num_examples: metrics.num_examples,
            }))
        });
    let mut per_client = Vec::with_capacity(indices.len());
    for evaluation in evaluated {
        if let Some(evaluation) = evaluation? {
            per_client.push(evaluation);
        }
    }
    FederatedEvaluation::new(per_client, weighting)
}

/// Evaluates `model` on *every* client of the given pool — the "full
/// validation error" reported on the y-axis of every figure in the paper.
///
/// # Errors
///
/// Propagates the conditions of [`evaluate_clients`].
pub fn evaluate_full<M: Model>(
    model: &M,
    dataset: &FederatedDataset,
    split: Split,
    weighting: WeightingScheme,
) -> Result<FederatedEvaluation> {
    evaluate_full_with(
        &ExecutionPolicy::Sequential,
        model,
        dataset,
        split,
        weighting,
    )
}

/// [`evaluate_full`] with an explicit execution policy; see
/// [`evaluate_clients_with`] for the execution contract.
///
/// # Errors
///
/// Propagates the conditions of [`evaluate_clients`].
pub fn evaluate_full_with<M: Model>(
    policy: &ExecutionPolicy,
    model: &M,
    dataset: &FederatedDataset,
    split: Split,
    weighting: WeightingScheme,
) -> Result<FederatedEvaluation> {
    let indices: Vec<usize> = (0..dataset.num_clients(split)).collect();
    evaluate_clients_with(policy, model, dataset.clients(split), &indices, weighting)
}

/// Evaluates `model` on a subsample of `count` clients selected by `sampler`.
///
/// `scores` is the optional per-client signal passed to the sampler (used by
/// [`crate::sampling::BiasedSampler`] to model systems heterogeneity).
///
/// # Errors
///
/// Propagates sampler errors and the conditions of [`evaluate_clients`].
#[allow(clippy::too_many_arguments)] // mirrors the paper's evaluation signature
pub fn evaluate_subsample<M: Model>(
    model: &M,
    dataset: &FederatedDataset,
    split: Split,
    weighting: WeightingScheme,
    sampler: &dyn ClientSampler,
    count: usize,
    scores: Option<&[f64]>,
    rng: &mut dyn rand::RngCore,
) -> Result<FederatedEvaluation> {
    let population = dataset.num_clients(split);
    let indices = sampler.sample(rng, population, count, scores)?;
    evaluate_clients(model, dataset.clients(split), &indices, weighting)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::UniformSampler;
    use feddata::{Benchmark, DatasetSpec, Example, Scale};
    use fedmath::rng::rng_for;
    use fedmodels::{ModelSpec, SoftmaxRegression};

    fn smoke_dataset() -> FederatedDataset {
        DatasetSpec::benchmark(Benchmark::Cifar10Like, Scale::Smoke)
            .generate(1)
            .unwrap()
    }

    #[test]
    fn weighting_scheme_weights() {
        assert_eq!(WeightingScheme::Uniform.weight(100), 1.0);
        assert_eq!(WeightingScheme::ByExamples.weight(100), 100.0);
        assert_eq!(WeightingScheme::default(), WeightingScheme::ByExamples);
    }

    #[test]
    fn federated_evaluation_aggregates() {
        let per_client = vec![
            ClientEvaluation {
                client_index: 0,
                error_rate: 0.0,
                loss: 0.5,
                num_examples: 1,
            },
            ClientEvaluation {
                client_index: 1,
                error_rate: 1.0,
                loss: 1.5,
                num_examples: 3,
            },
        ];
        let eval =
            FederatedEvaluation::new(per_client.clone(), WeightingScheme::ByExamples).unwrap();
        assert_eq!(eval.num_clients(), 2);
        assert!((eval.weighted_error().unwrap() - 0.75).abs() < 1e-12);
        assert!((eval.weighted_loss().unwrap() - 1.25).abs() < 1e-12);
        assert!((eval.weighted_accuracy().unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(eval.min_client_error(), 0.0);
        assert_eq!(eval.max_client_error(), 1.0);
        assert_eq!(eval.client_accuracies(), vec![1.0, 0.0]);
        assert_eq!(eval.weighting(), WeightingScheme::ByExamples);
        assert_eq!(eval.per_client()[0].accuracy(), 1.0);

        let uniform = FederatedEvaluation::new(per_client, WeightingScheme::Uniform).unwrap();
        assert!((uniform.weighted_error().unwrap() - 0.5).abs() < 1e-12);

        assert!(FederatedEvaluation::new(vec![], WeightingScheme::Uniform).is_err());
    }

    #[test]
    fn evaluate_clients_skips_empty_clients() {
        let clients = vec![
            ClientData::new(0, vec![Example::dense(vec![0.0, 0.0], 0)]),
            ClientData::new(1, vec![]),
        ];
        let model = SoftmaxRegression::zeros(2, 2);
        let eval = evaluate_clients(&model, &clients, &[0, 1], WeightingScheme::Uniform).unwrap();
        assert_eq!(eval.num_clients(), 1);
        // All-empty selection is an error.
        assert!(evaluate_clients(&model, &clients, &[1], WeightingScheme::Uniform).is_err());
        // Out-of-range index is an error.
        assert!(evaluate_clients(&model, &clients, &[5], WeightingScheme::Uniform).is_err());
    }

    #[test]
    fn evaluate_full_covers_every_client() {
        let dataset = smoke_dataset();
        let mut rng = rng_for(0, 0);
        let model = ModelSpec::Softmax.build(&dataset, &mut rng);
        let eval = evaluate_full(
            &model,
            &dataset,
            Split::Validation,
            WeightingScheme::ByExamples,
        )
        .unwrap();
        assert_eq!(eval.num_clients(), dataset.num_val_clients());
        let err = eval.weighted_error().unwrap();
        assert!((0.0..=1.0).contains(&err));
    }

    #[test]
    fn evaluate_subsample_uses_requested_count() {
        let dataset = smoke_dataset();
        let mut rng = rng_for(0, 1);
        let model = ModelSpec::Softmax.build(&dataset, &mut rng);
        let eval = evaluate_subsample(
            &model,
            &dataset,
            Split::Validation,
            WeightingScheme::Uniform,
            &UniformSampler::new(),
            3,
            None,
            &mut rng,
        )
        .unwrap();
        assert_eq!(eval.num_clients(), 3);
    }

    #[test]
    fn subsampled_error_varies_more_than_full_error() {
        // The core premise of the paper: subsampled evaluation is a noisy
        // estimate of the full-population error.
        let dataset = smoke_dataset();
        let mut rng = rng_for(0, 2);
        let model = ModelSpec::Softmax.build(&dataset, &mut rng);
        let full = evaluate_full(
            &model,
            &dataset,
            Split::Validation,
            WeightingScheme::Uniform,
        )
        .unwrap()
        .weighted_error()
        .unwrap();
        let mut estimates = Vec::new();
        for i in 0..50 {
            let mut trial_rng = rng_for(100, i);
            let sub = evaluate_subsample(
                &model,
                &dataset,
                Split::Validation,
                WeightingScheme::Uniform,
                &UniformSampler::new(),
                1,
                None,
                &mut trial_rng,
            )
            .unwrap()
            .weighted_error()
            .unwrap();
            estimates.push(sub);
        }
        let spread = fedmath::stats::std_dev(&estimates);
        assert!(spread > 0.0, "single-client estimates should vary");
        let mean_est = fedmath::stats::mean(&estimates);
        assert!(
            (mean_est - full).abs() < 0.3,
            "estimates should roughly track the full error"
        );
    }
}
