//! The federated training loop (`Algorithm 2`, training half).

use crate::evaluation::WeightingScheme;
use crate::exec::{self, ExecutionPolicy};
use crate::hyperparams::FederatedHyperparams;
use crate::server::{FedAdam, ServerOptimizer};
use crate::{Result, SimError};
use feddata::{ClientData, FederatedDataset, Split};
use fedmath::{SeedStream, SeedTree};
use fedmodels::{AnyModel, LocalSgd, Model, ModelSpec, SgdScratch};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::sync::{Arc, Mutex};

/// A source of clients addressed by population id, materialized on demand.
///
/// This is the seam between the simulator and lazy client populations
/// (`fedpop`): a training round samples a cohort of ids, asks the source to
/// materialize exactly those clients, trains them, and drops them — memory
/// stays O(cohort) no matter how large the population is. Implementations
/// must be pure in the id (`materialize(i)` always returns the same client
/// bits), which is what keeps parallel fan-out bit-identical to sequential
/// execution: any thread materializing client `i` gets the same shard.
pub trait CohortSource: Sync {
    /// Number of clients in the population.
    fn population(&self) -> u64;

    /// Materializes (or fetches from a cache) the client with the given id.
    ///
    /// # Errors
    ///
    /// Returns an error if `id` is out of range or generation fails.
    fn materialize(&self, id: u64) -> Result<Arc<ClientData>>;
}

/// Seed-tree channel of a round's client-sampling RNG.
const SAMPLE_CHANNEL: u64 = 0;
/// Seed-tree channel under which per-client-slot RNGs are derived.
const CLIENT_CHANNEL: u64 = 1;

/// Training-loop accounting on the global [`fedtrace`] registry: federated
/// rounds executed and clients trained. Write-only counters — the loop never
/// reads them back, so tracing cannot move a model bit.
struct TrainingMetrics {
    rounds: fedtrace::Counter,
    clients: fedtrace::Counter,
}

fn training_metrics() -> &'static TrainingMetrics {
    static METRICS: std::sync::OnceLock<TrainingMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = fedtrace::global().registry();
        TrainingMetrics {
            rounds: registry.counter("sim.training_rounds"),
            clients: registry.counter("sim.clients_trained"),
        }
    })
}

/// Configuration of the federated training loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Number of training clients sampled per round (10 in the paper).
    pub clients_per_round: usize,
    /// Hyperparameters of the server and client optimizers.
    pub hyperparams: FederatedHyperparams,
    /// Weighting of client updates during aggregation. The paper sets the
    /// training weights to match the evaluation weighting scheme.
    pub weighting: WeightingScheme,
    /// How client training within a round is executed. Both policies produce
    /// bit-identical models; `Parallel` only changes wall-clock time.
    pub execution: ExecutionPolicy,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            clients_per_round: 10,
            hyperparams: FederatedHyperparams::default(),
            weighting: WeightingScheme::ByExamples,
            execution: ExecutionPolicy::Sequential,
        }
    }
}

impl TrainerConfig {
    /// Creates a configuration with the given hyperparameters and the
    /// paper's defaults for everything else (10 clients per round,
    /// example-weighted aggregation).
    pub fn with_hyperparams(hyperparams: FederatedHyperparams) -> Self {
        TrainerConfig {
            hyperparams,
            ..Default::default()
        }
    }

    /// Replaces the execution policy.
    #[must_use]
    pub fn with_execution(mut self, execution: ExecutionPolicy) -> Self {
        self.execution = execution;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `clients_per_round == 0` or the
    /// hyperparameters are invalid.
    pub fn validate(&self) -> Result<()> {
        if self.clients_per_round == 0 {
            return Err(SimError::InvalidConfig {
                message: "clients_per_round must be positive".into(),
            });
        }
        self.hyperparams.validate()
    }
}

/// Runs federated training: builds a model, then repeatedly samples clients,
/// trains them locally, aggregates their updates, and applies the server
/// optimizer.
#[derive(Debug, Clone)]
pub struct FederatedTrainer {
    config: TrainerConfig,
}

impl FederatedTrainer {
    /// Creates a trainer.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration is invalid.
    pub fn new(config: TrainerConfig) -> Result<Self> {
        config.validate()?;
        Ok(FederatedTrainer { config })
    }

    /// The trainer configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Initialises a training run without executing any rounds, so the caller
    /// can interleave training and evaluation (needed by early-stopping HP
    /// tuning methods such as Hyperband, which resume partially-trained
    /// configurations).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the hyperparameters are invalid.
    pub fn start(
        &self,
        dataset: &FederatedDataset,
        model_spec: ModelSpec,
        seed: u64,
    ) -> Result<TrainingRun> {
        self.start_with_dims(dataset.input_dim(), dataset.num_classes(), model_spec, seed)
    }

    /// [`start`](Self::start) without a materialized dataset: only the model
    /// dimensions are needed to initialise a run, so population-backed
    /// training (whose clients are synthesized on demand) starts here. The
    /// seed schedule is identical to `start` — a run started either way and
    /// fed the same clients produces the same bits.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the hyperparameters are invalid.
    pub fn start_with_dims(
        &self,
        input_dim: usize,
        num_classes: usize,
        model_spec: ModelSpec,
        seed: u64,
    ) -> Result<TrainingRun> {
        let mut seeds = SeedStream::new(seed);
        let mut init_rng = seeds.next_rng();
        let round_seeds = SeedTree::new(seeds.next_seed());
        let model = model_spec.build_with_dims(input_dim, num_classes, &mut init_rng);
        let server = FedAdam::new(self.config.hyperparams.server)?;
        let client_opt = LocalSgd::new(self.config.hyperparams.client)?;
        Ok(TrainingRun {
            model,
            server,
            client_opt,
            config: self.config,
            round_seeds,
            rounds_completed: 0,
            scratches: Arc::new(Mutex::new(Vec::new())),
            deltas: Arc::new(Mutex::new(Vec::new())),
            base_params: Vec::new(),
            aggregate: Vec::new(),
        })
    }

    /// Trains a freshly-initialised model for `rounds` federated rounds.
    ///
    /// # Errors
    ///
    /// Propagates configuration, sampling, and model errors.
    pub fn train(
        &self,
        dataset: &FederatedDataset,
        model_spec: ModelSpec,
        rounds: usize,
        seed: u64,
    ) -> Result<TrainingRun> {
        let mut run = self.start(dataset, model_spec, seed)?;
        run.run_rounds(dataset, rounds)?;
        Ok(run)
    }
}

/// The state of one federated training run: the global model, the server
/// optimizer state, and the round counter. Supports incremental training so
/// early-stopping tuners can resume runs.
///
/// All randomness is derived positionally from a per-run [`SeedTree`]: round
/// `r` samples clients with the RNG at path `[r, SAMPLE_CHANNEL]` and trains
/// the client in slot `s` with the RNG at path `[r, CLIENT_CHANNEL, s]`.
/// Because no RNG state is shared across clients or rounds, client training
/// can fan out over threads without changing a single bit of the result.
#[derive(Debug, Clone)]
pub struct TrainingRun {
    model: AnyModel,
    server: FedAdam,
    client_opt: LocalSgd,
    config: TrainerConfig,
    round_seeds: SeedTree,
    rounds_completed: usize,
    /// Pool of per-client training scratches shared by the round's worker
    /// chunks. Scratch contents never influence results (every buffer is
    /// overwritten or zero-filled before use), so the pop order under
    /// parallel execution does not matter; pooling only removes steady-state
    /// allocations. A cloned run shares the pool — it is pure scratch.
    scratches: Arc<Mutex<Vec<ClientScratch>>>,
    /// Pool of spent chunk-delta buffers, recycled after each round's
    /// combine step.
    deltas: Arc<Mutex<Vec<Vec<f64>>>>,
    /// Reused storage for the round's base parameter snapshot.
    base_params: Vec<f64>,
    /// Reused storage for the round's aggregated delta.
    aggregate: Vec<f64>,
}

/// Reusable per-worker training scratch: the SGD scratch (cached model
/// clone, buffer pool, parameter/velocity/gradient buffers) plus the buffer
/// receiving each client's locally-updated parameters.
#[derive(Debug, Default)]
struct ClientScratch {
    sgd: SgdScratch<AnyModel>,
    new_params: Vec<f64>,
}

/// Accumulated weighted contribution of a block of client slots to a round:
/// `Σ wᵢ` and `Σ wᵢ · (w'ᵢ - w)` over the block's non-empty clients.
struct ClientUpdate {
    weight: f64,
    weighted_delta: Vec<f64>,
}

impl TrainingRun {
    /// The current global model.
    pub fn model(&self) -> &AnyModel {
        &self.model
    }

    /// Number of federated rounds completed so far.
    pub fn rounds_completed(&self) -> usize {
        self.rounds_completed
    }

    /// The trainer configuration used by this run.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Executes one federated round (Algorithm 2's inner loop):
    /// sample clients → local SGD on each → aggregate deltas → server update.
    ///
    /// # Errors
    ///
    /// Propagates sampling and model errors. If the model parameters become
    /// non-finite (divergence under an aggressive learning rate) the round
    /// still succeeds — the diverged model simply evaluates poorly, matching
    /// how a real tuning system would observe it.
    pub fn run_round(&mut self, dataset: &FederatedDataset) -> Result<()> {
        let population = dataset.num_train_clients();
        let count = self.config.clients_per_round.min(population);
        self.round_core(
            |rng| {
                let picked = fedmath::rng::sample_without_replacement(rng, population, count)
                    .map_err(|e| SimError::Sampling {
                        message: e.to_string(),
                    })?;
                Ok(picked.into_iter().map(|i| i as u64).collect())
            },
            |id| {
                dataset
                    .client(Split::Train, id as usize)
                    .map_err(SimError::from)
            },
        )
    }

    /// Executes one federated round against a lazy client population: derive
    /// this round's sampling RNG, let `sample` pick the cohort of population
    /// ids (uniform, size-weighted, availability-gated — the caller's
    /// choice), materialize exactly those clients through `source`, train
    /// and aggregate them, and drop them. Peak client residency is bounded
    /// by the cohort (plus whatever cache the source keeps), never by the
    /// population size.
    ///
    /// The cohort's slot order is part of the round's identity: slot `s`
    /// trains with the RNG at path `[round, CLIENT_CHANNEL, s]` exactly like
    /// [`run_round`](Self::run_round), and aggregation folds fixed chunks in
    /// slot order, so parallel execution is bit-identical to sequential.
    /// An empty cohort (e.g. no client inside its availability window) is a
    /// no-op round: the model is unchanged but the round counter advances.
    ///
    /// # Errors
    ///
    /// Propagates sampling, materialization, and model errors.
    pub fn run_cohort_round<S, F>(&mut self, source: &S, sample: F) -> Result<()>
    where
        S: CohortSource + ?Sized,
        F: FnOnce(&mut StdRng) -> Result<Vec<u64>>,
    {
        self.round_core(sample, |id| source.materialize(id))
    }

    /// The round body shared by the eager-dataset and lazy-population paths:
    /// both run the exact same float-op sequence, differing only in how a
    /// client id becomes a [`ClientData`].
    fn round_core<C, Fs, Ff>(&mut self, sample: Fs, fetch: Ff) -> Result<()>
    where
        C: Borrow<ClientData> + Send,
        Fs: FnOnce(&mut StdRng) -> Result<Vec<u64>>,
        Ff: Fn(u64) -> Result<C> + Sync,
    {
        let round = self.round_seeds.child(self.rounds_completed as u64);
        let mut sample_rng = round.child(SAMPLE_CHANNEL).rng();
        let indices = sample(&mut sample_rng)?;

        let mut base_params = std::mem::take(&mut self.base_params);
        self.model.params_into(&mut base_params);
        let dim = base_params.len();
        // Fan client training out according to the execution policy, fused
        // with the first stage of the reduce: each fixed REDUCE_CHUNK-sized
        // block of client slots trains its clients in slot order and folds
        // their weighted deltas into one partial accumulator. Slot RNGs are
        // derived from position and chunk boundaries depend only on the slot
        // count, so the result is bit-identical under every policy and
        // aggregation memory stays O(chunks × params), not
        // O(clients × params).
        let model = &self.model;
        let client_opt = &self.client_opt;
        let weighting = self.config.weighting;
        let base = &base_params;
        let scratches = &self.scratches;
        let deltas = &self.deltas;
        let chunk_partials: Vec<Result<ClientUpdate>> = exec::map_chunks(
            &self.config.execution,
            indices.len(),
            exec::REDUCE_CHUNK,
            |slots| {
                let mut scratch = scratches
                    .lock()
                    .expect("scratch pool lock poisoned")
                    .pop()
                    .unwrap_or_default();
                let mut weighted_delta = deltas
                    .lock()
                    .expect("delta pool lock poisoned")
                    .pop()
                    .unwrap_or_default();
                weighted_delta.clear();
                weighted_delta.resize(dim, 0.0);
                let mut partial = ClientUpdate {
                    weight: 0.0,
                    weighted_delta,
                };
                for slot in slots {
                    let client = fetch(indices[slot])?;
                    let client = client.borrow();
                    if client.is_empty() {
                        continue;
                    }
                    let mut rng = round.derive(&[CLIENT_CHANNEL, slot as u64]).rng();
                    client_opt.train_into(
                        model,
                        client.examples(),
                        &mut rng,
                        &mut scratch.sgd,
                        &mut scratch.new_params,
                    )?;
                    let weight = weighting.weight(client.num_examples());
                    for ((acc, &new), &old) in partial
                        .weighted_delta
                        .iter_mut()
                        .zip(scratch.new_params.iter())
                        .zip(base.iter())
                    {
                        *acc += weight * (new - old);
                    }
                    partial.weight += weight;
                }
                scratches
                    .lock()
                    .expect("scratch pool lock poisoned")
                    .push(scratch);
                Ok(partial)
            },
        );
        // Combine chunk partials left-to-right: the same float-op sequence as
        // the sequential policy, so the bits never depend on scheduling.
        let mut aggregate = std::mem::take(&mut self.aggregate);
        aggregate.clear();
        aggregate.resize(dim, 0.0);
        let mut total_weight = 0.0;
        for partial in chunk_partials {
            let partial = partial?;
            for (acc, &v) in aggregate.iter_mut().zip(partial.weighted_delta.iter()) {
                *acc += v;
            }
            total_weight += partial.weight;
            // Recycle the spent chunk buffer for the next round.
            self.deltas
                .lock()
                .expect("delta pool lock poisoned")
                .push(partial.weighted_delta);
        }
        if total_weight > 0.0 {
            for a in &mut aggregate {
                *a /= total_weight;
                // Guard against NaN/inf propagating into the server state.
                if !a.is_finite() {
                    *a = 0.0;
                }
            }
            self.server.apply(&mut base_params, &aggregate)?;
            self.model.set_params(&base_params)?;
        }
        self.base_params = base_params;
        self.aggregate = aggregate;
        self.rounds_completed += 1;
        let metrics = training_metrics();
        metrics.rounds.incr();
        metrics.clients.add(indices.len() as u64);
        Ok(())
    }

    /// Executes `rounds` federated rounds.
    ///
    /// # Errors
    ///
    /// Propagates the conditions of [`run_round`](Self::run_round).
    pub fn run_rounds(&mut self, dataset: &FederatedDataset, rounds: usize) -> Result<()> {
        for _ in 0..rounds {
            self.run_round(dataset)?;
        }
        Ok(())
    }

    /// Consumes the run and returns the trained model.
    pub fn into_model(self) -> AnyModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluation::{evaluate_full, WeightingScheme};
    use crate::hyperparams::FedAdamConfig;
    use feddata::{Benchmark, DatasetSpec, Scale};
    use fedmodels::LocalSgdConfig;

    fn smoke_dataset(benchmark: Benchmark) -> FederatedDataset {
        DatasetSpec::benchmark(benchmark, Scale::Smoke)
            .generate(5)
            .unwrap()
    }

    fn good_hyperparams() -> FederatedHyperparams {
        FederatedHyperparams {
            server: FedAdamConfig {
                learning_rate: 0.05,
                beta1: 0.9,
                beta2: 0.99,
                lr_decay: 0.9999,
                epsilon: 1e-5,
            },
            client: LocalSgdConfig {
                learning_rate: 0.05,
                momentum: 0.5,
                weight_decay: 5e-5,
                batch_size: 32,
                epochs: 1,
            },
        }
    }

    #[test]
    fn config_validation() {
        assert!(TrainerConfig::default().validate().is_ok());
        let bad = TrainerConfig {
            clients_per_round: 0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        assert!(FederatedTrainer::new(bad).is_err());
        let mut bad = TrainerConfig::default();
        bad.hyperparams.server.learning_rate = -1.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn training_reduces_full_validation_error() {
        let dataset = smoke_dataset(Benchmark::Cifar10Like);
        let trainer =
            FederatedTrainer::new(TrainerConfig::with_hyperparams(good_hyperparams())).unwrap();
        let run0 = trainer
            .start(&dataset, ModelSpec::Mlp { hidden_dim: 16 }, 3)
            .unwrap();
        let initial = evaluate_full(
            run0.model(),
            &dataset,
            Split::Validation,
            WeightingScheme::ByExamples,
        )
        .unwrap()
        .weighted_error()
        .unwrap();

        let run = trainer
            .train(&dataset, ModelSpec::Mlp { hidden_dim: 16 }, 30, 3)
            .unwrap();
        assert_eq!(run.rounds_completed(), 30);
        let trained = evaluate_full(
            run.model(),
            &dataset,
            Split::Validation,
            WeightingScheme::ByExamples,
        )
        .unwrap()
        .weighted_error()
        .unwrap();
        assert!(
            trained < initial - 0.05,
            "training did not reduce error: {initial} -> {trained}"
        );
    }

    #[test]
    fn training_works_on_language_datasets() {
        let dataset = smoke_dataset(Benchmark::StackOverflowLike);
        let trainer =
            FederatedTrainer::new(TrainerConfig::with_hyperparams(good_hyperparams())).unwrap();
        let spec = ModelSpec::for_dataset(&dataset);
        let run = trainer.train(&dataset, spec, 10, 1).unwrap();
        let eval = evaluate_full(
            run.model(),
            &dataset,
            Split::Validation,
            WeightingScheme::ByExamples,
        )
        .unwrap();
        let err = eval.weighted_error().unwrap();
        assert!((0.0..=1.0).contains(&err));
    }

    #[test]
    fn incremental_training_matches_one_shot() {
        let dataset = smoke_dataset(Benchmark::FemnistLike);
        let trainer =
            FederatedTrainer::new(TrainerConfig::with_hyperparams(good_hyperparams())).unwrap();
        let spec = ModelSpec::Mlp { hidden_dim: 8 };

        let one_shot = trainer.train(&dataset, spec, 6, 11).unwrap();

        let mut incremental = trainer.start(&dataset, spec, 11).unwrap();
        incremental.run_rounds(&dataset, 2).unwrap();
        incremental.run_rounds(&dataset, 4).unwrap();

        assert_eq!(incremental.rounds_completed(), 6);
        assert_eq!(one_shot.model().params(), incremental.model().params());
    }

    #[test]
    fn training_is_deterministic_in_the_seed() {
        let dataset = smoke_dataset(Benchmark::Cifar10Like);
        let trainer =
            FederatedTrainer::new(TrainerConfig::with_hyperparams(good_hyperparams())).unwrap();
        let spec = ModelSpec::Softmax;
        let a = trainer.train(&dataset, spec, 5, 42).unwrap();
        let b = trainer.train(&dataset, spec, 5, 42).unwrap();
        assert_eq!(a.model().params(), b.model().params());
        let c = trainer.train(&dataset, spec, 5, 43).unwrap();
        assert_ne!(a.model().params(), c.model().params());
    }

    #[test]
    fn diverging_hyperparameters_do_not_crash() {
        let dataset = smoke_dataset(Benchmark::Cifar10Like);
        let mut hp = good_hyperparams();
        hp.client.learning_rate = 1e3;
        hp.server.learning_rate = 0.1;
        let trainer = FederatedTrainer::new(TrainerConfig::with_hyperparams(hp)).unwrap();
        let run = trainer
            .train(&dataset, ModelSpec::Mlp { hidden_dim: 8 }, 10, 0)
            .unwrap();
        // The diverged model must still be evaluable (it will just be bad).
        let eval = evaluate_full(
            run.model(),
            &dataset,
            Split::Validation,
            WeightingScheme::ByExamples,
        );
        if let Ok(eval) = eval {
            let err = eval.weighted_error().unwrap();
            assert!((0.0..=1.0).contains(&err));
        }
    }

    #[test]
    fn into_model_returns_trained_model() {
        let dataset = smoke_dataset(Benchmark::Cifar10Like);
        let trainer =
            FederatedTrainer::new(TrainerConfig::with_hyperparams(good_hyperparams())).unwrap();
        let run = trainer.train(&dataset, ModelSpec::Softmax, 2, 0).unwrap();
        let params_before = run.model().params();
        let model = run.into_model();
        assert_eq!(model.params(), params_before);
    }

    #[test]
    fn clients_per_round_is_capped_by_population() {
        let dataset = smoke_dataset(Benchmark::Cifar10Like);
        let config = TrainerConfig {
            clients_per_round: 10_000,
            hyperparams: good_hyperparams(),
            weighting: WeightingScheme::Uniform,
            ..Default::default()
        };
        let trainer = FederatedTrainer::new(config).unwrap();
        // Should not error even though clients_per_round exceeds the pool.
        let run = trainer.train(&dataset, ModelSpec::Softmax, 2, 0).unwrap();
        assert_eq!(run.rounds_completed(), 2);
        assert_eq!(run.config().clients_per_round, 10_000);
        assert_eq!(trainer.config().clients_per_round, 10_000);
    }
}
