//! Cross-device federated learning simulator.
//!
//! This crate implements the training and evaluation workflow of §2.1 of the
//! paper (Algorithm 2 in Appendix D):
//!
//! - [`training::FederatedTrainer`] runs federated training rounds: sample a
//!   subset of training clients, run local SGD (`ClientOPT`) on each, average
//!   the client updates, and apply a server optimizer (`ServerOPT`) —
//!   [`server::FedAvg`], [`server::FedSgd`], or [`server::FedAdam`] (the
//!   paper's choice, Reddi et al. 2020).
//! - [`evaluation`] implements the federated validation objective of Eq. 2:
//!   per-client error rates combined by a uniform or example-weighted
//!   average, over either the full validation pool or a subsample.
//! - [`sampling`] provides the client-selection strategies: uniform
//!   sampling without replacement (the default protocol) and the
//!   accuracy-biased sampling `(a + δ)^b` used to model systems heterogeneity
//!   in §3.2.
//! - [`exec`] is the deterministic execution engine: an
//!   [`exec::ExecutionPolicy`] knob (`Sequential` or `Parallel`) governs how
//!   client training and evaluation fan out over threads, with bit-identical
//!   results under every policy.
//! - [`clock`] is the virtual-time layer for discrete-event campaign
//!   simulation: a monotone [`clock::VirtualClock`], a completion queue with
//!   total deterministic `(sim_time, key)` ordering, a virtual
//!   [`clock::WorkerPool`], and the [`clock::CostModel`] deriving simulated
//!   per-trial runtimes (including heavy-tailed client stragglers) as a pure
//!   function of the evaluated point.
//!
//! # Example
//!
//! ```
//! use feddata::{Benchmark, DatasetSpec, Scale};
//! use fedmodels::ModelSpec;
//! use fedsim::training::{FederatedTrainer, TrainerConfig};
//!
//! let dataset = DatasetSpec::benchmark(Benchmark::Cifar10Like, Scale::Smoke)
//!     .generate(0)
//!     .unwrap();
//! let trainer = FederatedTrainer::new(TrainerConfig::default()).unwrap();
//! let run = trainer.train(&dataset, ModelSpec::Softmax, 3, 7).unwrap();
//! assert!(run.rounds_completed() == 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clock;
pub mod evaluation;
pub mod exec;
pub mod hyperparams;
pub mod sampling;
pub mod server;
pub mod training;

pub use clock::{ClientRuntimeModel, CostModel, EventKey, EventQueue, VirtualClock, WorkerPool};
pub use evaluation::{ClientEvaluation, FederatedEvaluation, WeightingScheme};
pub use exec::{
    parse_threads_override, threads_env_override, with_thread_pool, ExecutionPolicy, SharedPool,
    ThreadPool,
};
pub use hyperparams::{FedAdamConfig, FederatedHyperparams};
pub use sampling::{BiasedSampler, ClientSampler, UniformSampler};
pub use server::{FedAdam, FedAvg, FedSgd, ServerOptimizer};
pub use training::{CohortSource, FederatedTrainer, TrainerConfig, TrainingRun};

use std::fmt;

/// Errors produced by the federated simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration value was invalid.
    InvalidConfig {
        /// Description of the violation.
        message: String,
    },
    /// A client-selection request could not be satisfied
    /// (e.g. more clients requested than exist).
    Sampling {
        /// Description of the problem.
        message: String,
    },
    /// An underlying model operation failed.
    Model(fedmodels::ModelError),
    /// An underlying dataset operation failed.
    Data(feddata::DataError),
    /// An underlying numerical routine failed.
    Math(fedmath::MathError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { message } => write!(f, "invalid configuration: {message}"),
            SimError::Sampling { message } => write!(f, "sampling error: {message}"),
            SimError::Model(e) => write!(f, "model error: {e}"),
            SimError::Data(e) => write!(f, "data error: {e}"),
            SimError::Math(e) => write!(f, "math error: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Model(e) => Some(e),
            SimError::Data(e) => Some(e),
            SimError::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fedmodels::ModelError> for SimError {
    fn from(e: fedmodels::ModelError) -> Self {
        SimError::Model(e)
    }
}

impl From<feddata::DataError> for SimError {
    fn from(e: feddata::DataError) -> Self {
        SimError::Data(e)
    }
}

impl From<fedmath::MathError> for SimError {
    fn from(e: fedmath::MathError) -> Self {
        SimError::Math(e)
    }
}

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn error_display_and_sources() {
        let e = SimError::InvalidConfig {
            message: "zero rounds".into(),
        };
        assert!(e.to_string().contains("zero rounds"));
        assert!(e.source().is_none());

        let e = SimError::Sampling {
            message: "too many".into(),
        };
        assert!(e.to_string().contains("too many"));

        let e: SimError = fedmodels::ModelError::EmptyBatch.into();
        assert!(e.source().is_some());
        let e: SimError = feddata::DataError::InvalidSpec {
            message: "x".into(),
        }
        .into();
        assert!(e.source().is_some());
        let e: SimError = fedmath::MathError::EmptyInput { what: "mean" }.into();
        assert!(e.source().is_some());
    }
}
