//! The deterministic execution engine: a policy knob selecting sequential or
//! multi-threaded execution, plus order-preserving parallel primitives whose
//! results are bit-identical across policies and thread counts.
//!
//! Two properties make this safe for the simulator's numerics:
//!
//! 1. **Order-preserving fan-out.** [`map_range`]/[`map_indexed`] always
//!    return results in index order, and every work item must derive its
//!    randomness from its *index* (see `fedmath::SeedTree`), never from a
//!    shared sequential RNG — so scheduling cannot leak into the output.
//! 2. **Fixed-shape reduction.** [`map_chunks`] partitions work over fixed
//!    chunk boundaries ([`REDUCE_CHUNK`]) that depend only on the problem
//!    size; folding within chunks and combining the partials left-to-right
//!    performs the same sequence of float operations — and therefore yields
//!    the same bits — no matter how many threads computed the chunk partials.
//!
//! Parallelism is implemented with `std::thread::scope` rather than `rayon`:
//! the build environment vendors all dependencies offline, and scoped threads
//! with contiguous chunking are sufficient for the simulator's uniform
//! workloads while keeping the reduction shape trivially deterministic.
//!
//! For long-lived fan-out — the event-driven executor submitting one task per
//! dispatched trial, hundreds of times per campaign — per-call spawning pays
//! thread-creation cost on every round trip. [`with_thread_pool`] amortizes
//! it: a campaign-scoped pool of persistent workers drains a FIFO injector
//! queue, so task *start* order always equals submission order, and the
//! caller decides (deterministically) how results are committed. Because the
//! crates in this workspace forbid `unsafe`, the pool is scoped rather than
//! global: jobs may borrow anything that outlives the [`with_thread_pool`]
//! call, which is exactly the shape of the concurrent trial executor (shared
//! evaluation core by reference, per-trial state by value) but *not* of
//! [`map_range`]'s arbitrary call-site borrows — the per-call scoped spawns
//! remain there, where fan-outs are wide and infrequent.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Default chunk width for deterministic [`map_chunks`] reductions.
///
/// Chosen so that chunk partials parallelize usefully at ≥ 50 clients per
/// round while keeping the combine step cheap and aggregation memory bounded
/// by the number of chunks rather than the number of clients.
pub const REDUCE_CHUNK: usize = 8;

/// How a fan-out (client training, trial execution, evaluation) is executed.
///
/// Both policies produce **bit-identical** results; `Parallel` only changes
/// wall-clock time. This is asserted by the cross-policy determinism tests in
/// `tests/determinism.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ExecutionPolicy {
    /// Execute work items one after another on the calling thread.
    #[default]
    Sequential,
    /// Fan work items out over OS threads.
    Parallel {
        /// Worker-thread count; `0` means "use all available cores".
        threads: usize,
    },
}

impl ExecutionPolicy {
    /// The sequential policy.
    pub fn sequential() -> Self {
        ExecutionPolicy::Sequential
    }

    /// A parallel policy using all available cores.
    pub fn parallel() -> Self {
        ExecutionPolicy::Parallel { threads: 0 }
    }

    /// A parallel policy with an explicit worker count.
    pub fn parallel_with(threads: usize) -> Self {
        ExecutionPolicy::Parallel { threads }
    }

    /// The policy selected by the `FEDTUNE_THREADS` environment variable:
    /// `1` means sequential, any other number is a parallel worker count
    /// (`0` = all cores). Unset, empty, or unparsable values fall back to
    /// [`parallel`](Self::parallel) — the default every example and bench
    /// used before the override existed. A malformed value warns on stderr
    /// once per process (see [`threads_env_override`]).
    pub fn from_env() -> Self {
        Self::from_threads(threads_env_override())
    }

    /// [`from_env`](Self::from_env) with the raw variable value injected
    /// (separated out so the parsing is testable without mutating the
    /// process environment). Unlike [`from_env`](Self::from_env) this
    /// never warns: callers inject the value deliberately.
    pub fn from_threads_override(value: Option<&str>) -> Self {
        Self::from_threads(parse_threads_override(value).unwrap_or(None))
    }

    /// The policy implied by an explicit thread count: `Some(1)` →
    /// sequential, `Some(n)` → parallel with `n` workers (`0` = all cores),
    /// `None` → the parallel default. The single interpretation shared by
    /// [`from_env`](Self::from_env), [`from_threads_override`](Self::from_threads_override),
    /// and pool constructors.
    pub fn from_threads(threads: Option<usize>) -> Self {
        match threads {
            Some(1) => ExecutionPolicy::Sequential,
            Some(threads) => ExecutionPolicy::Parallel { threads },
            None => ExecutionPolicy::parallel(),
        }
    }

    /// Returns `true` if this policy fans out over threads.
    pub fn is_parallel(&self) -> bool {
        matches!(self, ExecutionPolicy::Parallel { .. })
    }

    /// The real worker-thread count this policy implies for a long-lived
    /// pool with no per-call item bound: `Sequential` → 1, `Parallel { 0 }`
    /// → all available cores, `Parallel { n }` → `n`.
    pub fn pool_threads(&self) -> usize {
        self.effective_threads(usize::MAX)
    }

    /// The number of worker threads this policy would use for `items` work
    /// items (never more threads than items, never zero).
    pub fn effective_threads(&self, items: usize) -> usize {
        match self {
            ExecutionPolicy::Sequential => 1,
            ExecutionPolicy::Parallel { threads } => {
                let requested = if *threads == 0 {
                    std::thread::available_parallelism().map_or(1, |n| n.get())
                } else {
                    *threads
                };
                requested.clamp(1, items.max(1))
            }
        }
    }
}

/// Parses a raw `FEDTUNE_THREADS` value into a thread count.
///
/// `Ok(None)` means unset or empty (use the default), `Ok(Some(n))` is an
/// explicit count, and `Err(raw)` reports a malformed value so the caller
/// decides how loudly to complain. This is the **single** parse of the
/// variable: [`ExecutionPolicy::from_env`], [`ExecutionPolicy::from_threads_override`],
/// and [`threads_env_override`] all go through it, so a malformed value can
/// never be silently ignored by one path while another honors it.
///
/// # Errors
///
/// Returns the trimmed raw value when it is non-empty but not a `usize`.
pub fn parse_threads_override(value: Option<&str>) -> std::result::Result<Option<usize>, String> {
    let Some(raw) = value.map(str::trim) else {
        return Ok(None);
    };
    if raw.is_empty() {
        return Ok(None);
    }
    match raw.parse::<usize>() {
        Ok(threads) => Ok(Some(threads)),
        Err(_) => Err(raw.to_string()),
    }
}

/// The process-wide `FEDTUNE_THREADS` override, parsed once and cached.
///
/// A malformed value (e.g. `FEDTUNE_THREADS=lots`) warns on stderr exactly
/// once per process and then behaves as unset. The cache also pins the
/// interpretation for the process lifetime, so every pool and policy in a
/// run agrees on the same thread count.
pub fn threads_env_override() -> Option<usize> {
    static PARSED: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    *PARSED.get_or_init(|| {
        match parse_threads_override(std::env::var("FEDTUNE_THREADS").ok().as_deref()) {
            Ok(threads) => threads,
            Err(raw) => {
                eprintln!(
                    "warning: FEDTUNE_THREADS={raw:?} is not a thread count; \
                     falling back to the parallel default (all cores)"
                );
                None
            }
        }
    })
}

/// Applies `f` to every index in `0..len`, returning results in index order.
///
/// Under [`ExecutionPolicy::Parallel`] the index range is split into
/// contiguous chunks, one scoped thread per chunk; results are stitched back
/// together in chunk order, so the output is identical to the sequential
/// policy whenever `f` is a pure function of its index.
pub fn map_range<O, F>(policy: &ExecutionPolicy, len: usize, f: F) -> Vec<O>
where
    O: Send,
    F: Fn(usize) -> O + Sync,
{
    let threads = policy.effective_threads(len);
    if threads <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    let chunk = len.div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..len)
            .step_by(chunk)
            .map(|start| {
                let end = (start + chunk).min(len);
                scope.spawn(move || (start..end).map(f).collect::<Vec<O>>())
            })
            .collect();
        let mut out = Vec::with_capacity(len);
        for handle in handles {
            out.extend(handle.join().expect("execution-engine worker panicked"));
        }
        out
    })
}

/// Applies `f` to every element of `items` (with its index), returning
/// results in input order. See [`map_range`] for the execution contract.
pub fn map_indexed<T, O, F>(policy: &ExecutionPolicy, items: &[T], f: F) -> Vec<O>
where
    T: Sync,
    O: Send,
    F: Fn(usize, &T) -> O + Sync,
{
    map_range(policy, items.len(), |i| f(i, &items[i]))
}

/// Applies `f` to fixed contiguous `chunk_size`-sized index chunks of
/// `0..len`, returning one result per chunk in chunk order.
///
/// This is the deterministic map-reduce primitive: chunk boundaries depend
/// only on `len` and `chunk_size` — never on the policy or thread count — so
/// a caller that folds within each chunk and then combines the returned
/// partials left-to-right performs the exact same sequence of floating-point
/// operations under every policy. The chunk computations are what
/// parallelize.
pub fn map_chunks<O, F>(policy: &ExecutionPolicy, len: usize, chunk_size: usize, f: F) -> Vec<O>
where
    O: Send,
    F: Fn(std::ops::Range<usize>) -> O + Sync,
{
    let chunk_size = chunk_size.max(1);
    let chunks = len.div_ceil(chunk_size);
    map_range(policy, chunks, |c| {
        let start = c * chunk_size;
        f(start..(start + chunk_size).min(len))
    })
}

/// A unit of work queued on a [`ThreadPool`].
type PoolJob<'env> = Box<dyn FnOnce() + Send + 'env>;

struct PoolState<'env> {
    jobs: VecDeque<PoolJob<'env>>,
    shutdown: bool,
}

struct PoolShared<'env> {
    state: Mutex<PoolState<'env>>,
    work_ready: Condvar,
}

/// Pool accounting on the global [`fedtrace`] registry. Write-only — the
/// pool never reads these back, so tracing cannot change scheduling.
struct PoolMetrics {
    tasks: fedtrace::Counter,
    steals_avoided: fedtrace::Counter,
    task_panics: fedtrace::Counter,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: std::sync::OnceLock<PoolMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = fedtrace::global().registry();
        PoolMetrics {
            tasks: registry.counter("exec.pool.tasks"),
            steals_avoided: registry.counter("exec.pool.steals_avoided"),
            task_panics: registry.counter("exec.pool.task_panics"),
        }
    })
}

/// Handle to a persistent, order-preserving worker pool created by
/// [`with_thread_pool`].
///
/// Workers are long-lived threads draining one shared FIFO queue: tasks
/// *start* in exactly the order they were submitted (there is no per-worker
/// deque and hence no stealing), which keeps pool scheduling out of any
/// determinism argument — a caller that commits results in submission order
/// gets bit-identical output at every worker count.
///
/// The counter `exec.pool.tasks` records every submission and
/// `exec.pool.steals_avoided` every task the submitting thread ran inline
/// (see [`help_run_one`](Self::help_run_one)) instead of handing it to a
/// worker. Accounting, never semantics.
pub struct ThreadPool<'env> {
    shared: Arc<PoolShared<'env>>,
    workers: usize,
}

impl<'env> ThreadPool<'env> {
    /// Number of persistent worker threads serving this pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Queues `job` for execution on the next idle worker. Jobs start in
    /// submission order; all submitted jobs complete before
    /// [`with_thread_pool`] returns.
    pub fn submit<F: FnOnce() + Send + 'env>(&self, job: F) {
        pool_metrics().tasks.incr();
        let mut state = self.shared.state.lock().expect("pool queue poisoned");
        state.jobs.push_back(Box::new(job));
        drop(state);
        self.shared.work_ready.notify_one();
    }

    /// [`submit`](Self::submit) for a task that inherits its predecessor's
    /// warm per-task state (the concurrent executor chaining a trial's next
    /// dispatch onto the state its completed dispatch just freed). Counted
    /// as `exec.pool.steals_avoided`: the state handoff bypasses the shared
    /// parked-state round trip a work-stealing pool would pay.
    pub fn submit_chained<F: FnOnce() + Send + 'env>(&self, job: F) {
        pool_metrics().steals_avoided.incr();
        self.submit(job);
    }

    /// Pops one queued job (if any) and runs it on the *calling* thread.
    ///
    /// Lets a thread that is waiting for pool results make progress instead
    /// of handing every task across a thread boundary; each inline run is
    /// counted as `exec.pool.steals_avoided`. Returns `false` when the queue
    /// was empty.
    pub fn help_run_one(&self) -> bool {
        let job = {
            let mut state = self.shared.state.lock().expect("pool queue poisoned");
            state.jobs.pop_front()
        };
        match job {
            Some(job) => {
                pool_metrics().steals_avoided.incr();
                job();
                true
            }
            None => false,
        }
    }

    /// Order-preserving fan-out on the pool: applies `f` to `0..len` in the
    /// same fixed contiguous chunks as the free function [`map_range`] and
    /// stitches results back in index order, so the output is bit-identical
    /// to the sequential path for any pure-per-index `f`.
    ///
    /// Unlike the free function, `f` must own its captures (or borrow data
    /// that outlives the pool), because chunks outlive this call's frame on
    /// worker threads. The calling thread helps drain the queue while it
    /// waits, so the fan-out completes even on a single-worker pool.
    pub fn map_range<O, F>(&self, len: usize, f: F) -> Vec<O>
    where
        O: Send + 'env,
        F: Fn(usize) -> O + Send + Sync + 'env,
    {
        if len == 0 {
            return Vec::new();
        }
        let threads = self.workers.min(len);
        let chunk = len.div_ceil(threads);
        let starts: Vec<usize> = (0..len).step_by(chunk).collect();
        let (tx, rx) = std::sync::mpsc::channel::<(usize, Vec<O>)>();
        let f = Arc::new(f);
        for (slot, &start) in starts.iter().enumerate() {
            let end = (start + chunk).min(len);
            let f = Arc::clone(&f);
            let tx = tx.clone();
            self.submit(move || {
                let part: Vec<O> = (start..end).map(|i| f(i)).collect();
                let _ = tx.send((slot, part));
            });
        }
        drop(tx);
        let mut parts: Vec<Option<Vec<O>>> = (0..starts.len()).map(|_| None).collect();
        let mut received = 0;
        while received < starts.len() {
            match rx.try_recv() {
                Ok((slot, part)) => {
                    parts[slot] = Some(part);
                    received += 1;
                }
                Err(std::sync::mpsc::TryRecvError::Empty) => {
                    if !self.help_run_one() {
                        let (slot, part) = rx.recv().expect("pool worker panicked");
                        parts[slot] = Some(part);
                        received += 1;
                    }
                }
                Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                    panic!("pool worker panicked")
                }
            }
        }
        let mut out = Vec::with_capacity(len);
        for part in parts {
            out.extend(part.expect("every chunk reported"));
        }
        out
    }
}

/// Runs `f` with a persistent pool of `threads.max(1)` workers, shutting the
/// pool down (after draining every submitted job) when `f` returns.
///
/// The `'env` lifetime is the borrow horizon for jobs: anything a job borrows
/// must outlive the `with_thread_pool` call itself. Built on
/// `std::thread::scope`, so a panicking job propagates to the caller once the
/// scope joins.
pub fn with_thread_pool<'env, R, F>(threads: usize, f: F) -> R
where
    F: FnOnce(&ThreadPool<'env>) -> R,
{
    let workers = threads.max(1);
    let shared: Arc<PoolShared<'env>> = Arc::new(PoolShared {
        state: Mutex::new(PoolState {
            jobs: VecDeque::new(),
            shutdown: false,
        }),
        work_ready: Condvar::new(),
    });
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let shared = Arc::clone(&shared);
            scope.spawn(move || worker_loop(&shared));
        }
        let pool = ThreadPool {
            shared: Arc::clone(&shared),
            workers,
        };
        let out = f(&pool);
        let mut state = shared.state.lock().expect("pool queue poisoned");
        state.shutdown = true;
        drop(state);
        shared.work_ready.notify_all();
        out
    })
}

fn worker_loop(shared: &PoolShared<'_>) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break Some(job);
                }
                if state.shutdown {
                    break None;
                }
                state = shared.work_ready.wait(state).expect("pool queue poisoned");
            }
        };
        match job {
            // Run outside the lock so a panicking job cannot poison the queue.
            Some(job) => job(),
            None => return,
        }
    }
}

/// A process-lifetime worker pool shared by many independent drivers — the
/// multiplexing substrate of the tuning service daemon.
///
/// Differences from the scoped [`ThreadPool`]:
///
/// - **Owned, `'static` jobs.** Campaign drivers come and go while the pool
///   persists, so jobs must own their captures (typically `Arc` clones of a
///   shared evaluation core plus per-trial state by value).
/// - **Panic isolation.** Each job runs under `catch_unwind`: one tenant's
///   panicking evaluation is swallowed at the job boundary (counted as
///   `exec.pool.task_panics`) and the worker thread survives to serve other
///   tenants. The panicking tenant learns of the death through its own
///   channel-guard protocol — the pool stays policy-free.
/// - **Explicit shutdown.** Dropping the pool sets the shutdown flag and
///   joins every worker after the queue drains.
///
/// The queue is the same single FIFO as the scoped pool: tasks *start* in
/// submission order, so fair-share admission decisions made upstream are not
/// reordered by the pool itself.
pub struct SharedPool {
    shared: Arc<PoolShared<'static>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    workers: usize,
}

impl SharedPool {
    /// Starts a pool of `threads.max(1)` persistent workers.
    pub fn new(threads: usize) -> Self {
        let workers = threads.max(1);
        let shared: Arc<PoolShared<'static>> = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop_isolating(&shared))
            })
            .collect();
        SharedPool {
            shared,
            handles,
            workers,
        }
    }

    /// Number of persistent worker threads serving this pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Queues `job` for execution on the next idle worker. Jobs start in
    /// submission order.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) {
        pool_metrics().tasks.incr();
        let mut state = self.shared.state.lock().expect("pool queue poisoned");
        state.jobs.push_back(Box::new(job));
        drop(state);
        self.shared.work_ready.notify_one();
    }

    /// [`submit`](Self::submit) for a task chained onto its predecessor's
    /// warm per-trial state; counted as `exec.pool.steals_avoided` exactly
    /// like the scoped pool's chained submissions.
    pub fn submit_chained<F: FnOnce() + Send + 'static>(&self, job: F) {
        pool_metrics().steals_avoided.incr();
        self.submit(job);
    }
}

impl Drop for SharedPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool queue poisoned");
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// [`worker_loop`] with per-job panic isolation for the shared pool: a
/// panicking job is contained at the job boundary and the worker keeps
/// serving the queue.
fn worker_loop_isolating(shared: &PoolShared<'static>) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break Some(job);
                }
                if state.shutdown {
                    break None;
                }
                state = shared.work_ready.wait(state).expect("pool queue poisoned");
            }
        };
        match job {
            Some(job) => {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                if outcome.is_err() {
                    pool_metrics().task_panics.incr();
                }
            }
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_constructors_and_threads() {
        assert_eq!(ExecutionPolicy::default(), ExecutionPolicy::Sequential);
        assert!(!ExecutionPolicy::sequential().is_parallel());
        assert!(ExecutionPolicy::parallel().is_parallel());
        assert_eq!(
            ExecutionPolicy::parallel_with(3),
            ExecutionPolicy::Parallel { threads: 3 }
        );
        assert_eq!(ExecutionPolicy::Sequential.effective_threads(100), 1);
        // The FEDTUNE_THREADS override: 1 = sequential, n = parallel with n
        // workers, 0 = all cores, anything else = the parallel default.
        assert_eq!(
            ExecutionPolicy::from_threads_override(Some("1")),
            ExecutionPolicy::Sequential
        );
        assert_eq!(
            ExecutionPolicy::from_threads_override(Some(" 4 ")),
            ExecutionPolicy::Parallel { threads: 4 }
        );
        assert_eq!(
            ExecutionPolicy::from_threads_override(Some("0")),
            ExecutionPolicy::parallel()
        );
        assert_eq!(
            ExecutionPolicy::from_threads_override(Some("lots")),
            ExecutionPolicy::parallel()
        );
        assert_eq!(
            ExecutionPolicy::from_threads_override(None),
            ExecutionPolicy::parallel()
        );
        assert_eq!(ExecutionPolicy::parallel_with(4).effective_threads(2), 2);
        assert_eq!(ExecutionPolicy::parallel_with(4).effective_threads(0), 1);
        assert!(ExecutionPolicy::parallel().effective_threads(64) >= 1);
    }

    #[test]
    fn parse_threads_override_distinguishes_unset_from_malformed() {
        assert_eq!(parse_threads_override(None), Ok(None));
        assert_eq!(parse_threads_override(Some("")), Ok(None));
        assert_eq!(parse_threads_override(Some("  ")), Ok(None));
        assert_eq!(parse_threads_override(Some("4")), Ok(Some(4)));
        assert_eq!(parse_threads_override(Some(" 8 ")), Ok(Some(8)));
        assert_eq!(parse_threads_override(Some("0")), Ok(Some(0)));
        assert_eq!(parse_threads_override(Some("lots")), Err("lots".into()));
        assert_eq!(parse_threads_override(Some("-3")), Err("-3".into()));
        // from_threads is the shared interpretation of the parsed count.
        assert_eq!(
            ExecutionPolicy::from_threads(Some(1)),
            ExecutionPolicy::Sequential
        );
        assert_eq!(
            ExecutionPolicy::from_threads(Some(6)),
            ExecutionPolicy::Parallel { threads: 6 }
        );
        assert_eq!(
            ExecutionPolicy::from_threads(None),
            ExecutionPolicy::parallel()
        );
    }

    #[test]
    fn shared_pool_runs_static_jobs_in_submission_order() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::mpsc;
        let pool = SharedPool::new(1);
        assert_eq!(pool.workers(), 1);
        let (tx, rx) = mpsc::channel::<usize>();
        let ran = Arc::new(AtomicUsize::new(0));
        for i in 0..50 {
            let tx = tx.clone();
            let ran = Arc::clone(&ran);
            pool.submit(move || {
                ran.fetch_add(1, Ordering::SeqCst);
                let _ = tx.send(i);
            });
        }
        // One worker + FIFO queue: completion order equals submission order.
        let order: Vec<usize> = (0..50).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
        assert_eq!(ran.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn shared_pool_survives_a_panicking_job() {
        use std::sync::mpsc;
        let pool = SharedPool::new(2);
        let panics_before = pool_metrics().task_panics.value();
        pool.submit(|| panic!("tenant bug"));
        let (tx, rx) = mpsc::channel::<u32>();
        pool.submit(move || {
            let _ = tx.send(7);
        });
        // The worker that ran the panicking job is still alive to run this.
        assert_eq!(rx.recv().unwrap(), 7);
        // Drop joins the workers; none of them died to the panic.
        drop(pool);
        assert!(pool_metrics().task_panics.value() > panics_before);
    }

    #[test]
    fn map_range_preserves_order_across_policies() {
        let sequential = map_range(&ExecutionPolicy::Sequential, 100, |i| i * i);
        for threads in [1, 2, 3, 7, 16] {
            let parallel = map_range(&ExecutionPolicy::parallel_with(threads), 100, |i| i * i);
            assert_eq!(sequential, parallel, "threads = {threads}");
        }
        let empty: Vec<usize> = map_range(&ExecutionPolicy::parallel(), 0, |i| i);
        assert!(empty.is_empty());
    }

    #[test]
    fn map_indexed_passes_elements() {
        let items = vec![10, 20, 30];
        let out = map_indexed(&ExecutionPolicy::parallel_with(2), &items, |i, &v| v + i);
        assert_eq!(out, vec![10, 21, 32]);
    }

    /// A chunk-fold + ordered combine, as `run_round`'s aggregation does it.
    fn chunked_sum(policy: &ExecutionPolicy, terms: &[f64]) -> f64 {
        let partials = map_chunks(policy, terms.len(), REDUCE_CHUNK, |slots| {
            slots.fold(0.0, |acc, i| acc + terms[i])
        });
        partials.into_iter().fold(0.0, |acc, p| acc + p)
    }

    #[test]
    fn chunked_fold_is_bit_identical_across_policies() {
        // Pathological magnitudes so naive reassociation would change bits.
        let terms: Vec<f64> = (0..37)
            .map(|i| {
                10f64.powi((i % 13) - 6)
                    * if i % 2 == 0 {
                        1.000000001
                    } else {
                        -0.999999999
                    }
            })
            .collect();
        let sequential = chunked_sum(&ExecutionPolicy::Sequential, &terms);
        for threads in [1, 2, 5, 8] {
            let parallel = chunked_sum(&ExecutionPolicy::parallel_with(threads), &terms);
            assert_eq!(
                sequential.to_bits(),
                parallel.to_bits(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn thread_pool_runs_every_submitted_job_before_returning() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let ran = AtomicUsize::new(0);
        with_thread_pool(4, |pool| {
            assert_eq!(pool.workers(), 4);
            for _ in 0..100 {
                pool.submit(|| {
                    ran.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        // with_thread_pool only returns once the scope has joined, i.e. after
        // the workers drained the queue.
        assert_eq!(ran.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn thread_pool_map_range_matches_sequential_at_every_worker_count() {
        let sequential: Vec<usize> = (0..57).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 3, 8] {
            let pooled = with_thread_pool(threads, |pool| pool.map_range(57, |i| i * 3 + 1));
            assert_eq!(sequential, pooled, "threads = {threads}");
        }
        let empty: Vec<usize> = with_thread_pool(2, |pool| pool.map_range(0, |i| i));
        assert!(empty.is_empty());
    }

    #[test]
    fn thread_pool_jobs_may_borrow_pre_pool_data() {
        let data: Vec<u64> = (0..64).collect();
        let total: u64 = data.iter().sum();
        let summed = with_thread_pool(3, |pool| {
            let parts = pool.map_range(data.len(), |i| data[i]);
            parts.into_iter().sum::<u64>()
        });
        assert_eq!(summed, total);
    }

    #[test]
    fn thread_pool_counts_tasks_on_the_global_registry() {
        let start = pool_metrics().tasks.value();
        with_thread_pool(2, |pool| {
            for _ in 0..5 {
                pool.submit(|| {});
            }
        });
        assert!(pool_metrics().tasks.value() >= start + 5);
    }

    #[test]
    fn thread_pool_clamps_zero_workers_to_one() {
        let out = with_thread_pool(0, |pool| {
            assert_eq!(pool.workers(), 1);
            pool.map_range(5, |i| i + 1)
        });
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn map_chunks_covers_the_range_exactly_once() {
        let covered: Vec<usize> = map_chunks(&ExecutionPolicy::parallel_with(3), 23, 8, |slots| {
            slots.collect::<Vec<usize>>()
        })
        .into_iter()
        .flatten()
        .collect();
        assert_eq!(covered, (0..23).collect::<Vec<_>>());
        let empty: Vec<Vec<usize>> =
            map_chunks(&ExecutionPolicy::parallel(), 0, 8, |slots| slots.collect());
        assert!(empty.is_empty());
        // A zero chunk size is clamped rather than dividing by zero.
        let clamped = map_chunks(&ExecutionPolicy::Sequential, 2, 0, |slots| slots.len());
        assert_eq!(clamped, vec![1, 1]);
    }
}
