//! The deterministic execution engine: a policy knob selecting sequential or
//! multi-threaded execution, plus order-preserving parallel primitives whose
//! results are bit-identical across policies and thread counts.
//!
//! Two properties make this safe for the simulator's numerics:
//!
//! 1. **Order-preserving fan-out.** [`map_range`]/[`map_indexed`] always
//!    return results in index order, and every work item must derive its
//!    randomness from its *index* (see `fedmath::SeedTree`), never from a
//!    shared sequential RNG — so scheduling cannot leak into the output.
//! 2. **Fixed-shape reduction.** [`map_chunks`] partitions work over fixed
//!    chunk boundaries ([`REDUCE_CHUNK`]) that depend only on the problem
//!    size; folding within chunks and combining the partials left-to-right
//!    performs the same sequence of float operations — and therefore yields
//!    the same bits — no matter how many threads computed the chunk partials.
//!
//! Parallelism is implemented with `std::thread::scope` rather than `rayon`:
//! the build environment vendors all dependencies offline, and scoped threads
//! with contiguous chunking are sufficient for the simulator's uniform
//! workloads while keeping the reduction shape trivially deterministic.

use serde::{Deserialize, Serialize};

/// Default chunk width for deterministic [`map_chunks`] reductions.
///
/// Chosen so that chunk partials parallelize usefully at ≥ 50 clients per
/// round while keeping the combine step cheap and aggregation memory bounded
/// by the number of chunks rather than the number of clients.
pub const REDUCE_CHUNK: usize = 8;

/// How a fan-out (client training, trial execution, evaluation) is executed.
///
/// Both policies produce **bit-identical** results; `Parallel` only changes
/// wall-clock time. This is asserted by the cross-policy determinism tests in
/// `tests/determinism.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ExecutionPolicy {
    /// Execute work items one after another on the calling thread.
    #[default]
    Sequential,
    /// Fan work items out over OS threads.
    Parallel {
        /// Worker-thread count; `0` means "use all available cores".
        threads: usize,
    },
}

impl ExecutionPolicy {
    /// The sequential policy.
    pub fn sequential() -> Self {
        ExecutionPolicy::Sequential
    }

    /// A parallel policy using all available cores.
    pub fn parallel() -> Self {
        ExecutionPolicy::Parallel { threads: 0 }
    }

    /// A parallel policy with an explicit worker count.
    pub fn parallel_with(threads: usize) -> Self {
        ExecutionPolicy::Parallel { threads }
    }

    /// The policy selected by the `FEDTUNE_THREADS` environment variable:
    /// `1` means sequential, any other number is a parallel worker count
    /// (`0` = all cores). Unset, empty, or unparsable values fall back to
    /// [`parallel`](Self::parallel) — the default every example and bench
    /// used before the override existed.
    pub fn from_env() -> Self {
        Self::from_threads_override(std::env::var("FEDTUNE_THREADS").ok().as_deref())
    }

    /// [`from_env`](Self::from_env) with the raw variable value injected
    /// (separated out so the parsing is testable without mutating the
    /// process environment).
    pub fn from_threads_override(value: Option<&str>) -> Self {
        match value.map(str::trim).and_then(|v| v.parse::<usize>().ok()) {
            Some(1) => ExecutionPolicy::Sequential,
            Some(threads) => ExecutionPolicy::Parallel { threads },
            None => ExecutionPolicy::parallel(),
        }
    }

    /// Returns `true` if this policy fans out over threads.
    pub fn is_parallel(&self) -> bool {
        matches!(self, ExecutionPolicy::Parallel { .. })
    }

    /// The number of worker threads this policy would use for `items` work
    /// items (never more threads than items, never zero).
    pub fn effective_threads(&self, items: usize) -> usize {
        match self {
            ExecutionPolicy::Sequential => 1,
            ExecutionPolicy::Parallel { threads } => {
                let requested = if *threads == 0 {
                    std::thread::available_parallelism().map_or(1, |n| n.get())
                } else {
                    *threads
                };
                requested.clamp(1, items.max(1))
            }
        }
    }
}

/// Applies `f` to every index in `0..len`, returning results in index order.
///
/// Under [`ExecutionPolicy::Parallel`] the index range is split into
/// contiguous chunks, one scoped thread per chunk; results are stitched back
/// together in chunk order, so the output is identical to the sequential
/// policy whenever `f` is a pure function of its index.
pub fn map_range<O, F>(policy: &ExecutionPolicy, len: usize, f: F) -> Vec<O>
where
    O: Send,
    F: Fn(usize) -> O + Sync,
{
    let threads = policy.effective_threads(len);
    if threads <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    let chunk = len.div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..len)
            .step_by(chunk)
            .map(|start| {
                let end = (start + chunk).min(len);
                scope.spawn(move || (start..end).map(f).collect::<Vec<O>>())
            })
            .collect();
        let mut out = Vec::with_capacity(len);
        for handle in handles {
            out.extend(handle.join().expect("execution-engine worker panicked"));
        }
        out
    })
}

/// Applies `f` to every element of `items` (with its index), returning
/// results in input order. See [`map_range`] for the execution contract.
pub fn map_indexed<T, O, F>(policy: &ExecutionPolicy, items: &[T], f: F) -> Vec<O>
where
    T: Sync,
    O: Send,
    F: Fn(usize, &T) -> O + Sync,
{
    map_range(policy, items.len(), |i| f(i, &items[i]))
}

/// Applies `f` to fixed contiguous `chunk_size`-sized index chunks of
/// `0..len`, returning one result per chunk in chunk order.
///
/// This is the deterministic map-reduce primitive: chunk boundaries depend
/// only on `len` and `chunk_size` — never on the policy or thread count — so
/// a caller that folds within each chunk and then combines the returned
/// partials left-to-right performs the exact same sequence of floating-point
/// operations under every policy. The chunk computations are what
/// parallelize.
pub fn map_chunks<O, F>(policy: &ExecutionPolicy, len: usize, chunk_size: usize, f: F) -> Vec<O>
where
    O: Send,
    F: Fn(std::ops::Range<usize>) -> O + Sync,
{
    let chunk_size = chunk_size.max(1);
    let chunks = len.div_ceil(chunk_size);
    map_range(policy, chunks, |c| {
        let start = c * chunk_size;
        f(start..(start + chunk_size).min(len))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_constructors_and_threads() {
        assert_eq!(ExecutionPolicy::default(), ExecutionPolicy::Sequential);
        assert!(!ExecutionPolicy::sequential().is_parallel());
        assert!(ExecutionPolicy::parallel().is_parallel());
        assert_eq!(
            ExecutionPolicy::parallel_with(3),
            ExecutionPolicy::Parallel { threads: 3 }
        );
        assert_eq!(ExecutionPolicy::Sequential.effective_threads(100), 1);
        // The FEDTUNE_THREADS override: 1 = sequential, n = parallel with n
        // workers, 0 = all cores, anything else = the parallel default.
        assert_eq!(
            ExecutionPolicy::from_threads_override(Some("1")),
            ExecutionPolicy::Sequential
        );
        assert_eq!(
            ExecutionPolicy::from_threads_override(Some(" 4 ")),
            ExecutionPolicy::Parallel { threads: 4 }
        );
        assert_eq!(
            ExecutionPolicy::from_threads_override(Some("0")),
            ExecutionPolicy::parallel()
        );
        assert_eq!(
            ExecutionPolicy::from_threads_override(Some("lots")),
            ExecutionPolicy::parallel()
        );
        assert_eq!(
            ExecutionPolicy::from_threads_override(None),
            ExecutionPolicy::parallel()
        );
        assert_eq!(ExecutionPolicy::parallel_with(4).effective_threads(2), 2);
        assert_eq!(ExecutionPolicy::parallel_with(4).effective_threads(0), 1);
        assert!(ExecutionPolicy::parallel().effective_threads(64) >= 1);
    }

    #[test]
    fn map_range_preserves_order_across_policies() {
        let sequential = map_range(&ExecutionPolicy::Sequential, 100, |i| i * i);
        for threads in [1, 2, 3, 7, 16] {
            let parallel = map_range(&ExecutionPolicy::parallel_with(threads), 100, |i| i * i);
            assert_eq!(sequential, parallel, "threads = {threads}");
        }
        let empty: Vec<usize> = map_range(&ExecutionPolicy::parallel(), 0, |i| i);
        assert!(empty.is_empty());
    }

    #[test]
    fn map_indexed_passes_elements() {
        let items = vec![10, 20, 30];
        let out = map_indexed(&ExecutionPolicy::parallel_with(2), &items, |i, &v| v + i);
        assert_eq!(out, vec![10, 21, 32]);
    }

    /// A chunk-fold + ordered combine, as `run_round`'s aggregation does it.
    fn chunked_sum(policy: &ExecutionPolicy, terms: &[f64]) -> f64 {
        let partials = map_chunks(policy, terms.len(), REDUCE_CHUNK, |slots| {
            slots.fold(0.0, |acc, i| acc + terms[i])
        });
        partials.into_iter().fold(0.0, |acc, p| acc + p)
    }

    #[test]
    fn chunked_fold_is_bit_identical_across_policies() {
        // Pathological magnitudes so naive reassociation would change bits.
        let terms: Vec<f64> = (0..37)
            .map(|i| {
                10f64.powi((i % 13) - 6)
                    * if i % 2 == 0 {
                        1.000000001
                    } else {
                        -0.999999999
                    }
            })
            .collect();
        let sequential = chunked_sum(&ExecutionPolicy::Sequential, &terms);
        for threads in [1, 2, 5, 8] {
            let parallel = chunked_sum(&ExecutionPolicy::parallel_with(threads), &terms);
            assert_eq!(
                sequential.to_bits(),
                parallel.to_bits(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn map_chunks_covers_the_range_exactly_once() {
        let covered: Vec<usize> = map_chunks(&ExecutionPolicy::parallel_with(3), 23, 8, |slots| {
            slots.collect::<Vec<usize>>()
        })
        .into_iter()
        .flatten()
        .collect();
        assert_eq!(covered, (0..23).collect::<Vec<_>>());
        let empty: Vec<Vec<usize>> =
            map_chunks(&ExecutionPolicy::parallel(), 0, 8, |slots| slots.collect());
        assert!(empty.is_empty());
        // A zero chunk size is clamped rather than dividing by zero.
        let clamped = map_chunks(&ExecutionPolicy::Sequential, 2, 0, |slots| slots.len());
        assert_eq!(clamped, vec![1, 1]);
    }
}
