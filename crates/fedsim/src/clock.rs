//! Virtual time for discrete-event campaign simulation.
//!
//! The execution engine of [`exec`](crate::exec) answers *how* work fans out
//! over real threads; this module answers *when* work would complete on a
//! simulated federated system. Three pieces compose into a deterministic
//! discrete-event executor (driven by `fedtune_core::run_event_driven`):
//!
//! - [`VirtualClock`] — a monotone simulated-seconds clock.
//! - [`EventQueue`] — a completion queue with a **total deterministic order**:
//!   events are delivered by `(sim_time, EventKey)`, never by insertion or
//!   arrival order, so a campaign's virtual timeline is bit-identical across
//!   real thread counts (asserted by a property test below).
//! - [`WorkerPool`] — a pool of *virtual* workers with per-worker
//!   availability; assigning a job yields its simulated completion time.
//!
//! [`CostModel`] supplies the job durations: the simulated runtime of one
//! evaluation as a **pure function** of the configuration's canonical
//! fingerprint and the training-round span it covers, seeded through
//! [`fedmath::SeedTree`]. Keying costs by the fingerprint (the same identity
//! the `fedstore` trial ledger addresses records by) means a recorded
//! campaign replays with an identical virtual timeline, and per-client
//! runtime heterogeneity (heavy-tailed stragglers, §3.2 of the paper's
//! systems-noise story) stays reproducible across runs and machines.

use crate::{Result, SimError};
use fedmath::SeedTree;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A monotone virtual clock measured in simulated seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VirtualClock {
    now: f64,
}

impl VirtualClock {
    /// Creates a clock at simulated time zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// The current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances the clock to `time`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `time` is non-finite or would
    /// move the clock backwards — virtual time never regresses.
    pub fn advance_to(&mut self, time: f64) -> Result<()> {
        if !time.is_finite() || time < self.now {
            return Err(SimError::InvalidConfig {
                message: format!("virtual clock cannot advance from {} to {time}", self.now),
            });
        }
        self.now = time;
        Ok(())
    }
}

/// The identity of one in-flight evaluation: the coordinates of its
/// [`TrialRequest`](https://docs.rs/fedhpo)-style `(trial, resource, rep)`
/// triple. Completion events are ordered by `(sim_time, EventKey)`, with the
/// key's lexicographic order breaking simultaneous completions — a total
/// order with no dependence on insertion sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EventKey {
    /// Trial identifier of the evaluated configuration.
    pub trial: u64,
    /// Cumulative resource (training rounds) of the evaluation.
    pub resource: u64,
    /// Noise replicate index of the evaluation.
    pub rep: u64,
}

impl EventKey {
    /// Builds a key from its coordinates.
    pub fn new(trial: u64, resource: u64, rep: u64) -> Self {
        EventKey {
            trial,
            resource,
            rep,
        }
    }
}

/// Interns a simulated time as ordering bits. Times are validated
/// non-negative and finite, where `to_bits` ordering coincides with numeric
/// ordering (`-0.0` is normalised to `0.0` first).
fn time_bits(time: f64) -> Result<u64> {
    if !time.is_finite() || time < 0.0 {
        return Err(SimError::InvalidConfig {
            message: format!("event time {time} must be finite and non-negative"),
        });
    }
    Ok((time + 0.0).to_bits())
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EventSlot {
    time_bits: u64,
    key: EventKey,
}

/// A discrete-event completion queue with total deterministic ordering.
///
/// Events pop in ascending `(sim_time, key)` order regardless of the order
/// they were pushed in; a `(sim_time, key)` pair may be queued at most once,
/// so there is no tie for arrival order to break (the property test below
/// asserts insertion-order invariance).
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    events: BTreeMap<EventSlot, T>,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            events: BTreeMap::new(),
        }
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Simulated time of the next event to pop, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.events
            .keys()
            .next()
            .map(|slot| f64::from_bits(slot.time_bits))
    }

    /// The earliest queued event as `(time, key)`, without removing it.
    ///
    /// The executor core uses this to decide whether the next virtual event
    /// can be delivered (its completion has been fed in) or must be waited
    /// for, without committing to a pop.
    pub fn peek(&self) -> Option<(f64, EventKey)> {
        self.events
            .keys()
            .next()
            .map(|slot| (f64::from_bits(slot.time_bits), slot.key))
    }

    /// Queues `payload` to complete at `time` under `key`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `time` is non-finite or
    /// negative, or if an event with the same `(time, key)` slot is already
    /// queued — duplicate slots would make the pop order depend on insertion
    /// order, which this queue exists to rule out.
    pub fn push(&mut self, time: f64, key: EventKey, payload: T) -> Result<()> {
        let slot = EventSlot {
            time_bits: time_bits(time)?,
            key,
        };
        if self.events.contains_key(&slot) {
            return Err(SimError::InvalidConfig {
                message: format!("duplicate event at time {time} for key {key:?}"),
            });
        }
        self.events.insert(slot, payload);
        Ok(())
    }

    /// Removes and returns the earliest event as `(time, key, payload)`.
    pub fn pop(&mut self) -> Option<(f64, EventKey, T)> {
        let slot = *self.events.keys().next()?;
        let payload = self.events.remove(&slot).expect("peeked slot exists");
        Some((f64::from_bits(slot.time_bits), slot.key, payload))
    }
}

/// A pool of virtual workers, each busy until its `free_at` time.
///
/// The pool models the *simulated* parallelism of a tuning service (how many
/// trials train concurrently); it is independent of the real thread count the
/// evaluation fans out over, which is why virtual timelines are bit-identical
/// across `ExecutionPolicy` settings.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    free_at: Vec<f64>,
}

impl WorkerPool {
    /// Creates a pool of `workers` virtual workers, all free at time zero.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for an empty pool.
    pub fn new(workers: usize) -> Result<Self> {
        if workers == 0 {
            return Err(SimError::InvalidConfig {
                message: "a virtual worker pool needs at least one worker".into(),
            });
        }
        Ok(WorkerPool {
            free_at: vec![0.0; workers],
        })
    }

    /// Number of virtual workers.
    pub fn num_workers(&self) -> usize {
        self.free_at.len()
    }

    /// The worker that frees up first, as `(worker index, free time)` —
    /// ties resolve to the lowest index.
    pub fn next_free(&self) -> (usize, f64) {
        let (worker, free_at) = self
            .free_at
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
            .expect("pool is never empty");
        (worker, *free_at)
    }

    /// `true` if some worker is free at simulated time `now`.
    pub fn has_idle(&self, now: f64) -> bool {
        self.next_free().1 <= now
    }

    /// Number of workers still busy at simulated time `now` (their booked
    /// completion lies strictly after `now`). Pure accounting for occupancy
    /// metrics — no driver branches on it.
    pub fn busy_at(&self, now: f64) -> usize {
        self.free_at.iter().filter(|&&free| free > now).count()
    }

    /// Books `worker` from `start` for `duration` simulated seconds and
    /// returns the completion time.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the worker index is out of
    /// range, the start precedes the worker's availability, or the duration
    /// is negative or non-finite.
    pub fn assign(&mut self, worker: usize, start: f64, duration: f64) -> Result<f64> {
        let free_at = *self
            .free_at
            .get(worker)
            .ok_or_else(|| SimError::InvalidConfig {
                message: format!("worker {worker} is out of range"),
            })?;
        if !start.is_finite() || start < free_at || !duration.is_finite() || duration < 0.0 {
            return Err(SimError::InvalidConfig {
                message: format!(
                    "cannot book worker {worker} (free at {free_at}) from {start} for {duration}s"
                ),
            });
        }
        let completion = start + duration;
        self.free_at[worker] = completion;
        Ok(completion)
    }
}

/// Per-client runtime heterogeneity for the [`CostModel::HeterogeneousClients`]
/// model: every client has a persistent Pareto-distributed speed, each
/// simulated training round samples `clients_per_round` participants and
/// waits for the slowest (the synchronous-FL straggler effect).
///
/// All draws derive from [`SeedTree`] channels of `seed`, keyed by client id
/// (speeds) or `(config fingerprint, round index)` (participation), so the
/// cost of any evaluation is a pure function of its coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientRuntimeModel {
    /// Size of the client population speeds are drawn for.
    pub num_clients: usize,
    /// Clients sampled per training round; the round waits for the slowest.
    pub clients_per_round: usize,
    /// Median per-round client compute time in simulated seconds.
    pub median_client_seconds: f64,
    /// Pareto tail shape of client speeds; values near 1 give a heavy tail
    /// (a few clients are dramatically slower — the stragglers).
    pub tail_alpha: f64,
    /// Fixed simulated cost of one validation evaluation.
    pub eval_seconds: f64,
    /// Root seed of the runtime-heterogeneity randomness.
    pub seed: u64,
}

/// Seed-tree channel for persistent client speeds.
const CHANNEL_SPEED: u64 = 0;
/// Seed-tree channel for per-round participant sampling.
const CHANNEL_ROUND: u64 = 1;

impl ClientRuntimeModel {
    /// A heavy-tailed straggler population: median round second, Pareto tail
    /// `α = 1.1` (the slowest percentile of clients is ~60× the median), and
    /// a half-second evaluation.
    pub fn heavy_tailed(num_clients: usize, clients_per_round: usize, seed: u64) -> Self {
        ClientRuntimeModel {
            num_clients,
            clients_per_round,
            median_client_seconds: 1.0,
            tail_alpha: 1.1,
            eval_seconds: 0.5,
            seed,
        }
    }

    fn validate(&self) -> Result<()> {
        let ok = self.num_clients >= 1
            && (1..=self.num_clients).contains(&self.clients_per_round)
            && self.median_client_seconds.is_finite()
            && self.median_client_seconds > 0.0
            && self.tail_alpha.is_finite()
            && self.tail_alpha > 0.0
            && self.eval_seconds.is_finite()
            && self.eval_seconds >= 0.0;
        if !ok {
            return Err(SimError::InvalidConfig {
                message: format!("invalid client runtime model: {self:?}"),
            });
        }
        Ok(())
    }

    /// The persistent simulated seconds-per-round of `client`: a Pareto draw
    /// scaled so the population median is `median_client_seconds`.
    pub fn client_seconds(&self, client: u64) -> f64 {
        let u: f64 = SeedTree::new(self.seed)
            .child(CHANNEL_SPEED)
            .child(client)
            .rng()
            .gen();
        // Pareto inverse CDF with x_m chosen so the median lands on target:
        // median = x_m · 2^(1/α)  ⇒  x_m = median / 2^(1/α).
        let scale = self.median_client_seconds / 2f64.powf(1.0 / self.tail_alpha);
        scale
            * (1.0 - u)
                .max(f64::MIN_POSITIVE)
                .powf(-1.0 / self.tail_alpha)
    }

    /// Simulated duration of training round `round` of the configuration
    /// with canonical `fingerprint`: the slowest of `clients_per_round`
    /// sampled participants.
    pub fn round_seconds(&self, fingerprint: u64, round: u64) -> f64 {
        let mut rng = SeedTree::new(self.seed)
            .child(CHANNEL_ROUND)
            .derive(&[fingerprint, round])
            .rng();
        (0..self.clients_per_round)
            .map(|_| self.client_seconds(rng.gen_range(0..self.num_clients) as u64))
            .fold(0.0, f64::max)
    }
}

/// Simulated runtime of one evaluation, as a pure function of the evaluated
/// point's canonical fingerprint and the training-round span it pays for.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CostModel {
    /// Every evaluation costs exactly one simulated second, regardless of
    /// resource span — the homogeneous model under which the event-driven
    /// driver reproduces the barrier-synchronous driver's selections.
    Unit,
    /// Homogeneous clients: a fixed cost per training round plus a fixed
    /// evaluation cost.
    PerRound {
        /// Simulated seconds per training round.
        round_seconds: f64,
        /// Simulated seconds per validation evaluation.
        eval_seconds: f64,
    },
    /// Heterogeneous clients with persistent heavy-tailed speeds; see
    /// [`ClientRuntimeModel`].
    HeterogeneousClients(ClientRuntimeModel),
}

impl CostModel {
    /// Validates model parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for non-finite or negative costs
    /// or an inconsistent client population.
    pub fn validate(&self) -> Result<()> {
        match self {
            CostModel::Unit => Ok(()),
            CostModel::PerRound {
                round_seconds,
                eval_seconds,
            } => {
                let ok = round_seconds.is_finite()
                    && *round_seconds >= 0.0
                    && eval_seconds.is_finite()
                    && *eval_seconds >= 0.0;
                if ok {
                    Ok(())
                } else {
                    Err(SimError::InvalidConfig {
                        message: format!("invalid per-round cost model: {self:?}"),
                    })
                }
            }
            CostModel::HeterogeneousClients(model) => model.validate(),
        }
    }

    /// Simulated seconds one evaluation takes when it trains the
    /// configuration with canonical `fingerprint` from `trained_from` to
    /// `trained_to` cumulative rounds and then evaluates it. A fresh-noise
    /// re-evaluation (`trained_from == trained_to`) pays only the evaluation
    /// part.
    pub fn evaluation_seconds(
        &self,
        fingerprint: u64,
        trained_from: usize,
        trained_to: usize,
    ) -> f64 {
        let rounds = trained_to.saturating_sub(trained_from);
        match self {
            CostModel::Unit => 1.0,
            CostModel::PerRound {
                round_seconds,
                eval_seconds,
            } => rounds as f64 * round_seconds + eval_seconds,
            CostModel::HeterogeneousClients(model) => {
                (trained_from..trained_to)
                    .map(|round| model.round_seconds(fingerprint, round as u64))
                    .sum::<f64>()
                    + model.eval_seconds
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let mut clock = VirtualClock::new();
        assert_eq!(clock.now(), 0.0);
        clock.advance_to(2.5).unwrap();
        clock.advance_to(2.5).unwrap();
        assert_eq!(clock.now(), 2.5);
        assert!(clock.advance_to(1.0).is_err());
        assert!(clock.advance_to(f64::NAN).is_err());
        assert!(clock.advance_to(f64::INFINITY).is_err());
        assert_eq!(clock.now(), 2.5);
    }

    #[test]
    fn queue_pops_by_time_then_key() {
        let mut queue = EventQueue::new();
        assert!(queue.is_empty());
        assert!(queue.peek_time().is_none());
        queue.push(3.0, EventKey::new(0, 1, 0), "late").unwrap();
        queue.push(1.0, EventKey::new(9, 1, 0), "early").unwrap();
        queue
            .push(3.0, EventKey::new(0, 0, 1), "tie-low-key")
            .unwrap();
        assert_eq!(queue.len(), 3);
        assert_eq!(queue.peek_time(), Some(1.0));
        assert_eq!(queue.peek(), Some((1.0, EventKey::new(9, 1, 0))));
        let order: Vec<&str> = std::iter::from_fn(|| queue.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec!["early", "tie-low-key", "late"]);
        assert!(queue.pop().is_none());
    }

    #[test]
    fn queue_rejects_bad_times_and_duplicate_slots() {
        let mut queue = EventQueue::new();
        let key = EventKey::new(1, 2, 3);
        assert!(queue.push(-1.0, key, ()).is_err());
        assert!(queue.push(f64::NAN, key, ()).is_err());
        queue.push(1.0, key, ()).unwrap();
        assert!(queue.push(1.0, key, ()).is_err());
        // Same key at a different time is a different slot.
        queue.push(2.0, key, ()).unwrap();
        // Negative zero and zero are the same slot.
        queue.push(0.0, EventKey::new(0, 0, 0), ()).unwrap();
        assert!(queue.push(-0.0, EventKey::new(0, 0, 0), ()).is_err());
    }

    #[test]
    fn worker_pool_books_earliest_free_worker() {
        assert!(WorkerPool::new(0).is_err());
        let mut pool = WorkerPool::new(2).unwrap();
        assert_eq!(pool.num_workers(), 2);
        assert_eq!(pool.next_free(), (0, 0.0));
        assert!(pool.has_idle(0.0));
        assert_eq!(pool.assign(0, 0.0, 5.0).unwrap(), 5.0);
        assert_eq!(pool.next_free(), (1, 0.0));
        assert_eq!(pool.assign(1, 0.0, 2.0).unwrap(), 2.0);
        assert!(!pool.has_idle(1.0));
        assert_eq!(pool.busy_at(1.0), 2);
        assert_eq!(pool.busy_at(2.0), 1);
        assert_eq!(pool.busy_at(5.0), 0);
        // Worker 1 frees first; ties resolve to the lowest index.
        assert_eq!(pool.next_free(), (1, 2.0));
        assert_eq!(pool.assign(1, 3.0, 2.0).unwrap(), 5.0);
        assert_eq!(pool.next_free(), (0, 5.0));
        // Booking before availability, with bad durations, or out of range
        // fails.
        assert!(pool.assign(0, 1.0, 1.0).is_err());
        assert!(pool.assign(0, 5.0, -1.0).is_err());
        assert!(pool.assign(0, 5.0, f64::NAN).is_err());
        assert!(pool.assign(7, 0.0, 1.0).is_err());
    }

    #[test]
    fn cost_models_validate() {
        assert!(CostModel::Unit.validate().is_ok());
        assert!(CostModel::PerRound {
            round_seconds: 1.0,
            eval_seconds: 0.0
        }
        .validate()
        .is_ok());
        assert!(CostModel::PerRound {
            round_seconds: -1.0,
            eval_seconds: 0.0
        }
        .validate()
        .is_err());
        assert!(CostModel::PerRound {
            round_seconds: f64::NAN,
            eval_seconds: 0.0
        }
        .validate()
        .is_err());
        let model = ClientRuntimeModel::heavy_tailed(50, 5, 7);
        assert!(CostModel::HeterogeneousClients(model).validate().is_ok());
        for broken in [
            ClientRuntimeModel {
                num_clients: 0,
                ..model
            },
            ClientRuntimeModel {
                clients_per_round: 51,
                ..model
            },
            ClientRuntimeModel {
                median_client_seconds: 0.0,
                ..model
            },
            ClientRuntimeModel {
                tail_alpha: 0.0,
                ..model
            },
            ClientRuntimeModel {
                eval_seconds: -1.0,
                ..model
            },
        ] {
            assert!(CostModel::HeterogeneousClients(broken).validate().is_err());
        }
    }

    #[test]
    fn unit_and_per_round_costs() {
        assert_eq!(CostModel::Unit.evaluation_seconds(1, 0, 5), 1.0);
        assert_eq!(CostModel::Unit.evaluation_seconds(1, 5, 5), 1.0);
        let per_round = CostModel::PerRound {
            round_seconds: 2.0,
            eval_seconds: 0.5,
        };
        assert_eq!(per_round.evaluation_seconds(1, 0, 3), 6.5);
        // Resuming pays only the incremental rounds; a re-evaluation at the
        // reached fidelity pays only the evaluation.
        assert_eq!(per_round.evaluation_seconds(1, 3, 5), 4.5);
        assert_eq!(per_round.evaluation_seconds(1, 5, 5), 0.5);
    }

    #[test]
    fn heterogeneous_costs_are_positional_and_heavy_tailed() {
        let model = ClientRuntimeModel::heavy_tailed(100, 5, 3);
        let cost = CostModel::HeterogeneousClients(model);
        // Pure function of (fingerprint, round span): same inputs, same bits.
        let a = cost.evaluation_seconds(0xfeed, 0, 4);
        let b = cost.evaluation_seconds(0xfeed, 0, 4);
        assert_eq!(a.to_bits(), b.to_bits());
        // Incremental spans compose exactly to the full span minus the extra
        // evaluation overhead.
        let first = cost.evaluation_seconds(0xfeed, 0, 2);
        let second = cost.evaluation_seconds(0xfeed, 2, 4);
        assert!((first + second - model.eval_seconds - a).abs() < 1e-9);
        // Distinct configurations see distinct round draws.
        assert_ne!(a.to_bits(), cost.evaluation_seconds(0xbeef, 0, 4).to_bits());
        // Client speeds are persistent and the population has a heavy tail.
        let speeds: Vec<f64> = (0..1000).map(|c| model.client_seconds(c)).collect();
        assert!(speeds.iter().all(|s| *s > 0.0 && s.is_finite()));
        let slowest = speeds.iter().cloned().fold(0.0, f64::max);
        let median = {
            let mut sorted = speeds.clone();
            sorted.sort_by(f64::total_cmp);
            sorted[sorted.len() / 2]
        };
        assert!(
            slowest > 10.0 * median,
            "tail α = 1.1 should produce stragglers ≫ the median \
             (slowest {slowest:.2}, median {median:.2})"
        );
        assert_eq!(
            model.client_seconds(17).to_bits(),
            model.client_seconds(17).to_bits()
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use fedmath::rng::rng_for;
    use proptest::prelude::*;
    use rand::Rng;

    /// Builds a deterministic set of events with unique `(time, key)` slots.
    fn event_set(seed: u64, count: usize) -> Vec<(f64, EventKey)> {
        let mut rng = rng_for(seed, 0);
        let mut events = Vec::with_capacity(count);
        for i in 0..count {
            // A few duplicated times force key tie-breaks; keys are unique by
            // construction.
            let time = f64::from(rng.gen_range(0u32..(count as u32 / 2).max(1)));
            let key = EventKey::new(i as u64 % 7, (i as u64 / 7) % 5, i as u64 / 35);
            events.push((time, key));
        }
        events
    }

    fn drain(order: &[usize], events: &[(f64, EventKey)]) -> Vec<(u64, EventKey)> {
        let mut queue = EventQueue::new();
        for &i in order {
            let (time, key) = events[i];
            queue.push(time, key, i).unwrap();
        }
        let mut out = Vec::with_capacity(events.len());
        while let Some((time, key, _)) = queue.pop() {
            out.push((time.to_bits(), key));
        }
        out
    }

    proptest! {
        /// The satellite invariant: event delivery is a total order under
        /// `(sim_time, key)` — invariant to seed, queue width, and insertion
        /// order, with no tie ever resolved by arrival.
        #[test]
        fn prop_event_order_is_total_and_insertion_invariant(
            seed in any::<u64>(),
            count in 2usize..60,
        ) {
            let events = event_set(seed, count);
            let forward: Vec<usize> = (0..count).collect();
            let mut shuffle_rng = rng_for(seed, 1);
            let shuffled =
                fedmath::rng::sample_without_replacement(&mut shuffle_rng, count, count).unwrap();
            let a = drain(&forward, &events);
            let b = drain(&shuffled, &events);
            prop_assert_eq!(&a, &b);
            // Strictly ascending (sim_time, key): a total order, no equal
            // neighbours possible.
            for window in a.windows(2) {
                let earlier = (window[0].0, window[0].1);
                let later = (window[1].0, window[1].1);
                prop_assert!(earlier < later, "{:?} !< {:?}", earlier, later);
            }
        }

        /// Worker-pool booking is deterministic: replaying the same jobs in
        /// the same order reproduces the same completion times bit for bit.
        #[test]
        fn prop_worker_pool_completions_are_deterministic(
            seed in any::<u64>(),
            workers in 1usize..8,
            jobs in 1usize..40,
        ) {
            let durations: Vec<f64> = {
                let mut rng = rng_for(seed, 2);
                (0..jobs).map(|_| rng.gen_range(0.0..10.0)).collect()
            };
            let book = || {
                let mut pool = WorkerPool::new(workers).unwrap();
                durations
                    .iter()
                    .map(|&d| {
                        let (w, free) = pool.next_free();
                        pool.assign(w, free, d).unwrap().to_bits()
                    })
                    .collect::<Vec<u64>>()
            };
            prop_assert_eq!(book(), book());
        }
    }
}
