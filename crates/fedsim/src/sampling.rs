//! Client-selection strategies for training and evaluation rounds.
//!
//! The default protocol samples clients uniformly without replacement
//! (Algorithm 2). The systems-heterogeneity experiments of §3.2 instead bias
//! selection towards clients on which the current model performs well: each
//! client receives weight `(a + δ)^b` where `a` is its accuracy, `δ = 1e-4`
//! keeps probabilities positive, and `b` controls the strength of the bias
//! (`b = 0` recovers uniform sampling).

use crate::{Result, SimError};

/// A strategy for choosing which clients participate in a round.
pub trait ClientSampler: Send + Sync {
    /// Samples `count` distinct client indices from `0..population`.
    ///
    /// `scores` carries an optional per-client signal (the paper uses the
    /// current model's per-client accuracy); samplers that do not need it
    /// must ignore it.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Sampling`] if the request cannot be satisfied
    /// (zero clients requested, or more than the population).
    fn sample(
        &self,
        rng: &mut dyn rand::RngCore,
        population: usize,
        count: usize,
        scores: Option<&[f64]>,
    ) -> Result<Vec<usize>>;

    /// Human-readable sampler name.
    fn name(&self) -> String;
}

/// Uniform sampling without replacement (the standard FL protocol).
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformSampler;

impl UniformSampler {
    /// Creates a uniform sampler.
    pub fn new() -> Self {
        UniformSampler
    }
}

impl ClientSampler for UniformSampler {
    fn sample(
        &self,
        rng: &mut dyn rand::RngCore,
        population: usize,
        count: usize,
        _scores: Option<&[f64]>,
    ) -> Result<Vec<usize>> {
        let mut rng = rng;
        fedmath::rng::sample_without_replacement(&mut rng, population, count).map_err(|e| {
            SimError::Sampling {
                message: e.to_string(),
            }
        })
    }

    fn name(&self) -> String {
        "uniform".into()
    }
}

/// Accuracy-biased sampling `(a + δ)^b` modelling systems heterogeneity.
///
/// When no per-client scores are available (e.g. the very first evaluation of
/// a freshly initialised model) the sampler falls back to uniform sampling.
#[derive(Debug, Clone, Copy)]
pub struct BiasedSampler {
    /// Bias exponent `b`; 0 recovers uniform sampling.
    bias: f64,
    /// Additive constant `δ` keeping every weight positive.
    delta: f64,
}

impl BiasedSampler {
    /// The paper's value of the additive constant `δ`.
    pub const DEFAULT_DELTA: f64 = 1e-4;

    /// Creates a biased sampler with exponent `b` and the paper's `δ = 1e-4`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `bias` is negative or not finite.
    pub fn new(bias: f64) -> Result<Self> {
        Self::with_delta(bias, Self::DEFAULT_DELTA)
    }

    /// Creates a biased sampler with an explicit `δ`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `bias` is negative/not finite or
    /// `delta` is not strictly positive.
    pub fn with_delta(bias: f64, delta: f64) -> Result<Self> {
        if bias < 0.0 || !bias.is_finite() {
            return Err(SimError::InvalidConfig {
                message: format!("bias exponent must be non-negative, got {bias}"),
            });
        }
        if delta <= 0.0 || !delta.is_finite() {
            return Err(SimError::InvalidConfig {
                message: format!("delta must be positive, got {delta}"),
            });
        }
        Ok(BiasedSampler { bias, delta })
    }

    /// The bias exponent `b`.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Converts per-client accuracies into (unnormalised) selection weights.
    pub fn weights(&self, accuracies: &[f64]) -> Vec<f64> {
        accuracies
            .iter()
            .map(|&a| (a.clamp(0.0, 1.0) + self.delta).powf(self.bias))
            .collect()
    }
}

impl ClientSampler for BiasedSampler {
    fn sample(
        &self,
        rng: &mut dyn rand::RngCore,
        population: usize,
        count: usize,
        scores: Option<&[f64]>,
    ) -> Result<Vec<usize>> {
        let Some(scores) = scores else {
            return UniformSampler.sample(rng, population, count, None);
        };
        if scores.len() != population {
            return Err(SimError::Sampling {
                message: format!(
                    "got {} scores for a population of {population}",
                    scores.len()
                ),
            });
        }
        if self.bias == 0.0 {
            return UniformSampler.sample(rng, population, count, None);
        }
        let weights = self.weights(scores);
        let mut rng = rng;
        fedmath::rng::weighted_sample_without_replacement(&mut rng, &weights, count).map_err(|e| {
            SimError::Sampling {
                message: e.to_string(),
            }
        })
    }

    fn name(&self) -> String {
        format!("biased(b={})", self.bias)
    }
}

/// Converts a subsampling *rate* in `(0, 1]` into a raw client count,
/// guaranteeing at least one client and at most the full population.
///
/// This mirrors the x-axes of Figures 3, 4, 6, and 9, which sweep the
/// fraction of evaluation clients from a single client up to 100%.
pub fn clients_for_rate(population: usize, rate: f64) -> Result<usize> {
    if population == 0 {
        return Err(SimError::Sampling {
            message: "population is empty".into(),
        });
    }
    if !(rate > 0.0 && rate <= 1.0) {
        return Err(SimError::Sampling {
            message: format!("sampling rate must be in (0, 1], got {rate}"),
        });
    }
    let count = (population as f64 * rate).round() as usize;
    Ok(count.clamp(1, population))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmath::rng::rng_for;
    use std::collections::HashSet;

    #[test]
    fn uniform_sampler_basic() {
        let mut rng = rng_for(0, 0);
        let s = UniformSampler::new();
        let picked = s.sample(&mut rng, 50, 10, None).unwrap();
        assert_eq!(picked.len(), 10);
        let unique: HashSet<usize> = picked.iter().copied().collect();
        assert_eq!(unique.len(), 10);
        assert!(s.sample(&mut rng, 5, 10, None).is_err());
        assert_eq!(s.name(), "uniform");
    }

    #[test]
    fn biased_sampler_validation() {
        assert!(BiasedSampler::new(-1.0).is_err());
        assert!(BiasedSampler::with_delta(1.0, 0.0).is_err());
        assert!(BiasedSampler::new(1.5).is_ok());
        assert_eq!(BiasedSampler::new(3.0).unwrap().bias(), 3.0);
    }

    #[test]
    fn biased_sampler_prefers_accurate_clients() {
        let mut rng = rng_for(1, 0);
        let sampler = BiasedSampler::new(3.0).unwrap();
        // Client 0 has accuracy 0.9, everyone else 0.1.
        let mut scores = vec![0.1; 20];
        scores[0] = 0.9;
        let mut hits = 0;
        let trials = 500;
        for _ in 0..trials {
            let picked = sampler.sample(&mut rng, 20, 1, Some(&scores)).unwrap();
            if picked[0] == 0 {
                hits += 1;
            }
        }
        let freq = hits as f64 / trials as f64;
        // Weight ratio is (0.9/0.1)^3 = 729, so client 0 dominates.
        assert!(freq > 0.9, "high-accuracy client frequency was only {freq}");
    }

    #[test]
    fn zero_bias_is_uniform() {
        let mut rng = rng_for(1, 1);
        let sampler = BiasedSampler::new(0.0).unwrap();
        let mut scores = vec![0.0; 10];
        scores[0] = 1.0;
        let mut hits = 0;
        let trials = 2000;
        for _ in 0..trials {
            let picked = sampler.sample(&mut rng, 10, 1, Some(&scores)).unwrap();
            if picked[0] == 0 {
                hits += 1;
            }
        }
        let freq = hits as f64 / trials as f64;
        assert!(
            (freq - 0.1).abs() < 0.05,
            "expected uniform frequency, got {freq}"
        );
    }

    #[test]
    fn biased_sampler_without_scores_falls_back_to_uniform() {
        let mut rng = rng_for(1, 2);
        let sampler = BiasedSampler::new(2.0).unwrap();
        let picked = sampler.sample(&mut rng, 10, 3, None).unwrap();
        assert_eq!(picked.len(), 3);
    }

    #[test]
    fn biased_sampler_rejects_score_length_mismatch() {
        let mut rng = rng_for(1, 3);
        let sampler = BiasedSampler::new(2.0).unwrap();
        assert!(sampler.sample(&mut rng, 10, 3, Some(&[0.5; 4])).is_err());
    }

    #[test]
    fn weights_handle_out_of_range_accuracies() {
        let sampler = BiasedSampler::new(1.0).unwrap();
        let w = sampler.weights(&[-0.5, 0.5, 1.5]);
        assert!(w[0] > 0.0);
        assert!(w[2] <= (1.0 + BiasedSampler::DEFAULT_DELTA).powf(1.0) + 1e-12);
        assert!(sampler.name().contains("biased"));
    }

    #[test]
    fn clients_for_rate_bounds() {
        assert_eq!(clients_for_rate(100, 1.0).unwrap(), 100);
        assert_eq!(clients_for_rate(100, 0.01).unwrap(), 1);
        assert_eq!(clients_for_rate(100, 0.005).unwrap(), 1);
        assert_eq!(clients_for_rate(360, 0.27).unwrap(), 97);
        assert!(clients_for_rate(0, 0.5).is_err());
        assert!(clients_for_rate(10, 0.0).is_err());
        assert!(clients_for_rate(10, 1.5).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use fedmath::rng::rng_for;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_clients_for_rate_always_valid(
            population in 1usize..10_000,
            rate in 0.0001f64..1.0,
        ) {
            let c = clients_for_rate(population, rate).unwrap();
            prop_assert!(c >= 1);
            prop_assert!(c <= population);
        }

        #[test]
        fn prop_biased_sampling_returns_distinct_valid_indices(
            seed in any::<u64>(),
            bias in 0.0f64..4.0,
            population in 2usize..50,
        ) {
            let mut rng = rng_for(seed, 0);
            let sampler = BiasedSampler::new(bias).unwrap();
            let scores: Vec<f64> = (0..population).map(|i| i as f64 / population as f64).collect();
            let count = 1 + (seed as usize) % population;
            let picked = sampler.sample(&mut rng, population, count, Some(&scores)).unwrap();
            prop_assert_eq!(picked.len(), count);
            let unique: std::collections::HashSet<usize> = picked.iter().copied().collect();
            prop_assert_eq!(unique.len(), count);
            prop_assert!(picked.iter().all(|&i| i < population));
        }
    }
}
