//! Server-side optimizers (`ServerOPT` in Algorithm 2).
//!
//! All optimizers consume the *average client delta* for the round
//! (`Δ = mean_i(w'_i) - w`) and update the global parameters. FedAdam is the
//! optimizer used throughout the paper's experiments; FedAvg and FedSgd are
//! provided as ablation baselines (`bench/abl_server_optimizers`).

use crate::hyperparams::FedAdamConfig;
use crate::{Result, SimError};

/// A server optimizer: consumes one aggregated model delta per round and
/// updates the global model parameters in place.
pub trait ServerOptimizer: Send {
    /// Applies one round's aggregated delta to `params`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `delta.len() != params.len()`.
    fn apply(&mut self, params: &mut [f64], delta: &[f64]) -> Result<()>;

    /// Human-readable optimizer name.
    fn name(&self) -> &'static str;

    /// Resets any internal state (moment estimates, round counters).
    fn reset(&mut self);
}

fn check_lengths(params: &[f64], delta: &[f64]) -> Result<()> {
    if params.len() != delta.len() {
        return Err(SimError::InvalidConfig {
            message: format!(
                "delta length {} does not match parameter length {}",
                delta.len(),
                params.len()
            ),
        });
    }
    Ok(())
}

/// Plain federated averaging: the global model moves exactly to the average
/// of the client models (`w ← w + Δ`).
#[derive(Debug, Clone, Default)]
pub struct FedAvg;

impl FedAvg {
    /// Creates a FedAvg optimizer.
    pub fn new() -> Self {
        FedAvg
    }
}

impl ServerOptimizer for FedAvg {
    fn apply(&mut self, params: &mut [f64], delta: &[f64]) -> Result<()> {
        check_lengths(params, delta)?;
        for (p, d) in params.iter_mut().zip(delta.iter()) {
            *p += d;
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "fedavg"
    }

    fn reset(&mut self) {}
}

/// Server SGD with momentum on the aggregated delta (FedAvgM).
#[derive(Debug, Clone)]
pub struct FedSgd {
    learning_rate: f64,
    momentum: f64,
    velocity: Vec<f64>,
}

impl FedSgd {
    /// Creates a server SGD optimizer.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `learning_rate <= 0` or
    /// `momentum` is outside `[0, 1)`.
    pub fn new(learning_rate: f64, momentum: f64) -> Result<Self> {
        if learning_rate <= 0.0 || !learning_rate.is_finite() {
            return Err(SimError::InvalidConfig {
                message: format!("server learning rate must be positive, got {learning_rate}"),
            });
        }
        if !(0.0..1.0).contains(&momentum) {
            return Err(SimError::InvalidConfig {
                message: format!("server momentum must be in [0, 1), got {momentum}"),
            });
        }
        Ok(FedSgd {
            learning_rate,
            momentum,
            velocity: Vec::new(),
        })
    }
}

impl ServerOptimizer for FedSgd {
    fn apply(&mut self, params: &mut [f64], delta: &[f64]) -> Result<()> {
        check_lengths(params, delta)?;
        if self.velocity.len() != params.len() {
            self.velocity = vec![0.0; params.len()];
        }
        for i in 0..params.len() {
            self.velocity[i] = self.momentum * self.velocity[i] + delta[i];
            params[i] += self.learning_rate * self.velocity[i];
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "fedsgd"
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }
}

/// FedAdam (Reddi et al. 2020): Adam on the aggregated delta, with the
/// per-round multiplicative learning-rate decay used by the paper.
#[derive(Debug, Clone)]
pub struct FedAdam {
    config: FedAdamConfig,
    first_moment: Vec<f64>,
    second_moment: Vec<f64>,
    round: usize,
}

impl FedAdam {
    /// Creates a FedAdam optimizer.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration is invalid.
    pub fn new(config: FedAdamConfig) -> Result<Self> {
        config.validate()?;
        Ok(FedAdam {
            config,
            first_moment: Vec::new(),
            second_moment: Vec::new(),
            round: 0,
        })
    }

    /// The optimizer configuration.
    pub fn config(&self) -> &FedAdamConfig {
        &self.config
    }

    /// The learning rate that will be used for the next round, after decay.
    pub fn current_learning_rate(&self) -> f64 {
        self.config.learning_rate * self.config.lr_decay.powi(self.round as i32)
    }
}

impl ServerOptimizer for FedAdam {
    fn apply(&mut self, params: &mut [f64], delta: &[f64]) -> Result<()> {
        check_lengths(params, delta)?;
        if self.first_moment.len() != params.len() {
            self.first_moment = vec![0.0; params.len()];
            self.second_moment = vec![0.0; params.len()];
        }
        let lr = self.current_learning_rate();
        let b1 = self.config.beta1;
        let b2 = self.config.beta2;
        let eps = self.config.epsilon;
        for i in 0..params.len() {
            self.first_moment[i] = b1 * self.first_moment[i] + (1.0 - b1) * delta[i];
            self.second_moment[i] = b2 * self.second_moment[i] + (1.0 - b2) * delta[i] * delta[i];
            params[i] += lr * self.first_moment[i] / (self.second_moment[i].sqrt() + eps);
        }
        self.round += 1;
        Ok(())
    }

    fn name(&self) -> &'static str {
        "fedadam"
    }

    fn reset(&mut self) {
        self.first_moment.clear();
        self.second_moment.clear();
        self.round = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fedavg_moves_to_average() {
        let mut opt = FedAvg::new();
        let mut params = vec![1.0, 2.0];
        opt.apply(&mut params, &[0.5, -1.0]).unwrap();
        assert_eq!(params, vec![1.5, 1.0]);
        assert_eq!(opt.name(), "fedavg");
        opt.reset();
        assert!(opt.apply(&mut params, &[0.0]).is_err());
    }

    #[test]
    fn fedsgd_validation_and_momentum() {
        assert!(FedSgd::new(0.0, 0.0).is_err());
        assert!(FedSgd::new(1.0, 1.0).is_err());
        let mut opt = FedSgd::new(1.0, 0.5).unwrap();
        let mut params = vec![0.0];
        opt.apply(&mut params, &[1.0]).unwrap();
        assert_eq!(params, vec![1.0]);
        // Velocity carries over: v = 0.5*1 + 1 = 1.5.
        opt.apply(&mut params, &[1.0]).unwrap();
        assert!((params[0] - 2.5).abs() < 1e-12);
        opt.reset();
        opt.apply(&mut params, &[1.0]).unwrap();
        assert!((params[0] - 3.5).abs() < 1e-12);
        assert_eq!(opt.name(), "fedsgd");
    }

    #[test]
    fn fedadam_steps_towards_delta_direction() {
        let mut opt = FedAdam::new(FedAdamConfig {
            learning_rate: 0.1,
            beta1: 0.0,
            beta2: 0.0,
            lr_decay: 1.0,
            epsilon: 1e-8,
        })
        .unwrap();
        let mut params = vec![0.0, 0.0];
        opt.apply(&mut params, &[1.0, -2.0]).unwrap();
        // With beta1 = beta2 = 0 the update is lr * sign(delta) (roughly).
        assert!((params[0] - 0.1).abs() < 1e-6);
        assert!((params[1] + 0.1).abs() < 1e-6);
        assert_eq!(opt.name(), "fedadam");
    }

    #[test]
    fn fedadam_learning_rate_decays() {
        let mut opt = FedAdam::new(FedAdamConfig {
            learning_rate: 1.0,
            lr_decay: 0.5,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(opt.current_learning_rate(), 1.0);
        let mut params = vec![0.0];
        opt.apply(&mut params, &[1.0]).unwrap();
        assert_eq!(opt.current_learning_rate(), 0.5);
        opt.apply(&mut params, &[1.0]).unwrap();
        assert_eq!(opt.current_learning_rate(), 0.25);
        opt.reset();
        assert_eq!(opt.current_learning_rate(), 1.0);
    }

    #[test]
    fn fedadam_rejects_invalid_config() {
        assert!(FedAdam::new(FedAdamConfig {
            beta1: 2.0,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn fedadam_handles_length_mismatch() {
        let mut opt = FedAdam::new(FedAdamConfig::default()).unwrap();
        let mut params = vec![0.0, 0.0];
        assert!(opt.apply(&mut params, &[1.0]).is_err());
    }

    #[test]
    fn fedadam_larger_lr_moves_further() {
        let delta = vec![0.3, -0.7, 0.1];
        let run = |lr: f64| {
            let mut opt = FedAdam::new(FedAdamConfig {
                learning_rate: lr,
                ..Default::default()
            })
            .unwrap();
            let mut params = vec![0.0; 3];
            for _ in 0..5 {
                opt.apply(&mut params, &delta).unwrap();
            }
            params.iter().map(|p| p.abs()).sum::<f64>()
        };
        assert!(run(0.1) > run(0.001));
    }
}
