//! The hyperparameters tuned in the paper's experiments (Appendix B).

use crate::{Result, SimError};
use fedmodels::LocalSgdConfig;
use serde::{Deserialize, Serialize};

/// Server-side FedAdam hyperparameters (Reddi et al. 2020).
///
/// The paper tunes the server learning rate and the two moment-decay rates,
/// and fixes the learning-rate decay to `γ = 0.9999` per round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FedAdamConfig {
    /// Server learning rate (`10^x`, `x ∈ [-6, -1]` in the paper's space).
    pub learning_rate: f64,
    /// First-moment decay rate β₁ (`[0, 0.9]` in the paper's space).
    pub beta1: f64,
    /// Second-moment decay rate β₂ (`[0, 0.999]` in the paper's space).
    pub beta2: f64,
    /// Multiplicative learning-rate decay per round (fixed to 0.9999).
    pub lr_decay: f64,
    /// Adaptivity constant τ added to the denominator for numerical stability.
    pub epsilon: f64,
}

impl Default for FedAdamConfig {
    fn default() -> Self {
        FedAdamConfig {
            learning_rate: 1e-2,
            beta1: 0.9,
            beta2: 0.99,
            lr_decay: 0.9999,
            epsilon: 1e-5,
        }
    }
}

impl FedAdamConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if any value is outside its valid
    /// range.
    pub fn validate(&self) -> Result<()> {
        if self.learning_rate <= 0.0 || !self.learning_rate.is_finite() {
            return Err(SimError::InvalidConfig {
                message: format!(
                    "server learning rate must be positive, got {}",
                    self.learning_rate
                ),
            });
        }
        if !(0.0..1.0).contains(&self.beta1) {
            return Err(SimError::InvalidConfig {
                message: format!("beta1 must be in [0, 1), got {}", self.beta1),
            });
        }
        if !(0.0..1.0).contains(&self.beta2) {
            return Err(SimError::InvalidConfig {
                message: format!("beta2 must be in [0, 1), got {}", self.beta2),
            });
        }
        if !(0.0..=1.0).contains(&self.lr_decay) || self.lr_decay == 0.0 {
            return Err(SimError::InvalidConfig {
                message: format!("lr decay must be in (0, 1], got {}", self.lr_decay),
            });
        }
        if self.epsilon <= 0.0 {
            return Err(SimError::InvalidConfig {
                message: format!("epsilon must be positive, got {}", self.epsilon),
            });
        }
        Ok(())
    }
}

/// The full hyperparameter configuration evaluated by the HP-tuning methods:
/// three server FedAdam HPs and the client SGD HPs (Appendix B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct FederatedHyperparams {
    /// Server optimizer hyperparameters.
    pub server: FedAdamConfig,
    /// Client optimizer hyperparameters.
    pub client: LocalSgdConfig,
}

impl FederatedHyperparams {
    /// Validates both the server and client configurations.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] (or a wrapped model error) if any
    /// value is out of range.
    pub fn validate(&self) -> Result<()> {
        self.server.validate()?;
        self.client.validate().map_err(SimError::from)
    }

    /// A compact single-line description, useful in logs and reports.
    pub fn describe(&self) -> String {
        format!(
            "server(lr={:.2e}, b1={:.3}, b2={:.4}) client(lr={:.2e}, mom={:.3}, bs={})",
            self.server.learning_rate,
            self.server.beta1,
            self.server.beta2,
            self.client.learning_rate,
            self.client.momentum,
            self.client.batch_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configs_are_valid() {
        assert!(FedAdamConfig::default().validate().is_ok());
        assert!(FederatedHyperparams::default().validate().is_ok());
    }

    #[test]
    fn fedadam_validation() {
        let bad = FedAdamConfig {
            learning_rate: 0.0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = FedAdamConfig {
            beta1: 1.0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = FedAdamConfig {
            beta2: -0.1,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = FedAdamConfig {
            lr_decay: 0.0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = FedAdamConfig {
            lr_decay: 1.5,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = FedAdamConfig {
            epsilon: 0.0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn combined_validation_covers_client() {
        let mut hp = FederatedHyperparams::default();
        hp.client.batch_size = 0;
        assert!(hp.validate().is_err());
    }

    #[test]
    fn describe_mentions_key_values() {
        let hp = FederatedHyperparams::default();
        let s = hp.describe();
        assert!(s.contains("server"));
        assert!(s.contains("client"));
        assert!(s.contains("bs=32"));
    }
}
