//! Ledger accounting on the global [`fedtrace`] registry.
//!
//! Every counter here is write-only from the store's point of view — no
//! persistence or recovery decision ever reads one back, so tracing cannot
//! change what lands on disk (the accounting-never-semantics contract). The
//! sync-latency histogram is **wall-domain**: it measures real `sync_data`
//! time and is for performance work only.

use std::sync::OnceLock;

pub(crate) struct StoreMetrics {
    /// Records appended to segment writers (`store.records_appended`).
    pub records_appended: fedtrace::Counter,
    /// Bytes written to segment files, headers included
    /// (`store.bytes_written`).
    pub bytes_written: fedtrace::Counter,
    /// Batch boundaries marked via group commit (`store.group_commits`).
    pub group_commits: fedtrace::Counter,
    /// Unconditional flush+sync calls that hit an open segment
    /// (`store.syncs`).
    pub syncs: fedtrace::Counter,
    /// Wall-clock microseconds per flush+sync (`store.sync_micros`).
    pub sync_micros: fedtrace::Histogram,
    /// Bytes discarded by crash recovery (`store.recovery_truncated_bytes`).
    pub recovery_truncated_bytes: fedtrace::Counter,
    /// Segment files deleted by crash recovery
    /// (`store.recovery_dropped_segments`).
    pub recovery_dropped_segments: fedtrace::Counter,
    /// Completed compaction snapshot swaps (`store.compaction_swaps`).
    pub compaction_swaps: fedtrace::Counter,
    /// Records streamed by the read-only replay scan
    /// (`store.records_replayed`).
    pub records_replayed: fedtrace::Counter,
}

pub(crate) fn metrics() -> &'static StoreMetrics {
    static METRICS: OnceLock<StoreMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = fedtrace::global().registry();
        StoreMetrics {
            records_appended: registry.counter("store.records_appended"),
            bytes_written: registry.counter("store.bytes_written"),
            group_commits: registry.counter("store.group_commits"),
            syncs: registry.counter("store.syncs"),
            sync_micros: registry.histogram("store.sync_micros"),
            recovery_truncated_bytes: registry.counter("store.recovery_truncated_bytes"),
            recovery_dropped_segments: registry.counter("store.recovery_dropped_segments"),
            compaction_swaps: registry.counter("store.compaction_swaps"),
            records_replayed: registry.counter("store.records_replayed"),
        }
    })
}
