//! A persistent, content-addressed **trial ledger** plus the tabular
//! surrogate objectives built on top of it.
//!
//! Every live federated tuning campaign pays full simulation cost for every
//! `(configuration, resource, replicate)` evaluation, so large
//! method-comparison sweeps are bounded by training cost rather than tuner
//! cost. This crate removes that bound with a *record → replay → resume*
//! lifecycle:
//!
//! - [`key`] — [`ConfigKey`]/[`TrialKey`]: bit-level canonical identities for
//!   evaluated points, built on `fedhpo::SearchSpace::canonical_bits`
//!   (`-0.0` normalisation, non-finite rejection, discrete snapping).
//! - [`record`] — [`TrialRecord`]: one evaluation (noisy observation *and*
//!   ground-truth error) with [`Provenance`] (benchmark, scale, seed, noise
//!   source), serialized as one JSON line with a non-finite score guard.
//! - [`store`] — [`TrialStore`]: an in-memory index over an append-only
//!   JSON-lines file backend. Opening an existing ledger re-indexes it;
//!   inserts are durable immediately.
//! - [`recorder`] — [`RecordingObjective`]: wraps any
//!   [`fedtune_core::BatchObjective`] (in practice the live
//!   `BatchFederatedObjective`), captures every evaluation into the store,
//!   and serves already-recorded requests *from* the store — which is
//!   exactly resume: re-driving an interrupted campaign skips its recorded
//!   prefix and continues bit-identically.
//! - [`tabular`] — [`TabularObjective`]: the scheduler-facing surrogate.
//!   Campaigns replay against the table with exact-hit semantics and
//!   deterministic noise resampling from recorded replicates — orders of
//!   magnitude faster than live simulation.
//! - [`replay`] — drop-in record/replay counterparts of
//!   `fedtune_core::experiments::methods::run_method_comparison_scheduled`.
//!
//! # Example
//!
//! ```
//! use feddata::Benchmark;
//! use fedstore::{record_method_comparison, replay_method_comparison, TrialStore};
//! use fedtune_core::experiments::methods::{paper_noise_settings, TuningMethod};
//! use fedtune_core::{ExecutionPolicy, ExperimentScale};
//!
//! let scale = ExperimentScale::smoke();
//! let methods = [TuningMethod::RandomSearch];
//! let settings = paper_noise_settings();
//! let mut store = TrialStore::in_memory();
//! // Record once (live federated training) ...
//! let live = record_method_comparison(
//!     ExecutionPolicy::Sequential,
//!     Benchmark::Cifar10Like,
//!     &scale,
//!     &methods,
//!     &settings,
//!     0,
//!     &mut store,
//! )
//! .unwrap();
//! // ... then sweep methods against the table, bit-identically.
//! let replayed =
//!     replay_method_comparison(&store, Benchmark::Cifar10Like, &scale, &methods, &settings, 0)
//!         .unwrap();
//! assert_eq!(live, replayed);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod compaction;
pub mod framing;
pub mod key;
pub mod lock;
mod metrics;
pub mod record;
pub mod recorder;
pub mod replay;
pub mod segment;
pub mod store;
pub mod tabular;

pub use compaction::CompactionReport;
pub use key::{ConfigKey, TrialKey};
pub use lock::LedgerLock;
pub use record::{Provenance, TrialRecord};
pub use recorder::RecordingObjective;
pub use replay::{campaign_provenance, record_method_comparison, replay_method_comparison};
pub use segment::{Durability, ScanReport, SegmentConfig, SegmentWriter};
pub use store::TrialStore;
pub use tabular::TabularObjective;

use std::fmt;

/// Errors produced by the trial-ledger subsystem.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StoreError {
    /// A filesystem operation on the ledger backend failed.
    Io {
        /// The ledger path.
        path: String,
        /// The underlying failure.
        message: String,
    },
    /// A ledger line could not be parsed back into a record.
    Parse {
        /// 1-based line number within the ledger.
        line: usize,
        /// The underlying failure.
        message: String,
    },
    /// An insert collided with an existing record under the same key but a
    /// different payload.
    Conflict {
        /// Description of the colliding key.
        message: String,
    },
    /// A replay lookup found nothing usable for a request.
    Miss {
        /// Description of the missing point.
        message: String,
    },
    /// A record failed validation (non-finite configuration values, …).
    InvalidRecord {
        /// Description of the violation.
        message: String,
    },
    /// A binary segment failed verification: CRC mismatch, torn frame, bad
    /// header, or an unhonourable compaction manifest.
    Corrupt {
        /// The damaged file.
        path: String,
        /// What failed to verify.
        message: String,
    },
    /// An underlying search-space operation failed.
    Hpo(fedhpo::HpoError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, message } => write!(f, "ledger io error ({path}): {message}"),
            StoreError::Parse { line, message } => {
                write!(f, "ledger parse error at line {line}: {message}")
            }
            StoreError::Conflict { message } => write!(f, "ledger conflict: {message}"),
            StoreError::Miss { message } => write!(f, "table miss: {message}"),
            StoreError::InvalidRecord { message } => write!(f, "invalid record: {message}"),
            StoreError::Corrupt { path, message } => {
                write!(f, "ledger corruption ({path}): {message}")
            }
            StoreError::Hpo(e) => write!(f, "hpo error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Hpo(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fedhpo::HpoError> for StoreError {
    fn from(e: fedhpo::HpoError) -> Self {
        StoreError::Hpo(e)
    }
}

impl From<StoreError> for fedtune_core::CoreError {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Hpo(inner) => fedtune_core::CoreError::Hpo(inner),
            other => fedtune_core::CoreError::Hpo(fedhpo::HpoError::Objective {
                message: other.to_string(),
            }),
        }
    }
}

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn error_display_and_conversions() {
        let e = StoreError::Miss {
            message: "no record".into(),
        };
        assert!(e.to_string().contains("no record"));
        assert!(e.source().is_none());
        let e: StoreError = fedhpo::HpoError::InvalidConfig {
            message: "bad".into(),
        }
        .into();
        assert!(e.source().is_some());
        let core: fedtune_core::CoreError = e.into();
        assert!(core.to_string().contains("bad"));
        let core: fedtune_core::CoreError = StoreError::Conflict {
            message: "key".into(),
        }
        .into();
        assert!(core.to_string().contains("conflict"));
        for e in [
            StoreError::Io {
                path: "p".into(),
                message: "m".into(),
            },
            StoreError::Parse {
                line: 3,
                message: "m".into(),
            },
            StoreError::InvalidRecord {
                message: "m".into(),
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
