//! The binary segment ledger: fixed-size segment files of CRC32C-framed
//! records with batched group commit — the default file backend for
//! high-ingest campaigns, with JSONL kept as the interchange format.
//!
//! # Layout
//!
//! A segment ledger is a directory of files `seg-00000000.fsb`,
//! `seg-00000001.fsb`, … Each segment starts with an 8-byte header (magic
//! `FSEG` + little-endian format version) followed by frames (see
//! [`crate::framing`]). Two payload kinds exist, distinguished by their
//! first byte:
//!
//! ```text
//! provenance definition (tag 1):
//!   [1][id: u32][benchmark: str][scale: str][seed: u64][noise: str]
//! trial record (tag 2):
//!   [2][provenance id: u32][arity: u32][arity x config bits: u64]
//!   [resource: u64][rep: u64][noisy bits: u64][true bits: u64][sim bits: u64]
//! ```
//!
//! where `str` is a `u32` byte length followed by UTF-8 bytes and all
//! integers are little-endian. Floats are stored as raw IEEE-754 bits, so
//! NaN/inf scores need no guard encoding and every round trip is bit-exact
//! by construction. Provenances repeat across millions of records, so each
//! segment interns them: the first record under a provenance emits one
//! definition frame, later records reference its id. Segments are
//! **self-contained** — the dictionary resets at every segment boundary, so
//! any segment can be read (or compacted away) alone.
//!
//! # Durability and recovery
//!
//! Appends go through a buffered writer; [`Durability`] says when the ledger
//! calls `sync_data`: per insert (every record durable before the insert
//! returns — the JSONL backend's historical contract), every N records, or
//! only on explicit flush (group commit: one sync amortized over a batch).
//! Whatever the mode, a crash leaves at most a torn tail: [`recover_with`]
//! streams every segment, verifies every frame, truncates the first corrupt
//! frame (torn tail or bit flip alike) back to the last valid one, and drops
//! the unreachable remainder of the ledger — the binary twin of the JSONL
//! backend's torn-line recovery.

use crate::framing::{append_frame, FrameReadError, FrameReader};
use crate::key::ConfigKey;
use crate::record::{Provenance, TrialRecord};
use crate::{Result, StoreError};
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 4] = b"FSEG";

/// Format version written into every segment header.
pub const SEGMENT_VERSION: u32 = 1;

/// Bytes of the segment header (magic + version).
pub const SEGMENT_HEADER_BYTES: u64 = 8;

/// Most configuration dimensions a stored record may carry — a decode guard
/// that turns corrupted arities into detected errors instead of huge
/// allocations.
pub const MAX_ARITY: usize = 4096;

const TAG_PROVENANCE: u8 = 1;
const TAG_RECORD: u8 = 2;

pub(crate) const SEG_PREFIX: &str = "seg-";
pub(crate) const SEG_SUFFIX: &str = ".fsb";

/// When the ledger syncs appended records to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// `sync_data` before every insert returns: a completed insert survives
    /// crash and power loss. Slowest; the historical JSONL contract.
    PerInsert,
    /// `sync_data` once every N records (and at every explicit flush): a
    /// crash loses at most the last N-1 records.
    EveryN(u64),
    /// `sync_data` only on explicit flush/close: a crash loses at most the
    /// records since the last flush. Fastest — the group-commit mode bulk
    /// recording runs in.
    OnFlush,
}

impl Durability {
    /// Whether the policy wants a sync now, given records appended since the
    /// last sync. Called once per insert *batch*, so `insert_many` amortizes
    /// one sync over the whole batch even under [`Durability::PerInsert`].
    pub fn wants_sync(&self, unsynced: u64) -> bool {
        match self {
            Durability::PerInsert => unsynced > 0,
            Durability::EveryN(n) => unsynced >= *n,
            Durability::OnFlush => false,
        }
    }
}

/// Tuning of a segment ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentConfig {
    /// Target segment size in bytes; the writer seals a segment and rolls to
    /// the next one once it reaches this size (so actual files exceed it by
    /// at most one frame).
    pub segment_bytes: u64,
    /// Sync policy for appends.
    pub durability: Durability,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig {
            segment_bytes: 8 << 20,
            durability: Durability::PerInsert,
        }
    }
}

impl SegmentConfig {
    /// The default config with group commit: sync only on explicit flush.
    pub fn group_commit() -> Self {
        SegmentConfig {
            durability: Durability::OnFlush,
            ..SegmentConfig::default()
        }
    }
}

pub(crate) fn io_error(path: &Path) -> impl Fn(std::io::Error) -> StoreError + '_ {
    move |e| StoreError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

fn corrupt_error(path: &Path, message: impl Into<String>) -> StoreError {
    StoreError::Corrupt {
        path: path.display().to_string(),
        message: message.into(),
    }
}

/// The file path of segment `index` under `dir`.
pub fn segment_path(dir: &Path, index: u64) -> PathBuf {
    prefixed_path(dir, SEG_PREFIX, index)
}

/// Parses `<prefix><index:08><.fsb>` file names back into their index.
fn parse_indexed_name(name: &str, prefix: &str) -> Option<u64> {
    let digits = name.strip_prefix(prefix)?.strip_suffix(SEG_SUFFIX)?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

#[cfg(test)]
fn parse_segment_name(name: &str) -> Option<u64> {
    parse_indexed_name(name, SEG_PREFIX)
}

/// The file path of a `prefix`-class segment `index` under `dir`.
pub(crate) fn prefixed_path(dir: &Path, prefix: &str, index: u64) -> PathBuf {
    dir.join(format!("{prefix}{index:08}{SEG_SUFFIX}"))
}

/// All `prefix`-class segment files under `dir`, sorted by index. A missing
/// directory is an empty ledger.
pub(crate) fn list_prefixed(dir: &Path, prefix: &str) -> Result<Vec<(u64, PathBuf)>> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_error(dir)(e)),
    };
    let mut segments = Vec::new();
    for entry in entries {
        let entry = entry.map_err(io_error(dir))?;
        if let Some(index) = entry
            .file_name()
            .to_str()
            .and_then(|name| parse_indexed_name(name, prefix))
        {
            segments.push((index, entry.path()));
        }
    }
    segments.sort_unstable();
    Ok(segments)
}

/// All live segment files under `dir` as `(index, path)` pairs, sorted by
/// index. A missing directory is an empty ledger. Corruption-injection
/// tests and operational tooling use this to find segment files without
/// hard-coding the naming scheme.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    list_prefixed(dir, SEG_PREFIX)
}

/// Opens `dir` itself and syncs it, making renames/removals inside durable.
pub(crate) fn sync_dir(dir: &Path) -> Result<()> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(io_error(dir))
}

// ---------------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------------

/// LEB128: seven payload bits per byte, high bit = continuation. Small
/// integers — provenance ids, arities, resources, reps, string lengths —
/// dominate a record, so this trims a frame from 73 to ~54 bytes; raw f64
/// bits stay fixed-width (their entropy doesn't compress).
fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn encode_provenance(buf: &mut Vec<u8>, id: u32, p: &Provenance) {
    buf.clear();
    buf.push(TAG_PROVENANCE);
    put_varint(buf, u64::from(id));
    put_str(buf, &p.benchmark);
    put_str(buf, &p.scale);
    put_varint(buf, p.seed);
    put_str(buf, &p.noise);
}

/// Raw storage bits of a score: NaN collapses to the canonical pattern, the
/// same normalisation [`TrialRecord::with_canonical_scores`] applies, so a
/// record round-trips identically whether it entered through the store or a
/// bare [`SegmentWriter`].
fn score_bits(score: f64) -> u64 {
    if score.is_nan() {
        f64::NAN.to_bits()
    } else {
        score.to_bits()
    }
}

fn encode_record(buf: &mut Vec<u8>, provenance_id: u32, r: &TrialRecord) {
    buf.clear();
    buf.push(TAG_RECORD);
    put_varint(buf, u64::from(provenance_id));
    let bits = r.config.bits();
    put_varint(buf, bits.len() as u64);
    for &b in bits {
        buf.extend_from_slice(&b.to_le_bytes());
    }
    put_varint(buf, r.resource as u64);
    put_varint(buf, r.rep);
    buf.extend_from_slice(&score_bits(r.noisy_score).to_le_bytes());
    buf.extend_from_slice(&score_bits(r.true_error).to_le_bytes());
    buf.extend_from_slice(&r.sim_time.to_bits().to_le_bytes());
}

/// A bounds-checked little-endian reader over one frame payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> std::result::Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| format!("payload truncated at byte {}", self.pos))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn take_u8(&mut self) -> std::result::Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn take_u64(&mut self) -> std::result::Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn take_varint(&mut self) -> std::result::Result<u64, String> {
        let mut value = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.take_u8()?;
            let low = u64::from(byte & 0x7f);
            if shift == 63 && low > 1 {
                return Err("varint overflows u64".to_string());
            }
            value |= low << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err("varint longer than 10 bytes".to_string())
    }

    fn take_str(&mut self) -> std::result::Result<&'a str, String> {
        let len = usize::try_from(self.take_varint()?)
            .map_err(|_| "string length exceeds usize".to_string())?;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| "invalid UTF-8 in string".to_string())
    }

    fn finish(self) -> std::result::Result<(), String> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing payload bytes",
                self.bytes.len() - self.pos
            ))
        }
    }
}

/// What one decoded frame contained.
enum Payload {
    Provenance(Provenance),
    Record(TrialRecord),
}

/// Decodes a frame payload against the segment's provenance dictionary.
fn decode_payload(bytes: &[u8], dict: &[Provenance]) -> std::result::Result<Payload, String> {
    let mut cur = Cursor { bytes, pos: 0 };
    match cur.take_u8()? {
        TAG_PROVENANCE => {
            let id = u32::try_from(cur.take_varint()?)
                .map_err(|_| "provenance id exceeds u32".to_string())?;
            let benchmark = cur.take_str()?.to_string();
            let scale = cur.take_str()?.to_string();
            let seed = cur.take_varint()?;
            let noise = cur.take_str()?.to_string();
            cur.finish()?;
            if id as usize != dict.len() {
                return Err(format!(
                    "provenance id {id} out of order (expected {})",
                    dict.len()
                ));
            }
            Ok(Payload::Provenance(Provenance {
                benchmark,
                scale,
                seed,
                noise,
            }))
        }
        TAG_RECORD => {
            let provenance_id = cur.take_varint()?;
            let provenance = dict
                .get(usize::try_from(provenance_id).unwrap_or(usize::MAX))
                .ok_or_else(|| format!("record references unknown provenance {provenance_id}"))?
                .clone();
            let arity = usize::try_from(cur.take_varint()?).unwrap_or(usize::MAX);
            if arity > MAX_ARITY {
                return Err(format!("arity {arity} exceeds the {MAX_ARITY} cap"));
            }
            let mut values = Vec::with_capacity(arity);
            for _ in 0..arity {
                values.push(f64::from_bits(cur.take_u64()?));
            }
            let config = ConfigKey::from_canonical_values(&values)
                .map_err(|e| format!("invalid configuration: {e}"))?;
            let resource = usize::try_from(cur.take_varint()?)
                .map_err(|_| "resource exceeds usize".to_string())?;
            let rep = cur.take_varint()?;
            let noisy_score = f64::from_bits(cur.take_u64()?);
            let true_error = f64::from_bits(cur.take_u64()?);
            let sim_time = f64::from_bits(cur.take_u64()?);
            cur.finish()?;
            let record = TrialRecord {
                config,
                resource,
                rep,
                noisy_score,
                true_error,
                sim_time,
                provenance,
            };
            record
                .validate_sim_time()
                .map_err(|e| format!("invalid record: {e}"))?;
            Ok(Payload::Record(record))
        }
        tag => Err(format!("unknown payload tag {tag}")),
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Appends CRC-framed records to a segment ledger with buffered writes and
/// configurable group commit. The writer never reads the ledger back: it is
/// the bounded-memory ingest path (one frame buffer, one provenance
/// dictionary for the open segment), usable directly for bulk recording or
/// through [`crate::TrialStore`] for indexed access.
#[derive(Debug)]
pub struct SegmentWriter {
    dir: PathBuf,
    config: SegmentConfig,
    file: Option<BufWriter<File>>,
    /// File-name prefix — `seg-` for the live ledger, `cmp-` while a
    /// compaction snapshot is staged.
    prefix: &'static str,
    /// Index of the currently open (or next-to-open) segment.
    index: u64,
    /// Bytes written into the current segment, header included.
    segment_bytes: u64,
    unsynced: u64,
    dict: HashMap<Provenance, u32>,
    payload_buf: Vec<u8>,
    frame_buf: Vec<u8>,
    records: u64,
    bytes_appended: u64,
}

impl SegmentWriter {
    /// Opens a writer on `dir` (created if missing): the existing ledger is
    /// first [recovered](recover) — torn tails truncated — and appends then
    /// go to a **fresh segment** after the last existing one, so no partial
    /// segment is ever appended into.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failures.
    pub fn open(dir: impl AsRef<Path>, config: SegmentConfig) -> Result<Self> {
        recover(dir.as_ref())?;
        Self::open_assume_recovered(dir, config)
    }

    /// Opens a writer without re-running recovery — for callers (the store,
    /// compaction) that just finished a full recovering scan of `dir`.
    pub(crate) fn open_assume_recovered(
        dir: impl AsRef<Path>,
        config: SegmentConfig,
    ) -> Result<Self> {
        let dir = dir.as_ref();
        let index = list_segments(dir)?.last().map_or(0, |&(last, _)| last + 1);
        Self::new_raw(dir, config, SEG_PREFIX, index)
    }

    /// The fully parameterized constructor: compaction stages its snapshot
    /// through this with the `cmp-` prefix and a fresh index range.
    pub(crate) fn new_raw(
        dir: impl AsRef<Path>,
        config: SegmentConfig,
        prefix: &'static str,
        start_index: u64,
    ) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(io_error(&dir))?;
        Ok(SegmentWriter {
            dir,
            config,
            file: None,
            prefix,
            index: start_index,
            segment_bytes: 0,
            unsynced: 0,
            dict: HashMap::new(),
            payload_buf: Vec::new(),
            frame_buf: Vec::new(),
            records: 0,
            bytes_appended: 0,
        })
    }

    /// The ledger directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The active configuration.
    pub fn config(&self) -> &SegmentConfig {
        &self.config
    }

    /// Changes the durability policy for subsequent batch boundaries.
    pub fn set_durability(&mut self, durability: Durability) {
        self.config.durability = durability;
    }

    /// Records appended through this writer.
    pub fn records_appended(&self) -> u64 {
        self.records
    }

    /// Bytes appended through this writer (frames + segment headers).
    pub fn bytes_appended(&self) -> u64 {
        self.bytes_appended
    }

    /// Records appended since the last sync.
    pub fn unsynced(&self) -> u64 {
        self.unsynced
    }

    /// Appends one record and applies the durability policy — the
    /// single-record entry point.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidRecord`] for an unstorable record and
    /// [`StoreError::Io`] on write failures.
    pub fn append(&mut self, record: &TrialRecord) -> Result<()> {
        self.append_unsynced(record)?;
        self.group_commit()
    }

    /// Appends one record **without** consulting the durability policy; the
    /// caller marks the batch boundary with [`SegmentWriter::group_commit`].
    /// This is how `insert_many` amortizes one sync over a whole batch.
    ///
    /// # Errors
    ///
    /// See [`SegmentWriter::append`].
    pub fn append_unsynced(&mut self, record: &TrialRecord) -> Result<()> {
        record.validate_sim_time()?;
        if record.config.bits().len() > MAX_ARITY {
            return Err(StoreError::InvalidRecord {
                message: format!(
                    "configuration arity {} exceeds the {MAX_ARITY} cap",
                    record.config.bits().len()
                ),
            });
        }
        if self.file.is_some() && self.segment_bytes >= self.config.segment_bytes {
            self.seal_segment()?;
        }
        self.ensure_segment()?;
        let provenance_id = match self.dict.get(&record.provenance) {
            Some(&id) => id,
            None => {
                let id = self.dict.len() as u32;
                encode_provenance(&mut self.payload_buf, id, &record.provenance);
                self.frame_buf.clear();
                append_frame(&mut self.frame_buf, &self.payload_buf);
                self.write_frame_buf()?;
                self.dict.insert(record.provenance.clone(), id);
                id
            }
        };
        encode_record(&mut self.payload_buf, provenance_id, record);
        self.frame_buf.clear();
        append_frame(&mut self.frame_buf, &self.payload_buf);
        self.write_frame_buf()?;
        self.records += 1;
        self.unsynced += 1;
        crate::metrics::metrics().records_appended.incr();
        Ok(())
    }

    /// Marks a batch boundary: syncs now if the durability policy asks for
    /// it given the records appended since the last sync.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on flush/sync failures.
    pub fn group_commit(&mut self) -> Result<()> {
        crate::metrics::metrics().group_commits.incr();
        if self.config.durability.wants_sync(self.unsynced) {
            self.flush()?;
        }
        Ok(())
    }

    /// Flushes buffered frames and syncs the open segment to disk
    /// unconditionally. After `flush` returns, every appended record
    /// survives a crash.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on flush/sync failures.
    pub fn flush(&mut self) -> Result<()> {
        if let Some(file) = &mut self.file {
            // Wall-domain latency accounting only — the result of the sync
            // is never conditioned on the measured time.
            let started = std::time::Instant::now();
            let io = io_error(&self.dir);
            file.flush().map_err(&io)?;
            file.get_ref().sync_data().map_err(&io)?;
            let m = crate::metrics::metrics();
            m.syncs.incr();
            m.sync_micros.observe(started.elapsed().as_micros() as u64);
        }
        self.unsynced = 0;
        Ok(())
    }

    fn write_frame_buf(&mut self) -> Result<()> {
        let file = self.file.as_mut().expect("segment opened by caller");
        file.write_all(&self.frame_buf)
            .map_err(io_error(&self.dir))?;
        self.segment_bytes += self.frame_buf.len() as u64;
        self.bytes_appended += self.frame_buf.len() as u64;
        crate::metrics::metrics()
            .bytes_written
            .add(self.frame_buf.len() as u64);
        Ok(())
    }

    /// Opens the current segment file lazily (so a writer that never appends
    /// leaves no empty segments behind).
    fn ensure_segment(&mut self) -> Result<()> {
        if self.file.is_some() {
            return Ok(());
        }
        let path = prefixed_path(&self.dir, self.prefix, self.index);
        let file = std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(io_error(&path))?;
        let mut file = BufWriter::new(file);
        file.write_all(SEGMENT_MAGIC).map_err(io_error(&path))?;
        file.write_all(&SEGMENT_VERSION.to_le_bytes())
            .map_err(io_error(&path))?;
        self.file = Some(file);
        self.segment_bytes = SEGMENT_HEADER_BYTES;
        self.bytes_appended += SEGMENT_HEADER_BYTES;
        Ok(())
    }

    /// Seals the open segment (flush + sync) and advances to the next index.
    /// The provenance dictionary resets so every segment is self-contained.
    fn seal_segment(&mut self) -> Result<()> {
        self.flush()?;
        self.file = None;
        self.segment_bytes = 0;
        self.dict.clear();
        self.index += 1;
        Ok(())
    }
}

impl Drop for SegmentWriter {
    fn drop(&mut self) {
        // Best-effort: push buffered frames to the OS (crash durability still
        // follows the configured policy; this covers orderly drops).
        let _ = self.flush();
    }
}

// ---------------------------------------------------------------------------
// Scanning, reading, recovery
// ---------------------------------------------------------------------------

/// Outcome of one pass over a segment ledger.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanReport {
    /// Valid records streamed.
    pub records: u64,
    /// Segment files visited (survivors, after any repair).
    pub segments: u64,
    /// Bytes of valid data (headers + frames) across the ledger.
    pub bytes: u64,
    /// Bytes discarded by repair (torn tails, bodies past a corruption).
    pub truncated_bytes: u64,
    /// Whole segment files deleted by repair (unreachable after a
    /// corruption, or headerless).
    pub dropped_segments: u64,
}

impl ScanReport {
    /// Whether repair changed the ledger.
    pub fn repaired(&self) -> bool {
        self.truncated_bytes > 0 || self.dropped_segments > 0
    }
}

/// Where a scan stopped inside one segment.
enum SegmentScan {
    Clean { bytes: u64 },
    Corrupt { valid_up_to: u64, reason: String },
}

/// Streams one segment through `on_record`. Never holds more than one frame
/// in memory.
fn scan_segment(
    path: &Path,
    on_record: &mut dyn FnMut(TrialRecord) -> Result<()>,
) -> Result<SegmentScan> {
    let file = File::open(path).map_err(io_error(path))?;
    let file_len = file.metadata().map_err(io_error(path))?.len();
    let mut reader = BufReader::with_capacity(1 << 20, file);
    let mut header = [0u8; SEGMENT_HEADER_BYTES as usize];
    match std::io::Read::read_exact(&mut reader, &mut header) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            return Ok(SegmentScan::Corrupt {
                valid_up_to: 0,
                reason: format!("segment header torn ({file_len} bytes)"),
            });
        }
        Err(e) => return Err(io_error(path)(e)),
    }
    if &header[..4] != SEGMENT_MAGIC {
        return Ok(SegmentScan::Corrupt {
            valid_up_to: 0,
            reason: "bad segment magic".into(),
        });
    }
    let version = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if version != SEGMENT_VERSION {
        return Ok(SegmentScan::Corrupt {
            valid_up_to: 0,
            reason: format!("unsupported segment version {version}"),
        });
    }
    let mut frames = FrameReader::new(reader, SEGMENT_HEADER_BYTES);
    let mut dict: Vec<Provenance> = Vec::new();
    loop {
        let frame_start = frames.valid_up_to();
        match frames.next_frame() {
            Ok(None) => return Ok(SegmentScan::Clean { bytes: frame_start }),
            Ok(Some(payload)) => match decode_payload(payload, &dict) {
                Ok(Payload::Provenance(provenance)) => dict.push(provenance),
                Ok(Payload::Record(record)) => on_record(record)?,
                Err(reason) => {
                    return Ok(SegmentScan::Corrupt {
                        valid_up_to: frame_start,
                        reason,
                    })
                }
            },
            Err(FrameReadError::Corrupt {
                valid_up_to,
                reason,
            }) => {
                return Ok(SegmentScan::Corrupt {
                    valid_up_to,
                    reason,
                })
            }
            Err(FrameReadError::Io(e)) => return Err(io_error(path)(e)),
        }
    }
}

/// Streams every record of the ledger at `dir` through `on_record`, in
/// ledger order, **repairing** corruption along the way: the first corrupt
/// frame (torn tail, bit flip, bad header) truncates its segment back to the
/// last valid frame, and every later segment — unreachable under the
/// append-order contract — is deleted. Records streamed before the
/// corruption are exactly the surviving ledger.
///
/// Memory use is one frame plus one segment dictionary, independent of
/// ledger size.
///
/// # Errors
///
/// Returns [`StoreError::Io`] on filesystem failures and whatever
/// `on_record` itself returns.
pub fn recover_with(
    dir: &Path,
    mut on_record: impl FnMut(TrialRecord) -> Result<()>,
) -> Result<ScanReport> {
    crate::compaction::resume_pending_swap(dir)?;
    let segments = list_segments(dir)?;
    let mut report = ScanReport::default();
    let mut corrupted = false;
    for (i, (_, path)) in segments.iter().enumerate() {
        match scan_segment(path, &mut |record| {
            report.records += 1;
            on_record(record)
        })? {
            SegmentScan::Clean { bytes } => {
                report.segments += 1;
                report.bytes += bytes;
            }
            SegmentScan::Corrupt {
                valid_up_to,
                reason: _,
            } => {
                let file_len = std::fs::metadata(path).map_err(io_error(path))?.len();
                if valid_up_to == 0 {
                    // Headerless/bogus file: nothing salvageable.
                    std::fs::remove_file(path).map_err(io_error(path))?;
                    report.dropped_segments += 1;
                    report.truncated_bytes += file_len;
                } else {
                    let file = std::fs::OpenOptions::new()
                        .write(true)
                        .open(path)
                        .map_err(io_error(path))?;
                    file.set_len(valid_up_to).map_err(io_error(path))?;
                    file.sync_data().map_err(io_error(path))?;
                    report.segments += 1;
                    report.bytes += valid_up_to;
                    report.truncated_bytes += file_len - valid_up_to;
                }
                // Everything after the corruption is unreachable: drop it.
                for (_, later) in &segments[i + 1..] {
                    let len = std::fs::metadata(later).map_err(io_error(later))?.len();
                    std::fs::remove_file(later).map_err(io_error(later))?;
                    report.dropped_segments += 1;
                    report.truncated_bytes += len;
                }
                corrupted = true;
                break;
            }
        }
    }
    if corrupted {
        sync_dir(dir)?;
    }
    let m = crate::metrics::metrics();
    m.recovery_truncated_bytes.add(report.truncated_bytes);
    m.recovery_dropped_segments.add(report.dropped_segments);
    Ok(report)
}

/// Repairs the ledger at `dir` without observing its records.
///
/// # Errors
///
/// See [`recover_with`].
pub fn recover(dir: &Path) -> Result<ScanReport> {
    recover_with(dir, |_| Ok(()))
}

/// Streams every record of the (already-recovered) ledger at `dir` through
/// `on_record` read-only: any corruption is an error, never a repair. This
/// is the bounded-memory replay path.
///
/// # Errors
///
/// Returns [`StoreError::Corrupt`] on a damaged frame, [`StoreError::Io`] on
/// filesystem failures, and whatever `on_record` returns.
pub fn for_each_record(
    dir: &Path,
    mut on_record: impl FnMut(TrialRecord) -> Result<()>,
) -> Result<ScanReport> {
    let mut report = ScanReport::default();
    for (_, path) in list_segments(dir)? {
        match scan_segment(&path, &mut |record| {
            report.records += 1;
            on_record(record)
        })? {
            SegmentScan::Clean { bytes } => {
                report.segments += 1;
                report.bytes += bytes;
            }
            SegmentScan::Corrupt {
                valid_up_to,
                reason,
            } => {
                return Err(corrupt_error(
                    &path,
                    format!("{reason} (valid up to byte {valid_up_to})"),
                ))
            }
        }
    }
    crate::metrics::metrics()
        .records_replayed
        .add(report.records);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn provenance(noise: &str) -> Provenance {
        Provenance {
            benchmark: "cifar10-like".into(),
            scale: "smoke".into(),
            seed: 3,
            noise: noise.into(),
        }
    }

    fn record(x: f64, resource: usize, rep: u64) -> TrialRecord {
        TrialRecord {
            config: ConfigKey::from_canonical_values(&[x, 64.0]).unwrap(),
            resource,
            rep,
            noisy_score: x * 0.25,
            true_error: x * 0.5,
            sim_time: x.abs(),
            provenance: provenance("noisy"),
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fedstore_seg_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn collect(dir: &Path) -> Vec<TrialRecord> {
        let mut out = Vec::new();
        for_each_record(dir, |r| {
            out.push(r);
            Ok(())
        })
        .unwrap();
        out
    }

    #[test]
    fn segment_names_parse_and_sort() {
        assert_eq!(parse_segment_name("seg-00000012.fsb"), Some(12));
        assert_eq!(parse_segment_name("seg-00000000.fsb"), Some(0));
        assert_eq!(parse_segment_name("seg-.fsb"), None);
        assert_eq!(parse_segment_name("seg-12.txt"), None);
        assert_eq!(parse_segment_name("cmp-00000012.fsb"), None);
        assert_eq!(parse_segment_name("seg-12a.fsb"), None);
    }

    #[test]
    fn write_read_round_trip_with_interned_provenance() {
        let dir = temp_dir("roundtrip");
        let mut writer = SegmentWriter::open(&dir, SegmentConfig::default()).unwrap();
        let mut originals = Vec::new();
        for i in 0..20 {
            let mut r = record(i as f64, 2 + i, i as u64);
            // Two distinct provenances alternate: the dictionary interns both.
            if i % 2 == 1 {
                r.provenance = provenance("noiseless");
            }
            writer.append(&r).unwrap();
            originals.push(r);
        }
        // Non-finite scores need no guard in the binary format.
        let mut nan = record(99.0, 1, 0);
        nan.noisy_score = f64::NAN;
        nan.true_error = f64::NEG_INFINITY;
        writer.append(&nan).unwrap();
        originals.push(nan.clone().with_canonical_scores());
        drop(writer);

        let read = collect(&dir);
        assert_eq!(read.len(), originals.len());
        for (a, b) in originals.iter().zip(&read) {
            assert_eq!(a.config, b.config);
            assert_eq!(a.resource, b.resource);
            assert_eq!(a.rep, b.rep);
            assert_eq!(a.noisy_score.to_bits(), b.noisy_score.to_bits());
            assert_eq!(a.true_error.to_bits(), b.true_error.to_bits());
            assert_eq!(a.sim_time.to_bits(), b.sim_time.to_bits());
            assert_eq!(a.provenance, b.provenance);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_roll_at_the_size_target_and_stay_self_contained() {
        let dir = temp_dir("roll");
        let config = SegmentConfig {
            segment_bytes: 512,
            durability: Durability::OnFlush,
        };
        let mut writer = SegmentWriter::open(&dir, config).unwrap();
        for i in 0..64 {
            writer.append(&record(i as f64, 1, 0)).unwrap();
        }
        writer.flush().unwrap();
        drop(writer);
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() > 1, "expected rolls, got {segments:?}");
        for (_, path) in &segments {
            let len = std::fs::metadata(path).unwrap().len();
            // Cap + one frame of slack.
            assert!(len <= 512 + 256, "{path:?} is {len} bytes");
            // Each segment opens with the magic and re-interns provenance:
            // reading it alone works.
            let mut seen = 0;
            scan_segment(path, &mut |_| {
                seen += 1;
                Ok(())
            })
            .map(|scan| assert!(matches!(scan, SegmentScan::Clean { .. })))
            .unwrap();
            assert!(seen > 0);
        }
        assert_eq!(collect(&dir).len(), 64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopened_writer_appends_a_fresh_segment() {
        let dir = temp_dir("reopen");
        {
            let mut writer = SegmentWriter::open(&dir, SegmentConfig::default()).unwrap();
            writer.append(&record(1.0, 1, 0)).unwrap();
        }
        {
            let mut writer = SegmentWriter::open(&dir, SegmentConfig::default()).unwrap();
            writer.append(&record(2.0, 1, 0)).unwrap();
        }
        let segments = list_segments(&dir).unwrap();
        assert_eq!(
            segments.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(collect(&dir).len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_later_segments_dropped() {
        let dir = temp_dir("torn");
        {
            let config = SegmentConfig {
                segment_bytes: 256,
                durability: Durability::OnFlush,
            };
            let mut writer = SegmentWriter::open(&dir, config).unwrap();
            for i in 0..32 {
                writer.append(&record(i as f64, 1, 0)).unwrap();
            }
            writer.flush().unwrap();
        }
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() >= 3, "want >=3 segments, got {segments:?}");
        // Tear the middle segment a few bytes past a valid prefix.
        let (_, victim) = &segments[1];
        let pristine = std::fs::read(victim).unwrap();
        let keep = pristine.len() - 5;
        std::fs::write(victim, &pristine[..keep]).unwrap();

        let before = collect_until_valid(&dir);
        let report = recover(&dir).unwrap();
        assert!(report.repaired());
        assert!(report.truncated_bytes > 0);
        assert!(report.dropped_segments >= 1);
        // Survivors: segment 0 in full plus the valid prefix of segment 1.
        let after = collect(&dir);
        assert_eq!(after.len(), before);
        assert!(!after.is_empty());
        // Recovery is idempotent.
        let again = recover(&dir).unwrap();
        assert!(!again.repaired());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Counts records readable before the first corruption (what recovery
    /// must preserve).
    fn collect_until_valid(dir: &Path) -> usize {
        let mut n = 0;
        for (_, path) in list_segments(dir).unwrap() {
            let mut here = 0;
            let scan = scan_segment(&path, &mut |_| {
                here += 1;
                Ok(())
            })
            .unwrap();
            n += here;
            if matches!(scan, SegmentScan::Corrupt { .. }) {
                break;
            }
        }
        n
    }

    #[test]
    fn bit_flip_truncates_at_the_last_valid_frame() {
        let dir = temp_dir("bitflip");
        {
            let mut writer = SegmentWriter::open(&dir, SegmentConfig::group_commit()).unwrap();
            for i in 0..8 {
                writer.append(&record(i as f64, 1, 0)).unwrap();
            }
            writer.flush().unwrap();
        }
        let (_, path) = &list_segments(&dir).unwrap()[0];
        let mut bytes = std::fs::read(path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(path, &bytes).unwrap();
        // Strict reading refuses...
        let err = for_each_record(&dir, |_| Ok(())).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        // ... recovery keeps the valid prefix and re-reading succeeds.
        let report = recover(&dir).unwrap();
        assert!(report.repaired());
        let survivors = collect(&dir);
        assert!(survivors.len() < 8, "flip must cost at least one record");
        for (i, r) in survivors.iter().enumerate() {
            assert_eq!(r.noisy_score.to_bits(), (i as f64 * 0.25).to_bits());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bogus_and_empty_files_are_handled() {
        let dir = temp_dir("bogus");
        std::fs::create_dir_all(&dir).unwrap();
        // A file with a valid name but garbage content is dropped by
        // recovery; foreign files are ignored entirely.
        std::fs::write(segment_path(&dir, 0), b"not a segment").unwrap();
        std::fs::write(dir.join("notes.txt"), b"unrelated").unwrap();
        let report = recover(&dir).unwrap();
        assert_eq!(report.dropped_segments, 1);
        assert_eq!(report.records, 0);
        assert!(dir.join("notes.txt").exists());
        // A missing directory is an empty ledger.
        let missing = temp_dir("missing");
        assert_eq!(recover(&missing).unwrap(), ScanReport::default());
        assert_eq!(
            for_each_record(&missing, |_| Ok(())).unwrap(),
            ScanReport::default()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durability_policies_sync_when_promised() {
        assert!(Durability::PerInsert.wants_sync(1));
        assert!(!Durability::PerInsert.wants_sync(0));
        assert!(!Durability::EveryN(4).wants_sync(3));
        assert!(Durability::EveryN(4).wants_sync(4));
        assert!(!Durability::OnFlush.wants_sync(1_000_000));

        // EveryN actually resets its counter through the writer.
        let dir = temp_dir("durability");
        let config = SegmentConfig {
            segment_bytes: 1 << 20,
            durability: Durability::EveryN(4),
        };
        let mut writer = SegmentWriter::open(&dir, config).unwrap();
        for i in 0..6 {
            writer.append(&record(i as f64, 1, 0)).unwrap();
        }
        // 6 appends: synced at 4, two pending.
        assert_eq!(writer.unsynced(), 2);
        writer.flush().unwrap();
        assert_eq!(writer.unsynced(), 0);
        drop(writer);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_records_are_rejected_not_panicked() {
        let dir = temp_dir("oversize");
        let mut writer = SegmentWriter::open(&dir, SegmentConfig::default()).unwrap();
        let big = TrialRecord {
            config: ConfigKey::from_canonical_values(&vec![1.0; MAX_ARITY + 1]).unwrap(),
            resource: 1,
            rep: 0,
            noisy_score: 0.5,
            true_error: 0.5,
            sim_time: 0.0,
            provenance: provenance("noisy"),
        };
        assert!(matches!(
            writer.append(&big),
            Err(StoreError::InvalidRecord { .. })
        ));
        let mut bad_time = record(1.0, 1, 0);
        bad_time.sim_time = f64::NAN;
        assert!(writer.append(&bad_time).is_err());
        drop(writer);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::framing::FrameReader;
    use proptest::prelude::*;
    use rand::Rng;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fedstore_segprop_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Writes a reproducible single-segment ledger of `n` records (mixed
    /// provenances, occasional non-finite scores) and returns the records.
    fn seeded_ledger(dir: &Path, seed: u64, n: usize) -> Vec<TrialRecord> {
        let mut rng = fedmath::rng::rng_for(seed, 17);
        let config = SegmentConfig {
            segment_bytes: 1 << 20,
            durability: Durability::OnFlush,
        };
        let mut writer = SegmentWriter::open(dir, config).unwrap();
        let mut out = Vec::new();
        for i in 0..n {
            let score = |rng: &mut rand::rngs::StdRng| match rng.gen_range(0..8) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                _ => rng.gen_range(-2.0..2.0),
            };
            let record = TrialRecord {
                config: ConfigKey::from_canonical_values(&[i as f64, rng.gen_range(-1e3..1e3)])
                    .unwrap(),
                resource: rng.gen_range(1..50),
                rep: rng.gen_range(0..3),
                noisy_score: score(&mut rng),
                true_error: score(&mut rng),
                sim_time: rng.gen_range(0.0..100.0),
                provenance: Provenance {
                    benchmark: "prop".into(),
                    scale: "smoke".into(),
                    seed,
                    noise: if i % 3 == 0 { "noisy" } else { "noiseless" }.into(),
                },
            };
            writer.append(&record).unwrap();
            out.push(record.clone().with_canonical_scores());
        }
        writer.flush().unwrap();
        out
    }

    /// Byte offsets (within the segment file) at which each *record* frame
    /// ends, in order — the oracle for how many records any prefix holds.
    fn record_frame_ends(segment: &[u8]) -> Vec<u64> {
        let mut reader = FrameReader::new(
            &segment[SEGMENT_HEADER_BYTES as usize..],
            SEGMENT_HEADER_BYTES,
        );
        let mut ends = Vec::new();
        while let Some(payload) = reader.next_frame().unwrap() {
            let is_record = payload.first() == Some(&TAG_RECORD);
            if is_record {
                ends.push(reader.valid_up_to());
            }
        }
        ends
    }

    /// Checks that the ledger at `dir` reopens to exactly the first
    /// `expected` records of `originals`, bit for bit, and accepts appends.
    fn assert_recovers_prefix(dir: &Path, originals: &[TrialRecord], expected: usize) {
        let mut store = crate::TrialStore::open_segments(dir).unwrap();
        assert_eq!(store.len(), expected, "recovered record count");
        for (a, b) in originals[..expected].iter().zip(store.records()) {
            assert_eq!(a.config, b.config);
            assert_eq!(a.resource, b.resource);
            assert_eq!(a.rep, b.rep);
            assert_eq!(a.noisy_score.to_bits(), b.noisy_score.to_bits());
            assert_eq!(a.true_error.to_bits(), b.true_error.to_bits());
            assert_eq!(a.sim_time.to_bits(), b.sim_time.to_bits());
            assert_eq!(a.provenance, b.provenance);
        }
        // The repaired ledger accepts new work.
        store
            .insert(TrialRecord {
                config: ConfigKey::from_canonical_values(&[-1.0]).unwrap(),
                resource: 1,
                rep: 0,
                noisy_score: 0.5,
                true_error: 0.5,
                sim_time: 0.0,
                provenance: Provenance {
                    benchmark: "prop".into(),
                    scale: "smoke".into(),
                    seed: 0,
                    noise: "noisy".into(),
                },
            })
            .unwrap();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Truncating the segment at *any* byte offset: reopening never
        /// panics, never indexes a corrupt record, and always recovers
        /// every record whose frame lies wholly before the cut.
        #[test]
        fn prop_truncation_recovers_every_frame_before_the_cut(
            seed in any::<u64>(),
            n in 1usize..12,
            cut_frac in 0.0f64..1.0,
        ) {
            let dir = temp_dir("cut");
            let originals = seeded_ledger(&dir, seed, n);
            let path = segment_path(&dir, 0);
            let pristine = std::fs::read(&path).unwrap();
            let ends = record_frame_ends(&pristine);
            prop_assert_eq!(ends.len(), n);
            let cut = (cut_frac * pristine.len() as f64) as usize;
            std::fs::write(&path, &pristine[..cut]).unwrap();
            let expected = ends.iter().filter(|&&e| e <= cut as u64).count();
            assert_recovers_prefix(&dir, &originals, expected);
            std::fs::remove_dir_all(&dir).unwrap();
        }

        /// Flipping a single bit anywhere — header, frame headers, payloads,
        /// CRCs: reopening never panics and the surviving records are a
        /// bit-exact prefix of the originals.
        #[test]
        fn prop_single_bit_flip_recovers_a_clean_prefix(
            seed in any::<u64>(),
            n in 1usize..10,
            byte_frac in 0.0f64..1.0,
            bit in 0u8..8,
        ) {
            let dir = temp_dir("flip");
            let originals = seeded_ledger(&dir, seed, n);
            let path = segment_path(&dir, 0);
            let mut bytes = std::fs::read(&path).unwrap();
            let ends = record_frame_ends(&bytes);
            let target = ((byte_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
            bytes[target] ^= 1 << bit;
            std::fs::write(&path, &bytes).unwrap();
            // The flip lands inside (or before) exactly one frame; every
            // record frame that ends at or before the flipped byte's frame
            // start is untouched. Conservative oracle: records whose frames
            // end at or before the flipped byte survive; later ones may or
            // may not (the flip's frame is rejected, everything after is
            // dropped). The recovered store must be a prefix.
            let survivors_min = ends.iter().filter(|&&e| e <= target as u64).count();
            let mut store = crate::TrialStore::open_segments(&dir).unwrap();
            prop_assert!(store.len() <= n);
            let len = store.len();
            prop_assert!(len >= survivors_min, "flip at {} lost pre-flip records: {} < {}", target, len, survivors_min);
            for (a, b) in originals[..len].iter().zip(store.records()) {
                prop_assert_eq!(a.noisy_score.to_bits(), b.noisy_score.to_bits());
                prop_assert_eq!(a.true_error.to_bits(), b.true_error.to_bits());
                prop_assert_eq!(&a.config, &b.config);
                prop_assert_eq!(&a.provenance, &b.provenance);
            }
            store.insert(originals[0].clone()).ok();
            drop(store);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}
