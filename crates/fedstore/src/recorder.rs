//! The recording wrapper that captures a live campaign into the ledger —
//! and, symmetrically, serves already-recorded requests *from* the ledger.
//!
//! [`RecordingObjective`] sits between a scheduler driver
//! (`fedtune_core::run_scheduled`) and a live batch objective. Each suggested
//! batch is partitioned against the store:
//!
//! - **misses** are forwarded to the inner objective as one sub-batch,
//!   evaluated live, and persisted (noisy score plus ground truth via
//!   [`fedtune_core::BatchObjective::last_true_errors`]);
//! - **hits** are answered directly from the store, skipping simulation.
//!
//! The hit path is what makes *resume* fall out for free: re-driving an
//! interrupted campaign with the same seeds re-suggests its prefix verbatim,
//! every prefix request hits the ledger, and the campaign continues exactly
//! where it stopped — bit-identically to an uninterrupted run, because every
//! served score is the recorded bit pattern and all live randomness is
//! positional.

use crate::key::TrialKey;
use crate::record::Provenance;
use crate::store::TrialStore;
use crate::TrialRecord;
use fedhpo::{SearchSpace, TrialRequest, TrialResult};
use fedtune_core::{BatchObjective, CampaignLog, ObjectiveLogEntry};

/// A [`BatchObjective`] that records misses into a [`TrialStore`] and serves
/// hits from it.
pub struct RecordingObjective<'o, 's> {
    inner: &'o mut dyn BatchObjective,
    store: &'s mut TrialStore,
    space: SearchSpace,
    provenance: Provenance,
    campaign: CampaignLog,
    hits: usize,
    misses: usize,
}

impl<'o, 's> RecordingObjective<'o, 's> {
    /// Wraps `inner`, keying records against `space` and stamping them with
    /// `provenance`.
    pub fn new(
        inner: &'o mut dyn BatchObjective,
        space: &SearchSpace,
        provenance: Provenance,
        store: &'s mut TrialStore,
    ) -> Self {
        RecordingObjective {
            inner,
            store,
            space: space.clone(),
            provenance,
            campaign: CampaignLog::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The campaign log so far, in request order. Hits and misses are logged
    /// identically, with the resource accounting the *campaign* incurs (a
    /// served prefix costs what the live run paid, not what the resumed
    /// process recomputes), so an interrupted-and-resumed campaign's log
    /// matches the uninterrupted one.
    pub fn log(&self) -> &[ObjectiveLogEntry] {
        self.campaign.log()
    }

    /// Consumes the wrapper and returns its log.
    pub fn into_log(self) -> Vec<ObjectiveLogEntry> {
        self.campaign.into_log()
    }

    /// Requests served from the store without touching the inner objective.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Requests evaluated live (and recorded).
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Noise-aware selection over the campaign log; see
    /// [`fedtune_core::selected_true_error`].
    pub fn selected_true_error_within(&self, budget: usize) -> Option<f64> {
        self.campaign.selected_true_error_within(budget)
    }
}

impl RecordingObjective<'_, '_> {
    fn evaluate_batch_with_times(
        &mut self,
        requests: &[TrialRequest],
        sim_times: Option<&[f64]>,
    ) -> fedtune_core::Result<Vec<TrialResult>> {
        let time_of = |i: usize| sim_times.map_or(0.0, |t| t[i]);
        // Partition against the store: hits answer immediately, misses go to
        // the inner objective as one sub-batch (preserving relative order,
        // which the inner objective's positional seeding requires nothing of
        // but its per-trial resume logic does).
        let mut scored: Vec<Option<(f64, f64)>> = vec![None; requests.len()];
        let mut miss_indices = Vec::new();
        let mut keys = Vec::with_capacity(requests.len());
        for (i, request) in requests.iter().enumerate() {
            let key = TrialKey::for_request(&self.space, request)
                .map_err(fedtune_core::CoreError::from)?;
            if let Some(record) = self.store.get(&key) {
                scored[i] = Some((record.noisy_score, record.true_error));
                self.hits += 1;
            } else {
                miss_indices.push(i);
            }
            keys.push(key);
        }
        if !miss_indices.is_empty() {
            let miss_requests: Vec<TrialRequest> =
                miss_indices.iter().map(|&i| requests[i].clone()).collect();
            let miss_results = match sim_times {
                Some(_) => {
                    let miss_times: Vec<f64> = miss_indices.iter().map(|&i| time_of(i)).collect();
                    self.inner.evaluate_batch_at(&miss_requests, &miss_times)?
                }
                None => self.inner.evaluate_batch(&miss_requests)?,
            };
            // Ground truth when the objective can separate it; the noisy
            // score otherwise (exact for noiseless analytic objectives).
            let truths = self.inner.last_true_errors();
            for (j, &i) in miss_indices.iter().enumerate() {
                let noisy_score = miss_results[j].score;
                let true_error = truths.as_ref().map_or(noisy_score, |t| t[j]);
                let key = keys[i].clone();
                // The batch is group-committed below: one sync per miss
                // sub-batch instead of one per record.
                self.store
                    .insert_unsynced(TrialRecord {
                        config: key.config,
                        resource: key.resource,
                        rep: key.rep,
                        noisy_score,
                        true_error,
                        sim_time: time_of(i),
                        provenance: self.provenance.clone(),
                    })
                    .map_err(fedtune_core::CoreError::from)?;
                scored[i] = Some((noisy_score, true_error));
                self.misses += 1;
            }
            self.store
                .group_commit()
                .map_err(fedtune_core::CoreError::from)?;
        }
        // Stitch results back in request order and log every evaluation.
        self.campaign.begin_batch();
        let mut results = Vec::with_capacity(requests.len());
        for (i, (request, entry)) in requests.iter().zip(scored).enumerate() {
            let (noisy_score, true_error) = entry.expect("every request was hit or evaluated");
            self.campaign
                .observe_at(request, noisy_score, true_error, time_of(i));
            results.push(TrialResult::of(request, noisy_score));
        }
        Ok(results)
    }
}

impl BatchObjective for RecordingObjective<'_, '_> {
    fn evaluate_batch(
        &mut self,
        requests: &[TrialRequest],
    ) -> fedtune_core::Result<Vec<TrialResult>> {
        self.evaluate_batch_with_times(requests, None)
    }

    fn evaluate_batch_at(
        &mut self,
        requests: &[TrialRequest],
        sim_times: &[f64],
    ) -> fedtune_core::Result<Vec<TrialResult>> {
        self.evaluate_batch_with_times(requests, Some(sim_times))
    }

    fn last_true_errors(&self) -> Option<Vec<f64>> {
        Some(self.campaign.last_batch_true_errors())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedhpo::HpConfig;

    /// A deterministic analytic objective that counts its evaluations.
    struct CountingObjective {
        calls: usize,
    }

    impl BatchObjective for CountingObjective {
        fn evaluate_batch(
            &mut self,
            requests: &[TrialRequest],
        ) -> fedtune_core::Result<Vec<TrialResult>> {
            Ok(requests
                .iter()
                .map(|r| {
                    self.calls += 1;
                    TrialResult::of(r, r.config.values()[0] + r.resource as f64)
                })
                .collect())
        }
    }

    fn space() -> SearchSpace {
        SearchSpace::new().with_uniform("x", 0.0, 10.0).unwrap()
    }

    fn provenance() -> Provenance {
        Provenance {
            benchmark: "analytic".into(),
            scale: "unit".into(),
            seed: 0,
            noise: "noiseless".into(),
        }
    }

    fn request(trial_id: usize, x: f64, resource: usize) -> TrialRequest {
        TrialRequest {
            trial_id,
            config: HpConfig::new(vec![x]),
            resource,
            noise_rep: 0,
        }
    }

    #[test]
    fn misses_are_recorded_and_hits_skip_the_inner_objective() {
        let space = space();
        let mut store = TrialStore::in_memory();
        let mut inner = CountingObjective { calls: 0 };
        let mut recording = RecordingObjective::new(&mut inner, &space, provenance(), &mut store);
        let batch = [request(0, 1.0, 2), request(1, 3.0, 2)];
        let first = recording.evaluate_batch(&batch).unwrap();
        assert_eq!(recording.misses(), 2);
        assert_eq!(recording.hits(), 0);
        assert_eq!(recording.last_true_errors().unwrap().len(), 2);
        // The same points again: all hits, inner untouched, same bits.
        let second = recording.evaluate_batch(&batch).unwrap();
        assert_eq!(recording.hits(), 2);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        assert_eq!(recording.log().len(), 4);
        drop(recording);
        assert_eq!(inner.calls, 2);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn log_accounts_campaign_resource_incrementally() {
        let space = space();
        let mut store = TrialStore::in_memory();
        let mut inner = CountingObjective { calls: 0 };
        let mut recording = RecordingObjective::new(&mut inner, &space, provenance(), &mut store);
        recording
            .evaluate_batch(&[request(0, 1.0, 2), request(0, 1.0, 5)])
            .unwrap();
        recording.evaluate_batch(&[request(1, 2.0, 3)]).unwrap();
        let log = recording.log();
        assert_eq!(log.len(), 3);
        assert_eq!(log[0].cumulative_rounds, 2);
        assert_eq!(log[1].cumulative_rounds, 5);
        assert_eq!(log[2].cumulative_rounds, 8);
        assert!(recording.selected_true_error_within(usize::MAX).is_some());
        assert_eq!(recording.into_log().len(), 3);
    }

    #[test]
    fn resume_serves_the_recorded_prefix() {
        let space = space();
        let mut store = TrialStore::in_memory();
        // First process: evaluates two points, then "crashes".
        {
            let mut inner = CountingObjective { calls: 0 };
            let mut recording =
                RecordingObjective::new(&mut inner, &space, provenance(), &mut store);
            recording
                .evaluate_batch(&[request(0, 1.0, 2), request(1, 3.0, 2)])
                .unwrap();
        }
        // Second process re-drives the same schedule plus new work: the
        // prefix hits, only the new point is evaluated.
        let mut inner = CountingObjective { calls: 0 };
        let mut recording = RecordingObjective::new(&mut inner, &space, provenance(), &mut store);
        recording
            .evaluate_batch(&[request(0, 1.0, 2), request(1, 3.0, 2)])
            .unwrap();
        recording.evaluate_batch(&[request(2, 5.0, 2)]).unwrap();
        assert_eq!(recording.hits(), 2);
        assert_eq!(recording.misses(), 1);
        // The campaign log still accounts the prefix as paid-for work.
        assert_eq!(recording.log().last().unwrap().cumulative_rounds, 6);
        drop(recording);
        assert_eq!(inner.calls, 1);
        assert_eq!(store.len(), 3);
    }
}
