//! Snapshots and crash-safe segment compaction.
//!
//! A long-lived ledger accumulates segments whose records have since been
//! deduplicated in memory (idempotent re-inserts, resumed campaigns) and
//! whose provenance dictionaries repeat. Compaction rewrites the ledger as a
//! minimal snapshot — one record per [`crate::TrialKey`], fresh contiguous
//! segments, no tombstones to track because the ledger is append-only with
//! first-write-wins dedup.
//!
//! # The swap protocol
//!
//! Replacing the live `seg-*.fsb` files with the snapshot must never lose
//! the ledger to a crash, so the swap commits through a marker file:
//!
//! 1. Stage the snapshot as `cmp-00000000.fsb`, … in the ledger directory —
//!    readers ignore the `cmp-` prefix, so a crash here leaves the old
//!    ledger untouched (recovery deletes stray `cmp-` files).
//! 2. Write the segment count into `COMPACT-COMMIT.tmp`, sync, and rename
//!    it to `COMPACT-COMMIT` — the commit point. The marker's manifest (the
//!    count `k`) makes the remaining steps replayable: the new ledger is
//!    exactly segments `0..k`.
//! 3. For each `i < k`, rename `cmp-i` over `seg-i` (atomically replacing
//!    any stale segment of the same index); delete every stale `seg-j` with
//!    `j >= k`; delete the marker.
//!
//! `resume_pending_swap` — called by every recovery/open — replays step 3
//! if the marker exists (each sub-step is idempotent: a missing `cmp-i`
//! means that rename already happened) and rolls back step 1 if it does
//! not. Either way the ledger is exactly the old or the new snapshot, never
//! a mix.

use crate::record::TrialRecord;
use crate::segment::{
    io_error, list_prefixed, list_segments, prefixed_path, segment_path, sync_dir, Durability,
    SegmentConfig, SegmentWriter,
};
use crate::{Result, StoreError};
use std::io::Write;
use std::path::Path;

/// The commit-point marker file; its content is the snapshot segment count.
pub(crate) const MARKER: &str = "COMPACT-COMMIT";
const MARKER_TMP: &str = "COMPACT-COMMIT.tmp";
const CMP_PREFIX: &str = "cmp-";

/// What a compaction did to the ledger directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Records in the compacted snapshot.
    pub records: u64,
    /// Live ledger bytes before the swap.
    pub bytes_before: u64,
    /// Live ledger bytes after the swap.
    pub bytes_after: u64,
    /// Segment files before the swap.
    pub segments_before: u64,
    /// Segment files after the swap.
    pub segments_after: u64,
}

fn ledger_footprint(dir: &Path) -> Result<(u64, u64)> {
    let mut bytes = 0;
    let segments = list_segments(dir)?;
    for (_, path) in &segments {
        bytes += std::fs::metadata(path).map_err(io_error(path))?.len();
    }
    Ok((bytes, segments.len() as u64))
}

/// Rewrites the ledger at `dir` as a snapshot of `records` (already deduped
/// by the caller — the store hands over its index order) and swaps it in
/// crash-safely. The ledger directory must already be recovered; any
/// interrupted previous swap is finished first.
///
/// # Errors
///
/// Returns [`StoreError::Io`] on filesystem failures and any append error
/// from the snapshot writer.
pub(crate) fn swap_in_snapshot<'a>(
    dir: &Path,
    config: SegmentConfig,
    records: impl Iterator<Item = &'a TrialRecord>,
) -> Result<CompactionReport> {
    resume_pending_swap(dir)?;
    let (bytes_before, segments_before) = ledger_footprint(dir)?;

    // Stage: write the snapshot under the ignored cmp- prefix. Group commit
    // is safe here — the files only become the ledger after the marker, and
    // every segment is synced on seal/flush.
    let mut writer = SegmentWriter::new_raw(
        dir,
        SegmentConfig {
            durability: Durability::OnFlush,
            ..config
        },
        CMP_PREFIX,
        0,
    )?;
    let mut records_out = 0;
    for record in records {
        writer.append_unsynced(record)?;
        records_out += 1;
    }
    writer.flush()?;
    drop(writer);
    sync_dir(dir)?;

    // Commit: publish the manifest atomically.
    let staged = list_prefixed(dir, CMP_PREFIX)?.len() as u64;
    let tmp = dir.join(MARKER_TMP);
    let mut marker = std::fs::File::create(&tmp).map_err(io_error(&tmp))?;
    marker
        .write_all(format!("{staged}\n").as_bytes())
        .and_then(|()| marker.sync_data())
        .map_err(io_error(&tmp))?;
    drop(marker);
    std::fs::rename(&tmp, dir.join(MARKER)).map_err(io_error(dir))?;
    sync_dir(dir)?;

    // Swap — replayable from the marker alone.
    complete_swap(dir, staged)?;
    crate::metrics::metrics().compaction_swaps.incr();

    let (bytes_after, segments_after) = ledger_footprint(dir)?;
    Ok(CompactionReport {
        records: records_out,
        bytes_before,
        bytes_after,
        segments_before,
        segments_after,
    })
}

/// Step 3 of the protocol: rename `cmp-i` over `seg-i` for `i < staged`,
/// drop stale `seg-j` for `j >= staged`, clear the marker. Idempotent.
fn complete_swap(dir: &Path, staged: u64) -> Result<()> {
    for i in 0..staged {
        let cmp = prefixed_path(dir, CMP_PREFIX, i);
        let seg = segment_path(dir, i);
        if cmp.exists() {
            std::fs::rename(&cmp, &seg).map_err(io_error(&cmp))?;
        } else if !seg.exists() {
            return Err(StoreError::Corrupt {
                path: seg.display().to_string(),
                message: format!(
                    "compaction manifest promises {staged} segments but #{i} is missing"
                ),
            });
        }
    }
    for (index, path) in list_segments(dir)? {
        if index >= staged {
            std::fs::remove_file(&path).map_err(io_error(&path))?;
        }
    }
    sync_dir(dir)?;
    std::fs::remove_file(dir.join(MARKER)).map_err(io_error(dir))?;
    sync_dir(dir)
}

/// Finishes (marker present) or rolls back (marker absent) an interrupted
/// compaction swap. Called by every ledger recovery before segments are
/// scanned; a no-op on a clean directory.
///
/// # Errors
///
/// Returns [`StoreError::Io`] on filesystem failures and
/// [`StoreError::Corrupt`] if the marker manifest cannot be honoured.
pub(crate) fn resume_pending_swap(dir: &Path) -> Result<()> {
    let marker = dir.join(MARKER);
    match std::fs::read_to_string(&marker) {
        Ok(content) => {
            // Committed: roll the swap forward.
            let staged: u64 = content.trim().parse().map_err(|_| StoreError::Corrupt {
                path: marker.display().to_string(),
                message: format!("unreadable compaction manifest {content:?}"),
            })?;
            complete_swap(dir, staged)
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            // Not committed: roll any staging back.
            let mut dirty = false;
            for (_, path) in list_prefixed(dir, CMP_PREFIX)? {
                std::fs::remove_file(&path).map_err(io_error(&path))?;
                dirty = true;
            }
            let tmp = dir.join(MARKER_TMP);
            if tmp.exists() {
                std::fs::remove_file(&tmp).map_err(io_error(&tmp))?;
                dirty = true;
            }
            if dirty {
                sync_dir(dir)?;
            }
            Ok(())
        }
        Err(e) => Err(io_error(&marker)(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::ConfigKey;
    use crate::record::Provenance;
    use crate::segment::{for_each_record, SEG_PREFIX};
    use std::path::PathBuf;

    fn record(x: f64, rep: u64) -> TrialRecord {
        TrialRecord {
            config: ConfigKey::from_canonical_values(&[x]).unwrap(),
            resource: 1,
            rep,
            noisy_score: x * 0.25,
            true_error: x * 0.5,
            sim_time: x.abs(),
            provenance: Provenance {
                benchmark: "cifar10-like".into(),
                scale: "smoke".into(),
                seed: 7,
                noise: "noisy".into(),
            },
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fedstore_cmp_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn collect(dir: &Path) -> Vec<TrialRecord> {
        let mut out = Vec::new();
        for_each_record(dir, |r| {
            out.push(r);
            Ok(())
        })
        .unwrap();
        out
    }

    /// A fragmented ledger: many tiny segments, each record appended twice.
    fn fragmented_ledger(dir: &Path, n: usize) -> Vec<TrialRecord> {
        let config = SegmentConfig {
            segment_bytes: 256,
            durability: Durability::OnFlush,
        };
        let mut writer = SegmentWriter::open(dir, config).unwrap();
        let mut unique = Vec::new();
        for i in 0..n {
            let r = record(i as f64 + 1.0, 0);
            writer.append(&r).unwrap();
            writer.append(&r).unwrap();
            unique.push(r);
        }
        writer.flush().unwrap();
        unique
    }

    #[test]
    fn compaction_dedups_and_shrinks() {
        let dir = temp_dir("shrink");
        let unique = fragmented_ledger(&dir, 24);
        let report = swap_in_snapshot(&dir, SegmentConfig::default(), unique.iter()).unwrap();
        assert_eq!(report.records, 24);
        assert!(report.bytes_after < report.bytes_before, "{report:?}");
        assert!(report.segments_after < report.segments_before, "{report:?}");
        let survivors = collect(&dir);
        assert_eq!(survivors.len(), 24);
        for (a, b) in unique.iter().zip(&survivors) {
            assert_eq!(a.config, b.config);
            assert_eq!(a.noisy_score.to_bits(), b.noisy_score.to_bits());
        }
        assert!(!dir.join(MARKER).exists());
        assert!(list_prefixed(&dir, CMP_PREFIX).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_before_commit_rolls_back_to_the_old_ledger() {
        let dir = temp_dir("precommit");
        let unique = fragmented_ledger(&dir, 8);
        // Simulate a crash mid-staging: cmp files (even torn ones) and a
        // marker tmp exist, but no marker.
        let mut writer =
            SegmentWriter::new_raw(&dir, SegmentConfig::default(), CMP_PREFIX, 0).unwrap();
        writer.append(&unique[0]).unwrap();
        writer.flush().unwrap();
        drop(writer);
        std::fs::write(dir.join(MARKER_TMP), b"1").unwrap();

        resume_pending_swap(&dir).unwrap();
        assert!(list_prefixed(&dir, CMP_PREFIX).unwrap().is_empty());
        assert!(!dir.join(MARKER_TMP).exists());
        // Old ledger intact, duplicates and all.
        assert_eq!(collect(&dir).len(), 16);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_after_commit_rolls_the_swap_forward() {
        let dir = temp_dir("postcommit");
        let unique = fragmented_ledger(&dir, 16);
        let stale_segments = list_segments(&dir).unwrap().len();
        assert!(stale_segments > 2);
        // Stage the snapshot and write the marker, then "crash" before any
        // rename: exactly the state after protocol step 2.
        let mut writer = SegmentWriter::new_raw(
            &dir,
            SegmentConfig {
                segment_bytes: 1 << 20,
                durability: Durability::OnFlush,
            },
            CMP_PREFIX,
            0,
        )
        .unwrap();
        for r in &unique {
            writer.append_unsynced(r).unwrap();
        }
        writer.flush().unwrap();
        drop(writer);
        let staged = list_prefixed(&dir, CMP_PREFIX).unwrap().len() as u64;
        std::fs::write(dir.join(MARKER), format!("{staged}\n")).unwrap();

        resume_pending_swap(&dir).unwrap();
        assert!(!dir.join(MARKER).exists());
        assert_eq!(collect(&dir).len(), unique.len());
        assert_eq!(list_segments(&dir).unwrap().len() as u64, staged);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partially_renamed_swap_resumes_idempotently() {
        let dir = temp_dir("partial");
        let unique = fragmented_ledger(&dir, 16);
        // Stage a two-segment snapshot.
        let mut writer = SegmentWriter::new_raw(
            &dir,
            SegmentConfig {
                segment_bytes: 300,
                durability: Durability::OnFlush,
            },
            CMP_PREFIX,
            0,
        )
        .unwrap();
        for r in &unique {
            writer.append_unsynced(r).unwrap();
        }
        writer.flush().unwrap();
        drop(writer);
        let staged = list_prefixed(&dir, CMP_PREFIX).unwrap().len() as u64;
        assert!(staged >= 2, "want a multi-segment snapshot, got {staged}");
        std::fs::write(dir.join(MARKER), format!("{staged}\n")).unwrap();
        // Crash mid-step-3: the first cmp already renamed over seg-0.
        std::fs::rename(prefixed_path(&dir, CMP_PREFIX, 0), segment_path(&dir, 0)).unwrap();

        resume_pending_swap(&dir).unwrap();
        assert_eq!(collect(&dir).len(), unique.len());
        assert_eq!(list_segments(&dir).unwrap().len() as u64, staged);
        // Running recovery again changes nothing.
        resume_pending_swap(&dir).unwrap();
        assert_eq!(collect(&dir).len(), unique.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unreadable_manifest_is_a_detected_corruption() {
        let dir = temp_dir("badmanifest");
        fragmented_ledger(&dir, 2);
        std::fs::write(dir.join(MARKER), b"not a number").unwrap();
        let err = resume_pending_swap(&dir).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_missing_segment_is_a_detected_corruption() {
        let dir = temp_dir("missingseg");
        fragmented_ledger(&dir, 2);
        // Marker promises one staged segment that does not exist anywhere.
        std::fs::write(dir.join(MARKER), b"999\n").unwrap();
        let err = resume_pending_swap(&dir).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_snapshot_empties_the_ledger() {
        let dir = temp_dir("empty");
        fragmented_ledger(&dir, 4);
        let report = swap_in_snapshot(&dir, SegmentConfig::default(), std::iter::empty()).unwrap();
        assert_eq!(report.records, 0);
        assert_eq!(report.segments_after, 0);
        assert!(collect(&dir).is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seg_prefix_constant_matches_paths() {
        // The swap relies on cmp- and seg- names never colliding.
        assert_ne!(SEG_PREFIX, CMP_PREFIX);
        let p = segment_path(Path::new("x"), 3);
        assert!(p.to_str().unwrap().ends_with("seg-00000003.fsb"));
        let c = prefixed_path(Path::new("x"), CMP_PREFIX, 3);
        assert!(c.to_str().unwrap().ends_with("cmp-00000003.fsb"));
    }
}
