//! Content-addressed identities for recorded trials.
//!
//! A ledger key must be a pure function of the *point* an evaluation denotes,
//! never of the float fuzz the tuner happened to produce: `-0.0` and `0.0`
//! are the same learning rate, and a categorical batch size of
//! `64.0 - 1e-13` is the choice `64`. [`ConfigKey`] therefore stores the
//! `f64::to_bits` patterns of the configuration *after*
//! [`fedhpo::SearchSpace::canonicalize`] has normalised signed zeros,
//! rejected non-finite values, and snapped discrete dimensions to their
//! declared bits.

use crate::{Result, StoreError};
use fedhpo::{HpConfig, SearchSpace};

/// The canonical bit-level identity of one hyperparameter configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConfigKey {
    bits: Vec<u64>,
}

impl ConfigKey {
    /// Canonicalizes `config` against `space` and keys it by the resulting
    /// bit patterns.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Hpo`] if the configuration has the wrong arity
    /// or any value is non-finite or outside its dimension.
    pub fn from_config(space: &SearchSpace, config: &HpConfig) -> Result<Self> {
        Ok(ConfigKey {
            bits: space.canonical_bits(config)?,
        })
    }

    /// Keys already-canonical values (as stored in a ledger record), applying
    /// only the representation-level guards: signed zeros normalise and
    /// non-finite values are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidRecord`] on non-finite values.
    pub fn from_canonical_values(values: &[f64]) -> Result<Self> {
        let bits = values
            .iter()
            .map(|&v| {
                if v.is_finite() {
                    Ok((v + 0.0).to_bits())
                } else {
                    Err(StoreError::InvalidRecord {
                        message: format!("configuration value {v} is not finite"),
                    })
                }
            })
            .collect::<Result<Vec<u64>>>()?;
        Ok(ConfigKey { bits })
    }

    /// The canonical bit patterns, in dimension order.
    pub fn bits(&self) -> &[u64] {
        &self.bits
    }

    /// The canonical configuration values the bits encode.
    pub fn values(&self) -> Vec<f64> {
        self.bits.iter().map(|&b| f64::from_bits(b)).collect()
    }

    /// A stable 64-bit digest of the key (used to seed deterministic
    /// replicate resampling): the shared [`fedhpo::space::fingerprint_bits`]
    /// definition, the same digest the live batch objective keys its
    /// randomness by.
    pub fn fingerprint(&self) -> u64 {
        fedhpo::space::fingerprint_bits(&self.bits)
    }
}

/// The full ledger key of one evaluation: which point, at which fidelity,
/// under which noise replicate.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrialKey {
    /// The canonical configuration identity.
    pub config: ConfigKey,
    /// Cumulative training rounds the configuration had received.
    pub resource: usize,
    /// Noise replicate index (`0` = the schedule's ordinary evaluation).
    pub rep: u64,
}

impl TrialKey {
    /// Builds the key for one scheduler request against `space`.
    ///
    /// # Errors
    ///
    /// See [`ConfigKey::from_config`].
    pub fn for_request(space: &SearchSpace, request: &fedhpo::TrialRequest) -> Result<Self> {
        Ok(TrialKey {
            config: ConfigKey::from_config(space, &request.config)?,
            resource: request.resource,
            rep: request.noise_rep,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> SearchSpace {
        SearchSpace::new()
            .with_uniform("u", -1.0, 1.0)
            .unwrap()
            .with_categorical("c", vec![32.0, 64.0])
            .unwrap()
    }

    #[test]
    fn keys_are_canonical_identities() {
        let space = space();
        let a = ConfigKey::from_config(&space, &HpConfig::new(vec![0.0, 64.0])).unwrap();
        let b = ConfigKey::from_config(&space, &HpConfig::new(vec![-0.0, 64.0 - 1e-13])).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.values(), vec![0.0, 64.0]);
        assert_eq!(a.bits().len(), 2);
        let c = ConfigKey::from_config(&space, &HpConfig::new(vec![0.5, 32.0])).unwrap();
        assert_ne!(a, c);
        assert_ne!(a.fingerprint(), c.fingerprint());
        // Rejections: wrong arity, out of range, non-finite.
        assert!(ConfigKey::from_config(&space, &HpConfig::new(vec![0.0])).is_err());
        assert!(ConfigKey::from_config(&space, &HpConfig::new(vec![2.0, 32.0])).is_err());
        assert!(ConfigKey::from_config(&space, &HpConfig::new(vec![f64::NAN, 32.0])).is_err());
    }

    #[test]
    fn canonical_value_keys_guard_representation() {
        let key = ConfigKey::from_canonical_values(&[-0.0, 1.5]).unwrap();
        assert_eq!(key.values()[0].to_bits(), 0.0f64.to_bits());
        assert!(ConfigKey::from_canonical_values(&[f64::INFINITY]).is_err());
        assert!(ConfigKey::from_canonical_values(&[f64::NAN]).is_err());
        // Round trip: values -> key -> values -> key is stable.
        let again = ConfigKey::from_canonical_values(&key.values()).unwrap();
        assert_eq!(key, again);
    }

    #[test]
    fn trial_keys_distinguish_fidelity_and_replicate() {
        let space = space();
        let request = |resource, noise_rep| fedhpo::TrialRequest {
            trial_id: 0,
            config: HpConfig::new(vec![0.25, 32.0]),
            resource,
            noise_rep,
        };
        let base = TrialKey::for_request(&space, &request(5, 0)).unwrap();
        let deeper = TrialKey::for_request(&space, &request(10, 0)).unwrap();
        let replicate = TrialKey::for_request(&space, &request(5, 1)).unwrap();
        assert_ne!(base, deeper);
        assert_ne!(base, replicate);
        assert_eq!(base.config, deeper.config);
        assert_eq!(base.config, replicate.config);
    }
}
