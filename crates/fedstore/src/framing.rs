//! Length-prefixed, CRC32C-checksummed binary frames — the wire unit of the
//! segment ledger.
//!
//! A frame on disk is:
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [payload: len bytes]
//! ```
//!
//! where `crc` is the CRC32C (Castagnoli) of the length bytes *followed by*
//! the payload, so a bit flip anywhere in the frame — including in the length
//! prefix itself — fails verification. The reader is **streaming**: it reads
//! through a caller-provided `Read` with one reusable payload buffer, never
//! holding more than a single frame in memory, and classifies every way a
//! frame can go wrong (truncated header, truncated payload, oversized length,
//! checksum mismatch) as [`FrameReadError::Corrupt`] carrying the byte offset
//! of the end of the last *valid* frame — exactly what crash recovery needs
//! to truncate a torn tail.

use std::io::Read;

/// Bytes of the `len + crc` frame header.
pub const FRAME_HEADER_BYTES: usize = 8;

/// Upper bound on a frame payload (16 MiB). Real ledger payloads are ~100
/// bytes; the cap turns a corrupted length prefix into a detected error
/// instead of a gigabyte allocation.
pub const MAX_FRAME_PAYLOAD: usize = 16 << 20;

/// CRC32C (Castagnoli, reflected polynomial `0x82F63B78`) lookup tables for
/// slice-by-8, built at compile time.
static CRC_TABLES: [[u32; 256]; 8] = crc_tables();

const fn crc_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0x82F6_3B78
            } else {
                crc >> 1
            };
            j += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

/// Folds `bytes` into a running (pre-inverted) CRC32C state.
fn crc32c_fold(mut state: u32, bytes: &[u8]) -> u32 {
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ state;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        state = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        state = (state >> 8) ^ CRC_TABLES[0][((state ^ u32::from(b)) & 0xFF) as usize];
    }
    state
}

/// The CRC32C checksum of `bytes`.
pub fn crc32c(bytes: &[u8]) -> u32 {
    !crc32c_fold(!0, bytes)
}

/// The checksum stored in a frame header: CRC32C over the little-endian
/// length bytes followed by the payload.
pub fn frame_crc(payload: &[u8]) -> u32 {
    let len = payload.len() as u32;
    !crc32c_fold(crc32c_fold(!0, &len.to_le_bytes()), payload)
}

/// Appends one complete frame (header + payload) to `out`.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME_PAYLOAD`] — ledger payloads are
/// bounded by construction, so an oversized one is a programming error, not
/// a runtime condition.
pub fn append_frame(out: &mut Vec<u8>, payload: &[u8]) {
    assert!(
        payload.len() <= MAX_FRAME_PAYLOAD,
        "frame payload of {} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte cap",
        payload.len()
    );
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_crc(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// How reading the next frame failed.
#[derive(Debug)]
pub enum FrameReadError {
    /// A real I/O failure from the underlying reader (not end-of-data).
    Io(std::io::Error),
    /// The stream is corrupt at the current frame: torn tail, oversized
    /// length, or checksum mismatch. Everything before `valid_up_to` (a byte
    /// offset into the stream, counted from where the reader started) is
    /// intact; everything from it on is garbage.
    Corrupt {
        /// End offset of the last frame that verified.
        valid_up_to: u64,
        /// What went wrong with the frame at `valid_up_to`.
        reason: String,
    },
}

impl std::fmt::Display for FrameReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameReadError::Io(e) => write!(f, "frame io error: {e}"),
            FrameReadError::Corrupt {
                valid_up_to,
                reason,
            } => write!(f, "corrupt frame after byte {valid_up_to}: {reason}"),
        }
    }
}

/// A streaming frame reader over any `Read`, reusing one payload buffer
/// across frames.
#[derive(Debug)]
pub struct FrameReader<R: Read> {
    reader: R,
    payload: Vec<u8>,
    /// End offset of the last successfully verified frame.
    valid_up_to: u64,
}

impl<R: Read> FrameReader<R> {
    /// Wraps `reader`, counting offsets from `start_offset` (the segment
    /// header size, when reading a segment body).
    pub fn new(reader: R, start_offset: u64) -> Self {
        FrameReader {
            reader,
            payload: Vec::new(),
            valid_up_to: start_offset,
        }
    }

    /// End offset of the last frame that verified — the truncation point
    /// after a corruption.
    pub fn valid_up_to(&self) -> u64 {
        self.valid_up_to
    }

    /// Reads and verifies the next frame, returning its payload (borrowed
    /// from the reusable internal buffer), or `None` at a clean end of
    /// stream (end-of-data exactly at a frame boundary).
    ///
    /// # Errors
    ///
    /// [`FrameReadError::Corrupt`] on a torn or damaged frame,
    /// [`FrameReadError::Io`] on an underlying read failure.
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>, FrameReadError> {
        let mut header = [0u8; FRAME_HEADER_BYTES];
        let got = read_up_to(&mut self.reader, &mut header).map_err(FrameReadError::Io)?;
        if got == 0 {
            return Ok(None);
        }
        if got < FRAME_HEADER_BYTES {
            return Err(self.corrupt(format!(
                "torn frame header ({got} of {FRAME_HEADER_BYTES} bytes)"
            )));
        }
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
        let stored_crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        if len > MAX_FRAME_PAYLOAD {
            return Err(self.corrupt(format!(
                "frame length {len} exceeds the {MAX_FRAME_PAYLOAD}-byte cap"
            )));
        }
        self.payload.resize(len, 0);
        let got = read_up_to(&mut self.reader, &mut self.payload).map_err(FrameReadError::Io)?;
        if got < len {
            return Err(self.corrupt(format!("torn frame payload ({got} of {len} bytes)")));
        }
        if frame_crc(&self.payload) != stored_crc {
            return Err(self.corrupt("checksum mismatch".into()));
        }
        self.valid_up_to += (FRAME_HEADER_BYTES + len) as u64;
        Ok(Some(&self.payload))
    }

    fn corrupt(&self, reason: String) -> FrameReadError {
        FrameReadError::Corrupt {
            valid_up_to: self.valid_up_to,
            reason,
        }
    }
}

/// Fills as much of `buf` as the reader can provide, returning the number of
/// bytes read (short only at end-of-data; `ErrorKind::Interrupted` retries).
fn read_up_to<R: Read>(reader: &mut R, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_matches_the_reference_vector() {
        // RFC 3720 / the universal CRC32C check value.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        // Folding in two pieces equals one pass (slice-by-8 + remainder).
        let data: Vec<u8> = (0..=255u8).cycle().take(1027).collect();
        let whole = crc32c(&data);
        let split = !crc32c_fold(crc32c_fold(!0, &data[..301]), &data[301..]);
        assert_eq!(whole, split);
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"hello");
        append_frame(&mut buf, b"");
        append_frame(&mut buf, &[0xFFu8; 300]);
        let total = buf.len() as u64;
        let mut reader = FrameReader::new(buf.as_slice(), 0);
        assert_eq!(reader.next_frame().unwrap().unwrap(), b"hello");
        assert_eq!(reader.next_frame().unwrap().unwrap(), b"");
        assert_eq!(reader.next_frame().unwrap().unwrap(), &[0xFFu8; 300][..]);
        assert!(reader.next_frame().unwrap().is_none());
        assert_eq!(reader.valid_up_to(), total);
    }

    #[test]
    fn every_truncation_of_a_tail_is_detected_at_the_right_offset() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"first");
        let first_end = buf.len();
        append_frame(&mut buf, b"second record");
        // A cut inside the first frame reports an empty valid prefix; a cut
        // inside the second reports exactly the end of the first; a cut at a
        // frame boundary is indistinguishable from clean EOF — which is what
        // a repaired torn tail looks like.
        for cut in 0..buf.len() {
            let mut reader = FrameReader::new(&buf[..cut], 0);
            if cut < first_end {
                if cut == 0 {
                    assert!(reader.next_frame().unwrap().is_none());
                    continue;
                }
                match reader.next_frame() {
                    Err(FrameReadError::Corrupt { valid_up_to, .. }) => {
                        assert_eq!(valid_up_to, 0, "cut at {cut}");
                    }
                    other => panic!("cut at {cut}: expected corruption, got {other:?}"),
                }
                continue;
            }
            assert_eq!(reader.next_frame().unwrap().unwrap(), b"first");
            if cut == first_end {
                assert!(reader.next_frame().unwrap().is_none());
                continue;
            }
            match reader.next_frame() {
                Err(FrameReadError::Corrupt { valid_up_to, .. }) => {
                    assert_eq!(valid_up_to, first_end as u64, "cut at {cut}");
                }
                other => panic!("cut at {cut}: expected corruption, got {other:?}"),
            }
        }
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let mut pristine = Vec::new();
        append_frame(&mut pristine, b"payload under test");
        for byte in 0..pristine.len() {
            for bit in 0..8 {
                let mut buf = pristine.clone();
                buf[byte] ^= 1 << bit;
                let mut reader = FrameReader::new(buf.as_slice(), 0);
                match reader.next_frame() {
                    Err(FrameReadError::Corrupt { valid_up_to, .. }) => {
                        assert_eq!(valid_up_to, 0, "flip at {byte}:{bit}");
                    }
                    Ok(Some(payload)) => {
                        panic!("flip at {byte}:{bit} went undetected: {payload:?}")
                    }
                    other => panic!("flip at {byte}:{bit}: unexpected {other:?}"),
                }
            }
        }
    }

    #[test]
    fn oversized_length_is_corruption_not_allocation() {
        let mut buf = vec![0xFFu8; 32];
        // len = 0xFFFFFFFF: far past the cap.
        let mut reader = FrameReader::new(buf.as_slice(), 0);
        match reader.next_frame() {
            Err(FrameReadError::Corrupt { reason, .. }) => {
                assert!(reason.contains("cap"), "{reason}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // A plausible-but-too-large length with a matching CRC still refuses.
        buf.clear();
        let len = (MAX_FRAME_PAYLOAD + 1) as u32;
        buf.extend_from_slice(&len.to_le_bytes());
        buf.extend_from_slice(&[0u8; 4]);
        let mut reader = FrameReader::new(buf.as_slice(), 0);
        assert!(matches!(
            reader.next_frame(),
            Err(FrameReadError::Corrupt { .. })
        ));
    }

    #[test]
    fn start_offset_shifts_reported_offsets() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"x");
        let end = buf.len() as u64;
        buf.extend_from_slice(&[7u8; 3]); // torn garbage
        let mut reader = FrameReader::new(buf.as_slice(), 100);
        assert_eq!(reader.next_frame().unwrap().unwrap(), b"x");
        assert_eq!(reader.valid_up_to(), 100 + end);
        match reader.next_frame() {
            Err(FrameReadError::Corrupt { valid_up_to, .. }) => {
                assert_eq!(valid_up_to, 100 + end);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
