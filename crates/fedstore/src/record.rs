//! One recorded evaluation and its provenance, with the ledger's JSON-line
//! encoding.
//!
//! A record carries both sides of the paper's noisy-evaluation story: the
//! noisy observation the tuner acted on *and* the ground-truth
//! full-validation error, so replayed campaigns can report what tuner choices
//! actually cost. Scores may be non-finite (a diverged training run reports
//! `NaN`); since JSON has no non-finite literals (and the vendored
//! `serde_json` refuses to write them), the encoding guards those values as
//! the strings `"NaN"`, `"inf"`, and `"-inf"`. Finite floats round-trip
//! bit-exactly through Rust's shortest float formatting.

use crate::key::{ConfigKey, TrialKey};
use crate::{Result, StoreError};
use serde::{DeError, Deserialize, Serialize, Value};

/// Where a record came from: enough context to audit a ledger and to tell
/// apart tables recorded under different campaigns. (`Hash` lets the binary
/// segment writer intern repeated provenances into a per-segment dictionary.)
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Provenance {
    /// Benchmark name (e.g. `"cifar10-like"`).
    pub benchmark: String,
    /// Experiment-scale label (e.g. `"smoke"`).
    pub scale: String,
    /// Root seed of the recording campaign.
    pub seed: u64,
    /// Noise-setting label the evaluation was observed under
    /// (e.g. `"noiseless"`, `"noisy"`).
    pub noise: String,
}

/// One evaluation in the trial ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// Canonical configuration identity (see [`ConfigKey`]).
    pub config: ConfigKey,
    /// Cumulative training rounds the configuration had received.
    pub resource: usize,
    /// Noise replicate index of the observation.
    pub rep: u64,
    /// The noisy score the tuner observed.
    pub noisy_score: f64,
    /// The true full-validation error at the same point.
    pub true_error: f64,
    /// Simulated completion time of the recording campaign's evaluation in
    /// virtual seconds (`0.0` when recorded by a synchronous driver). Rides
    /// along for audit: replays re-derive the virtual timeline from the cost
    /// model, and the stored stamp lets tests assert the timelines agree.
    pub sim_time: f64,
    /// Recording provenance.
    pub provenance: Provenance,
}

impl TrialRecord {
    /// The ledger key this record is stored under.
    pub fn key(&self) -> TrialKey {
        TrialKey {
            config: self.config.clone(),
            resource: self.resource,
            rep: self.rep,
        }
    }

    /// Returns the record with NaN scores collapsed to the canonical
    /// `f64::NAN` bit pattern, making ledger round trips bit-lossless even
    /// for poisoned observations.
    #[must_use]
    pub fn with_canonical_scores(mut self) -> Self {
        if self.noisy_score.is_nan() {
            self.noisy_score = f64::NAN;
        }
        if self.true_error.is_nan() {
            self.true_error = f64::NAN;
        }
        self
    }

    /// Validates that the virtual timestamp is storable: the deserializer
    /// rejects negative or non-finite stamps, so the write side must too —
    /// otherwise one bad insert would make a file-backed ledger unreadable
    /// on the next open.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidRecord`] for negative or non-finite
    /// `sim_time`.
    pub fn validate_sim_time(&self) -> Result<()> {
        if !self.sim_time.is_finite() || self.sim_time < 0.0 {
            return Err(StoreError::InvalidRecord {
                message: format!("sim time {} must be finite and non-negative", self.sim_time),
            });
        }
        Ok(())
    }

    /// Serializes the record as one compact JSON line (no trailing newline).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidRecord`] on a negative or non-finite
    /// `sim_time` (which the deserializer would reject) or if serialization
    /// fails (the score guards make that unreachable for records built
    /// through [`ConfigKey`]).
    pub fn to_line(&self) -> Result<String> {
        let mut line = String::new();
        self.to_line_into(&mut line)?;
        Ok(line)
    }

    /// Appends the record's JSON line (no trailing newline) to `out` —
    /// byte-identical to [`TrialRecord::to_line`], but allocation-free: the
    /// record's shape is encoded directly from its fields, with no
    /// intermediate value tree, so the file backend can thread one reusable
    /// buffer through every insert. The buffer is appended to, not cleared.
    ///
    /// # Errors
    ///
    /// Same as [`TrialRecord::to_line`].
    pub fn to_line_into(&self, out: &mut String) -> Result<()> {
        use std::fmt::Write;
        self.validate_sim_time()?;
        let encode = |e: serde_json::Error| StoreError::InvalidRecord {
            message: e.to_string(),
        };
        let write_score = |out: &mut String, score: f64| {
            if score.is_finite() {
                serde_json::write_f64(out, score).map_err(encode)
            } else {
                out.push_str(if score.is_nan() {
                    "\"NaN\""
                } else if score > 0.0 {
                    "\"inf\""
                } else {
                    "\"-inf\""
                });
                Ok(())
            }
        };
        out.push_str("{\"values\":[");
        for (i, &bits) in self.config.bits().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            serde_json::write_f64(out, f64::from_bits(bits)).map_err(encode)?;
        }
        // Writing integers into a String is infallible.
        let _ = write!(out, "],\"resource\":{},\"rep\":{}", self.resource, self.rep);
        out.push_str(",\"noisy\":");
        write_score(out, self.noisy_score)?;
        out.push_str(",\"true\":");
        write_score(out, self.true_error)?;
        out.push_str(",\"sim\":");
        serde_json::write_f64(out, self.sim_time).map_err(encode)?;
        out.push_str(",\"provenance\":{\"benchmark\":");
        serde_json::write_escaped(out, &self.provenance.benchmark);
        out.push_str(",\"scale\":");
        serde_json::write_escaped(out, &self.provenance.scale);
        let _ = write!(out, ",\"seed\":{},\"noise\":", self.provenance.seed);
        serde_json::write_escaped(out, &self.provenance.noise);
        out.push_str("}}");
        Ok(())
    }

    /// Parses one ledger line back into a record.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Parse`] (with `line` as the reported location)
    /// on malformed JSON or an invalid record.
    pub fn from_line(text: &str, line: usize) -> Result<Self> {
        serde_json::from_str(text).map_err(|e| StoreError::Parse {
            line,
            message: e.to_string(),
        })
    }
}

/// Encodes a possibly-non-finite score.
fn score_to_value(score: f64) -> Value {
    if score.is_finite() {
        Value::F64(score)
    } else if score.is_nan() {
        Value::Str("NaN".into())
    } else if score > 0.0 {
        Value::Str("inf".into())
    } else {
        Value::Str("-inf".into())
    }
}

/// Decodes a possibly-guarded score.
fn score_from_value(value: &Value) -> std::result::Result<f64, DeError> {
    match value {
        Value::F64(v) => Ok(*v),
        Value::U64(v) => Ok(*v as f64),
        Value::I64(v) => Ok(*v as f64),
        Value::Str(s) => match s.as_str() {
            "NaN" => Ok(f64::NAN),
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            other => Err(DeError::new(format!("unknown score guard {other:?}"))),
        },
        _ => Err(DeError::new("expected a number or score guard string")),
    }
}

impl Serialize for TrialRecord {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("values".into(), self.config.values().to_value()),
            ("resource".into(), self.resource.to_value()),
            ("rep".into(), self.rep.to_value()),
            ("noisy".into(), score_to_value(self.noisy_score)),
            ("true".into(), score_to_value(self.true_error)),
            ("sim".into(), Value::F64(self.sim_time)),
            ("provenance".into(), self.provenance.to_value()),
        ])
    }
}

impl Deserialize for TrialRecord {
    fn from_value(value: &Value) -> std::result::Result<Self, DeError> {
        let entries = match value {
            Value::Map(entries) => entries,
            _ => return Err(DeError::new("expected a map for TrialRecord")),
        };
        let field = |name: &str| {
            entries
                .iter()
                .find(|(key, _)| key == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::new(format!("TrialRecord: missing field {name}")))
        };
        let values = Vec::<f64>::from_value(field("values")?)?;
        let config =
            ConfigKey::from_canonical_values(&values).map_err(|e| DeError::new(e.to_string()))?;
        // Ledgers written before virtual time existed have no "sim" field;
        // they load as synchronously-recorded (time zero).
        let sim_time = match field("sim") {
            Ok(value) => f64::from_value(value)?,
            Err(_) => 0.0,
        };
        if !sim_time.is_finite() || sim_time < 0.0 {
            return Err(DeError::new(format!(
                "sim time {sim_time} must be finite and non-negative"
            )));
        }
        Ok(TrialRecord {
            config,
            resource: usize::from_value(field("resource")?)?,
            rep: u64::from_value(field("rep")?)?,
            noisy_score: score_from_value(field("noisy")?)?,
            true_error: score_from_value(field("true")?)?,
            sim_time,
            provenance: Provenance::from_value(field("provenance")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn provenance() -> Provenance {
        Provenance {
            benchmark: "cifar10-like".into(),
            scale: "smoke".into(),
            seed: 7,
            noise: "noisy".into(),
        }
    }

    fn record(noisy: f64, true_error: f64) -> TrialRecord {
        TrialRecord {
            config: ConfigKey::from_canonical_values(&[1e-3, 0.5, 64.0]).unwrap(),
            resource: 6,
            rep: 1,
            noisy_score: noisy,
            true_error,
            sim_time: 0.0,
            provenance: provenance(),
        }
    }

    #[test]
    fn buffered_encoder_matches_the_tree_writer_byte_for_byte() {
        // `to_line_into` hand-encodes the record shape; the value-tree path
        // (`Serialize` + `serde_json::to_string`) is the reference it must
        // never drift from — the ledger format is defined once.
        let mut esc = record(f64::NAN, f64::NEG_INFINITY).with_canonical_scores();
        esc.provenance.benchmark = "quo\"ted\nbench".into();
        esc.provenance.noise = "ctrl\u{0001}".into();
        esc.sim_time = 0.1 + 0.2;
        for r in [record(0.25, 1.0 / 3.0), record(f64::INFINITY, -0.75), esc] {
            let tree = serde_json::to_string(&r).unwrap();
            let mut buf = String::from("reused:");
            r.to_line_into(&mut buf).unwrap();
            assert_eq!(buf, format!("reused:{tree}"));
            assert_eq!(r.to_line().unwrap(), tree);
        }
    }

    #[test]
    fn finite_records_round_trip_bit_exactly() {
        let original = record(0.1 + 0.2, 1.0 / 3.0);
        let line = original.to_line().unwrap();
        assert!(!line.contains('\n'));
        let back = TrialRecord::from_line(&line, 1).unwrap();
        assert_eq!(back, original);
        assert_eq!(back.noisy_score.to_bits(), original.noisy_score.to_bits());
        assert_eq!(back.key(), original.key());
    }

    #[test]
    fn non_finite_scores_are_guarded() {
        for (noisy, encoded) in [
            (f64::NAN, "\"NaN\""),
            (f64::INFINITY, "\"inf\""),
            (f64::NEG_INFINITY, "\"-inf\""),
        ] {
            let original = record(noisy, 0.9).with_canonical_scores();
            let line = original.to_line().unwrap();
            assert!(line.contains(encoded), "{line}");
            let back = TrialRecord::from_line(&line, 1).unwrap();
            assert_eq!(back.noisy_score.to_bits(), original.noisy_score.to_bits());
            assert_eq!(back.true_error, 0.9);
        }
    }

    #[test]
    fn sim_time_round_trips_and_old_ledgers_load_at_time_zero() {
        // A virtual-time stamp round-trips bit-exactly.
        let mut stamped = record(0.5, 0.5);
        stamped.sim_time = 829.0625;
        let back = TrialRecord::from_line(&stamped.to_line().unwrap(), 1).unwrap();
        assert_eq!(back.sim_time.to_bits(), stamped.sim_time.to_bits());
        // A pre-virtual-time ledger line (no "sim" field) loads as recorded
        // synchronously.
        let legacy = "{\"values\":[1.0],\"resource\":1,\"rep\":0,\"noisy\":0.5,\"true\":0.5,\
             \"provenance\":{\"benchmark\":\"b\",\"scale\":\"s\",\"seed\":0,\"noise\":\"n\"}}";
        let back = TrialRecord::from_line(legacy, 1).unwrap();
        assert_eq!(back.sim_time, 0.0);
        // Negative or non-finite stamps are rejected — symmetrically on
        // both sides of the round trip, so a bad insert can never produce a
        // ledger line the next open would refuse.
        let bad = legacy.replace("\"rep\":0", "\"rep\":0,\"sim\":-1.0");
        assert!(TrialRecord::from_line(&bad, 1).is_err());
        for bad_stamp in [-5.0, f64::NAN, f64::INFINITY] {
            let mut poisoned = record(0.5, 0.5);
            poisoned.sim_time = bad_stamp;
            assert!(poisoned.validate_sim_time().is_err(), "{bad_stamp}");
            assert!(poisoned.to_line().is_err(), "{bad_stamp}");
        }
    }

    #[test]
    fn malformed_lines_report_their_location() {
        let err = TrialRecord::from_line("{broken", 42).unwrap_err();
        assert!(err.to_string().contains("line 42"), "{err}");
        let err = TrialRecord::from_line("{\"values\":[1.0]}", 3).unwrap_err();
        assert!(err.to_string().contains("missing field"), "{err}");
        // Non-finite configuration values are rejected on load.
        let err =
            TrialRecord::from_line("{\"values\":[\"NaN\"],\"resource\":1,\"rep\":0,\"noisy\":0.5,\"true\":0.5,\"provenance\":{\"benchmark\":\"b\",\"scale\":\"s\",\"seed\":0,\"noise\":\"n\"}}", 1)
                .unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        let err = TrialRecord::from_line("{\"values\":[1.0],\"resource\":1,\"rep\":0,\"noisy\":\"nope\",\"true\":0.5,\"provenance\":{\"benchmark\":\"b\",\"scale\":\"s\",\"seed\":0,\"noise\":\"n\"}}", 1)
            .unwrap_err();
        assert!(err.to_string().contains("score guard"), "{err}");
    }
}
