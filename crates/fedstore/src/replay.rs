//! Record/replay counterparts of the scheduled method comparison.
//!
//! [`record_method_comparison`] is a drop-in replacement for
//! `fedtune_core::experiments::methods::run_method_comparison_scheduled` that
//! additionally persists every evaluation into a [`TrialStore`]; it derives
//! campaign seeds from the unit's grid position exactly like the live driver,
//! so its result is bit-identical to the live comparison — and, when the
//! store already holds a previous (possibly interrupted) recording of the
//! same campaign, recorded evaluations are served from the ledger instead of
//! recomputed.
//!
//! [`replay_method_comparison`] then re-runs the whole comparison against the
//! table alone: no datasets are generated and no model is trained, so method
//! sweeps (fig08/fig15-16 style) cost tuner time instead of simulation time
//! while reproducing the live selection bit-for-bit.

use crate::record::Provenance;
use crate::recorder::RecordingObjective;
use crate::store::TrialStore;
use crate::tabular::TabularObjective;
use feddata::Benchmark;
use fedhpo::SearchSpace;
use fedmath::SeedTree;
use fedtune_core::experiments::methods::{MethodComparison, MethodRun, TuningMethod};
use fedtune_core::{
    run_scheduled, BatchFederatedObjective, BenchmarkContext, ExecutionPolicy, ExperimentScale,
    NoiseConfig, TrialRunner,
};

/// The provenance stamp for one campaign cell.
pub fn campaign_provenance(
    benchmark: Benchmark,
    scale: &ExperimentScale,
    seed: u64,
    noise_label: &str,
) -> Provenance {
    Provenance {
        benchmark: benchmark.name().to_string(),
        scale: format!("{:?}", scale.data_scale).to_lowercase(),
        seed,
        noise: noise_label.to_string(),
    }
}

/// The campaign grid of the scheduled method comparison, in the live
/// driver's enumeration order: method-major, then noise setting, then trial.
fn campaign_units<'a>(
    methods: &'a [TuningMethod],
    noise_settings: &'a [(String, NoiseConfig)],
    scale: &ExperimentScale,
) -> Vec<(TuningMethod, &'a str, &'a NoiseConfig, usize)> {
    methods
        .iter()
        .flat_map(|&method| {
            noise_settings.iter().flat_map(move |(label, noise)| {
                (0..scale.method_trials).map(move |trial| (method, label.as_str(), noise, trial))
            })
        })
        .collect()
}

/// The budget grid the live comparison reports online curves over.
fn budget_grid(scale: &ExperimentScale) -> Vec<usize> {
    let grid_steps = scale.num_configs.max(4);
    (1..=grid_steps)
        .map(|i| i * scale.total_budget / grid_steps)
        .collect()
}

/// Runs the scheduled method comparison live while recording every
/// evaluation into `store`. Bit-identical to
/// `run_method_comparison_scheduled` with the same arguments (asserted in
/// `tests/record_replay.rs`); campaigns whose evaluations are already in the
/// store are served from it instead of retrained, which is how an
/// interrupted recording resumes.
///
/// # Errors
///
/// Propagates training, evaluation, and ledger failures.
pub fn record_method_comparison(
    batch_policy: ExecutionPolicy,
    benchmark: Benchmark,
    scale: &ExperimentScale,
    methods: &[TuningMethod],
    noise_settings: &[(String, NoiseConfig)],
    seed: u64,
    store: &mut TrialStore,
) -> fedtune_core::Result<MethodComparison> {
    let ctx = BenchmarkContext::new(benchmark, scale, seed)?;
    let units = campaign_units(methods, noise_settings, scale);
    // Unit seeds replicate the live driver: the engine roots its fan-out at
    // `derive_seed(seed, 7)` and gives trial `i` the subtree at child `i`.
    let tree = SeedTree::new(fedmath::rng::derive_seed(seed, 7));
    let mut runs = Vec::with_capacity(units.len());
    for (index, (method, noise_label, noise, trial)) in units.into_iter().enumerate() {
        let unit = tree.child(index as u64);
        let mut scheduler = method.scheduler(scale)?;
        let planned = method.planned_evaluations(scale);
        let mut objective =
            BatchFederatedObjective::new(&ctx, *noise, planned, unit.child(0).seed())?
                .with_batch_runner(TrialRunner::new(batch_policy));
        let mut recording = RecordingObjective::new(
            &mut objective,
            ctx.space(),
            campaign_provenance(benchmark, scale, seed, noise_label),
            store,
        );
        let mut rng = unit.child(1).rng();
        run_scheduled(scheduler.as_mut(), ctx.space(), &mut recording, &mut rng)?;
        runs.push(MethodRun {
            method: method.name().to_string(),
            noise_label: noise_label.to_string(),
            trial,
            log: recording.into_log(),
        });
    }
    Ok(MethodComparison {
        benchmark: benchmark.name().to_string(),
        runs,
        budget_grid: budget_grid(scale),
    })
}

/// Replays the scheduled method comparison against `store` alone — no
/// dataset generation, no training. The schedulers re-derive the recorded
/// campaigns from the same positional seeds, every lookup hits the table
/// exactly, and the produced [`MethodComparison`] (logs, selection, budget
/// grid) is bit-identical to the live run that recorded the table.
///
/// The replay assumes the recording used the paper's default search space
/// (which every benchmark context builds); campaigns recorded under a custom
/// space need a matching [`TabularObjective`] driven directly.
///
/// # Errors
///
/// Propagates scheduler failures and table misses (e.g. replaying a campaign
/// that was never recorded, or at a different seed).
pub fn replay_method_comparison(
    store: &TrialStore,
    benchmark: Benchmark,
    scale: &ExperimentScale,
    methods: &[TuningMethod],
    noise_settings: &[(String, NoiseConfig)],
    seed: u64,
) -> fedtune_core::Result<MethodComparison> {
    let space = SearchSpace::paper_default();
    let units = campaign_units(methods, noise_settings, scale);
    let tree = SeedTree::new(fedmath::rng::derive_seed(seed, 7));
    let mut runs = Vec::with_capacity(units.len());
    for (index, (method, noise_label, _noise, trial)) in units.into_iter().enumerate() {
        let unit = tree.child(index as u64);
        let mut scheduler = method.scheduler(scale)?;
        let mut tabular = TabularObjective::new(store, &space);
        let mut rng = unit.child(1).rng();
        run_scheduled(scheduler.as_mut(), &space, &mut tabular, &mut rng)?;
        runs.push(MethodRun {
            method: method.name().to_string(),
            noise_label: noise_label.to_string(),
            trial,
            log: tabular.into_log(),
        });
    }
    Ok(MethodComparison {
        benchmark: benchmark.name().to_string(),
        runs,
        budget_grid: budget_grid(scale),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedtune_core::experiments::methods::paper_noise_settings;

    #[test]
    fn record_then_replay_round_trips_one_method() {
        let scale = ExperimentScale::smoke();
        let methods = [TuningMethod::RandomSearch];
        let settings = paper_noise_settings();
        let mut store = TrialStore::in_memory();
        let recorded = record_method_comparison(
            ExecutionPolicy::Sequential,
            Benchmark::Cifar10Like,
            &scale,
            &methods,
            &settings,
            3,
            &mut store,
        )
        .unwrap();
        assert_eq!(recorded.runs.len(), 2 * scale.method_trials);
        assert!(!store.is_empty());
        let replayed = replay_method_comparison(
            &store,
            Benchmark::Cifar10Like,
            &scale,
            &methods,
            &settings,
            3,
        )
        .unwrap();
        assert_eq!(recorded, replayed);
        // Replaying at a seed that was never recorded misses the table.
        assert!(replay_method_comparison(
            &store,
            Benchmark::Cifar10Like,
            &scale,
            &methods,
            &settings,
            4,
        )
        .is_err());
    }

    #[test]
    fn provenance_labels_campaign_cells() {
        let p = campaign_provenance(
            Benchmark::Cifar10Like,
            &ExperimentScale::smoke(),
            9,
            "noisy",
        );
        assert_eq!(p.benchmark, "cifar10-like");
        assert_eq!(p.scale, "smoke");
        assert_eq!(p.seed, 9);
        assert_eq!(p.noise, "noisy");
    }
}
