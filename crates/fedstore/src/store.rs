//! The persistent trial store: an in-memory index over an append-only
//! ledger with two interchangeable file backends.
//!
//! The store is **content-addressed**: records are keyed by
//! `(canonical configuration bits, resource, replicate)` — never by trial id
//! or arrival order — so any campaign that re-derives the same points (a
//! resumed run, a replayed method sweep, a differently-ordered parallel
//! schedule) finds them. Both backends are append-only and recover torn
//! tails on open, and both stream during re-indexing — opening a ledger
//! never buffers the whole file:
//!
//! - **Binary segments** ([`TrialStore::open_segments`]) — the default for
//!   recording at scale: CRC32C-framed records in fixed-size segment files
//!   with configurable [`Durability`] and group commit (see
//!   [`crate::segment`]), plus crash-safe [compaction](TrialStore::compact).
//! - **JSON lines** ([`TrialStore::open`]) — the human-readable interchange
//!   format; [`TrialStore::export_jsonl`]/[`TrialStore::import_jsonl`]
//!   convert losslessly between the two.

use crate::compaction::{self, CompactionReport};
use crate::key::{ConfigKey, TrialKey};
use crate::record::TrialRecord;
use crate::segment::{self, Durability, SegmentConfig, SegmentWriter};
use crate::{Result, StoreError};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// The append handle of a file-backed store.
#[derive(Debug)]
enum Backend {
    /// One JSON record per line, appended through a reusable encode buffer.
    Jsonl {
        path: PathBuf,
        file: std::fs::File,
        line_buf: String,
        durability: Durability,
        unsynced: u64,
    },
    /// CRC-framed binary segments (see [`crate::segment`]).
    Segments(SegmentWriter),
}

/// A persistent, content-addressed collection of [`TrialRecord`]s.
#[derive(Debug, Default)]
pub struct TrialStore {
    records: Vec<TrialRecord>,
    index: HashMap<TrialKey, usize>,
    /// Replicate indices recorded per `(configuration, resource)` point,
    /// kept sorted for deterministic resampling.
    replicates: HashMap<(ConfigKey, usize), Vec<u64>>,
    backend: Option<Backend>,
}

impl TrialStore {
    /// Creates an empty store with no file backend.
    pub fn in_memory() -> Self {
        TrialStore::default()
    }

    /// Opens (or creates) a JSON-lines ledger at `path`: existing lines are
    /// parsed and indexed, and subsequent inserts append to the file.
    ///
    /// A **torn final line** — the signature of a crash mid-append (the file
    /// does not end in a newline and its last line does not parse) — is
    /// recovered by truncating the ledger to its last complete record: the
    /// evaluation in flight is lost, everything before it is kept. Any other
    /// corruption still fails loudly.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failures and
    /// [`StoreError::Parse`]/[`StoreError::Conflict`] on a corrupt ledger.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let io_error = |e: std::io::Error| StoreError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        };
        let mut store = TrialStore::in_memory();
        // Stream the ledger through one reusable line buffer: re-indexing a
        // multi-gigabyte file allocates nothing per record beyond the index
        // entries themselves.
        match std::fs::File::open(&path) {
            Ok(file) => {
                let mut reader = BufReader::with_capacity(1 << 20, file);
                let mut line = String::new();
                let mut number = 0;
                let mut valid_end: u64 = 0;
                loop {
                    line.clear();
                    let n = reader.read_line(&mut line).map_err(io_error)?;
                    if n == 0 {
                        break;
                    }
                    number += 1;
                    let complete = line.ends_with('\n');
                    let stripped = line.trim_end_matches(['\n', '\r']);
                    if stripped.trim().is_empty() {
                        valid_end += n as u64;
                        continue;
                    }
                    match TrialRecord::from_line(stripped, number) {
                        Ok(record) => {
                            store.insert(record)?;
                            valid_end += n as u64;
                        }
                        // A torn final line — the signature of a crash
                        // mid-append — truncates to the last complete
                        // record; mid-file corruption still fails loudly.
                        Err(_) if !complete => {
                            drop(reader);
                            let file = std::fs::OpenOptions::new()
                                .write(true)
                                .open(&path)
                                .map_err(io_error)?;
                            file.set_len(valid_end).map_err(io_error)?;
                            file.sync_data().map_err(io_error)?;
                            break;
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_error(e)),
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(io_error)?;
        store.backend = Some(Backend::Jsonl {
            path,
            file,
            line_buf: String::new(),
            durability: Durability::PerInsert,
            unsynced: 0,
        });
        Ok(store)
    }

    /// Opens (or creates) a binary segment ledger in the directory `dir`
    /// with the default [`SegmentConfig`] (8 MiB segments, per-insert
    /// durability).
    ///
    /// # Errors
    ///
    /// See [`TrialStore::open_segments_with`].
    pub fn open_segments(dir: impl AsRef<Path>) -> Result<Self> {
        Self::open_segments_with(dir, SegmentConfig::default())
    }

    /// Opens (or creates) a binary segment ledger in `dir`: any interrupted
    /// compaction is finished or rolled back, torn tails and corrupt frames
    /// are truncated at the last valid frame ([`segment::recover_with`]),
    /// the surviving records are streamed into the index — never holding
    /// the ledger in memory — and subsequent inserts append fresh segments
    /// under `config`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failures and
    /// [`StoreError::Conflict`] on a ledger with contradictory records.
    pub fn open_segments_with(dir: impl AsRef<Path>, config: SegmentConfig) -> Result<Self> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| StoreError::Io {
            path: dir.display().to_string(),
            message: e.to_string(),
        })?;
        let mut store = TrialStore::in_memory();
        segment::recover_with(dir, |record| store.insert(record).map(|_| ()))?;
        let writer = SegmentWriter::open_assume_recovered(dir, config)?;
        store.backend = Some(Backend::Segments(writer));
        Ok(store)
    }

    /// Rebuilds an in-memory store from ledger text (one JSON record per
    /// line; blank lines are ignored).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Parse`] on a malformed line and
    /// [`StoreError::Conflict`] on contradictory duplicate keys.
    pub fn from_jsonl(text: &str) -> Result<Self> {
        let mut store = TrialStore::in_memory();
        for (number, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let record = TrialRecord::from_line(line, number + 1)?;
            store.insert(record)?;
        }
        Ok(store)
    }

    /// Serializes every record as ledger text (one JSON line per record).
    ///
    /// # Errors
    ///
    /// Propagates record serialization failures.
    pub fn to_jsonl(&self) -> Result<String> {
        let mut out = String::new();
        for record in &self.records {
            record.to_line_into(&mut out)?;
            out.push('\n');
        }
        Ok(out)
    }

    /// The ledger path when file-backed: the file for JSONL, the segment
    /// directory for the binary backend.
    pub fn path(&self) -> Option<&Path> {
        match self.backend.as_ref()? {
            Backend::Jsonl { path, .. } => Some(path.as_path()),
            Backend::Segments(writer) => Some(writer.dir()),
        }
    }

    /// Number of records in the store.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, in insertion (ledger) order.
    pub fn records(&self) -> &[TrialRecord] {
        &self.records
    }

    /// The record stored under `key`, if any.
    pub fn get(&self, key: &TrialKey) -> Option<&TrialRecord> {
        self.index.get(key).map(|&i| &self.records[i])
    }

    /// Returns `true` when a record exists under `key`.
    pub fn contains(&self, key: &TrialKey) -> bool {
        self.index.contains_key(key)
    }

    /// The recorded replicates of `(config, resource)`, in ascending
    /// replicate order — the pool [`crate::TabularObjective`] resamples
    /// noise from.
    pub fn replicates(&self, config: &ConfigKey, resource: usize) -> Vec<&TrialRecord> {
        let Some(reps) = self.replicates.get(&(config.clone(), resource)) else {
            return Vec::new();
        };
        reps.iter()
            .map(|&rep| {
                let key = TrialKey {
                    config: config.clone(),
                    resource,
                    rep,
                };
                self.get(&key).expect("replicate list mirrors the index")
            })
            .collect()
    }

    /// Inserts a record, appending it to the ledger when file-backed, and
    /// marks a batch boundary (under [`Durability::PerInsert`] — the
    /// default — the record is synced to disk before this returns). NaN
    /// scores are collapsed to the canonical bit pattern first (see
    /// [`TrialRecord::with_canonical_scores`]), keeping round trips
    /// bit-lossless.
    ///
    /// Returns `true` when the record was new. Re-inserting a bit-identical
    /// record is an idempotent no-op returning `false`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidRecord`] for a negative or non-finite
    /// `sim_time`, [`StoreError::Conflict`] when the key exists with a
    /// different payload, and [`StoreError::Io`] when the ledger append
    /// fails.
    pub fn insert(&mut self, record: TrialRecord) -> Result<bool> {
        let added = self.insert_unsynced(record)?;
        self.group_commit()?;
        Ok(added)
    }

    /// Inserts every record of a batch, then marks **one** batch boundary:
    /// whatever the durability mode, the whole batch costs at most one
    /// `sync_data` — the group-commit fast path for bulk recording.
    ///
    /// Returns how many records were new.
    ///
    /// # Errors
    ///
    /// See [`TrialStore::insert`]; the first failing record aborts the
    /// batch (records before it are already appended).
    pub fn insert_many(&mut self, records: impl IntoIterator<Item = TrialRecord>) -> Result<usize> {
        let mut added = 0;
        for record in records {
            if self.insert_unsynced(record)? {
                added += 1;
            }
        }
        self.group_commit()?;
        Ok(added)
    }

    /// Inserts a record **without** marking a batch boundary — the building
    /// block callers with their own batching (the recorder's miss loop,
    /// [`TrialStore::insert_many`]) pair with
    /// [`TrialStore::group_commit`].
    ///
    /// # Errors
    ///
    /// See [`TrialStore::insert`].
    pub fn insert_unsynced(&mut self, record: TrialRecord) -> Result<bool> {
        let record = record.with_canonical_scores();
        // Reject timestamps the ledger deserializer would refuse, even for
        // in-memory stores — a record must never be accepted on one side of
        // the round trip and rejected on the other.
        record.validate_sim_time()?;
        let key = record.key();
        if let Some(existing) = self.get(&key) {
            let identical = existing.noisy_score.to_bits() == record.noisy_score.to_bits()
                && existing.true_error.to_bits() == record.true_error.to_bits()
                && existing.provenance == record.provenance;
            return if identical {
                Ok(false)
            } else {
                Err(StoreError::Conflict {
                    message: format!(
                        "(resource {}, rep {}) of config {:?} already recorded with a different payload",
                        key.resource,
                        key.rep,
                        key.config.values(),
                    ),
                })
            };
        }
        match &mut self.backend {
            None => {}
            Some(Backend::Jsonl {
                path,
                file,
                line_buf,
                unsynced,
                ..
            }) => {
                let io_error = |e: std::io::Error| StoreError::Io {
                    path: path.display().to_string(),
                    message: e.to_string(),
                };
                line_buf.clear();
                record.to_line_into(line_buf)?;
                line_buf.push('\n');
                file.write_all(line_buf.as_bytes()).map_err(io_error)?;
                *unsynced += 1;
            }
            Some(Backend::Segments(writer)) => writer.append_unsynced(&record)?,
        }
        let point = (key.config.clone(), key.resource);
        let reps = self.replicates.entry(point).or_default();
        let position = reps.partition_point(|&r| r < key.rep);
        reps.insert(position, key.rep);
        self.index.insert(key, self.records.len());
        self.records.push(record);
        Ok(true)
    }

    /// Marks a batch boundary: syncs the backend now if its durability
    /// policy asks for it, given the records appended since the last sync.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on sync failures.
    pub fn group_commit(&mut self) -> Result<()> {
        match &mut self.backend {
            None => Ok(()),
            Some(Backend::Jsonl {
                path,
                file,
                durability,
                unsynced,
                ..
            }) => {
                if durability.wants_sync(*unsynced) {
                    // `sync_data` (not `flush`, which is a userspace no-op
                    // for `File`) is what makes the durability claim real.
                    file.sync_data().map_err(|e| StoreError::Io {
                        path: path.display().to_string(),
                        message: e.to_string(),
                    })?;
                    *unsynced = 0;
                }
                Ok(())
            }
            Some(Backend::Segments(writer)) => writer.group_commit(),
        }
    }

    /// Syncs every appended record to disk unconditionally, whatever the
    /// durability mode. Campaigns running group commit call this at their
    /// own checkpoints (and should call it before a clean shutdown).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on sync failures.
    pub fn flush(&mut self) -> Result<()> {
        match &mut self.backend {
            None => Ok(()),
            Some(Backend::Jsonl {
                path,
                file,
                unsynced,
                ..
            }) => {
                file.sync_data().map_err(|e| StoreError::Io {
                    path: path.display().to_string(),
                    message: e.to_string(),
                })?;
                *unsynced = 0;
                Ok(())
            }
            Some(Backend::Segments(writer)) => writer.flush(),
        }
    }

    /// Changes the backend's durability policy (no-op for in-memory
    /// stores). Loosening the policy never un-syncs anything already on
    /// disk; tightening it takes effect at the next batch boundary.
    pub fn set_durability(&mut self, durability: Durability) {
        match &mut self.backend {
            None => {}
            Some(Backend::Jsonl {
                durability: slot, ..
            }) => *slot = durability,
            Some(Backend::Segments(writer)) => writer.set_durability(durability),
        }
    }

    /// Exports every record as a JSONL interchange file at `path`
    /// (atomically: written to a temporary sibling, synced, renamed).
    /// Lossless: `import_jsonl` of the result rebuilds bit-identical
    /// records, non-finite scores included.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failures.
    pub fn export_jsonl(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        let tmp = path.with_extension("jsonl.tmp");
        self.export_jsonl_at(&tmp)?;
        std::fs::rename(&tmp, path).map_err(|e| StoreError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })
    }

    /// Imports a JSONL interchange file, inserting every record as one
    /// group-committed batch (idempotent duplicates are skipped). Returns
    /// how many records were new.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Parse`] on a malformed line (imports fail
    /// loudly — torn-tail recovery is for a backend's own ledger, not for
    /// interchange files), [`StoreError::Conflict`] on contradictory
    /// records, and [`StoreError::Io`] on filesystem failures.
    pub fn import_jsonl(&mut self, path: impl AsRef<Path>) -> Result<usize> {
        let path = path.as_ref();
        let io_error = |e: std::io::Error| StoreError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        };
        let file = std::fs::File::open(path).map_err(io_error)?;
        let mut reader = BufReader::with_capacity(1 << 20, file);
        let mut line = String::new();
        let mut number = 0;
        let mut added = 0;
        loop {
            line.clear();
            if reader.read_line(&mut line).map_err(io_error)? == 0 {
                break;
            }
            number += 1;
            let stripped = line.trim_end_matches(['\n', '\r']);
            if stripped.trim().is_empty() {
                continue;
            }
            if self.insert_unsynced(TrialRecord::from_line(stripped, number)?)? {
                added += 1;
            }
        }
        self.group_commit()?;
        Ok(added)
    }

    /// Compacts the ledger in place: rewrites it as a snapshot of the
    /// current index — one record per key, in insertion order, duplicates
    /// long since dropped by idempotent re-inserts — and swaps it in
    /// crash-safely. For the segment backend this is the marker-committed
    /// swap of [`crate::compaction`]; for JSONL it is an atomic
    /// write-to-temporary-and-rename. In-memory stores report themselves
    /// unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failures.
    pub fn compact(&mut self) -> Result<CompactionReport> {
        match self.backend.take() {
            None => Ok(CompactionReport {
                records: self.records.len() as u64,
                ..CompactionReport::default()
            }),
            Some(Backend::Jsonl {
                path,
                file,
                line_buf,
                durability,
                ..
            }) => {
                let io_error = |e: std::io::Error| StoreError::Io {
                    path: path.display().to_string(),
                    message: e.to_string(),
                };
                let bytes_before = file.metadata().map_err(io_error)?.len();
                drop(file);
                let tmp = path.with_extension("jsonl.tmp");
                self.export_jsonl_at(&tmp)?;
                std::fs::rename(&tmp, &path).map_err(io_error)?;
                let file = std::fs::OpenOptions::new()
                    .append(true)
                    .open(&path)
                    .map_err(io_error)?;
                let bytes_after = file.metadata().map_err(io_error)?.len();
                self.backend = Some(Backend::Jsonl {
                    path,
                    file,
                    line_buf,
                    durability,
                    unsynced: 0,
                });
                Ok(CompactionReport {
                    records: self.records.len() as u64,
                    bytes_before,
                    bytes_after,
                    segments_before: 1,
                    segments_after: 1,
                })
            }
            Some(Backend::Segments(writer)) => {
                let dir = writer.dir().to_path_buf();
                let config = *writer.config();
                // Seal the writer (its Drop flushes) before touching files.
                drop(writer);
                let report = compaction::swap_in_snapshot(&dir, config, self.records.iter());
                // Whatever happened, reattach a writer — the swap protocol
                // guarantees the directory is the old or the new snapshot.
                let writer = SegmentWriter::open_assume_recovered(&dir, config)?;
                self.backend = Some(Backend::Segments(writer));
                report
            }
        }
    }

    /// `export_jsonl` without the atomic rename — writes directly to
    /// `path`, synced.
    fn export_jsonl_at(&self, path: &Path) -> Result<()> {
        let io_error = |e: std::io::Error| StoreError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        };
        let file = std::fs::File::create(path).map_err(io_error)?;
        let mut out = BufWriter::with_capacity(1 << 20, file);
        let mut line_buf = String::new();
        for record in &self.records {
            line_buf.clear();
            record.to_line_into(&mut line_buf)?;
            line_buf.push('\n');
            out.write_all(line_buf.as_bytes()).map_err(io_error)?;
        }
        out.flush().map_err(io_error)?;
        out.get_ref().sync_data().map_err(io_error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Provenance;

    fn provenance(noise: &str) -> Provenance {
        Provenance {
            benchmark: "cifar10-like".into(),
            scale: "smoke".into(),
            seed: 0,
            noise: noise.into(),
        }
    }

    fn record(values: &[f64], resource: usize, rep: u64, noisy: f64) -> TrialRecord {
        TrialRecord {
            config: ConfigKey::from_canonical_values(values).unwrap(),
            resource,
            rep,
            noisy_score: noisy,
            true_error: noisy * 0.5,
            sim_time: 0.0,
            provenance: provenance("noisy"),
        }
    }

    #[test]
    fn insert_rejects_unstorable_sim_times() {
        // A record the ledger deserializer would refuse must be rejected at
        // insert time, never silently persisted into an unreadable file.
        let mut store = TrialStore::in_memory();
        let mut poisoned = record(&[1.0], 2, 0, 0.5);
        poisoned.sim_time = -5.0;
        assert!(store.insert(poisoned).is_err());
        assert!(store.is_empty());
    }

    #[test]
    fn insert_index_and_lookup() {
        let mut store = TrialStore::in_memory();
        assert!(store.is_empty());
        assert!(store.insert(record(&[0.5], 3, 0, 0.4)).unwrap());
        assert!(store.insert(record(&[0.5], 3, 1, 0.6)).unwrap());
        assert!(store.insert(record(&[0.5], 6, 0, 0.3)).unwrap());
        assert!(store.insert(record(&[0.7], 3, 0, 0.9)).unwrap());
        assert_eq!(store.len(), 4);
        let key = record(&[0.5], 3, 1, 0.0).key();
        assert!(store.contains(&key));
        assert_eq!(store.get(&key).unwrap().noisy_score, 0.6);
        // Replicates come back rep-sorted regardless of insertion order.
        let config = ConfigKey::from_canonical_values(&[0.5]).unwrap();
        let reps = store.replicates(&config, 3);
        assert_eq!(reps.iter().map(|r| r.rep).collect::<Vec<u64>>(), vec![0, 1]);
        assert!(store
            .replicates(&ConfigKey::from_canonical_values(&[0.9]).unwrap(), 3)
            .is_empty());
        // -0.0 looks up the +0.0 record.
        assert!(store.insert(record(&[0.0], 1, 0, 0.1)).unwrap());
        let negzero = record(&[-0.0], 1, 0, 0.1).key();
        assert!(store.contains(&negzero));
    }

    #[test]
    fn duplicate_inserts_are_idempotent_but_conflicts_fail() {
        let mut store = TrialStore::in_memory();
        assert!(store.insert(record(&[0.5], 3, 0, 0.4)).unwrap());
        // Bit-identical: no-op.
        assert!(!store.insert(record(&[0.5], 3, 0, 0.4)).unwrap());
        assert_eq!(store.len(), 1);
        // Same key, different score: conflict.
        let err = store.insert(record(&[0.5], 3, 0, 0.5)).unwrap_err();
        assert!(matches!(err, StoreError::Conflict { .. }), "{err}");
        // Same key, different provenance: conflict too.
        let mut other = record(&[0.5], 3, 0, 0.4);
        other.provenance = provenance("noiseless");
        assert!(store.insert(other).is_err());
    }

    #[test]
    fn jsonl_round_trip_preserves_everything() {
        let mut store = TrialStore::in_memory();
        store.insert(record(&[1e-3, 64.0], 6, 0, 0.37)).unwrap();
        store.insert(record(&[1e-3, 64.0], 6, 1, f64::NAN)).unwrap();
        store
            .insert(record(&[-0.0, 32.0], 2, 0, f64::INFINITY))
            .unwrap();
        let text = store.to_jsonl();
        let text = text.unwrap();
        assert_eq!(text.lines().count(), 3);
        let reloaded = TrialStore::from_jsonl(&text).unwrap();
        assert_eq!(reloaded.len(), store.len());
        for (a, b) in store.records().iter().zip(reloaded.records()) {
            assert_eq!(a.config, b.config);
            assert_eq!(a.noisy_score.to_bits(), b.noisy_score.to_bits());
            assert_eq!(a.true_error.to_bits(), b.true_error.to_bits());
            assert_eq!(a.provenance, b.provenance);
        }
        // Blank lines are tolerated; corrupt lines are located.
        assert!(TrialStore::from_jsonl("\n\n").unwrap().is_empty());
        let err = TrialStore::from_jsonl("{oops}\n").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn torn_final_line_is_recovered_on_open() {
        let path = std::env::temp_dir().join(format!(
            "fedstore_torn_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let mut store = TrialStore::open(&path).unwrap();
            store.insert(record(&[0.5], 3, 0, 0.4)).unwrap();
            store.insert(record(&[0.7], 3, 0, 0.8)).unwrap();
        }
        // A crash mid-append leaves a partial record with no newline.
        {
            use std::io::Write;
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            file.write_all(b"{\"values\":[0.9],\"reso").unwrap();
        }
        // Re-opening drops exactly the torn record and keeps appending.
        let mut store = TrialStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        store.insert(record(&[0.9], 3, 0, 0.1)).unwrap();
        let reopened = TrialStore::open(&path).unwrap();
        assert_eq!(reopened.len(), 3);
        // Corruption that is NOT a torn tail still fails loudly.
        std::fs::write(&path, "{broken}\nmore\n").unwrap();
        assert!(matches!(
            TrialStore::open(&path),
            Err(StoreError::Parse { line: 1, .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn non_finite_scores_survive_the_file_backend() {
        let path = std::env::temp_dir().join(format!(
            "fedstore_nonfinite_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let mut store = TrialStore::open(&path).unwrap();
            store.insert(record(&[0.5], 3, 0, f64::NAN)).unwrap();
            store
                .insert(record(&[0.5], 3, 1, f64::NEG_INFINITY))
                .unwrap();
        }
        let reopened = TrialStore::open(&path).unwrap();
        assert!(reopened.records()[0].noisy_score.is_nan());
        assert_eq!(reopened.records()[1].noisy_score, f64::NEG_INFINITY);
        std::fs::remove_file(&path).unwrap();
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fedstore_store_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn segment_backend_inserts_reopens_and_compacts() {
        let dir = temp_dir("segments");
        {
            let mut store = TrialStore::open_segments(&dir).unwrap();
            assert!(store.is_empty());
            assert_eq!(store.path(), Some(dir.as_path()));
            assert!(store.insert(record(&[0.5], 3, 0, 0.4)).unwrap());
            assert!(store.insert(record(&[0.5], 6, 0, f64::NAN)).unwrap());
            // Idempotent duplicate: indexed once, appended once.
            assert!(!store.insert(record(&[0.5], 3, 0, 0.4)).unwrap());
        }
        {
            let mut store = TrialStore::open_segments(&dir).unwrap();
            assert_eq!(store.len(), 2);
            assert!(store.records()[1].noisy_score.is_nan());
            assert!(store.contains(&record(&[0.5], 3, 0, 0.0).key()));
            store.insert(record(&[0.7], 3, 0, 0.8)).unwrap();
            let report = store.compact().unwrap();
            assert_eq!(report.records, 3);
            // Appends keep working after the swap.
            store.insert(record(&[0.9], 3, 0, 0.2)).unwrap();
        }
        let reopened = TrialStore::open_segments(&dir).unwrap();
        assert_eq!(reopened.len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_backend_group_commit_batches() {
        let dir = temp_dir("groupcommit");
        let mut store = TrialStore::open_segments_with(
            &dir,
            crate::SegmentConfig {
                durability: crate::Durability::OnFlush,
                ..crate::SegmentConfig::default()
            },
        )
        .unwrap();
        let batch: Vec<TrialRecord> = (0..16)
            .map(|i| record(&[i as f64], 3, 0, i as f64 * 0.1))
            .collect();
        assert_eq!(store.insert_many(batch.clone()).unwrap(), 16);
        // The whole batch again: all idempotent.
        assert_eq!(store.insert_many(batch).unwrap(), 0);
        store.flush().unwrap();
        store.set_durability(crate::Durability::EveryN(4));
        drop(store);
        let reopened = TrialStore::open_segments(&dir).unwrap();
        assert_eq!(reopened.len(), 16);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn export_import_jsonl_bridges_the_backends_losslessly() {
        let dir = temp_dir("bridge");
        let jsonl = dir.join("export.jsonl");
        std::fs::create_dir_all(&dir).unwrap();
        let segdir = dir.join("ledger");
        let mut store = TrialStore::open_segments(&segdir).unwrap();
        store.insert(record(&[1e-3, 64.0], 6, 0, 0.37)).unwrap();
        store.insert(record(&[1e-3, 64.0], 6, 1, f64::NAN)).unwrap();
        store
            .insert(record(&[-0.0, 32.0], 2, 0, f64::INFINITY))
            .unwrap();
        store.export_jsonl(&jsonl).unwrap();
        drop(store);

        // JSONL → fresh segment ledger → identical bits.
        let segdir2 = dir.join("ledger2");
        let mut imported = TrialStore::open_segments(&segdir2).unwrap();
        assert_eq!(imported.import_jsonl(&jsonl).unwrap(), 3);
        // Importing again is a no-op.
        assert_eq!(imported.import_jsonl(&jsonl).unwrap(), 0);
        drop(imported);
        let a = TrialStore::open_segments(&segdir).unwrap();
        let b = TrialStore::open_segments(&segdir2).unwrap();
        assert_eq!(a.to_jsonl().unwrap(), b.to_jsonl().unwrap());
        for (x, y) in a.records().iter().zip(b.records()) {
            assert_eq!(x.noisy_score.to_bits(), y.noisy_score.to_bits());
            assert_eq!(x.true_error.to_bits(), y.true_error.to_bits());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn jsonl_backend_compacts_atomically() {
        let dir = temp_dir("jsonlcompact");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ledger.jsonl");
        let mut store = TrialStore::open(&path).unwrap();
        store.insert(record(&[0.5], 3, 0, 0.4)).unwrap();
        store.insert(record(&[0.7], 3, 0, 0.8)).unwrap();
        let report = store.compact().unwrap();
        assert_eq!(report.records, 2);
        assert_eq!(report.bytes_after, report.bytes_before);
        // The backend still appends after the rename swap.
        store.insert(record(&[0.9], 3, 0, 0.1)).unwrap();
        drop(store);
        assert_eq!(TrialStore::open(&path).unwrap().len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_backend_recovers_torn_tail_on_open() {
        let dir = temp_dir("segtorn");
        {
            let mut store = TrialStore::open_segments(&dir).unwrap();
            for i in 0..8 {
                store
                    .insert(record(&[i as f64], 3, 0, i as f64 * 0.1))
                    .unwrap();
            }
        }
        // Tear the single segment mid-frame.
        let seg = crate::segment::segment_path(&dir, 0);
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();
        let mut store = TrialStore::open_segments(&dir).unwrap();
        assert_eq!(store.len(), 7);
        // The lost record can simply be re-recorded.
        store.insert(record(&[7.0], 3, 0, 0.7)).unwrap();
        drop(store);
        assert_eq!(TrialStore::open_segments(&dir).unwrap().len(), 8);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_backend_appends_and_reopens() {
        let path = std::env::temp_dir().join(format!(
            "fedstore_test_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let mut store = TrialStore::open(&path).unwrap();
            assert!(store.is_empty());
            assert_eq!(store.path(), Some(path.as_path()));
            store.insert(record(&[0.5], 3, 0, 0.4)).unwrap();
            store.insert(record(&[0.5], 6, 0, 0.3)).unwrap();
        }
        {
            // Re-open: records are re-indexed, appends continue.
            let mut store = TrialStore::open(&path).unwrap();
            assert_eq!(store.len(), 2);
            assert!(store.contains(&record(&[0.5], 3, 0, 0.0).key()));
            assert!(!store.insert(record(&[0.5], 3, 0, 0.4)).unwrap());
            store.insert(record(&[0.7], 3, 0, 0.8)).unwrap();
        }
        let reopened = TrialStore::open(&path).unwrap();
        assert_eq!(reopened.len(), 3);
        std::fs::remove_file(&path).unwrap();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::record::Provenance;
    use proptest::prelude::*;
    use rand::Rng;

    /// Builds a pseudo-random but reproducible store: `n` records whose
    /// values, fidelities, replicates, and scores (including occasional
    /// non-finite scores, exercising the guard encoding) are derived from
    /// `seed`.
    fn arbitrary_store(seed: u64, n: usize) -> TrialStore {
        let mut rng = fedmath::rng::rng_for(seed, 0);
        let mut store = TrialStore::in_memory();
        for i in 0..n {
            let arity = 1 + (i % 3);
            let values: Vec<f64> = (0..arity)
                .map(|_| {
                    let v: f64 = rng.gen_range(-1e6..1e6);
                    // Mix in exact zeros so -0.0 normalisation is exercised.
                    if rng.gen_range(0..8) == 0 {
                        -0.0
                    } else {
                        v
                    }
                })
                .collect();
            let score = |rng: &mut rand::rngs::StdRng| match rng.gen_range(0..10) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                _ => rng.gen_range(0.0..1.5),
            };
            let record = TrialRecord {
                config: ConfigKey::from_canonical_values(&values).expect("finite values"),
                resource: rng.gen_range(1..100),
                rep: rng.gen_range(0..4),
                noisy_score: score(&mut rng),
                true_error: score(&mut rng),
                sim_time: rng.gen_range(0.0..1e4),
                provenance: Provenance {
                    benchmark: "prop".into(),
                    scale: "smoke".into(),
                    seed,
                    noise: if i % 2 == 0 { "noisy" } else { "noiseless" }.into(),
                },
            };
            // Colliding keys can occur; idempotent duplicates are fine and
            // conflicts simply skip the record (we only need *a* store).
            let _ = store.insert(record);
        }
        store
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Serialize → deserialize → re-index is lossless: every record
        /// round-trips bit-exactly (non-finite scores included) and the
        /// rebuilt index answers exactly the same lookups.
        #[test]
        fn prop_jsonl_round_trip_is_lossless(seed in any::<u64>(), n in 1usize..24) {
            let store = arbitrary_store(seed, n);
            let text = store.to_jsonl().expect("serializable");
            let reloaded = TrialStore::from_jsonl(&text).expect("parseable");
            prop_assert_eq!(reloaded.len(), store.len());
            for (a, b) in store.records().iter().zip(reloaded.records()) {
                prop_assert_eq!(&a.config, &b.config);
                prop_assert_eq!(a.resource, b.resource);
                prop_assert_eq!(a.rep, b.rep);
                prop_assert_eq!(a.noisy_score.to_bits(), b.noisy_score.to_bits());
                prop_assert_eq!(a.true_error.to_bits(), b.true_error.to_bits());
                prop_assert_eq!(&a.provenance, &b.provenance);
                // The rebuilt index resolves the record's own key.
                let found = reloaded.get(&a.key()).expect("key indexed");
                prop_assert_eq!(found.noisy_score.to_bits(), a.noisy_score.to_bits());
            }
            // A second round trip is a fixed point.
            prop_assert_eq!(reloaded.to_jsonl().expect("serializable"), text);
        }

        /// JSONL export → import into a segment ledger → reopen: bit-lossless
        /// end to end, non-finite guard encodings included — the two backends
        /// are interchangeable representations of the same ledger.
        #[test]
        fn prop_jsonl_to_segments_is_bit_lossless(seed in any::<u64>(), n in 1usize..16) {
            let dir = std::env::temp_dir().join(format!(
                "fedstore_xbackend_{}_{:?}_{seed}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            let store = arbitrary_store(seed, n);
            let jsonl = dir.join("interchange.jsonl");
            store.export_jsonl(&jsonl).expect("exportable");

            let segdir = dir.join("segments");
            {
                let mut seg_store = TrialStore::open_segments(&segdir).expect("openable");
                seg_store.import_jsonl(&jsonl).expect("importable");
            }
            let reopened = TrialStore::open_segments(&segdir).expect("reopenable");
            prop_assert_eq!(reopened.len(), store.len());
            for (a, b) in store.records().iter().zip(reopened.records()) {
                prop_assert_eq!(&a.config, &b.config);
                prop_assert_eq!(a.resource, b.resource);
                prop_assert_eq!(a.rep, b.rep);
                prop_assert_eq!(a.noisy_score.to_bits(), b.noisy_score.to_bits());
                prop_assert_eq!(a.true_error.to_bits(), b.true_error.to_bits());
                prop_assert_eq!(a.sim_time.to_bits(), b.sim_time.to_bits());
                prop_assert_eq!(&a.provenance, &b.provenance);
            }
            // The segment ledger re-exports the exact same interchange text.
            prop_assert_eq!(
                reopened.to_jsonl().expect("serializable"),
                store.to_jsonl().expect("serializable")
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}
