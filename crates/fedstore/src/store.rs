//! The persistent trial store: an in-memory index over an append-only
//! JSON-lines ledger.
//!
//! The store is **content-addressed**: records are keyed by
//! `(canonical configuration bits, resource, replicate)` — never by trial id
//! or arrival order — so any campaign that re-derives the same points (a
//! resumed run, a replayed method sweep, a differently-ordered parallel
//! schedule) finds them. The file backend is append-only: every accepted
//! insert is written and flushed as one JSON line before the insert returns,
//! so an interrupted process loses at most the evaluation in flight, and
//! re-opening the ledger re-indexes exactly what was recorded.

use crate::key::{ConfigKey, TrialKey};
use crate::record::TrialRecord;
use crate::{Result, StoreError};
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// The append handle of a file-backed store.
#[derive(Debug)]
struct Backend {
    path: PathBuf,
    file: std::fs::File,
}

/// A persistent, content-addressed collection of [`TrialRecord`]s.
#[derive(Debug, Default)]
pub struct TrialStore {
    records: Vec<TrialRecord>,
    index: HashMap<TrialKey, usize>,
    /// Replicate indices recorded per `(configuration, resource)` point,
    /// kept sorted for deterministic resampling.
    replicates: HashMap<(ConfigKey, usize), Vec<u64>>,
    backend: Option<Backend>,
}

impl TrialStore {
    /// Creates an empty store with no file backend.
    pub fn in_memory() -> Self {
        TrialStore::default()
    }

    /// Opens (or creates) a JSON-lines ledger at `path`: existing lines are
    /// parsed and indexed, and subsequent inserts append to the file.
    ///
    /// A **torn final line** — the signature of a crash mid-append (the file
    /// does not end in a newline and its last line does not parse) — is
    /// recovered by truncating the ledger to its last complete record: the
    /// evaluation in flight is lost, everything before it is kept. Any other
    /// corruption still fails loudly.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failures and
    /// [`StoreError::Parse`]/[`StoreError::Conflict`] on a corrupt ledger.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let io_error = |e: std::io::Error| StoreError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        };
        let mut store = match std::fs::read_to_string(&path) {
            Ok(text) => match Self::from_jsonl(&text) {
                Ok(store) => store,
                Err(StoreError::Parse { line, .. })
                    if !text.ends_with('\n') && line == text.lines().count() =>
                {
                    let keep = text.rfind('\n').map_or(0, |i| i + 1);
                    let store = Self::from_jsonl(&text[..keep])?;
                    let file = std::fs::OpenOptions::new()
                        .write(true)
                        .open(&path)
                        .map_err(io_error)?;
                    file.set_len(keep as u64).map_err(io_error)?;
                    file.sync_data().map_err(io_error)?;
                    store
                }
                Err(e) => return Err(e),
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => TrialStore::in_memory(),
            Err(e) => return Err(io_error(e)),
        };
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(io_error)?;
        store.backend = Some(Backend { path, file });
        Ok(store)
    }

    /// Rebuilds an in-memory store from ledger text (one JSON record per
    /// line; blank lines are ignored).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Parse`] on a malformed line and
    /// [`StoreError::Conflict`] on contradictory duplicate keys.
    pub fn from_jsonl(text: &str) -> Result<Self> {
        let mut store = TrialStore::in_memory();
        for (number, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let record = TrialRecord::from_line(line, number + 1)?;
            store.insert(record)?;
        }
        Ok(store)
    }

    /// Serializes every record as ledger text (one JSON line per record).
    ///
    /// # Errors
    ///
    /// Propagates record serialization failures.
    pub fn to_jsonl(&self) -> Result<String> {
        let mut out = String::new();
        for record in &self.records {
            out.push_str(&record.to_line()?);
            out.push('\n');
        }
        Ok(out)
    }

    /// The ledger path, when file-backed.
    pub fn path(&self) -> Option<&Path> {
        self.backend.as_ref().map(|b| b.path.as_path())
    }

    /// Number of records in the store.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, in insertion (ledger) order.
    pub fn records(&self) -> &[TrialRecord] {
        &self.records
    }

    /// The record stored under `key`, if any.
    pub fn get(&self, key: &TrialKey) -> Option<&TrialRecord> {
        self.index.get(key).map(|&i| &self.records[i])
    }

    /// Returns `true` when a record exists under `key`.
    pub fn contains(&self, key: &TrialKey) -> bool {
        self.index.contains_key(key)
    }

    /// The recorded replicates of `(config, resource)`, in ascending
    /// replicate order — the pool [`crate::TabularObjective`] resamples
    /// noise from.
    pub fn replicates(&self, config: &ConfigKey, resource: usize) -> Vec<&TrialRecord> {
        let Some(reps) = self.replicates.get(&(config.clone(), resource)) else {
            return Vec::new();
        };
        reps.iter()
            .map(|&rep| {
                let key = TrialKey {
                    config: config.clone(),
                    resource,
                    rep,
                };
                self.get(&key).expect("replicate list mirrors the index")
            })
            .collect()
    }

    /// Inserts a record, appending it to the ledger file when file-backed.
    /// NaN scores are collapsed to the canonical bit pattern first (see
    /// [`TrialRecord::with_canonical_scores`]), keeping round trips
    /// bit-lossless.
    ///
    /// Returns `true` when the record was new. Re-inserting a bit-identical
    /// record is an idempotent no-op returning `false`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidRecord`] for a negative or non-finite
    /// `sim_time`, [`StoreError::Conflict`] when the key exists with a
    /// different payload, and [`StoreError::Io`] when the ledger append
    /// fails.
    pub fn insert(&mut self, record: TrialRecord) -> Result<bool> {
        let record = record.with_canonical_scores();
        // Reject timestamps the ledger deserializer would refuse, even for
        // in-memory stores — a record must never be accepted on one side of
        // the round trip and rejected on the other.
        record.validate_sim_time()?;
        let key = record.key();
        if let Some(existing) = self.get(&key) {
            let identical = existing.noisy_score.to_bits() == record.noisy_score.to_bits()
                && existing.true_error.to_bits() == record.true_error.to_bits()
                && existing.provenance == record.provenance;
            return if identical {
                Ok(false)
            } else {
                Err(StoreError::Conflict {
                    message: format!(
                        "(resource {}, rep {}) of config {:?} already recorded with a different payload",
                        key.resource,
                        key.rep,
                        key.config.values(),
                    ),
                })
            };
        }
        if let Some(backend) = &mut self.backend {
            let line = record.to_line()?;
            let path = backend.path.display().to_string();
            let io_error = |e: std::io::Error| StoreError::Io {
                path: path.clone(),
                message: e.to_string(),
            };
            backend
                .file
                .write_all(format!("{line}\n").as_bytes())
                .map_err(io_error)?;
            // `sync_data` (not `flush`, which is a userspace no-op for
            // `File`) is what makes the durability claim real: once `insert`
            // returns, the record survives a crash or power loss.
            backend.file.sync_data().map_err(io_error)?;
        }
        let point = (key.config.clone(), key.resource);
        let reps = self.replicates.entry(point).or_default();
        let position = reps.partition_point(|&r| r < key.rep);
        reps.insert(position, key.rep);
        self.index.insert(key, self.records.len());
        self.records.push(record);
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Provenance;

    fn provenance(noise: &str) -> Provenance {
        Provenance {
            benchmark: "cifar10-like".into(),
            scale: "smoke".into(),
            seed: 0,
            noise: noise.into(),
        }
    }

    fn record(values: &[f64], resource: usize, rep: u64, noisy: f64) -> TrialRecord {
        TrialRecord {
            config: ConfigKey::from_canonical_values(values).unwrap(),
            resource,
            rep,
            noisy_score: noisy,
            true_error: noisy * 0.5,
            sim_time: 0.0,
            provenance: provenance("noisy"),
        }
    }

    #[test]
    fn insert_rejects_unstorable_sim_times() {
        // A record the ledger deserializer would refuse must be rejected at
        // insert time, never silently persisted into an unreadable file.
        let mut store = TrialStore::in_memory();
        let mut poisoned = record(&[1.0], 2, 0, 0.5);
        poisoned.sim_time = -5.0;
        assert!(store.insert(poisoned).is_err());
        assert!(store.is_empty());
    }

    #[test]
    fn insert_index_and_lookup() {
        let mut store = TrialStore::in_memory();
        assert!(store.is_empty());
        assert!(store.insert(record(&[0.5], 3, 0, 0.4)).unwrap());
        assert!(store.insert(record(&[0.5], 3, 1, 0.6)).unwrap());
        assert!(store.insert(record(&[0.5], 6, 0, 0.3)).unwrap());
        assert!(store.insert(record(&[0.7], 3, 0, 0.9)).unwrap());
        assert_eq!(store.len(), 4);
        let key = record(&[0.5], 3, 1, 0.0).key();
        assert!(store.contains(&key));
        assert_eq!(store.get(&key).unwrap().noisy_score, 0.6);
        // Replicates come back rep-sorted regardless of insertion order.
        let config = ConfigKey::from_canonical_values(&[0.5]).unwrap();
        let reps = store.replicates(&config, 3);
        assert_eq!(reps.iter().map(|r| r.rep).collect::<Vec<u64>>(), vec![0, 1]);
        assert!(store
            .replicates(&ConfigKey::from_canonical_values(&[0.9]).unwrap(), 3)
            .is_empty());
        // -0.0 looks up the +0.0 record.
        assert!(store.insert(record(&[0.0], 1, 0, 0.1)).unwrap());
        let negzero = record(&[-0.0], 1, 0, 0.1).key();
        assert!(store.contains(&negzero));
    }

    #[test]
    fn duplicate_inserts_are_idempotent_but_conflicts_fail() {
        let mut store = TrialStore::in_memory();
        assert!(store.insert(record(&[0.5], 3, 0, 0.4)).unwrap());
        // Bit-identical: no-op.
        assert!(!store.insert(record(&[0.5], 3, 0, 0.4)).unwrap());
        assert_eq!(store.len(), 1);
        // Same key, different score: conflict.
        let err = store.insert(record(&[0.5], 3, 0, 0.5)).unwrap_err();
        assert!(matches!(err, StoreError::Conflict { .. }), "{err}");
        // Same key, different provenance: conflict too.
        let mut other = record(&[0.5], 3, 0, 0.4);
        other.provenance = provenance("noiseless");
        assert!(store.insert(other).is_err());
    }

    #[test]
    fn jsonl_round_trip_preserves_everything() {
        let mut store = TrialStore::in_memory();
        store.insert(record(&[1e-3, 64.0], 6, 0, 0.37)).unwrap();
        store.insert(record(&[1e-3, 64.0], 6, 1, f64::NAN)).unwrap();
        store
            .insert(record(&[-0.0, 32.0], 2, 0, f64::INFINITY))
            .unwrap();
        let text = store.to_jsonl();
        let text = text.unwrap();
        assert_eq!(text.lines().count(), 3);
        let reloaded = TrialStore::from_jsonl(&text).unwrap();
        assert_eq!(reloaded.len(), store.len());
        for (a, b) in store.records().iter().zip(reloaded.records()) {
            assert_eq!(a.config, b.config);
            assert_eq!(a.noisy_score.to_bits(), b.noisy_score.to_bits());
            assert_eq!(a.true_error.to_bits(), b.true_error.to_bits());
            assert_eq!(a.provenance, b.provenance);
        }
        // Blank lines are tolerated; corrupt lines are located.
        assert!(TrialStore::from_jsonl("\n\n").unwrap().is_empty());
        let err = TrialStore::from_jsonl("{oops}\n").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn torn_final_line_is_recovered_on_open() {
        let path = std::env::temp_dir().join(format!(
            "fedstore_torn_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let mut store = TrialStore::open(&path).unwrap();
            store.insert(record(&[0.5], 3, 0, 0.4)).unwrap();
            store.insert(record(&[0.7], 3, 0, 0.8)).unwrap();
        }
        // A crash mid-append leaves a partial record with no newline.
        {
            use std::io::Write;
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            file.write_all(b"{\"values\":[0.9],\"reso").unwrap();
        }
        // Re-opening drops exactly the torn record and keeps appending.
        let mut store = TrialStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        store.insert(record(&[0.9], 3, 0, 0.1)).unwrap();
        let reopened = TrialStore::open(&path).unwrap();
        assert_eq!(reopened.len(), 3);
        // Corruption that is NOT a torn tail still fails loudly.
        std::fs::write(&path, "{broken}\nmore\n").unwrap();
        assert!(matches!(
            TrialStore::open(&path),
            Err(StoreError::Parse { line: 1, .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn non_finite_scores_survive_the_file_backend() {
        let path = std::env::temp_dir().join(format!(
            "fedstore_nonfinite_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let mut store = TrialStore::open(&path).unwrap();
            store.insert(record(&[0.5], 3, 0, f64::NAN)).unwrap();
            store
                .insert(record(&[0.5], 3, 1, f64::NEG_INFINITY))
                .unwrap();
        }
        let reopened = TrialStore::open(&path).unwrap();
        assert!(reopened.records()[0].noisy_score.is_nan());
        assert_eq!(reopened.records()[1].noisy_score, f64::NEG_INFINITY);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_backend_appends_and_reopens() {
        let path = std::env::temp_dir().join(format!(
            "fedstore_test_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let mut store = TrialStore::open(&path).unwrap();
            assert!(store.is_empty());
            assert_eq!(store.path(), Some(path.as_path()));
            store.insert(record(&[0.5], 3, 0, 0.4)).unwrap();
            store.insert(record(&[0.5], 6, 0, 0.3)).unwrap();
        }
        {
            // Re-open: records are re-indexed, appends continue.
            let mut store = TrialStore::open(&path).unwrap();
            assert_eq!(store.len(), 2);
            assert!(store.contains(&record(&[0.5], 3, 0, 0.0).key()));
            assert!(!store.insert(record(&[0.5], 3, 0, 0.4)).unwrap());
            store.insert(record(&[0.7], 3, 0, 0.8)).unwrap();
        }
        let reopened = TrialStore::open(&path).unwrap();
        assert_eq!(reopened.len(), 3);
        std::fs::remove_file(&path).unwrap();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::record::Provenance;
    use proptest::prelude::*;
    use rand::Rng;

    /// Builds a pseudo-random but reproducible store: `n` records whose
    /// values, fidelities, replicates, and scores (including occasional
    /// non-finite scores, exercising the guard encoding) are derived from
    /// `seed`.
    fn arbitrary_store(seed: u64, n: usize) -> TrialStore {
        let mut rng = fedmath::rng::rng_for(seed, 0);
        let mut store = TrialStore::in_memory();
        for i in 0..n {
            let arity = 1 + (i % 3);
            let values: Vec<f64> = (0..arity)
                .map(|_| {
                    let v: f64 = rng.gen_range(-1e6..1e6);
                    // Mix in exact zeros so -0.0 normalisation is exercised.
                    if rng.gen_range(0..8) == 0 {
                        -0.0
                    } else {
                        v
                    }
                })
                .collect();
            let score = |rng: &mut rand::rngs::StdRng| match rng.gen_range(0..10) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                _ => rng.gen_range(0.0..1.5),
            };
            let record = TrialRecord {
                config: ConfigKey::from_canonical_values(&values).expect("finite values"),
                resource: rng.gen_range(1..100),
                rep: rng.gen_range(0..4),
                noisy_score: score(&mut rng),
                true_error: score(&mut rng),
                sim_time: rng.gen_range(0.0..1e4),
                provenance: Provenance {
                    benchmark: "prop".into(),
                    scale: "smoke".into(),
                    seed,
                    noise: if i % 2 == 0 { "noisy" } else { "noiseless" }.into(),
                },
            };
            // Colliding keys can occur; idempotent duplicates are fine and
            // conflicts simply skip the record (we only need *a* store).
            let _ = store.insert(record);
        }
        store
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Serialize → deserialize → re-index is lossless: every record
        /// round-trips bit-exactly (non-finite scores included) and the
        /// rebuilt index answers exactly the same lookups.
        #[test]
        fn prop_jsonl_round_trip_is_lossless(seed in any::<u64>(), n in 1usize..24) {
            let store = arbitrary_store(seed, n);
            let text = store.to_jsonl().expect("serializable");
            let reloaded = TrialStore::from_jsonl(&text).expect("parseable");
            prop_assert_eq!(reloaded.len(), store.len());
            for (a, b) in store.records().iter().zip(reloaded.records()) {
                prop_assert_eq!(&a.config, &b.config);
                prop_assert_eq!(a.resource, b.resource);
                prop_assert_eq!(a.rep, b.rep);
                prop_assert_eq!(a.noisy_score.to_bits(), b.noisy_score.to_bits());
                prop_assert_eq!(a.true_error.to_bits(), b.true_error.to_bits());
                prop_assert_eq!(&a.provenance, &b.provenance);
                // The rebuilt index resolves the record's own key.
                let found = reloaded.get(&a.key()).expect("key indexed");
                prop_assert_eq!(found.noisy_score.to_bits(), a.noisy_score.to_bits());
            }
            // A second round trip is a fixed point.
            prop_assert_eq!(reloaded.to_jsonl().expect("serializable"), text);
        }
    }
}
