//! Cooperative single-writer locking for on-disk ledgers.
//!
//! A campaign directory must have at most one live writer: two processes (or
//! two campaign drivers in one process) appending to the same segment ledger
//! would interleave records and corrupt the recovery story. [`LedgerLock`]
//! implements the classic pid-file protocol with `O_CREAT|O_EXCL` semantics:
//! acquiring creates `LOCK` atomically (`create_new`), failing if it already
//! exists, and dropping the guard removes the file.
//!
//! The lock is **advisory and cooperative** — it guards against accidental
//! double-opens by well-behaved code, not against hostile writers. A crash
//! leaves a stale `LOCK` behind by design (there is no daemon around to
//! clean it up); an owner that *knows* it has exclusive claim over the
//! directory tree — like the service daemon scanning its own campaign root
//! at startup — clears stale locks with [`LedgerLock::break_stale`] before
//! re-acquiring.

use crate::{Result, StoreError};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// File name of the lock inside a locked directory.
pub const LOCK_FILE: &str = "LOCK";

/// An exclusive advisory lock on a ledger directory, released on drop.
#[derive(Debug)]
pub struct LedgerLock {
    path: PathBuf,
}

impl LedgerLock {
    /// Acquires the lock on `dir`, creating the directory if needed.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the directory cannot be created or
    /// when another holder's `LOCK` file already exists (the error message
    /// includes the holder recorded inside the file, typically its pid).
    pub fn acquire(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir).map_err(|e| StoreError::Io {
            path: dir.display().to_string(),
            message: format!("creating lock directory: {e}"),
        })?;
        let path = dir.join(LOCK_FILE);
        match fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(mut file) => {
                // Best-effort holder stamp for diagnostics; the atomic
                // create is what provides exclusion.
                let _ = writeln!(file, "pid {}", std::process::id());
                Ok(LedgerLock { path })
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                let holder = fs::read_to_string(&path).unwrap_or_default();
                let holder = holder.trim();
                Err(StoreError::Io {
                    path: path.display().to_string(),
                    message: if holder.is_empty() {
                        "ledger is locked by another writer".to_string()
                    } else {
                        format!("ledger is locked by another writer ({holder})")
                    },
                })
            }
            Err(e) => Err(StoreError::Io {
                path: path.display().to_string(),
                message: format!("acquiring ledger lock: {e}"),
            }),
        }
    }

    /// Removes a leftover `LOCK` file in `dir`, returning whether one was
    /// removed. Only for callers with exclusive claim over the directory
    /// (e.g. the service daemon recovering its own campaign root after a
    /// crash); breaking a *live* writer's lock voids the exclusion.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the file exists but cannot be
    /// removed.
    pub fn break_stale(dir: impl AsRef<Path>) -> Result<bool> {
        let path = dir.as_ref().join(LOCK_FILE);
        match fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(StoreError::Io {
                path: path.display().to_string(),
                message: format!("breaking stale ledger lock: {e}"),
            }),
        }
    }

    /// Path of the held lock file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for LedgerLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fedstore-lock-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn acquire_is_exclusive_until_dropped() {
        let dir = temp_dir("exclusive");
        let lock = LedgerLock::acquire(&dir).unwrap();
        assert!(lock.path().exists());
        let contended = LedgerLock::acquire(&dir);
        assert!(matches!(contended, Err(StoreError::Io { .. })));
        let message = contended.unwrap_err().to_string();
        assert!(message.contains("locked by another writer"), "{message}");
        drop(lock);
        // Released on drop: a new writer can claim the directory.
        let relocked = LedgerLock::acquire(&dir).unwrap();
        drop(relocked);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn break_stale_clears_a_crashed_writers_lock() {
        let dir = temp_dir("stale");
        fs::create_dir_all(&dir).unwrap();
        // Simulate a crash: the LOCK file survives its writer.
        fs::write(dir.join(LOCK_FILE), "pid 999999\n").unwrap();
        assert!(LedgerLock::acquire(&dir).is_err());
        assert!(LedgerLock::break_stale(&dir).unwrap());
        assert!(!LedgerLock::break_stale(&dir).unwrap(), "idempotent");
        let lock = LedgerLock::acquire(&dir).unwrap();
        drop(lock);
        let _ = fs::remove_dir_all(&dir);
    }
}
