//! The tabular surrogate objective: tuning campaigns replayed against a
//! recorded [`TrialStore`] instead of the live federated simulator.
//!
//! Lookup semantics per request `(config, resource, rep)`:
//!
//! 1. **Exact hit** — the key is recorded: the stored noisy score and true
//!    error are returned bit-for-bit. A replayed campaign whose scheduler
//!    re-derives the recorded schedule (same method, same seeds) is therefore
//!    bit-identical to the live run.
//! 2. **Replicate resample** — the point `(config, resource)` is recorded but
//!    not this replicate index: one recorded replicate is chosen by a seed
//!    derived from `(resample seed, config fingerprint, resource, rep)`.
//!    This is deterministic (the same request always draws the same recorded
//!    observation, independent of call order) and lets noise-mitigation
//!    studies run *more* replicates than were recorded by treating the
//!    recorded draws as an empirical noise distribution.
//! 3. **Miss** — nothing is recorded at the point: the evaluation fails with
//!    a [`StoreError::Miss`], because silently inventing objective values
//!    would corrupt every conclusion drawn from the sweep.

use crate::key::TrialKey;
use crate::store::TrialStore;
use crate::{Result, StoreError};
use fedhpo::{HpConfig, SearchSpace, TrialRequest, TrialResult};
use fedmath::rng::derive_seed;
use fedtune_core::{BatchObjective, CampaignLog, ObjectiveLogEntry};

/// A scheduler-facing objective answering every evaluation from a recorded
/// table.
pub struct TabularObjective<'s> {
    store: &'s TrialStore,
    space: SearchSpace,
    resample_seed: u64,
    campaign: CampaignLog,
    exact_hits: usize,
    resampled: usize,
}

impl<'s> TabularObjective<'s> {
    /// Creates a surrogate over `store`, canonicalizing requests against
    /// `space`.
    pub fn new(store: &'s TrialStore, space: &SearchSpace) -> Self {
        TabularObjective {
            store,
            space: space.clone(),
            resample_seed: 0,
            campaign: CampaignLog::new(),
            exact_hits: 0,
            resampled: 0,
        }
    }

    /// Sets the seed of the deterministic replicate-resampling channel
    /// (distinct seeds draw independent resample assignments).
    #[must_use]
    pub fn with_resample_seed(mut self, seed: u64) -> Self {
        self.resample_seed = seed;
        self
    }

    /// The replay log so far, in request order — same shape and accounting
    /// as the live objective's log, with true errors from the table.
    pub fn log(&self) -> &[ObjectiveLogEntry] {
        self.campaign.log()
    }

    /// Consumes the objective and returns its log.
    pub fn into_log(self) -> Vec<ObjectiveLogEntry> {
        self.campaign.into_log()
    }

    /// Requests answered by their exactly-recorded key.
    pub fn exact_hits(&self) -> usize {
        self.exact_hits
    }

    /// Requests answered by deterministic replicate resampling.
    pub fn resampled(&self) -> usize {
        self.resampled
    }

    /// Campaign rounds the replayed schedule *would* have consumed live.
    pub fn cumulative_rounds(&self) -> usize {
        self.campaign.cumulative_rounds()
    }

    /// Noise-aware selection over the replay log; see
    /// [`fedtune_core::selected_true_error`].
    pub fn selected_true_error_within(&self, budget: usize) -> Option<f64> {
        self.campaign.selected_true_error_within(budget)
    }

    /// Answers one request from the table, returning
    /// `(noisy score, true error)`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Miss`] when the point is not recorded at all.
    fn lookup(&mut self, request: &TrialRequest) -> Result<(f64, f64)> {
        let key = TrialKey::for_request(&self.space, request)?;
        if let Some(record) = self.store.get(&key) {
            self.exact_hits += 1;
            return Ok((record.noisy_score, record.true_error));
        }
        let replicates = self.store.replicates(&key.config, key.resource);
        if replicates.is_empty() {
            return Err(StoreError::Miss {
                message: format!(
                    "no recorded evaluation of config {:?} at resource {}",
                    key.config.values(),
                    key.resource,
                ),
            });
        }
        // Deterministic resample: pure function of the request coordinates
        // and the resample seed, independent of call order.
        let channel = derive_seed(
            derive_seed(
                derive_seed(self.resample_seed, key.config.fingerprint()),
                key.resource as u64,
            ),
            key.rep,
        );
        let pick = &replicates[(channel % replicates.len() as u64) as usize];
        self.resampled += 1;
        Ok((pick.noisy_score, pick.true_error))
    }

    /// Answers one request and logs it with campaign resource accounting,
    /// stamped at `sim_time` virtual seconds.
    fn evaluate_one_at(&mut self, request: &TrialRequest, sim_time: f64) -> Result<f64> {
        let (noisy_score, true_error) = self.lookup(request)?;
        self.campaign
            .observe_at(request, noisy_score, true_error, sim_time);
        Ok(noisy_score)
    }

    /// Answers one request and logs it with campaign resource accounting.
    fn evaluate_one(&mut self, request: &TrialRequest) -> Result<f64> {
        self.evaluate_one_at(request, 0.0)
    }
}

impl BatchObjective for TabularObjective<'_> {
    fn evaluate_batch(
        &mut self,
        requests: &[TrialRequest],
    ) -> fedtune_core::Result<Vec<TrialResult>> {
        self.campaign.begin_batch();
        requests
            .iter()
            .map(|request| {
                let score = self
                    .evaluate_one(request)
                    .map_err(fedtune_core::CoreError::from)?;
                Ok(TrialResult::of(request, score))
            })
            .collect()
    }

    fn evaluate_batch_at(
        &mut self,
        requests: &[TrialRequest],
        sim_times: &[f64],
    ) -> fedtune_core::Result<Vec<TrialResult>> {
        self.campaign.begin_batch();
        requests
            .iter()
            .zip(sim_times)
            .map(|(request, &sim_time)| {
                let score = self
                    .evaluate_one_at(request, sim_time)
                    .map_err(fedtune_core::CoreError::from)?;
                Ok(TrialResult::of(request, score))
            })
            .collect()
    }

    fn last_true_errors(&self) -> Option<Vec<f64>> {
        Some(self.campaign.last_batch_true_errors())
    }
}

/// Pull-style access for the classic [`fedhpo::Tuner`] interface: the same
/// table semantics, one request at a time.
impl fedhpo::Objective for TabularObjective<'_> {
    fn evaluate(
        &mut self,
        trial_id: usize,
        config: &HpConfig,
        resource: usize,
    ) -> fedhpo::Result<f64> {
        self.evaluate_rep(trial_id, config, resource, 0)
    }

    fn evaluate_rep(
        &mut self,
        trial_id: usize,
        config: &HpConfig,
        resource: usize,
        noise_rep: u64,
    ) -> fedhpo::Result<f64> {
        self.evaluate_one(&TrialRequest {
            trial_id,
            config: config.clone(),
            resource,
            noise_rep,
        })
        .map_err(|e| fedhpo::HpoError::Objective {
            message: e.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::ConfigKey;
    use crate::record::Provenance;
    use crate::TrialRecord;
    use fedhpo::Objective;

    fn provenance() -> Provenance {
        Provenance {
            benchmark: "analytic".into(),
            scale: "unit".into(),
            seed: 0,
            noise: "noisy".into(),
        }
    }

    fn space() -> SearchSpace {
        SearchSpace::new().with_uniform("x", 0.0, 10.0).unwrap()
    }

    fn table() -> TrialStore {
        let mut store = TrialStore::in_memory();
        for (x, resource, rep, noisy, true_error) in [
            (1.0, 2, 0u64, 0.40, 0.45),
            (1.0, 2, 1, 0.50, 0.45),
            (1.0, 2, 2, 0.44, 0.45),
            (1.0, 4, 0, 0.30, 0.33),
            (3.0, 2, 0, 0.60, 0.58),
        ] {
            store
                .insert(TrialRecord {
                    config: ConfigKey::from_canonical_values(&[x]).unwrap(),
                    resource,
                    rep,
                    noisy_score: noisy,
                    true_error,
                    sim_time: 0.0,
                    provenance: provenance(),
                })
                .unwrap();
        }
        store
    }

    fn request(trial_id: usize, x: f64, resource: usize, noise_rep: u64) -> TrialRequest {
        TrialRequest {
            trial_id,
            config: HpConfig::new(vec![x]),
            resource,
            noise_rep,
        }
    }

    #[test]
    fn exact_hits_return_recorded_bits() {
        let store = table();
        let mut tabular = TabularObjective::new(&store, &space());
        let results = tabular
            .evaluate_batch(&[request(0, 1.0, 2, 0), request(1, 3.0, 2, 0)])
            .unwrap();
        assert_eq!(results[0].score.to_bits(), 0.40f64.to_bits());
        assert_eq!(results[1].score.to_bits(), 0.60f64.to_bits());
        assert_eq!(tabular.exact_hits(), 2);
        assert_eq!(tabular.resampled(), 0);
        assert_eq!(tabular.last_true_errors().unwrap(), vec![0.45, 0.58]);
        assert_eq!(tabular.cumulative_rounds(), 4);
        assert_eq!(tabular.log().len(), 2);
        assert!(tabular.selected_true_error_within(usize::MAX).is_some());
    }

    #[test]
    fn unrecorded_replicates_resample_deterministically() {
        let store = table();
        let run = |seed: u64, rep: u64| {
            let mut tabular = TabularObjective::new(&store, &space()).with_resample_seed(seed);
            let score = tabular.evaluate_batch(&[request(0, 1.0, 2, rep)]).unwrap()[0].score;
            (score, tabular.resampled())
        };
        // Replicate 7 was never recorded: it resamples one of the recorded
        // draws, the same one every time.
        let (a, resampled) = run(0, 7);
        assert_eq!(resampled, 1);
        assert!([0.40f64, 0.50, 0.44]
            .iter()
            .any(|v| v.to_bits() == a.to_bits()));
        let (b, _) = run(0, 7);
        assert_eq!(a.to_bits(), b.to_bits());
        // Different replicate indices spread across the recorded pool.
        let distinct: std::collections::HashSet<u64> =
            (0..32).map(|rep| run(0, rep).0.to_bits()).collect();
        assert!(distinct.len() > 1);
        // Recorded replicates still hit exactly.
        let (exact, resampled) = run(0, 1);
        let _ = resampled;
        assert_eq!(exact.to_bits(), 0.50f64.to_bits());
    }

    #[test]
    fn complete_misses_fail_loudly() {
        let store = table();
        let mut tabular = TabularObjective::new(&store, &space());
        let err = tabular
            .evaluate_batch(&[request(0, 9.0, 2, 0)])
            .unwrap_err();
        assert!(err.to_string().contains("no recorded evaluation"), "{err}");
        // An unrecorded fidelity of a recorded config also misses.
        assert!(tabular.evaluate_batch(&[request(0, 3.0, 4, 0)]).is_err());
        // Nothing was logged for the failed evaluations' batches beyond the
        // successful prefix.
        assert!(tabular.log().is_empty());
    }

    #[test]
    fn pull_style_objective_replays_too() {
        let store = table();
        let mut tabular = TabularObjective::new(&store, &space());
        let config = HpConfig::new(vec![1.0]);
        let score = tabular.evaluate(0, &config, 2).unwrap();
        assert_eq!(score.to_bits(), 0.40f64.to_bits());
        let rep1 = tabular.evaluate_rep(0, &config, 2, 1).unwrap();
        assert_eq!(rep1.to_bits(), 0.50f64.to_bits());
        assert!(tabular.evaluate(0, &HpConfig::new(vec![9.0]), 2).is_err());
        assert_eq!(tabular.into_log().len(), 2);
    }

    #[test]
    fn campaign_accounting_matches_live_semantics() {
        let store = table();
        let mut tabular = TabularObjective::new(&store, &space());
        // Promote trial 0 from fidelity 2 to 4: only the delta is charged;
        // a replicate at the reached fidelity is free.
        tabular
            .evaluate_batch(&[
                request(0, 1.0, 2, 0),
                request(0, 1.0, 4, 0),
                request(0, 1.0, 2, 1),
            ])
            .unwrap();
        assert_eq!(tabular.cumulative_rounds(), 4);
        let log = tabular.log();
        assert_eq!(log[0].cumulative_rounds, 2);
        assert_eq!(log[1].cumulative_rounds, 4);
        assert_eq!(log[2].cumulative_rounds, 4);
        // The replicate's logged fidelity is the reached one, like live.
        assert_eq!(log[2].resource, 4);
    }
}
