//! One-shot proxy random search (§4 of the paper).
//!
//! 1. Run random search using only the proxy dataset to both train and
//!    evaluate configurations. The proxy data is public and server-side, so
//!    this step involves no client subsampling and no DP noise.
//! 2. Train a single model on the client dataset with the best configuration
//!    found. Because only one configuration touches the client data, the
//!    result is unaffected by evaluation noise.

use crate::runner::ConfigRunner;
use crate::Result;
use feddata::FederatedDataset;
use fedhpo::HpConfig;
use fedmath::SeedStream;
use serde::{Deserialize, Serialize};

/// The one-shot proxy tuning pipeline.
#[derive(Debug, Clone)]
pub struct OneShotProxy {
    num_configs: usize,
}

/// The outcome of one-shot proxy tuning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProxyOutcome {
    /// Name of the proxy dataset used for the search.
    pub proxy_dataset: String,
    /// Name of the client dataset the selected configuration was deployed on.
    pub client_dataset: String,
    /// The configuration selected on the proxy data.
    pub selected_config: HpConfig,
    /// Full-validation error of the selected configuration on the *proxy*
    /// dataset (the signal the search actually optimised).
    pub proxy_error: f64,
    /// Full-validation error of the selected configuration after training on
    /// the *client* dataset — the number reported in Fig. 11/12.
    pub client_error: f64,
    /// Proxy errors of every configuration searched, in sample order.
    pub all_proxy_errors: Vec<f64>,
}

impl OneShotProxy {
    /// Creates a one-shot proxy search over `num_configs` random
    /// configurations (`K = 16` in the paper).
    pub fn new(num_configs: usize) -> Self {
        OneShotProxy { num_configs }
    }

    /// The paper's configuration (`K = 16`).
    pub fn paper_default() -> Self {
        OneShotProxy::new(16)
    }

    /// Number of configurations searched on the proxy data.
    pub fn num_configs(&self) -> usize {
        self.num_configs
    }

    /// Runs the two-step pipeline.
    ///
    /// `proxy_runner` and `client_runner` carry the per-dataset model
    /// architectures and round budgets (they may differ when the proxy and
    /// client datasets belong to different task families) but must share the
    /// same search space.
    ///
    /// # Errors
    ///
    /// Returns an error if `num_configs` is zero, the runners' spaces differ,
    /// or any training run fails.
    pub fn run(
        &self,
        proxy_dataset: &FederatedDataset,
        proxy_runner: &ConfigRunner,
        client_dataset: &FederatedDataset,
        client_runner: &ConfigRunner,
        seed: u64,
    ) -> Result<ProxyOutcome> {
        if self.num_configs == 0 {
            return Err(crate::ProxyError::InvalidConfig {
                message: "one-shot proxy search needs at least one configuration".into(),
            });
        }
        if proxy_runner.space() != client_runner.space() {
            return Err(crate::ProxyError::InvalidConfig {
                message: "proxy and client runners must share the same search space".into(),
            });
        }
        let mut seeds = SeedStream::new(seed);
        let mut sample_rng = seeds.next_rng();
        let configs = proxy_runner
            .space()
            .sample_many(self.num_configs, &mut sample_rng)?;

        // Step 1: search on the proxy data (noise-free evaluation).
        let mut proxy_errors = Vec::with_capacity(configs.len());
        for config in &configs {
            let run_seed = seeds.next_seed();
            let result = proxy_runner.run(proxy_dataset, config, run_seed)?;
            proxy_errors.push(result.full_error);
        }
        let best_index = fedmath::stats::argmin(&proxy_errors)
            .map_err(fedhpo::HpoError::from)
            .map_err(crate::ProxyError::from)?;
        let selected_config = configs[best_index].clone();

        // Step 2: a single training run on the client data.
        let client_seed = seeds.next_seed();
        let client_result = client_runner.run(client_dataset, &selected_config, client_seed)?;

        Ok(ProxyOutcome {
            proxy_dataset: proxy_dataset.name().to_string(),
            client_dataset: client_dataset.name().to_string(),
            selected_config,
            proxy_error: proxy_errors[best_index],
            client_error: client_result.full_error,
            all_proxy_errors: proxy_errors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feddata::{Benchmark, DatasetSpec, Scale};
    use fedhpo::SearchSpace;
    use fedmodels::ModelSpec;

    fn smoke(benchmark: Benchmark, seed: u64) -> FederatedDataset {
        DatasetSpec::benchmark(benchmark, Scale::Smoke)
            .generate(seed)
            .unwrap()
    }

    #[test]
    fn one_shot_proxy_runs_end_to_end() {
        let proxy = smoke(Benchmark::Cifar10Like, 0);
        let client = smoke(Benchmark::FemnistLike, 1);
        let space = SearchSpace::paper_default();
        let proxy_runner = ConfigRunner::new(space.clone(), ModelSpec::Mlp { hidden_dim: 8 }, 8);
        let client_runner = ConfigRunner::new(space.clone(), ModelSpec::Mlp { hidden_dim: 8 }, 8);
        let pipeline = OneShotProxy::new(4);
        assert_eq!(pipeline.num_configs(), 4);
        let outcome = pipeline
            .run(&proxy, &proxy_runner, &client, &client_runner, 3)
            .unwrap();
        assert_eq!(outcome.proxy_dataset, "cifar10-like");
        assert_eq!(outcome.client_dataset, "femnist-like");
        assert_eq!(outcome.all_proxy_errors.len(), 4);
        assert!((0.0..=1.0).contains(&outcome.proxy_error));
        assert!((0.0..=1.0).contains(&outcome.client_error));
        // The selected configuration achieves the minimum proxy error.
        let min = outcome
            .all_proxy_errors
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert_eq!(outcome.proxy_error, min);
        assert!(space.validate_config(&outcome.selected_config).is_ok());
    }

    #[test]
    fn paper_default_searches_sixteen_configs() {
        assert_eq!(OneShotProxy::paper_default().num_configs(), 16);
    }

    #[test]
    fn validation_errors() {
        let proxy = smoke(Benchmark::Cifar10Like, 0);
        let space = SearchSpace::paper_default();
        let runner = ConfigRunner::new(space.clone(), ModelSpec::Softmax, 2);
        let zero = OneShotProxy::new(0);
        assert!(zero.run(&proxy, &runner, &proxy, &runner, 0).is_err());

        let other_space = SearchSpace::paper_nested_lr_space(1).unwrap();
        let other_runner = ConfigRunner::new(other_space, ModelSpec::Softmax, 2);
        let pipeline = OneShotProxy::new(2);
        assert!(pipeline
            .run(&proxy, &runner, &proxy, &other_runner, 0)
            .is_err());
    }

    #[test]
    fn proxy_pipeline_is_deterministic() {
        let proxy = smoke(Benchmark::StackOverflowLike, 2);
        let client = smoke(Benchmark::RedditLike, 3);
        let space = SearchSpace::paper_default();
        let proxy_runner = ConfigRunner::new(space.clone(), ModelSpec::Bigram { embed_dim: 4 }, 3);
        let client_runner = ConfigRunner::new(space.clone(), ModelSpec::Bigram { embed_dim: 4 }, 3);
        let pipeline = OneShotProxy::new(3);
        let a = pipeline
            .run(&proxy, &proxy_runner, &client, &client_runner, 11)
            .unwrap();
        let b = pipeline
            .run(&proxy, &proxy_runner, &client, &client_runner, 11)
            .unwrap();
        assert_eq!(a, b);
        let c = pipeline
            .run(&proxy, &proxy_runner, &client, &client_runner, 12)
            .unwrap();
        assert_ne!(a.selected_config, c.selected_config);
    }
}
