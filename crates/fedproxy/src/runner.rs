//! Training one hyperparameter configuration end-to-end on a dataset.

use crate::mapping::hyperparams_from_config;
use crate::Result;
use feddata::{FederatedDataset, Split};
use fedhpo::{HpConfig, SearchSpace};
use fedmodels::{AnyModel, ModelSpec};
use fedsim::evaluation::{evaluate_full_with, FederatedEvaluation};
use fedsim::{ExecutionPolicy, FederatedTrainer, TrainerConfig, WeightingScheme};

/// Trains individual hyperparameter configurations on a dataset and reports
/// their full-validation error — the basic unit of work behind every
/// experiment in the paper ("train a single model for a given FedAdam HP
/// configuration" in the artifact's `fedtrain_simple`).
#[derive(Debug, Clone)]
pub struct ConfigRunner {
    space: SearchSpace,
    model_spec: ModelSpec,
    clients_per_round: usize,
    weighting: WeightingScheme,
    rounds: usize,
    execution: ExecutionPolicy,
}

/// The result of training one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigRunResult {
    /// The trained global model.
    pub model: AnyModel,
    /// Full-validation evaluation of the trained model.
    pub evaluation: FederatedEvaluation,
    /// Full-validation error rate (Eq. 2 over all validation clients).
    pub full_error: f64,
}

impl ConfigRunner {
    /// Creates a runner for the given dataset-independent settings.
    pub fn new(space: SearchSpace, model_spec: ModelSpec, rounds: usize) -> Self {
        ConfigRunner {
            space,
            model_spec,
            clients_per_round: 10,
            weighting: WeightingScheme::ByExamples,
            rounds,
            execution: ExecutionPolicy::Sequential,
        }
    }

    /// Overrides the execution policy used for round-level client training
    /// and evaluation. Both policies produce bit-identical results.
    #[must_use]
    pub fn with_execution(mut self, execution: ExecutionPolicy) -> Self {
        self.execution = execution;
        self
    }

    /// Overrides the number of clients sampled per training round
    /// (10 in the paper).
    pub fn with_clients_per_round(mut self, clients_per_round: usize) -> Self {
        self.clients_per_round = clients_per_round;
        self
    }

    /// Overrides the evaluation/aggregation weighting scheme.
    pub fn with_weighting(mut self, weighting: WeightingScheme) -> Self {
        self.weighting = weighting;
        self
    }

    /// The search space this runner interprets configurations against.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Training rounds given to every configuration.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Trains `config` on `dataset` for the configured number of rounds and
    /// evaluates it on the full validation pool.
    ///
    /// # Errors
    ///
    /// Propagates hyperparameter-mapping, training, and evaluation errors.
    pub fn run(
        &self,
        dataset: &FederatedDataset,
        config: &HpConfig,
        seed: u64,
    ) -> Result<ConfigRunResult> {
        let hyperparams = hyperparams_from_config(&self.space, config)?;
        let trainer_config = TrainerConfig {
            clients_per_round: self.clients_per_round,
            hyperparams,
            weighting: self.weighting,
            execution: self.execution,
        };
        let trainer = FederatedTrainer::new(trainer_config)?;
        let run = trainer.train(dataset, self.model_spec, self.rounds, seed)?;
        let evaluation = evaluate_full_with(
            &self.execution,
            run.model(),
            dataset,
            Split::Validation,
            self.weighting,
        )?;
        let full_error = evaluation.weighted_error()?;
        Ok(ConfigRunResult {
            model: run.into_model(),
            evaluation,
            full_error,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feddata::{Benchmark, DatasetSpec, Scale};
    use fedmath::rng::rng_for;
    use fedsim::evaluation::evaluate_full;

    #[test]
    fn runner_trains_and_evaluates_a_config() {
        let dataset = DatasetSpec::benchmark(Benchmark::Cifar10Like, Scale::Smoke)
            .generate(0)
            .unwrap();
        let space = SearchSpace::paper_default();
        let runner = ConfigRunner::new(space.clone(), ModelSpec::Mlp { hidden_dim: 8 }, 5)
            .with_clients_per_round(5)
            .with_weighting(WeightingScheme::Uniform);
        assert_eq!(runner.rounds(), 5);
        assert_eq!(runner.space().len(), 9);
        let mut rng = rng_for(0, 0);
        let config = space.sample(&mut rng).unwrap();
        let result = runner.run(&dataset, &config, 1).unwrap();
        assert!((0.0..=1.0).contains(&result.full_error));
        assert_eq!(result.evaluation.num_clients(), dataset.num_val_clients());
        // The returned model matches the evaluation.
        let recheck = evaluate_full(
            &result.model,
            &dataset,
            Split::Validation,
            WeightingScheme::Uniform,
        )
        .unwrap()
        .weighted_error()
        .unwrap();
        assert!((recheck - result.full_error).abs() < 1e-12);
    }

    #[test]
    fn different_configs_give_different_errors() {
        // The HP response surface must not be flat, otherwise tuning would be
        // meaningless. Compare a sensible configuration against a terrible one.
        let dataset = DatasetSpec::benchmark(Benchmark::Cifar10Like, Scale::Smoke)
            .generate(3)
            .unwrap();
        let space = SearchSpace::paper_default();
        let runner = ConfigRunner::new(space.clone(), ModelSpec::Mlp { hidden_dim: 16 }, 20);

        let good = HpConfig::new(vec![0.03, 0.9, 0.99, 0.9999, 0.05, 0.5, 5e-5, 32.0, 1.0]);
        let bad = HpConfig::new(vec![1e-6, 0.0, 0.0, 0.9999, 1e-6, 0.0, 5e-5, 128.0, 1.0]);
        let good_err = runner.run(&dataset, &good, 7).unwrap().full_error;
        let bad_err = runner.run(&dataset, &bad, 7).unwrap().full_error;
        assert!(
            good_err < bad_err - 0.05,
            "expected good config ({good_err}) to clearly beat bad config ({bad_err})"
        );
    }

    #[test]
    fn runner_is_deterministic_in_the_seed() {
        let dataset = DatasetSpec::benchmark(Benchmark::RedditLike, Scale::Smoke)
            .generate(1)
            .unwrap();
        let space = SearchSpace::paper_default();
        let runner = ConfigRunner::new(space.clone(), ModelSpec::for_dataset(&dataset), 3);
        let mut rng = rng_for(1, 0);
        let config = space.sample(&mut rng).unwrap();
        let a = runner.run(&dataset, &config, 9).unwrap();
        let b = runner.run(&dataset, &config, 9).unwrap();
        assert_eq!(a.full_error, b.full_error);
    }
}
