//! Hyperparameter transfer between dataset pairs (Fig. 10 and Fig. 14).

use crate::runner::ConfigRunner;
use crate::Result;
use feddata::FederatedDataset;
use fedhpo::HpConfig;
use fedmath::SeedStream;
use serde::{Deserialize, Serialize};

/// One configuration evaluated on two datasets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferPoint {
    /// Index of the configuration in the evaluated batch.
    pub config_index: usize,
    /// Full-validation error on the first dataset.
    pub error_a: f64,
    /// Full-validation error on the second dataset.
    pub error_b: f64,
}

/// The scatter of Fig. 10/14 plus summary correlations: how well does a
/// configuration's quality on one dataset predict its quality on another?
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferAnalysis {
    /// Name of the first dataset.
    pub dataset_a: String,
    /// Name of the second dataset.
    pub dataset_b: String,
    /// Per-configuration error pairs.
    pub points: Vec<TransferPoint>,
    /// Pearson correlation between the two error columns (`None` if either
    /// column is constant).
    pub pearson: Option<f64>,
    /// Spearman rank correlation between the two error columns.
    pub spearman: Option<f64>,
}

impl TransferAnalysis {
    /// Errors on the first dataset, in configuration order.
    pub fn errors_a(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.error_a).collect()
    }

    /// Errors on the second dataset, in configuration order.
    pub fn errors_b(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.error_b).collect()
    }
}

/// Trains and evaluates the *same* configurations independently on two
/// datasets, producing the transfer scatter of Fig. 10/14.
///
/// `runner_a` / `runner_b` carry the per-dataset model and round settings
/// (image vs. text datasets use different models); both interpret `configs`
/// against the same search space.
///
/// # Errors
///
/// Propagates training errors; returns an error if `configs` is empty.
pub fn transfer_analysis(
    dataset_a: &FederatedDataset,
    runner_a: &ConfigRunner,
    dataset_b: &FederatedDataset,
    runner_b: &ConfigRunner,
    configs: &[HpConfig],
    seed: u64,
) -> Result<TransferAnalysis> {
    if configs.is_empty() {
        return Err(crate::ProxyError::InvalidConfig {
            message: "transfer analysis needs at least one configuration".into(),
        });
    }
    let mut seeds = SeedStream::new(seed);
    let mut points = Vec::with_capacity(configs.len());
    for (config_index, config) in configs.iter().enumerate() {
        let seed_a = seeds.next_seed();
        let seed_b = seeds.next_seed();
        let error_a = runner_a.run(dataset_a, config, seed_a)?.full_error;
        let error_b = runner_b.run(dataset_b, config, seed_b)?.full_error;
        points.push(TransferPoint {
            config_index,
            error_a,
            error_b,
        });
    }
    let a: Vec<f64> = points.iter().map(|p| p.error_a).collect();
    let b: Vec<f64> = points.iter().map(|p| p.error_b).collect();
    let pearson = fedmath::stats::pearson_correlation(&a, &b).ok();
    let spearman = fedmath::stats::spearman_correlation(&a, &b).ok();
    Ok(TransferAnalysis {
        dataset_a: dataset_a.name().to_string(),
        dataset_b: dataset_b.name().to_string(),
        points,
        pearson,
        spearman,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use feddata::{Benchmark, DatasetSpec, Scale};
    use fedhpo::SearchSpace;
    use fedmath::rng::rng_for;
    use fedmodels::ModelSpec;

    #[test]
    fn transfer_within_the_same_task_family_is_positive() {
        // CIFAR10-like and FEMNIST-like are both dense-classification tasks;
        // the paper finds HPs transfer well within a family. With a handful
        // of very different configurations the rank correlation should be
        // positive.
        let cifar = DatasetSpec::benchmark(Benchmark::Cifar10Like, Scale::Smoke)
            .generate(0)
            .unwrap();
        let femnist = DatasetSpec::benchmark(Benchmark::FemnistLike, Scale::Smoke)
            .generate(0)
            .unwrap();
        let space = SearchSpace::paper_default();
        let runner_a = ConfigRunner::new(space.clone(), ModelSpec::Mlp { hidden_dim: 8 }, 15);
        let runner_b = ConfigRunner::new(space.clone(), ModelSpec::Mlp { hidden_dim: 8 }, 15);

        // Spread configurations from terrible (tiny lrs) to sensible.
        let configs = vec![
            HpConfig::new(vec![1e-6, 0.0, 0.0, 0.9999, 1e-6, 0.0, 5e-5, 128.0, 1.0]),
            HpConfig::new(vec![1e-5, 0.3, 0.5, 0.9999, 1e-4, 0.3, 5e-5, 64.0, 1.0]),
            HpConfig::new(vec![1e-3, 0.6, 0.9, 0.9999, 1e-2, 0.5, 5e-5, 32.0, 1.0]),
            HpConfig::new(vec![3e-2, 0.9, 0.99, 0.9999, 5e-2, 0.7, 5e-5, 32.0, 1.0]),
        ];
        let analysis =
            transfer_analysis(&cifar, &runner_a, &femnist, &runner_b, &configs, 1).unwrap();
        assert_eq!(analysis.points.len(), 4);
        assert_eq!(analysis.dataset_a, "cifar10-like");
        assert_eq!(analysis.dataset_b, "femnist-like");
        assert_eq!(analysis.errors_a().len(), 4);
        assert_eq!(analysis.errors_b().len(), 4);
        if let Some(s) = analysis.spearman {
            assert!(s > 0.0, "expected positive rank correlation, got {s}");
        }
    }

    #[test]
    fn empty_config_list_is_rejected() {
        let cifar = DatasetSpec::benchmark(Benchmark::Cifar10Like, Scale::Smoke)
            .generate(0)
            .unwrap();
        let space = SearchSpace::paper_default();
        let runner = ConfigRunner::new(space, ModelSpec::Softmax, 2);
        assert!(transfer_analysis(&cifar, &runner, &cifar, &runner, &[], 0).is_err());
    }

    #[test]
    fn transfer_points_are_reproducible() {
        let d = DatasetSpec::benchmark(Benchmark::RedditLike, Scale::Smoke)
            .generate(2)
            .unwrap();
        let space = SearchSpace::paper_default();
        let runner = ConfigRunner::new(space.clone(), ModelSpec::Bigram { embed_dim: 4 }, 3);
        let mut rng = rng_for(0, 0);
        let configs = space.sample_many(2, &mut rng).unwrap();
        let a = transfer_analysis(&d, &runner, &d, &runner, &configs, 5).unwrap();
        let b = transfer_analysis(&d, &runner, &d, &runner, &configs, 5).unwrap();
        assert_eq!(a, b);
    }
}
