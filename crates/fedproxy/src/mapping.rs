//! Translation from sampled search-space configurations to concrete
//! simulator hyperparameters.

use crate::{ProxyError, Result};
use fedhpo::{HpConfig, SearchSpace};
use fedmodels::LocalSgdConfig;
use fedsim::{FedAdamConfig, FederatedHyperparams};

/// Converts a configuration sampled from the paper's search space
/// ([`SearchSpace::paper_default`] or any space using the same dimension
/// names) into the [`FederatedHyperparams`] consumed by the simulator.
///
/// # Errors
///
/// Returns [`ProxyError::InvalidConfig`] if a required dimension is missing
/// or the resulting hyperparameters fail validation.
pub fn hyperparams_from_config(
    space: &SearchSpace,
    config: &HpConfig,
) -> Result<FederatedHyperparams> {
    let get = |name: &str| -> Result<f64> { space.value(config, name).map_err(ProxyError::from) };
    let hyperparams = FederatedHyperparams {
        server: FedAdamConfig {
            learning_rate: get("server_lr")?,
            beta1: get("server_beta1")?,
            beta2: get("server_beta2")?,
            lr_decay: get("server_lr_decay")?,
            epsilon: 1e-5,
        },
        client: LocalSgdConfig {
            learning_rate: get("client_lr")?,
            momentum: get("client_momentum")?,
            weight_decay: get("client_weight_decay")?,
            batch_size: get("client_batch_size")?.round().max(1.0) as usize,
            epochs: get("client_epochs")?.round().max(1.0) as usize,
        },
    };
    hyperparams
        .validate()
        .map_err(|e| ProxyError::InvalidConfig {
            message: format!("sampled configuration is invalid: {e}"),
        })?;
    Ok(hyperparams)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmath::rng::rng_for;

    #[test]
    fn every_sample_from_the_paper_space_maps_to_valid_hyperparams() {
        let space = SearchSpace::paper_default();
        let mut rng = rng_for(0, 0);
        for _ in 0..200 {
            let config = space.sample(&mut rng).unwrap();
            let hp = hyperparams_from_config(&space, &config).unwrap();
            assert!(hp.server.learning_rate >= 1e-6 && hp.server.learning_rate <= 1e-1);
            assert!(hp.client.learning_rate >= 1e-6 && hp.client.learning_rate <= 1.0);
            assert!([32, 64, 128].contains(&hp.client.batch_size));
            assert_eq!(hp.client.epochs, 1);
            assert!((hp.server.lr_decay - 0.9999).abs() < 1e-12);
            assert!((hp.client.weight_decay - 5e-5).abs() < 1e-12);
        }
    }

    #[test]
    fn nested_lr_spaces_also_map() {
        let space = SearchSpace::paper_nested_lr_space(2).unwrap();
        let mut rng = rng_for(1, 0);
        let config = space.sample(&mut rng).unwrap();
        let hp = hyperparams_from_config(&space, &config).unwrap();
        assert!(hp.server.learning_rate >= 10f64.powf(-4.0) - 1e-12);
        assert!(hp.server.learning_rate <= 10f64.powf(-2.0) + 1e-12);
    }

    #[test]
    fn missing_dimension_is_an_error() {
        let space = SearchSpace::new()
            .with_uniform("server_lr", 0.001, 0.1)
            .unwrap();
        let mut rng = rng_for(2, 0);
        let config = space.sample(&mut rng).unwrap();
        assert!(hyperparams_from_config(&space, &config).is_err());
    }
}
