//! Proxy-data hyperparameter tuning and HP-transfer analysis (§4).
//!
//! When federated evaluation is too noisy to be useful, the paper proposes a
//! simple alternative: tune hyperparameters entirely on server-side *proxy
//! data* (a public dataset) and transfer only the single best configuration
//! to the client data. This crate provides:
//!
//! - [`mapping::hyperparams_from_config`] — the translation from a sampled
//!   [`fedhpo::HpConfig`] (the Appendix B search space) into the concrete
//!   [`fedsim::FederatedHyperparams`] used by the simulator.
//! - [`ConfigRunner`] — "train this configuration on this dataset for R
//!   rounds and report its full validation error", the building block shared
//!   by the transfer analysis and the proxy pipeline.
//! - [`transfer`] — evaluating the *same* configurations on two datasets to
//!   quantify HP transfer (Fig. 10/14).
//! - [`OneShotProxy`] — the two-step baseline of §4: random search on the
//!   proxy dataset, then a single training run on the client dataset
//!   (Fig. 11/12).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod mapping;
pub mod one_shot;
pub mod runner;
pub mod transfer;

pub use mapping::hyperparams_from_config;
pub use one_shot::{OneShotProxy, ProxyOutcome};
pub use runner::ConfigRunner;
pub use transfer::{transfer_analysis, TransferAnalysis, TransferPoint};

use std::fmt;

/// Errors produced by the proxy-tuning pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProxyError {
    /// A configuration or argument was invalid.
    InvalidConfig {
        /// Description of the violation.
        message: String,
    },
    /// An underlying HPO operation failed.
    Hpo(fedhpo::HpoError),
    /// An underlying simulation operation failed.
    Sim(fedsim::SimError),
}

impl fmt::Display for ProxyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProxyError::InvalidConfig { message } => write!(f, "invalid configuration: {message}"),
            ProxyError::Hpo(e) => write!(f, "hpo error: {e}"),
            ProxyError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for ProxyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProxyError::Hpo(e) => Some(e),
            ProxyError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fedhpo::HpoError> for ProxyError {
    fn from(e: fedhpo::HpoError) -> Self {
        ProxyError::Hpo(e)
    }
}

impl From<fedsim::SimError> for ProxyError {
    fn from(e: fedsim::SimError) -> Self {
        ProxyError::Sim(e)
    }
}

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, ProxyError>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn error_display_and_source() {
        let e = ProxyError::InvalidConfig {
            message: "k".into(),
        };
        assert!(e.to_string().contains('k'));
        assert!(e.source().is_none());
        let e: ProxyError = fedhpo::HpoError::InvalidConfig {
            message: "x".into(),
        }
        .into();
        assert!(e.source().is_some());
        let e: ProxyError = fedsim::SimError::InvalidConfig {
            message: "y".into(),
        }
        .into();
        assert!(e.source().is_some());
    }
}
