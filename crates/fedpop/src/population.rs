//! The [`Population`] trait and its synthetic implementation.

use crate::{PopError, PopulationSpec, Result};
use feddata::generators::{ClassificationWorld, LanguageWorld};
use feddata::spec::TaskConfig;
use feddata::{ClientData, Task};
use fedmath::SeedTree;

/// Seed-tree channel of the shared world structure (prototypes / topics).
const CHANNEL_WORLD: u64 = 0;
/// Seed-tree channel of per-client example counts.
const CHANNEL_SIZES: u64 = 1;
/// Seed-tree channel of per-client shard generation.
const CHANNEL_CLIENTS: u64 = 2;
/// Seed-tree channel of per-client availability phases.
const CHANNEL_AVAILABILITY: u64 = 3;

/// A virtual population of clients, addressed by id.
///
/// Implementations must treat every per-client query as a **pure function of
/// the population identity and the id**: `materialize(i)` returns the same
/// bits no matter which other ids were materialized before it, in what
/// order, or on which thread. That order-invariance (checked by a property
/// test in this crate) is what makes parallel cohort training bit-identical
/// to sequential training, and what lets caches of any policy sit in front
/// of a population without changing results.
pub trait Population: Sync {
    /// Number of clients in the population (`N`).
    fn num_clients(&self) -> u64;

    /// Task family of the population's data.
    fn task(&self) -> Task;

    /// Number of output classes (vocabulary size for next-token prediction).
    fn num_classes(&self) -> usize;

    /// Input dimensionality (dense feature dim, or vocabulary size).
    fn input_dim(&self) -> usize;

    /// The example count of client `id`, in O(1) and without materializing
    /// the shard.
    ///
    /// # Errors
    ///
    /// Returns [`PopError::ClientOutOfRange`] for ids past the population.
    fn client_size(&self, id: u64) -> Result<usize>;

    /// An upper bound on [`client_size`](Self::client_size) over the whole
    /// population, in O(1) — the envelope used by size-weighted rejection
    /// sampling.
    fn max_client_size(&self) -> usize;

    /// Whether client `id` is reachable at simulated time `sim_time`.
    fn available(&self, id: u64, sim_time: f64) -> bool;

    /// Materializes the full shard of client `id`.
    ///
    /// # Errors
    ///
    /// Returns [`PopError::ClientOutOfRange`] for ids past the population
    /// and propagates generation failures.
    fn materialize(&self, id: u64) -> Result<ClientData>;
}

/// The world structure shared by every client of a synthetic population.
#[derive(Debug, Clone)]
enum World {
    Classification(ClassificationWorld),
    Language(LanguageWorld),
}

/// A lazy synthetic population: a [`PopulationSpec`] plus a root seed.
///
/// Construction is O(world) — the class prototypes or topic tables — never
/// O(N). Every per-client draw derives positionally from a dedicated
/// seed-tree channel:
///
/// | channel | derivation |
/// |---|---|
/// | world | shared prototypes / bigram topics |
/// | sizes | client `i`'s example count at `sizes.child(i)` |
/// | clients | client `i`'s shard at `clients.child(i)` |
/// | availability | client `i`'s diurnal phase at `availability.child(i)` |
#[derive(Debug, Clone)]
pub struct SyntheticPopulation {
    spec: PopulationSpec,
    world: World,
    /// The spec's size distribution, validated and precompiled once:
    /// [`Population::client_size`] sits in the size-weighted sampler's
    /// rejection loop, so per-query validation would dominate.
    size_sampler: feddata::spec::SizeSampler,
    sizes: SeedTree,
    clients: SeedTree,
    availability: SeedTree,
}

impl SyntheticPopulation {
    /// Builds the population's shared world from `(spec, seed)`.
    ///
    /// # Errors
    ///
    /// Returns [`PopError::InvalidSpec`] if the spec is invalid.
    pub fn new(spec: PopulationSpec, seed: u64) -> Result<Self> {
        spec.validate()?;
        let root = SeedTree::new(seed);
        let mut world_rng = root.child(CHANNEL_WORLD).rng();
        let world = match &spec.task {
            TaskConfig::Classification(cfg) => {
                World::Classification(ClassificationWorld::generate(&mut world_rng, cfg.clone())?)
            }
            TaskConfig::Language(cfg) => {
                World::Language(LanguageWorld::generate(&mut world_rng, cfg.clone())?)
            }
        };
        Ok(SyntheticPopulation {
            world,
            size_sampler: spec.client_sizes.compile()?,
            sizes: root.child(CHANNEL_SIZES),
            clients: root.child(CHANNEL_CLIENTS),
            availability: root.child(CHANNEL_AVAILABILITY),
            spec,
        })
    }

    /// The population's spec.
    pub fn spec(&self) -> &PopulationSpec {
        &self.spec
    }

    fn check_id(&self, id: u64) -> Result<()> {
        if id >= self.spec.num_clients {
            return Err(PopError::ClientOutOfRange {
                id,
                population: self.spec.num_clients,
            });
        }
        Ok(())
    }
}

impl Population for SyntheticPopulation {
    fn num_clients(&self) -> u64 {
        self.spec.num_clients
    }

    fn task(&self) -> Task {
        self.spec.task_kind()
    }

    fn num_classes(&self) -> usize {
        self.spec.num_classes()
    }

    fn input_dim(&self) -> usize {
        self.spec.input_dim()
    }

    fn client_size(&self, id: u64) -> Result<usize> {
        self.check_id(id)?;
        Ok(self.size_sampler.size_at(&self.sizes, id))
    }

    fn max_client_size(&self) -> usize {
        self.spec.client_sizes.max_size()
    }

    fn available(&self, id: u64, sim_time: f64) -> bool {
        id < self.spec.num_clients
            && self
                .spec
                .availability
                .available(&self.availability, id, sim_time)
    }

    fn materialize(&self, id: u64) -> Result<ClientData> {
        let size = self.client_size(id)?;
        let client = match &self.world {
            World::Classification(world) => world.client_at(&self.clients, id, size)?,
            World::Language(world) => world.client_at(&self.clients, id, size)?,
        };
        Ok(client)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feddata::Benchmark;

    fn small_population(n: u64) -> SyntheticPopulation {
        SyntheticPopulation::new(PopulationSpec::benchmark(Benchmark::Cifar10Like, n), 3).unwrap()
    }

    #[test]
    fn construction_is_o_world_not_o_population() {
        // A million-client population builds instantly: only the world is
        // generated up front.
        let population = small_population(1_000_000);
        assert_eq!(population.num_clients(), 1_000_000);
        assert_eq!(population.task(), Task::DenseClassification);
        assert_eq!(population.num_classes(), 10);
        assert_eq!(population.input_dim(), 16);
        assert!(population.spec().validate().is_ok());
    }

    #[test]
    fn materialization_is_pure_in_the_id() {
        let population = small_population(10_000);
        let a = population.materialize(9_876).unwrap();
        let _ = population.materialize(0).unwrap();
        let _ = population.materialize(5_555).unwrap();
        let b = population.materialize(9_876).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.id(), 9_876);
        assert_eq!(a.num_examples(), population.client_size(9_876).unwrap());
        assert!(a.num_examples() >= 1);
    }

    #[test]
    fn two_instances_with_same_seed_agree() {
        let spec = PopulationSpec::benchmark(Benchmark::StackOverflowLike, 500);
        let p1 = SyntheticPopulation::new(spec.clone(), 9).unwrap();
        let p2 = SyntheticPopulation::new(spec.clone(), 9).unwrap();
        for id in [0u64, 17, 499] {
            assert_eq!(p1.materialize(id).unwrap(), p2.materialize(id).unwrap());
            assert_eq!(p1.client_size(id).unwrap(), p2.client_size(id).unwrap());
        }
        // A different seed gives a different population.
        let p3 = SyntheticPopulation::new(spec, 10).unwrap();
        assert_ne!(p1.materialize(17).unwrap(), p3.materialize(17).unwrap());
    }

    #[test]
    fn out_of_range_ids_are_rejected() {
        let population = small_population(10);
        assert!(matches!(
            population.materialize(10),
            Err(PopError::ClientOutOfRange {
                id: 10,
                population: 10
            })
        ));
        assert!(population.client_size(11).is_err());
        assert!(!population.available(10, 0.0));
        assert!(population.available(9, 0.0));
    }

    #[test]
    fn sizes_respect_the_declared_bound() {
        let population =
            SyntheticPopulation::new(PopulationSpec::benchmark(Benchmark::RedditLike, 2_000), 1)
                .unwrap();
        let bound = population.max_client_size();
        for id in (0..2_000u64).step_by(97) {
            let size = population.client_size(id).unwrap();
            assert!(size >= 1);
            assert!(size <= bound, "size {size} exceeds bound {bound}");
        }
    }

    #[test]
    fn language_populations_materialize_token_shards() {
        let population =
            SyntheticPopulation::new(PopulationSpec::benchmark(Benchmark::RedditLike, 100), 4)
                .unwrap();
        let client = population.materialize(42).unwrap();
        for e in client.examples() {
            assert!(e.input.token_id().expect("token input") < 48);
            assert!(e.label < 48);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use feddata::Benchmark;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The tentpole contract: materialize(i) is order-invariant and
        /// independent of which other ids were materialized.
        #[test]
        fn prop_materialization_is_order_invariant(
            seed in any::<u64>(),
            ids in proptest::collection::vec(0u64..5_000, 2..12),
        ) {
            let spec = PopulationSpec::benchmark(Benchmark::FemnistLike, 5_000);
            let population = SyntheticPopulation::new(spec, seed).unwrap();
            // Materialize forward, backward, and individually on a fresh
            // instance: every path must agree bit for bit.
            let forward: Vec<_> = ids.iter().map(|&i| population.materialize(i).unwrap()).collect();
            let backward: Vec<_> = ids.iter().rev().map(|&i| population.materialize(i).unwrap()).collect();
            for (f, b) in forward.iter().zip(backward.iter().rev()) {
                prop_assert_eq!(f, b);
            }
            let fresh = SyntheticPopulation::new(
                PopulationSpec::benchmark(Benchmark::FemnistLike, 5_000), seed).unwrap();
            let solo = fresh.materialize(ids[0]).unwrap();
            prop_assert_eq!(&solo, &forward[0]);
            // Sizes agree with the materialized shard.
            for (&i, client) in ids.iter().zip(forward.iter()) {
                prop_assert_eq!(client.num_examples(), population.client_size(i).unwrap());
            }
        }
    }
}
