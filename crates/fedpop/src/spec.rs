//! Population specifications: an implicit description of `N` clients.
//!
//! Where `feddata::DatasetSpec` eagerly generates every client it describes,
//! a [`PopulationSpec`] only *defines* the distribution clients are drawn
//! from; materialization happens client by client in
//! [`crate::SyntheticPopulation`]. The spec reuses the task-family generator
//! configurations and client-size distributions of `feddata`, and adds the
//! one piece eager datasets never needed: an [`AvailabilityModel`] gating
//! which clients can participate at a given simulated time.

use crate::{PopError, Result};
use feddata::spec::{ClientSizes, TaskConfig};
use feddata::{Benchmark, DatasetSpec, Scale, Task};
use fedmath::SeedTree;

/// When clients are reachable, as a function of simulated time
/// (`fedsim::clock` seconds).
///
/// Cross-device clients charge overnight and disappear during the day; the
/// paper's production framing ("millions of users") makes participation a
/// diurnal, per-client property. Each client draws a persistent phase
/// offset positionally (a pure function of the availability seed and the
/// client id), so availability is deterministic, O(1) to query, and needs no
/// per-client state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AvailabilityModel {
    /// Every client is always reachable (the eager-dataset behaviour).
    Always,
    /// Each client is reachable during a fixed daily window: client `i` is
    /// available at time `t` iff `fract(t / day_seconds + phase_i) <
    /// window_fraction`, with `phase_i` drawn uniformly per client.
    Diurnal {
        /// Length of a simulated day in seconds (86 400 for wall-clock days).
        day_seconds: f64,
        /// Fraction of each day a client is reachable, in `(0, 1]`.
        window_fraction: f64,
    },
}

impl AvailabilityModel {
    /// A 24-hour day with the given availability fraction.
    pub fn diurnal(window_fraction: f64) -> Self {
        AvailabilityModel::Diurnal {
            day_seconds: 86_400.0,
            window_fraction,
        }
    }

    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PopError::InvalidSpec`] for a non-positive day length or a
    /// window fraction outside `(0, 1]`.
    pub fn validate(&self) -> Result<()> {
        match *self {
            AvailabilityModel::Always => Ok(()),
            AvailabilityModel::Diurnal {
                day_seconds,
                window_fraction,
            } => {
                if !day_seconds.is_finite() || day_seconds <= 0.0 {
                    return Err(PopError::InvalidSpec {
                        message: format!("day length must be positive, got {day_seconds}"),
                    });
                }
                if !window_fraction.is_finite()
                    || !(0.0..=1.0).contains(&window_fraction)
                    || window_fraction == 0.0
                {
                    return Err(PopError::InvalidSpec {
                        message: format!(
                            "window fraction must be in (0, 1], got {window_fraction}"
                        ),
                    });
                }
                Ok(())
            }
        }
    }

    /// The expected fraction of the population reachable at any instant.
    pub fn expected_coverage(&self) -> f64 {
        match *self {
            AvailabilityModel::Always => 1.0,
            AvailabilityModel::Diurnal {
                window_fraction, ..
            } => window_fraction,
        }
    }

    /// Whether client `id` is reachable at simulated time `sim_time`, given
    /// the population's availability seed tree. Pure in `(tree, id,
    /// sim_time)`; negative or non-finite times count as "campaign start"
    /// (time zero).
    pub fn available(&self, tree: &SeedTree, id: u64, sim_time: f64) -> bool {
        match *self {
            AvailabilityModel::Always => true,
            AvailabilityModel::Diurnal {
                day_seconds,
                window_fraction,
            } => {
                let phase: f64 = rand::Rng::gen(&mut tree.child(id).rng());
                let t = if sim_time.is_finite() && sim_time > 0.0 {
                    sim_time
                } else {
                    0.0
                };
                let local = (t / day_seconds + phase).fract();
                local < window_fraction
            }
        }
    }
}

/// An implicit description of a client population: `N`, the per-client size
/// distribution, the task-family generator, and the availability model.
/// Together with a root seed this defines every client deterministically;
/// nothing is materialized until a cohort asks for it.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationSpec {
    /// Population name used in reports.
    pub name: String,
    /// Number of clients in the population (`N`).
    pub num_clients: u64,
    /// Distribution of per-client example counts (drawn positionally).
    pub client_sizes: ClientSizes,
    /// Task-specific generator parameters (shared world structure).
    pub task: TaskConfig,
    /// When clients are reachable in simulated time.
    pub availability: AvailabilityModel,
}

impl PopulationSpec {
    /// A population preset reusing one of the paper's four benchmark
    /// generator configurations (at the CPU-friendly default scale's
    /// heterogeneity structure) scaled out to `num_clients` clients, always
    /// available.
    pub fn benchmark(benchmark: Benchmark, num_clients: u64) -> Self {
        let dataset = DatasetSpec::benchmark(benchmark, Scale::Default);
        PopulationSpec {
            name: format!("{}-population", dataset.name),
            num_clients,
            client_sizes: dataset.client_sizes,
            task: dataset.task,
            availability: AvailabilityModel::Always,
        }
    }

    /// Replaces the availability model.
    #[must_use]
    pub fn with_availability(mut self, availability: AvailabilityModel) -> Self {
        self.availability = availability;
        self
    }

    /// Validates every component of the spec.
    ///
    /// # Errors
    ///
    /// Returns [`PopError::InvalidSpec`] for a zero-client population or
    /// invalid size/availability parameters.
    pub fn validate(&self) -> Result<()> {
        if self.num_clients == 0 {
            return Err(PopError::InvalidSpec {
                message: "population must have at least one client".into(),
            });
        }
        self.client_sizes.validate()?;
        self.availability.validate()
    }

    /// Task family of this population.
    pub fn task_kind(&self) -> Task {
        match self.task {
            TaskConfig::Classification(_) => Task::DenseClassification,
            TaskConfig::Language(_) => Task::NextTokenPrediction,
        }
    }

    /// Number of output classes (or vocabulary size).
    pub fn num_classes(&self) -> usize {
        match &self.task {
            TaskConfig::Classification(c) => c.num_classes,
            TaskConfig::Language(l) => l.vocab_size,
        }
    }

    /// Input dimensionality (dense feature dim, or vocabulary size).
    pub fn input_dim(&self) -> usize {
        match &self.task {
            TaskConfig::Classification(c) => c.feature_dim,
            TaskConfig::Language(l) => l.vocab_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_presets_scale_to_any_population_size() {
        for &b in &Benchmark::ALL {
            let spec = PopulationSpec::benchmark(b, 1_000_000);
            assert_eq!(spec.num_clients, 1_000_000);
            assert!(spec.validate().is_ok());
            assert_eq!(spec.task_kind(), b.task());
            assert!(spec.num_classes() >= 2);
            assert!(spec.input_dim() >= 1);
            assert!(spec.name.contains("population"));
        }
    }

    #[test]
    fn spec_validation_rejects_degenerate_populations() {
        let mut spec = PopulationSpec::benchmark(Benchmark::Cifar10Like, 10);
        spec.num_clients = 0;
        assert!(spec.validate().is_err());
        let mut spec = PopulationSpec::benchmark(Benchmark::Cifar10Like, 10);
        spec.client_sizes = ClientSizes::Uniform { low: 5, high: 3 };
        assert!(spec.validate().is_err());
        let spec = PopulationSpec::benchmark(Benchmark::Cifar10Like, 10).with_availability(
            AvailabilityModel::Diurnal {
                day_seconds: 0.0,
                window_fraction: 0.5,
            },
        );
        assert!(spec.validate().is_err());
        let spec = PopulationSpec::benchmark(Benchmark::Cifar10Like, 10)
            .with_availability(AvailabilityModel::diurnal(0.0));
        assert!(spec.validate().is_err());
        let spec = PopulationSpec::benchmark(Benchmark::Cifar10Like, 10)
            .with_availability(AvailabilityModel::diurnal(1.5));
        assert!(spec.validate().is_err());
    }

    #[test]
    fn diurnal_availability_is_positional_and_periodic() {
        let model = AvailabilityModel::diurnal(0.4);
        let tree = SeedTree::new(7);
        for id in 0..50u64 {
            let now = model.available(&tree, id, 1_000.0);
            // Same coordinates, same answer — regardless of other queries.
            assert_eq!(model.available(&tree, id, 1_000.0), now);
            // One full day later the window is in the same place.
            assert_eq!(model.available(&tree, id, 1_000.0 + 86_400.0), now);
        }
        // Negative / non-finite times behave like campaign start.
        assert_eq!(
            model.available(&tree, 3, -5.0),
            model.available(&tree, 3, 0.0)
        );
        assert_eq!(
            model.available(&tree, 3, f64::NAN),
            model.available(&tree, 3, 0.0)
        );
    }

    #[test]
    fn diurnal_coverage_matches_window_fraction() {
        let model = AvailabilityModel::diurnal(0.3);
        let tree = SeedTree::new(11);
        let population = 4_000u64;
        let available = (0..population)
            .filter(|&id| model.available(&tree, id, 40_000.0))
            .count();
        let fraction = available as f64 / population as f64;
        assert!(
            (fraction - 0.3).abs() < 0.05,
            "expected ~30% available, got {fraction}"
        );
        assert_eq!(model.expected_coverage(), 0.3);
        assert_eq!(AvailabilityModel::Always.expected_coverage(), 1.0);
        assert!(AvailabilityModel::Always.available(&tree, 0, 0.0));
    }
}
