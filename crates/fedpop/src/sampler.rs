//! Deterministic cohort samplers over lazy populations.
//!
//! A cohort sampler picks the round's participating client ids from a
//! population of up to millions of clients **without enumerating it**:
//! uniform sampling uses Floyd's O(cohort) algorithm, while size-weighted
//! and availability-gated sampling use rejection sampling against O(1)
//! per-client metadata (the positional size draw and the diurnal phase).
//! Every sampler is a deterministic function of its RNG, the population
//! identity, and — for availability — the simulated time, so cohorts
//! reproduce bit-for-bit across runs and thread counts.

use crate::{PopError, Population, Result};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;

/// How a round's cohort is drawn from the population.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CohortSampler {
    /// Uniform without replacement over all `N` clients (Floyd's algorithm,
    /// O(cohort) time and memory).
    Uniform,
    /// Without replacement, with probability proportional to each client's
    /// example count — the participation bias of production systems where
    /// data-rich devices contribute more. Implemented by rejection sampling
    /// against the population's O(1) size bound.
    SizeWeighted,
    /// Uniform among the clients inside their diurnal availability window at
    /// the round's simulated time (see
    /// [`AvailabilityModel`](crate::AvailabilityModel)). Rounds scheduled
    /// when few clients are reachable legitimately get smaller cohorts.
    Available,
}

impl CohortSampler {
    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            CohortSampler::Uniform => "uniform",
            CohortSampler::SizeWeighted => "size-weighted",
            CohortSampler::Available => "available",
        }
    }

    /// Draws a cohort of up to `count` distinct client ids at simulated time
    /// `sim_time`.
    ///
    /// [`Uniform`](Self::Uniform) and [`SizeWeighted`](Self::SizeWeighted)
    /// always return exactly `min(count, N)` ids. [`Available`](Self::Available)
    /// returns at most that many — possibly fewer (even zero) when the
    /// availability window leaves too few clients reachable; the caller
    /// decides whether an undersized cohort trains or skips the round.
    ///
    /// # Errors
    ///
    /// Returns [`PopError::Sampling`] if `count == 0`, if the population is
    /// empty, or if size-weighted rejection sampling exhausts its attempt
    /// budget (pathologically skewed size bounds).
    pub fn sample<P: Population + ?Sized>(
        &self,
        population: &P,
        rng: &mut StdRng,
        count: usize,
        sim_time: f64,
    ) -> Result<Vec<u64>> {
        let n = population.num_clients();
        if count == 0 {
            return Err(PopError::Sampling {
                message: "cannot sample an empty cohort".into(),
            });
        }
        if n == 0 {
            return Err(PopError::Sampling {
                message: "population is empty".into(),
            });
        }
        let count = count.min(usize::try_from(n).unwrap_or(usize::MAX));
        match self {
            CohortSampler::Uniform => {
                Ok(fedmath::rng::sample_ids_without_replacement(rng, n, count)?)
            }
            CohortSampler::SizeWeighted => {
                // Sampling the whole population is weighted sampling of
                // everyone: short-circuit instead of paying the rejection
                // loop its worst case (accepting the final size-1 client
                // takes ~n·bound expected draws).
                if count as u64 == n {
                    return Ok((0..n).collect());
                }
                let bound = population.max_client_size().max(1) as f64;
                let mut chosen = HashSet::with_capacity(count);
                let mut cohort = Vec::with_capacity(count);
                // Rejection sampling: accept id with probability size/bound.
                // The attempt budget covers bound/mean ratios up to ~10⁴
                // before giving up with a diagnosable error.
                let mut attempts: u64 = 0;
                let max_attempts = (count as u64).saturating_mul(20_000).max(100_000);
                while cohort.len() < count {
                    attempts += 1;
                    if attempts > max_attempts {
                        return Err(PopError::Sampling {
                            message: format!(
                                "size-weighted sampling exhausted {max_attempts} attempts \
                                 drawing {count} of {n} clients (size bound {bound})"
                            ),
                        });
                    }
                    let id = rng.gen_range(0..n);
                    if chosen.contains(&id) {
                        continue;
                    }
                    let size = population.client_size(id)? as f64;
                    if rng.gen::<f64>() < size / bound {
                        chosen.insert(id);
                        cohort.push(id);
                    }
                }
                Ok(cohort)
            }
            CohortSampler::Available => {
                let mut chosen = HashSet::with_capacity(count);
                let mut cohort = Vec::with_capacity(count);
                // Bounded search: windows cover an expected fraction of the
                // population, so a fixed per-slot budget finds reachable
                // clients when they exist and degrades to a smaller cohort
                // when they don't.
                let max_attempts = (count as u64).saturating_mul(256).max(4_096);
                for _ in 0..max_attempts {
                    if cohort.len() == count {
                        break;
                    }
                    let id = rng.gen_range(0..n);
                    if chosen.contains(&id) {
                        continue;
                    }
                    if population.available(id, sim_time) {
                        chosen.insert(id);
                        cohort.push(id);
                    }
                }
                Ok(cohort)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AvailabilityModel, PopulationSpec, SyntheticPopulation};
    use feddata::Benchmark;
    use fedmath::rng::rng_for;
    use std::collections::HashSet;

    fn population(n: u64) -> SyntheticPopulation {
        SyntheticPopulation::new(PopulationSpec::benchmark(Benchmark::RedditLike, n), 5).unwrap()
    }

    #[test]
    fn uniform_cohorts_are_distinct_and_in_range() {
        let population = population(1_000_000);
        let mut rng = rng_for(0, 0);
        let cohort = CohortSampler::Uniform
            .sample(&population, &mut rng, 100, 0.0)
            .unwrap();
        assert_eq!(cohort.len(), 100);
        let unique: HashSet<u64> = cohort.iter().copied().collect();
        assert_eq!(unique.len(), 100);
        assert!(cohort.iter().all(|&id| id < 1_000_000));
        assert_eq!(CohortSampler::Uniform.name(), "uniform");
    }

    #[test]
    fn cohorts_are_deterministic_in_the_rng() {
        let population = population(10_000);
        for sampler in [
            CohortSampler::Uniform,
            CohortSampler::SizeWeighted,
            CohortSampler::Available,
        ] {
            let a = sampler
                .sample(&population, &mut rng_for(7, 0), 32, 500.0)
                .unwrap();
            let b = sampler
                .sample(&population, &mut rng_for(7, 0), 32, 500.0)
                .unwrap();
            assert_eq!(a, b, "{} sampler not deterministic", sampler.name());
        }
    }

    #[test]
    fn size_weighted_prefers_large_clients() {
        let population = population(5_000);
        let mut uniform_rng = rng_for(1, 0);
        let mut weighted_rng = rng_for(1, 1);
        let mean_size = |ids: &[u64]| {
            let total: usize = ids
                .iter()
                .map(|&id| population.client_size(id).unwrap())
                .sum();
            total as f64 / ids.len() as f64
        };
        let mut uniform_sizes = Vec::new();
        let mut weighted_sizes = Vec::new();
        for _ in 0..20 {
            uniform_sizes.push(mean_size(
                &CohortSampler::Uniform
                    .sample(&population, &mut uniform_rng, 50, 0.0)
                    .unwrap(),
            ));
            weighted_sizes.push(mean_size(
                &CohortSampler::SizeWeighted
                    .sample(&population, &mut weighted_rng, 50, 0.0)
                    .unwrap(),
            ));
        }
        let uniform_mean = uniform_sizes.iter().sum::<f64>() / 20.0;
        let weighted_mean = weighted_sizes.iter().sum::<f64>() / 20.0;
        assert!(
            weighted_mean > 1.5 * uniform_mean,
            "size weighting should inflate cohort sizes: uniform {uniform_mean}, weighted {weighted_mean}"
        );
        assert_eq!(CohortSampler::SizeWeighted.name(), "size-weighted");
    }

    #[test]
    fn available_sampler_respects_the_window() {
        let spec = PopulationSpec::benchmark(Benchmark::Cifar10Like, 5_000)
            .with_availability(AvailabilityModel::diurnal(0.4));
        let population = SyntheticPopulation::new(spec, 2).unwrap();
        let mut rng = rng_for(2, 0);
        let sim_time = 30_000.0;
        let cohort = CohortSampler::Available
            .sample(&population, &mut rng, 64, sim_time)
            .unwrap();
        assert!(!cohort.is_empty());
        assert!(cohort.len() <= 64);
        assert!(cohort.iter().all(|&id| population.available(id, sim_time)));
        let unique: HashSet<u64> = cohort.iter().copied().collect();
        assert_eq!(unique.len(), cohort.len());
        assert_eq!(CohortSampler::Available.name(), "available");
    }

    #[test]
    fn always_available_population_fills_the_cohort() {
        let population = population(200);
        let mut rng = rng_for(3, 0);
        let cohort = CohortSampler::Available
            .sample(&population, &mut rng, 64, 12_345.0)
            .unwrap();
        assert_eq!(cohort.len(), 64);
    }

    #[test]
    fn cohort_size_is_capped_by_the_population() {
        let population = population(10);
        let mut rng = rng_for(4, 0);
        for sampler in [CohortSampler::Uniform, CohortSampler::SizeWeighted] {
            let cohort = sampler.sample(&population, &mut rng, 64, 0.0).unwrap();
            assert_eq!(cohort.len(), 10, "{}", sampler.name());
        }
    }

    #[test]
    fn sampler_validation() {
        let population = population(10);
        let mut rng = rng_for(5, 0);
        assert!(CohortSampler::Uniform
            .sample(&population, &mut rng, 0, 0.0)
            .is_err());
    }
}
