//! Lazy virtual client populations.
//!
//! The paper's dominant evaluation-noise source is **client subsampling**:
//! a configuration is scored on a small cohort drawn from a much larger
//! population. Real cross-device populations are defined *distributionally*
//! — any one client can be synthesized on demand — so this crate represents
//! a population of `N` clients implicitly by a [`PopulationSpec`] plus a
//! root seed. Client `i` is materialized as a **pure function of
//! `(population seed, i)`** via `fedmath::SeedTree`, which keeps memory at
//! O(cohort) regardless of `N`: a tuning campaign over a million-client
//! population resides only the cohort it is currently training plus a
//! bounded [`ClientCache`].
//!
//! The pieces:
//!
//! - [`Population`] — the trait: population size, per-client O(1) metadata
//!   (size, availability), and on-demand [`Population::materialize`].
//! - [`SyntheticPopulation`] — the implementation backed by the `feddata`
//!   generators, refactored so one client's shard generates positionally
//!   without building the whole dataset.
//! - [`CohortSampler`] — deterministic cohort selection: uniform,
//!   size-weighted (rejection sampling against the O(1) size bound), and
//!   diurnal availability windows keyed to `fedsim::clock` simulated time.
//! - [`ClientCache`] — a bounded cache with hit/miss/eviction accounting for
//!   repeated sampling across rounds; [`CachedPopulation`] adapts a
//!   population + cache into `fedsim::CohortSource` so
//!   `TrainingRun::run_cohort_round` can train against it.
//! - [`train_on_population`] — the round loop: sample cohort ids →
//!   materialize → train → drop, advancing a virtual clock so availability
//!   windows move with simulated time.
//! - [`PopulationSummary`] — population-level statistics (size quantiles,
//!   tail skew, availability coverage) computed from O(probe) metadata
//!   without materializing a single example.
//!
//! # Example
//!
//! ```
//! use fedpop::{ClientCache, CohortSampler, PopulationSpec, SyntheticPopulation, Population};
//!
//! // A million-client population occupies a few hundred bytes until sampled.
//! let spec = PopulationSpec::benchmark(feddata::Benchmark::RedditLike, 1_000_000);
//! let population = SyntheticPopulation::new(spec, 42).unwrap();
//! assert_eq!(population.num_clients(), 1_000_000);
//! let client = population.materialize(917_529).unwrap();
//! assert!(client.num_examples() >= 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod population;
pub mod sampler;
pub mod spec;
pub mod summary;
pub mod training;

pub use cache::{CacheStats, CachedPopulation, ClientCache};
pub use population::{Population, SyntheticPopulation};
pub use sampler::CohortSampler;
pub use spec::{AvailabilityModel, PopulationSpec};
pub use summary::{stride_probe_ids, PopulationSummary};
pub use training::{train_on_population, PopulationTrainingReport};

use std::fmt;

/// Errors produced by the population substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PopError {
    /// A population or sampler configuration was invalid.
    InvalidSpec {
        /// Description of the violation.
        message: String,
    },
    /// A client id outside `0..num_clients` was referenced.
    ClientOutOfRange {
        /// The offending id.
        id: u64,
        /// The population size.
        population: u64,
    },
    /// A cohort could not be drawn (e.g. rejection sampling exhausted its
    /// attempt budget against a narrow availability window).
    Sampling {
        /// Description of the problem.
        message: String,
    },
    /// An underlying data-generation operation failed.
    Data(feddata::DataError),
    /// An underlying simulator operation (training round) failed.
    Sim(fedsim::SimError),
    /// An underlying numerical routine failed.
    Math(fedmath::MathError),
}

impl fmt::Display for PopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PopError::InvalidSpec { message } => write!(f, "invalid population spec: {message}"),
            PopError::ClientOutOfRange { id, population } => {
                write!(
                    f,
                    "client id {id} out of range for population of {population}"
                )
            }
            PopError::Sampling { message } => write!(f, "cohort sampling error: {message}"),
            PopError::Data(e) => write!(f, "data error: {e}"),
            PopError::Sim(e) => write!(f, "simulation error: {e}"),
            PopError::Math(e) => write!(f, "math error: {e}"),
        }
    }
}

impl std::error::Error for PopError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PopError::Data(e) => Some(e),
            PopError::Sim(e) => Some(e),
            PopError::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<feddata::DataError> for PopError {
    fn from(e: feddata::DataError) -> Self {
        PopError::Data(e)
    }
}

impl From<fedmath::MathError> for PopError {
    fn from(e: fedmath::MathError) -> Self {
        PopError::Math(e)
    }
}

impl From<fedsim::SimError> for PopError {
    fn from(e: fedsim::SimError) -> Self {
        PopError::Sim(e)
    }
}

impl From<PopError> for fedsim::SimError {
    fn from(e: PopError) -> Self {
        match e {
            PopError::Data(d) => fedsim::SimError::Data(d),
            PopError::Sim(s) => s,
            PopError::Math(m) => fedsim::SimError::Math(m),
            PopError::Sampling { message } => fedsim::SimError::Sampling { message },
            other => fedsim::SimError::InvalidConfig {
                message: other.to_string(),
            },
        }
    }
}

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, PopError>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn error_display_and_sources() {
        let e = PopError::InvalidSpec {
            message: "zero clients".into(),
        };
        assert!(e.to_string().contains("zero clients"));
        assert!(e.source().is_none());
        let e = PopError::ClientOutOfRange {
            id: 5,
            population: 3,
        };
        assert!(e.to_string().contains('5'));
        let e = PopError::Sampling {
            message: "window too narrow".into(),
        };
        assert!(e.to_string().contains("window"));
        let e: PopError = feddata::DataError::InvalidSpec {
            message: "x".into(),
        }
        .into();
        assert!(e.source().is_some());
        let e: PopError = fedmath::MathError::EmptyInput { what: "mean" }.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn pop_errors_convert_to_sim_errors() {
        let data: fedsim::SimError = PopError::Data(feddata::DataError::InvalidSpec {
            message: "x".into(),
        })
        .into();
        assert!(matches!(data, fedsim::SimError::Data(_)));
        let sampling: fedsim::SimError = PopError::Sampling {
            message: "y".into(),
        }
        .into();
        assert!(matches!(sampling, fedsim::SimError::Sampling { .. }));
        let range: fedsim::SimError = PopError::ClientOutOfRange {
            id: 1,
            population: 0,
        }
        .into();
        assert!(matches!(range, fedsim::SimError::InvalidConfig { .. }));
    }
}
