//! Population-backed training: sample → materialize → train → drop.
//!
//! [`train_on_population`] drives `fedsim`'s
//! [`TrainingRun::run_cohort_round`](fedsim::TrainingRun::run_cohort_round)
//! over a lazy population: each round derives its cohort from the run's own
//! positional seed tree (so the whole campaign is a pure function of the
//! training seed), materializes the cohort through a bounded
//! [`ClientCache`](crate::ClientCache), trains it under the configured
//! `ExecutionPolicy` — parallel bit-identical to sequential — and drops it.
//! A `fedsim::clock::VirtualClock` advances per round so diurnal
//! availability windows sweep across the population as the campaign runs.

use crate::{CachedPopulation, CohortSampler, PopError, Population, Result};
use fedsim::clock::VirtualClock;
use fedsim::TrainingRun;

/// What one population-backed training campaign did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopulationTrainingReport {
    /// Rounds executed (including no-op rounds with an empty cohort).
    pub rounds: usize,
    /// Rounds whose cohort came back empty (availability gap).
    pub empty_rounds: usize,
    /// Total client participations across all rounds.
    pub total_participants: usize,
    /// The largest single-round cohort that was resident at once.
    pub max_cohort: usize,
    /// Simulated seconds the campaign advanced the clock by.
    pub sim_elapsed: f64,
}

impl PopulationTrainingReport {
    /// The peak number of clients resident at any instant of the campaign:
    /// the largest in-flight cohort plus whatever the cache retained. This
    /// is the quantity the population examples assert against
    /// `cohort_size + cache_capacity`.
    pub fn peak_resident_clients(&self, cache_peak: usize) -> usize {
        self.max_cohort + cache_peak
    }
}

/// Trains `run` for `rounds` rounds against `source`, sampling a cohort of
/// up to `cohort_size` ids per round with `sampler` and advancing `clock` by
/// `round_seconds` after each round.
///
/// The cohort RNG is the run's own per-round sampling channel, so two
/// campaigns with the same `(run seed, population, sampler, cohort size,
/// clock schedule)` are bit-identical — including across execution policies
/// and thread counts (asserted in `tests/determinism.rs`).
///
/// # Errors
///
/// Propagates sampling, materialization, and training errors.
pub fn train_on_population<P: Population + ?Sized>(
    run: &mut TrainingRun,
    source: &CachedPopulation<'_, P>,
    sampler: CohortSampler,
    cohort_size: usize,
    rounds: usize,
    round_seconds: f64,
    clock: &mut VirtualClock,
) -> Result<PopulationTrainingReport> {
    if cohort_size == 0 {
        return Err(PopError::InvalidSpec {
            message: "cohort size must be positive".into(),
        });
    }
    if !round_seconds.is_finite() || round_seconds < 0.0 {
        return Err(PopError::InvalidSpec {
            message: format!("round duration must be non-negative, got {round_seconds}"),
        });
    }
    let start = clock.now();
    let mut report = PopulationTrainingReport {
        rounds: 0,
        empty_rounds: 0,
        total_participants: 0,
        max_cohort: 0,
        sim_elapsed: 0.0,
    };
    for _ in 0..rounds {
        let now = clock.now();
        let population = source.population();
        let mut cohort_len = 0usize;
        run.run_cohort_round(source, |rng| {
            let cohort = sampler
                .sample(population, rng, cohort_size, now)
                .map_err(fedsim::SimError::from)?;
            cohort_len = cohort.len();
            Ok(cohort)
        })
        .map_err(PopError::Sim)?;
        report.rounds += 1;
        report.total_participants += cohort_len;
        report.max_cohort = report.max_cohort.max(cohort_len);
        if cohort_len == 0 {
            report.empty_rounds += 1;
        }
        clock
            .advance_to(now + round_seconds)
            .map_err(|e| PopError::InvalidSpec {
                message: e.to_string(),
            })?;
    }
    report.sim_elapsed = clock.now() - start;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AvailabilityModel, ClientCache, PopulationSpec, SyntheticPopulation};
    use feddata::Benchmark;
    use fedmodels::ModelSpec;
    use fedsim::{ExecutionPolicy, FederatedTrainer, TrainerConfig};

    fn start_run(
        population: &SyntheticPopulation,
        execution: ExecutionPolicy,
        seed: u64,
    ) -> TrainingRun {
        let config = TrainerConfig::default().with_execution(execution);
        FederatedTrainer::new(config)
            .unwrap()
            .start_with_dims(
                population.input_dim(),
                population.num_classes(),
                ModelSpec::Mlp { hidden_dim: 8 },
                seed,
            )
            .unwrap()
    }

    #[test]
    fn campaign_trains_and_reports_residency() {
        let population =
            SyntheticPopulation::new(PopulationSpec::benchmark(Benchmark::Cifar10Like, 50_000), 7)
                .unwrap();
        let cache = ClientCache::new(16);
        let source = CachedPopulation::new(&population, &cache);
        let mut run = start_run(&population, ExecutionPolicy::Sequential, 11);
        let mut clock = VirtualClock::new();
        let report = train_on_population(
            &mut run,
            &source,
            CohortSampler::Uniform,
            12,
            5,
            60.0,
            &mut clock,
        )
        .unwrap();
        assert_eq!(report.rounds, 5);
        assert_eq!(report.empty_rounds, 0);
        assert_eq!(report.total_participants, 60);
        assert_eq!(report.max_cohort, 12);
        assert_eq!(report.sim_elapsed, 300.0);
        assert_eq!(run.rounds_completed(), 5);
        assert_eq!(clock.now(), 300.0);
        // The memory bound: at most the cohort plus the cache is resident.
        let stats = cache.stats();
        assert!(stats.peak_resident <= cache.capacity());
        assert!(report.peak_resident_clients(stats.peak_resident) <= 12 + 16);
    }

    #[test]
    fn same_seed_same_campaign_bits() {
        let population =
            SyntheticPopulation::new(PopulationSpec::benchmark(Benchmark::FemnistLike, 5_000), 3)
                .unwrap();
        let run_campaign = |cache_capacity: usize| {
            let cache = ClientCache::new(cache_capacity);
            let source = CachedPopulation::new(&population, &cache);
            let mut run = start_run(&population, ExecutionPolicy::Sequential, 21);
            let mut clock = VirtualClock::new();
            train_on_population(
                &mut run,
                &source,
                CohortSampler::SizeWeighted,
                8,
                4,
                30.0,
                &mut clock,
            )
            .unwrap();
            fedmodels::Model::params(run.model())
        };
        // Cache policy (none / small / large) never changes a result bit.
        let none = run_campaign(0);
        let small = run_campaign(2);
        let large = run_campaign(64);
        assert_eq!(none, small);
        assert_eq!(none, large);
    }

    #[test]
    fn diurnal_campaign_tolerates_empty_rounds() {
        // A razor-thin availability window: some rounds find nobody, and the
        // campaign keeps going as no-op rounds.
        let spec = PopulationSpec::benchmark(Benchmark::Cifar10Like, 64)
            .with_availability(AvailabilityModel::diurnal(0.02));
        let population = SyntheticPopulation::new(spec, 5).unwrap();
        let cache = ClientCache::new(4);
        let source = CachedPopulation::new(&population, &cache);
        let mut run = start_run(&population, ExecutionPolicy::Sequential, 1);
        let mut clock = VirtualClock::new();
        let report = train_on_population(
            &mut run,
            &source,
            CohortSampler::Available,
            8,
            6,
            3_600.0,
            &mut clock,
        )
        .unwrap();
        assert_eq!(report.rounds, 6);
        assert_eq!(run.rounds_completed(), 6);
        assert!(report.max_cohort <= 8);
    }

    #[test]
    fn driver_validation() {
        let population =
            SyntheticPopulation::new(PopulationSpec::benchmark(Benchmark::Cifar10Like, 16), 0)
                .unwrap();
        let cache = ClientCache::new(4);
        let source = CachedPopulation::new(&population, &cache);
        let mut run = start_run(&population, ExecutionPolicy::Sequential, 0);
        let mut clock = VirtualClock::new();
        assert!(train_on_population(
            &mut run,
            &source,
            CohortSampler::Uniform,
            0,
            1,
            1.0,
            &mut clock
        )
        .is_err());
        assert!(train_on_population(
            &mut run,
            &source,
            CohortSampler::Uniform,
            4,
            1,
            -1.0,
            &mut clock
        )
        .is_err());
    }
}
