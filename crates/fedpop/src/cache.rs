//! A bounded client cache with hit/miss accounting.
//!
//! Repeated cohort sampling re-visits clients — heavy clients under
//! size-weighted sampling, everyone under small populations — so a bounded
//! cache in front of a [`Population`] trades memory for
//! regeneration work. Because materialization is a pure function of the
//! client id, the cache can use **any** eviction policy without affecting a
//! single result bit: hits and misses are accounting, never semantics. The
//! accounting itself (hit rate, evictions, peak residency) feeds the
//! `BENCH_*.json` summaries and the in-process memory-bound assertions of
//! the population examples.

use crate::{Population, Result};
use feddata::ClientData;
use fedsim::training::CohortSource;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Point-in-time counters of a [`ClientCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to materialize the client.
    pub misses: u64,
    /// Clients evicted to respect the capacity bound.
    pub evictions: u64,
    /// Clients currently resident.
    pub resident: usize,
    /// The largest number of clients ever resident at once — bounded by the
    /// cache capacity by construction.
    pub peak_resident: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when nothing was looked
    /// up yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Publishes this snapshot as gauges on a [`fedtrace`] registry, one per
    /// field plus the hit rate, named `<prefix>.hits`, `<prefix>.misses`,
    /// `<prefix>.evictions`, `<prefix>.resident`, `<prefix>.peak_resident`,
    /// and `<prefix>.hit_rate`. Folding the cache's existing accounting into
    /// the shared registry this way keeps one export path for every
    /// subsystem's statistics.
    pub fn publish(&self, registry: &fedtrace::Registry, prefix: &str) {
        registry
            .gauge(&format!("{prefix}.hits"))
            .set(self.hits as f64);
        registry
            .gauge(&format!("{prefix}.misses"))
            .set(self.misses as f64);
        registry
            .gauge(&format!("{prefix}.evictions"))
            .set(self.evictions as f64);
        registry
            .gauge(&format!("{prefix}.resident"))
            .set(self.resident as f64);
        registry
            .gauge(&format!("{prefix}.peak_resident"))
            .set(self.peak_resident as f64);
        registry
            .gauge(&format!("{prefix}.hit_rate"))
            .set(self.hit_rate());
    }
}

struct CacheInner {
    map: HashMap<u64, Arc<ClientData>>,
    fifo: VecDeque<u64>,
    stats: CacheStats,
}

/// A bounded FIFO cache of materialized clients, safe to share across the
/// execution engine's worker threads.
///
/// Capacity 0 disables retention entirely (every lookup is a miss and
/// nothing is ever resident) — useful to measure the cost of pure on-demand
/// materialization.
pub struct ClientCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl std::fmt::Debug for ClientCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientCache")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

impl ClientCache {
    /// Creates a cache retaining at most `capacity` clients.
    pub fn new(capacity: usize) -> Self {
        ClientCache {
            capacity,
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                fifo: VecDeque::new(),
                stats: CacheStats::default(),
            }),
        }
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("cache lock poisoned").stats
    }

    /// Looks `id` up, materializing it with `generate` on a miss.
    ///
    /// Generation runs **outside** the lock so parallel cohorts materialize
    /// concurrently; if two threads race on the same id the first insert
    /// wins and the loser's (bit-identical) shard is dropped.
    ///
    /// # Errors
    ///
    /// Propagates `generate` failures.
    pub fn get_or_materialize(
        &self,
        id: u64,
        generate: impl FnOnce() -> Result<ClientData>,
    ) -> Result<Arc<ClientData>> {
        {
            let mut inner = self.inner.lock().expect("cache lock poisoned");
            if let Some(found) = inner.map.get(&id).cloned() {
                inner.stats.hits += 1;
                return Ok(found);
            }
            inner.stats.misses += 1;
        }
        let generated = Arc::new(generate()?);
        if self.capacity == 0 {
            return Ok(generated);
        }
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        let stored = match inner.map.get(&id) {
            // Another thread inserted the same pure-function result first.
            Some(existing) => existing.clone(),
            None => {
                inner.map.insert(id, generated.clone());
                inner.fifo.push_back(id);
                while inner.map.len() > self.capacity {
                    if let Some(evict) = inner.fifo.pop_front() {
                        inner.map.remove(&evict);
                        inner.stats.evictions += 1;
                    } else {
                        break;
                    }
                }
                generated
            }
        };
        inner.stats.resident = inner.map.len();
        inner.stats.peak_resident = inner.stats.peak_resident.max(inner.map.len());
        Ok(stored)
    }

    /// Drops every resident client, keeping the counters.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.map.clear();
        inner.fifo.clear();
        inner.stats.resident = 0;
    }
}

/// A [`Population`] fronted by a [`ClientCache`], usable as the
/// `fedsim::CohortSource` behind population-backed training rounds.
#[derive(Debug, Clone, Copy)]
pub struct CachedPopulation<'a, P: Population + ?Sized> {
    population: &'a P,
    cache: &'a ClientCache,
}

impl<'a, P: Population + ?Sized> CachedPopulation<'a, P> {
    /// Pairs a population with a cache.
    pub fn new(population: &'a P, cache: &'a ClientCache) -> Self {
        CachedPopulation { population, cache }
    }

    /// The underlying population.
    pub fn population(&self) -> &'a P {
        self.population
    }

    /// The cache in front of it.
    pub fn cache(&self) -> &'a ClientCache {
        self.cache
    }
}

impl<P: Population + ?Sized> CohortSource for CachedPopulation<'_, P> {
    fn population(&self) -> u64 {
        self.population.num_clients()
    }

    fn materialize(&self, id: u64) -> fedsim::Result<Arc<ClientData>> {
        self.cache
            .get_or_materialize(id, || self.population.materialize(id))
            .map_err(fedsim::SimError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PopulationSpec, SyntheticPopulation};
    use feddata::Benchmark;

    fn population() -> SyntheticPopulation {
        SyntheticPopulation::new(PopulationSpec::benchmark(Benchmark::Cifar10Like, 1_000), 5)
            .unwrap()
    }

    #[test]
    fn hits_misses_and_peak_residency_are_accounted() {
        let population = population();
        let cache = ClientCache::new(3);
        assert_eq!(cache.capacity(), 3);
        for &id in &[1u64, 2, 3, 1, 2, 3, 1] {
            cache
                .get_or_materialize(id, || population.materialize(id))
                .unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.resident, 3);
        assert_eq!(stats.peak_resident, 3);
        assert!((stats.hit_rate() - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_bounds_residency_via_fifo_eviction() {
        let population = population();
        let cache = ClientCache::new(2);
        for id in 0..10u64 {
            cache
                .get_or_materialize(id, || population.materialize(id))
                .unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 10);
        assert_eq!(stats.evictions, 8);
        assert_eq!(stats.resident, 2);
        assert_eq!(stats.peak_resident, 2);
        // The two newest survive; re-fetching them hits.
        cache
            .get_or_materialize(9, || population.materialize(9))
            .unwrap();
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn zero_capacity_disables_retention() {
        let population = population();
        let cache = ClientCache::new(0);
        for _ in 0..3 {
            cache
                .get_or_materialize(7, || population.materialize(7))
                .unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.resident, 0);
        assert_eq!(stats.peak_resident, 0);
        assert_eq!(stats.hit_rate(), 0.0);
        // Empty-cache hit rate is defined as 0.
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn cached_values_are_bit_identical_to_direct_materialization() {
        let population = population();
        let cache = ClientCache::new(8);
        let direct = population.materialize(123).unwrap();
        let via_cache = cache
            .get_or_materialize(123, || population.materialize(123))
            .unwrap();
        assert_eq!(*via_cache, direct);
        // A hit returns the same shard again.
        let hit = cache
            .get_or_materialize(123, || population.materialize(123))
            .unwrap();
        assert_eq!(*hit, direct);
    }

    #[test]
    fn clear_drops_residents_but_keeps_counters() {
        let population = population();
        let cache = ClientCache::new(4);
        for id in 0..4u64 {
            cache
                .get_or_materialize(id, || population.materialize(id))
                .unwrap();
        }
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.resident, 0);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.peak_resident, 4);
        // Post-clear lookups miss again.
        cache
            .get_or_materialize(0, || population.materialize(0))
            .unwrap();
        assert_eq!(cache.stats().misses, 5);
    }

    #[test]
    fn stats_publish_as_gauges() {
        let stats = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 2,
            resident: 5,
            peak_resident: 7,
        };
        let trace = fedtrace::Trace::new();
        stats.publish(trace.registry(), "pop.cache");
        let snap = trace.snapshot();
        assert_eq!(snap.gauge("pop.cache.hits").unwrap().value, 3.0);
        assert_eq!(snap.gauge("pop.cache.misses").unwrap().value, 1.0);
        assert_eq!(snap.gauge("pop.cache.evictions").unwrap().value, 2.0);
        assert_eq!(snap.gauge("pop.cache.resident").unwrap().value, 5.0);
        assert_eq!(snap.gauge("pop.cache.peak_resident").unwrap().value, 7.0);
        assert_eq!(snap.gauge("pop.cache.hit_rate").unwrap().value, 0.75);
    }

    #[test]
    fn cached_population_implements_cohort_source() {
        let population = population();
        let cache = ClientCache::new(4);
        let source = CachedPopulation::new(&population, &cache);
        assert_eq!(CohortSource::population(&source), 1_000);
        let client = CohortSource::materialize(&source, 77).unwrap();
        assert_eq!(*client, population.materialize(77).unwrap());
        assert!(CohortSource::materialize(&source, 1_000).is_err());
        assert_eq!(source.population().num_clients(), 1_000);
        assert_eq!(source.cache().stats().misses, 2);
    }
}
