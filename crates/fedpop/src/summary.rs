//! Population-level statistics without materializing clients.
//!
//! Everything here reads only O(1) per-client metadata — positional size
//! draws and availability phases — so summarizing a million-client
//! population costs a probe over ids, never a single generated example.

use crate::{PopError, Population, Result};

/// Up to `probe` deterministic client ids spread evenly across
/// `0..population`: an order-free probe set for population-level statistics
/// and reference scoring. Unbiased for positional draws — client `i`'s
/// metadata ignores every other id — and shared by
/// [`PopulationSummary::probe`] and the `experiments::population` reference
/// scores so both always probe the same client set.
pub fn stride_probe_ids(population: u64, probe: usize) -> Vec<u64> {
    let probed = probe
        .min(usize::try_from(population).unwrap_or(usize::MAX))
        .max(1);
    let stride = population / probed as u64;
    (0..probed)
        .map(|j| (j as u64).saturating_mul(stride))
        .collect()
}

/// Summary statistics of a population, computed from a deterministic probe
/// of client ids (an even stride across `0..N`, see [`stride_probe_ids`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationSummary {
    /// Number of clients in the population.
    pub num_clients: u64,
    /// Number of clients probed for the statistics below.
    pub probed: usize,
    /// Mean probed client size.
    pub mean_size: f64,
    /// Size quantiles over the probe: `(quantile, value)` for
    /// p10/p50/p90/p99.
    pub size_quantiles: Vec<(f64, f64)>,
    /// Smallest probed size (≥ 1 by construction).
    pub min_size: usize,
    /// Largest probed size.
    pub max_size: usize,
    /// Tail skew: mean divided by median — 1 for symmetric size
    /// distributions, ≫ 1 for the long-tailed text-style populations.
    pub skew: f64,
    /// Fraction of probed clients reachable at a few simulated times across
    /// one day: `(sim_time, fraction)`.
    pub availability_coverage: Vec<(f64, f64)>,
}

impl PopulationSummary {
    /// Probes at most `max_probe` evenly-strided clients of `population`
    /// and summarizes their sizes and availability.
    ///
    /// # Errors
    ///
    /// Returns [`PopError::InvalidSpec`] if `max_probe == 0`, and propagates
    /// size-query failures.
    pub fn probe<P: Population + ?Sized>(population: &P, max_probe: usize) -> Result<Self> {
        if max_probe == 0 {
            return Err(PopError::InvalidSpec {
                message: "need at least one probed client".into(),
            });
        }
        let n = population.num_clients();
        if n == 0 {
            return Err(PopError::InvalidSpec {
                message: "population is empty".into(),
            });
        }
        let ids = stride_probe_ids(n, max_probe);
        let probed = ids.len();
        let sizes: Vec<f64> = ids
            .iter()
            .map(|&id| population.client_size(id).map(|s| s as f64))
            .collect::<Result<_>>()?;
        let mean_size = fedmath::stats::mean(&sizes);
        let median = fedmath::stats::median(&sizes)?;
        let size_quantiles = [0.1, 0.5, 0.9, 0.99]
            .iter()
            .map(|&q| fedmath::stats::quantile(&sizes, q).map(|v| (q, v)))
            .collect::<std::result::Result<Vec<_>, _>>()?;
        // Availability probed at four points across one simulated day.
        let day = 86_400.0;
        let availability_coverage = [0.0, 0.25, 0.5, 0.75]
            .iter()
            .map(|&frac| {
                let t = frac * day;
                let reachable = ids
                    .iter()
                    .filter(|&&id| population.available(id, t))
                    .count();
                (t, reachable as f64 / probed as f64)
            })
            .collect();
        Ok(PopulationSummary {
            num_clients: n,
            probed,
            mean_size,
            size_quantiles,
            min_size: sizes.iter().fold(f64::INFINITY, |a, &b| a.min(b)) as usize,
            max_size: sizes.iter().fold(0.0f64, |a, &b| a.max(b)) as usize,
            skew: if median > 0.0 {
                mean_size / median
            } else {
                0.0
            },
            availability_coverage,
        })
    }

    /// A compact multi-line rendering for report printouts.
    pub fn to_text(&self) -> String {
        let quantiles = self
            .size_quantiles
            .iter()
            .map(|(q, v)| format!("p{:.0}={v:.1}", q * 100.0))
            .collect::<Vec<_>>()
            .join(" ");
        let coverage = self
            .availability_coverage
            .iter()
            .map(|(t, f)| format!("t={t:.0}s: {:.0}%", f * 100.0))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "clients: {}  (probed {})\n\
             sizes:   mean {:.1}  min {}  max {}  {quantiles}  skew(mean/median) {:.2}\n\
             availability: {coverage}",
            self.num_clients, self.probed, self.mean_size, self.min_size, self.max_size, self.skew
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AvailabilityModel, PopulationSpec, SyntheticPopulation};
    use feddata::Benchmark;

    #[test]
    fn probing_a_million_client_population_is_cheap_and_sane() {
        let population = SyntheticPopulation::new(
            PopulationSpec::benchmark(Benchmark::StackOverflowLike, 1_000_000),
            0,
        )
        .unwrap();
        let summary = PopulationSummary::probe(&population, 2_000).unwrap();
        assert_eq!(summary.num_clients, 1_000_000);
        assert_eq!(summary.probed, 2_000);
        assert!(summary.min_size >= 1);
        assert!(summary.max_size >= summary.min_size);
        assert!(summary.mean_size >= 1.0);
        // StackOverflow-like sizes are long-tailed: mean well above median.
        assert!(
            summary.skew > 1.5,
            "expected heavy tail, skew {}",
            summary.skew
        );
        assert_eq!(summary.size_quantiles.len(), 4);
        let p50 = summary.size_quantiles[1].1;
        let p99 = summary.size_quantiles[3].1;
        assert!(p99 > p50);
        // Always-available preset: full coverage at every probe time.
        assert!(summary
            .availability_coverage
            .iter()
            .all(|&(_, f)| (f - 1.0).abs() < 1e-12));
        let text = summary.to_text();
        assert!(text.contains("clients: 1000000"));
        assert!(text.contains("skew"));
    }

    #[test]
    fn diurnal_coverage_shows_up_in_the_summary() {
        let spec = PopulationSpec::benchmark(Benchmark::Cifar10Like, 20_000)
            .with_availability(AvailabilityModel::diurnal(0.25));
        let population = SyntheticPopulation::new(spec, 1).unwrap();
        let summary = PopulationSummary::probe(&population, 4_000).unwrap();
        for &(_, fraction) in &summary.availability_coverage {
            assert!(
                (fraction - 0.25).abs() < 0.05,
                "coverage {fraction} far from the 25% window"
            );
        }
    }

    #[test]
    fn probe_validation_and_small_populations() {
        let population =
            SyntheticPopulation::new(PopulationSpec::benchmark(Benchmark::Cifar10Like, 7), 1)
                .unwrap();
        assert!(PopulationSummary::probe(&population, 0).is_err());
        let summary = PopulationSummary::probe(&population, 100).unwrap();
        assert_eq!(summary.probed, 7);
    }
}
