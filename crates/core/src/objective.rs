//! A live federated tuning objective with noisy evaluation.
//!
//! [`FederatedObjective`] is what connects the HPO methods of `fedhpo` to the
//! federated simulator: every `evaluate(trial, config, resource)` call trains
//! (or resumes) the configuration's federated training run up to `resource`
//! rounds, evaluates the current global model on the validation pool, applies
//! the configured evaluation noise, and returns the noisy error the tuner
//! acts on. The true full-validation error of every evaluation is logged so
//! experiments can report what the tuner's choices actually cost.

use crate::concurrent::{ConcurrentEval, ConcurrentObjective, ConcurrentSink, EvalOutput};
use crate::context::BenchmarkContext;
use crate::noise::{noisy_error, NoiseConfig};
use crate::Result;
use feddata::Split;
use fedhpo::{HpConfig, HpoError, Objective, TrialRequest, TrialResult};
use fedmath::{SeedStream, SeedTree};
use fedproxy::hyperparams_from_config;
use fedsim::evaluation::evaluate_full_with;
use fedsim::{ExecutionPolicy, FederatedTrainer, TrainerConfig, TrainingRun, WeightingScheme};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One logged evaluation of the objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveLogEntry {
    /// Trial (configuration) identifier assigned by the tuner.
    pub trial_id: usize,
    /// Cumulative rounds this configuration had been trained for.
    pub resource: usize,
    /// The noisy score returned to the tuner.
    pub noisy_score: f64,
    /// The true full-validation error of the model at this point.
    pub true_error: f64,
    /// Total training rounds consumed across all trials after this call.
    pub cumulative_rounds: usize,
    /// Noise replicate index: `0` for ordinary evaluations, `>= 1` for
    /// fresh-noise re-evaluations issued by the re-evaluation mitigation.
    pub noise_rep: u64,
    /// Simulated completion time of the evaluation in virtual seconds, when
    /// the campaign ran under the event-driven driver; `0.0` for synchronous
    /// campaigns, which have no virtual clock.
    pub sim_time: f64,
}

/// Noise-aware selection over an objective log: the true error of the
/// configuration a tuner would pick within `budget` training rounds.
///
/// If the log contains fresh-noise re-evaluations (`noise_rep >= 1`) within
/// the budget, the winner is the re-evaluated trial with the lowest *mean*
/// re-evaluation score and its mean true error is reported — the paper's §5
/// mitigation. Otherwise the winner is the entry with the lowest noisy score
/// (the selection rule the paper shows noise corrupts). Non-finite noisy
/// scores never win.
///
/// Public so store-backed objectives (`fedstore`'s recording and tabular
/// replay objectives) apply the exact same selection rule to their logs.
pub fn selected_true_error(log: &[ObjectiveLogEntry], budget: usize) -> Option<f64> {
    let within = || {
        log.iter()
            .filter(move |e| e.cumulative_rounds <= budget && e.noisy_score.is_finite())
    };
    // (trial_id, noisy sum, true sum, count) per re-evaluated trial.
    let mut means: Vec<(usize, f64, f64, usize)> = Vec::new();
    for e in within().filter(|e| e.noise_rep >= 1) {
        match means.iter_mut().find(|(id, _, _, _)| *id == e.trial_id) {
            Some((_, noisy, true_error, count)) => {
                *noisy += e.noisy_score;
                *true_error += e.true_error;
                *count += 1;
            }
            None => means.push((e.trial_id, e.noisy_score, e.true_error, 1)),
        }
    }
    means
        .iter()
        .map(|&(id, noisy, true_error, count)| {
            (id, noisy / count as f64, true_error / count as f64)
        })
        .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
        .map(|(_, _, true_error)| true_error)
        .or_else(|| {
            within()
                .min_by(|a, b| a.noisy_score.total_cmp(&b.noisy_score))
                .map(|e| e.true_error)
        })
}

/// Noise-aware selection under a **simulated wall-clock** budget: the same
/// rule as [`selected_true_error`], but restricted to evaluations whose
/// virtual completion time is within `sim_budget` seconds — what a tuning
/// service that stops at a deadline would actually have seen. Only
/// meaningful for logs produced under the event-driven driver (synchronous
/// logs stamp every entry at `0.0`, so any positive budget covers them all).
pub fn selected_true_error_within_sim(log: &[ObjectiveLogEntry], sim_budget: f64) -> Option<f64> {
    let within: Vec<ObjectiveLogEntry> = log
        .iter()
        .filter(|e| e.sim_time <= sim_budget)
        .cloned()
        .collect();
    selected_true_error(&within, usize::MAX)
}

/// Request-ordered campaign bookkeeping for objectives that answer requests
/// without training (the `fedstore` recording and tabular-replay
/// objectives): every observation is logged with the same incremental
/// resource accounting the live [`BatchFederatedObjective`] performs — a
/// configuration is charged only for fidelity above what it has already
/// reached, and an evaluation's logged `resource` is the fidelity actually
/// reached — so store-backed logs are comparable (and, for replayed
/// campaigns, bit-identical) to live ones.
#[derive(Debug, Clone, Default)]
pub struct CampaignLog {
    log: Vec<ObjectiveLogEntry>,
    consumed: HashMap<usize, usize>,
    cumulative_rounds: usize,
    last_batch_start: usize,
}

impl CampaignLog {
    /// Creates an empty campaign log.
    pub fn new() -> Self {
        CampaignLog::default()
    }

    /// Marks the start of a batch (for [`last_batch_true_errors`]).
    ///
    /// [`last_batch_true_errors`]: Self::last_batch_true_errors
    pub fn begin_batch(&mut self) {
        self.last_batch_start = self.log.len();
    }

    /// Logs one observation for `request` with incremental resource
    /// accounting, and returns the logged entry.
    pub fn observe(
        &mut self,
        request: &fedhpo::TrialRequest,
        noisy_score: f64,
        true_error: f64,
    ) -> &ObjectiveLogEntry {
        self.observe_at(request, noisy_score, true_error, 0.0)
    }

    /// [`observe`](Self::observe) with an explicit simulated completion
    /// time, for campaigns driven under a virtual clock.
    pub fn observe_at(
        &mut self,
        request: &fedhpo::TrialRequest,
        noisy_score: f64,
        true_error: f64,
        sim_time: f64,
    ) -> &ObjectiveLogEntry {
        let consumed = self.consumed.entry(request.trial_id).or_insert(0);
        let reached = (*consumed).max(request.resource);
        self.cumulative_rounds += reached - *consumed;
        *consumed = reached;
        self.log.push(ObjectiveLogEntry {
            trial_id: request.trial_id,
            resource: reached,
            noisy_score,
            true_error,
            cumulative_rounds: self.cumulative_rounds,
            noise_rep: request.noise_rep,
            sim_time,
        });
        self.log.last().expect("entry pushed above")
    }

    /// The campaign log so far, in request order.
    pub fn log(&self) -> &[ObjectiveLogEntry] {
        &self.log
    }

    /// Consumes the bookkeeping and returns the log.
    pub fn into_log(self) -> Vec<ObjectiveLogEntry> {
        self.log
    }

    /// Total campaign rounds charged so far.
    pub fn cumulative_rounds(&self) -> usize {
        self.cumulative_rounds
    }

    /// True errors logged since the last [`begin_batch`](Self::begin_batch).
    pub fn last_batch_true_errors(&self) -> Vec<f64> {
        self.log[self.last_batch_start..]
            .iter()
            .map(|e| e.true_error)
            .collect()
    }

    /// Noise-aware selection over the log; see [`selected_true_error`].
    pub fn selected_true_error_within(&self, budget: usize) -> Option<f64> {
        selected_true_error(&self.log, budget)
    }
}

/// A noisy federated HPO objective over one benchmark context.
pub struct FederatedObjective<'a> {
    ctx: &'a BenchmarkContext,
    noise: NoiseConfig,
    total_evaluations: usize,
    runs: HashMap<usize, TrainingRun>,
    log: Vec<ObjectiveLogEntry>,
    cumulative_rounds: usize,
    trial_seeds: SeedTree,
    eval_rng: StdRng,
    execution: ExecutionPolicy,
}

impl<'a> FederatedObjective<'a> {
    /// Creates an objective.
    ///
    /// `total_evaluations` is the number of evaluations the tuner is expected
    /// to perform; it sets the DP composition length `M` in the Laplace scale
    /// `M / (ε |S|)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the noise configuration is invalid or
    /// `total_evaluations` is zero.
    pub fn new(
        ctx: &'a BenchmarkContext,
        noise: NoiseConfig,
        total_evaluations: usize,
        seed: u64,
    ) -> Result<Self> {
        noise.validate()?;
        if total_evaluations == 0 {
            return Err(crate::CoreError::InvalidConfig {
                message: "total_evaluations must be positive".into(),
            });
        }
        let mut seeds = SeedStream::new(seed);
        let eval_rng = seeds.next_rng();
        // Each trial's training run is seeded by its trial id, not by the
        // order in which the tuner first evaluates it — so tuners that visit
        // trials in different orders still give every trial the same run.
        let trial_seeds = SeedTree::new(seeds.next_seed());
        Ok(FederatedObjective {
            ctx,
            noise,
            total_evaluations,
            runs: HashMap::new(),
            log: Vec::new(),
            cumulative_rounds: 0,
            trial_seeds,
            eval_rng,
            execution: ExecutionPolicy::Sequential,
        })
    }

    /// Sets the execution policy used for round-level client training and
    /// validation evaluation inside this objective. Both policies return
    /// bit-identical scores; `Parallel` only changes wall-clock time.
    #[must_use]
    pub fn with_execution(mut self, execution: ExecutionPolicy) -> Self {
        self.execution = execution;
        self
    }

    /// The evaluations logged so far, in call order.
    pub fn log(&self) -> &[ObjectiveLogEntry] {
        &self.log
    }

    /// Total training rounds consumed so far.
    pub fn cumulative_rounds(&self) -> usize {
        self.cumulative_rounds
    }

    /// Consumes the objective and returns its log.
    pub fn into_log(self) -> Vec<ObjectiveLogEntry> {
        self.log
    }

    /// The true error of the configuration the tuner would select within the
    /// given round budget: among logged evaluations with
    /// `cumulative_rounds <= budget`, find the lowest noisy score and report
    /// that evaluation's true error. Returns `None` if nothing was evaluated
    /// within the budget.
    pub fn selected_true_error_within(&self, budget: usize) -> Option<f64> {
        selected_true_error(&self.log, budget)
    }

    fn weighting(&self) -> WeightingScheme {
        self.noise.weighting
    }
}

impl Objective for FederatedObjective<'_> {
    fn evaluate(
        &mut self,
        trial_id: usize,
        config: &HpConfig,
        resource: usize,
    ) -> fedhpo::Result<f64> {
        let to_objective_error = |e: String| HpoError::Objective { message: e };

        // Create or resume the trial's training run.
        if !self.runs.contains_key(&trial_id) {
            let hyperparams = hyperparams_from_config(self.ctx.space(), config)
                .map_err(|e| to_objective_error(e.to_string()))?;
            let trainer_config = TrainerConfig {
                clients_per_round: self.ctx.scale().clients_per_round,
                hyperparams,
                weighting: self.weighting(),
                execution: self.execution,
            };
            let trainer = FederatedTrainer::new(trainer_config)
                .map_err(|e| to_objective_error(e.to_string()))?;
            let run_seed = self.trial_seeds.child(trial_id as u64).seed();
            let run = trainer
                .start(self.ctx.dataset(), self.ctx.model_spec(), run_seed)
                .map_err(|e| to_objective_error(e.to_string()))?;
            self.runs.insert(trial_id, run);
        }
        let weighting = self.weighting();
        let run = self.runs.get_mut(&trial_id).expect("inserted above");
        let already = run.rounds_completed();
        if resource > already {
            run.run_rounds(self.ctx.dataset(), resource - already)
                .map_err(|e| to_objective_error(e.to_string()))?;
            self.cumulative_rounds += resource - already;
        }

        // Evaluate the current global model on the full validation pool, then
        // apply the configured evaluation noise.
        let full_eval = evaluate_full_with(
            &self.execution,
            run.model(),
            self.ctx.dataset(),
            Split::Validation,
            weighting,
        )
        .map_err(|e| to_objective_error(e.to_string()))?;
        let true_error = full_eval
            .weighted_error()
            .map_err(|e| to_objective_error(e.to_string()))?;
        let noisy_score = noisy_error(
            &full_eval,
            &self.noise,
            self.total_evaluations,
            &mut self.eval_rng,
        )
        .map_err(|e| to_objective_error(e.to_string()))?;

        self.log.push(ObjectiveLogEntry {
            trial_id,
            resource: run.rounds_completed(),
            noisy_score,
            true_error,
            cumulative_rounds: self.cumulative_rounds,
            noise_rep: 0,
            sim_time: 0.0,
        });
        Ok(noisy_score)
    }
}

/// Per-trial mutable state of the batched federated objective: the training
/// run plus the memoised full-validation evaluation at its current fidelity.
///
/// Exactly one evaluation task owns a trial's state at a time; between
/// dispatches it is parked in the campaign sink. Fresh trials start empty.
#[derive(Debug, Default)]
pub struct FederatedTrialState {
    run: Option<TrainingRun>,
    eval_cache: Option<(usize, fedsim::evaluation::FederatedEvaluation)>,
}

/// The batched, order-independent federated objective behind the ask/tell
/// scheduler driver (`fedtune_core::scheduler`).
///
/// Where [`FederatedObjective`] draws evaluation noise from one shared
/// sequential RNG (so results depend on global call order), this objective
/// derives all randomness *positionally* from the evaluated **point**: the
/// training run is seeded by the configuration's canonical fingerprint
/// (`SearchSpace::canonical_fingerprint`) and every noise draw by
/// `(fingerprint, resource, noise_rep)` on a per-objective [`SeedTree`].
/// Every request in a batch is therefore a pure function of its own
/// coordinates, and a whole batch can fan out across threads — one worker
/// per distinct trial — with results bit-identical to sequential execution
/// (asserted by `tests/determinism.rs`). Point-keyed randomness also makes
/// the score a function of `(config, resource, noise_rep)` alone — two
/// trials that happen to sample the same configuration observe identical
/// draws — which is exactly the identity `fedstore`'s content-addressed
/// trial ledger keys records by. And it gives the re-evaluation mitigation
/// its contract: rep `r` of a point yields the same draw no matter when it
/// is scheduled, and distinct reps yield independent draws.
/// Internally the objective is split sans-io style into a shared, `Sync`
/// **evaluation core** ([`FederatedEvalCore`]) holding the immutable
/// campaign inputs and a mutable **campaign sink**
/// ([`FederatedCampaignSink`]) parking per-trial state and the log — which
/// is exactly the [`ConcurrentObjective`]
/// shape, so the same objective drives the blocking batch API below *and*
/// [`run_event_driven_concurrent`](crate::concurrent::run_event_driven_concurrent)
/// with bit-identical results.
pub struct BatchFederatedObjective<'a> {
    eval: FederatedEvalCore<'a>,
    sink: FederatedCampaignSink,
    batch_runner: crate::engine::TrialRunner,
}

/// The shared, thread-safe half of [`BatchFederatedObjective`]: immutable
/// campaign inputs (benchmark context, noise model, seed trees), able to
/// evaluate any request against a per-trial [`FederatedTrialState`].
pub struct FederatedEvalCore<'a> {
    ctx: &'a BenchmarkContext,
    noise: NoiseConfig,
    total_evaluations: usize,
    trial_seeds: SeedTree,
    noise_seeds: SeedTree,
    execution: ExecutionPolicy,
}

/// The single-threaded half of [`BatchFederatedObjective`]: parked training
/// runs and the campaign log with its cumulative-rounds accounting.
#[derive(Default)]
pub struct FederatedCampaignSink {
    runs: HashMap<usize, TrainingRun>,
    log: Vec<ObjectiveLogEntry>,
    cumulative_rounds: usize,
    last_batch_start: usize,
}

impl<'a> BatchFederatedObjective<'a> {
    /// Creates a batched objective; parameters mirror
    /// [`FederatedObjective::new`]. Batches run sequentially until a runner
    /// is attached with
    /// [`with_batch_runner`](Self::with_batch_runner).
    ///
    /// # Errors
    ///
    /// Returns an error if the noise configuration is invalid or
    /// `total_evaluations` is zero.
    pub fn new(
        ctx: &'a BenchmarkContext,
        noise: NoiseConfig,
        total_evaluations: usize,
        seed: u64,
    ) -> Result<Self> {
        noise.validate()?;
        if total_evaluations == 0 {
            return Err(crate::CoreError::InvalidConfig {
                message: "total_evaluations must be positive".into(),
            });
        }
        let mut seeds = SeedStream::new(seed);
        let noise_seeds = SeedTree::new(seeds.next_seed());
        let trial_seeds = SeedTree::new(seeds.next_seed());
        Ok(BatchFederatedObjective {
            eval: FederatedEvalCore {
                ctx,
                noise,
                total_evaluations,
                trial_seeds,
                noise_seeds,
                execution: ExecutionPolicy::Sequential,
            },
            sink: FederatedCampaignSink::default(),
            batch_runner: crate::engine::TrialRunner::sequential(),
        })
    }

    /// The search space of the objective's benchmark context — the space a
    /// recording wrapper must canonicalize configurations against.
    pub fn space(&self) -> &fedhpo::SearchSpace {
        self.eval.ctx.space()
    }

    /// True full-validation errors of the most recent
    /// [`evaluate_batch`](Self::evaluate_batch) call, aligned with its
    /// returned results. Empty before the first batch.
    pub fn last_batch_true_errors(&self) -> Vec<f64> {
        self.sink.log[self.sink.last_batch_start..]
            .iter()
            .map(|e| e.true_error)
            .collect()
    }

    /// Sets the runner fanning the distinct trials of each batch out across
    /// threads. Any policy produces bit-identical results; `Parallel` only
    /// changes wall-clock time.
    #[must_use]
    pub fn with_batch_runner(mut self, runner: crate::engine::TrialRunner) -> Self {
        self.batch_runner = runner;
        self
    }

    /// Sets the execution policy for the *inner* per-trial work (federated
    /// rounds, validation evaluation). Defaults to sequential, which is the
    /// right choice when trials already fan out across all cores.
    #[must_use]
    pub fn with_execution(mut self, execution: ExecutionPolicy) -> Self {
        self.eval.execution = execution;
        self
    }

    /// The evaluations logged so far, in request order.
    pub fn log(&self) -> &[ObjectiveLogEntry] {
        &self.sink.log
    }

    /// Total training rounds consumed so far.
    pub fn cumulative_rounds(&self) -> usize {
        self.sink.cumulative_rounds
    }

    /// Consumes the objective and returns its log.
    pub fn into_log(self) -> Vec<ObjectiveLogEntry> {
        self.sink.log
    }

    /// Noise-aware selection within the budget; see
    /// [`FederatedObjective::selected_true_error_within`].
    pub fn selected_true_error_within(&self, budget: usize) -> Option<f64> {
        selected_true_error(&self.sink.log, budget)
    }

    /// Evaluates a whole batch of requests: distinct trials fan out under the
    /// batch runner's policy (each worker owns its trial's training run),
    /// requests of the same trial execute in request order, and the log and
    /// returned results are stitched back in request order — bit-identical
    /// under every policy.
    ///
    /// # Errors
    ///
    /// Returns the first (lowest-trial-group) evaluation error.
    pub fn evaluate_batch(&mut self, requests: &[TrialRequest]) -> Result<Vec<TrialResult>> {
        self.evaluate_batch_with_times(requests, None)
    }

    /// [`evaluate_batch`](Self::evaluate_batch) with per-request simulated
    /// completion times stamped into the log — the entry point the
    /// event-driven driver uses (it knows each request's virtual completion
    /// instant at dispatch).
    pub fn evaluate_batch_at(
        &mut self,
        requests: &[TrialRequest],
        sim_times: &[f64],
    ) -> Result<Vec<TrialResult>> {
        self.evaluate_batch_with_times(requests, Some(sim_times))
    }

    fn evaluate_batch_with_times(
        &mut self,
        requests: &[TrialRequest],
        sim_times: Option<&[f64]>,
    ) -> Result<Vec<TrialResult>> {
        use std::sync::Mutex;

        // Group request indices by trial, in first-occurrence order.
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for (i, request) in requests.iter().enumerate() {
            match groups.iter_mut().find(|(id, _)| *id == request.trial_id) {
                Some((_, indices)) => indices.push(i),
                None => groups.push((request.trial_id, vec![i])),
            }
        }
        // Each group takes ownership of its trial's training run for the
        // duration of the batch; the Mutex is uncontended (one worker per
        // group) and only transfers ownership in and out.
        let slots: Vec<Mutex<Option<TrainingRun>>> = groups
            .iter()
            .map(|(trial_id, _)| Mutex::new(self.sink.runs.remove(trial_id)))
            .collect();
        let eval = &self.eval;
        let outputs = self.batch_runner.run_trials(0, groups.len(), |trial_ctx| {
            let (_, indices) = &groups[trial_ctx.index()];
            let mut slot = slots[trial_ctx.index()]
                .lock()
                .expect("batch slot lock poisoned");
            let mut eval_cache = None;
            let mut outputs = Vec::with_capacity(indices.len());
            for &i in indices {
                outputs.push(eval.evaluate_request(&mut slot, &mut eval_cache, &requests[i])?);
            }
            Ok(outputs)
        });
        // Reinstall the runs before propagating any error.
        for (slot, (trial_id, _)) in slots.into_iter().zip(&groups) {
            if let Some(run) = slot.into_inner().expect("batch slot lock poisoned") {
                self.sink.runs.insert(*trial_id, run);
            }
        }
        let outputs = outputs?;
        // Scatter group outputs back to request order, then account and log.
        let mut by_request: Vec<Option<EvalOutput>> = vec![None; requests.len()];
        for ((_, indices), group_outputs) in groups.iter().zip(outputs) {
            for (&i, output) in indices.iter().zip(group_outputs) {
                by_request[i] = Some(output);
            }
        }
        self.sink.last_batch_start = self.sink.log.len();
        let mut results = Vec::with_capacity(requests.len());
        for (i, (request, output)) in requests.iter().zip(by_request).enumerate() {
            let output = output.expect("every request belongs to one group");
            self.sink
                .commit(request, &output, sim_times.map_or(0.0, |t| t[i]));
            results.push(TrialResult::of(request, output.noisy_score));
        }
        Ok(results)
    }
}

impl<'a> FederatedEvalCore<'a> {
    /// Trains (or resumes) and evaluates one request against the slot owning
    /// its training run. Pure in `(request, run state)`: all randomness is
    /// derived positionally, so the caller may execute requests for distinct
    /// trials in any order or in parallel.
    ///
    /// `eval_cache` memoises the full validation evaluation at the run's
    /// current fidelity: fresh-noise replicates (`noise_rep >= 1`) evaluate
    /// an unchanged model, so only the noise draw differs and the validation
    /// pass is paid once per `(trial, fidelity)` rather than once per rep.
    fn evaluate_request(
        &self,
        run_slot: &mut Option<TrainingRun>,
        eval_cache: &mut Option<(usize, fedsim::evaluation::FederatedEvaluation)>,
        request: &TrialRequest,
    ) -> Result<EvalOutput> {
        // The point identity: all randomness of this evaluation is keyed by
        // the canonical configuration fingerprint, never by trial numbering,
        // so the score is a pure function of `(config, resource, noise_rep)`
        // — the same identity the `fedstore` trial ledger addresses records
        // by.
        let fingerprint = self.ctx.space().canonical_fingerprint(&request.config)?;
        if run_slot.is_none() {
            let hyperparams = hyperparams_from_config(self.ctx.space(), &request.config)?;
            let trainer_config = TrainerConfig {
                clients_per_round: self.ctx.scale().clients_per_round,
                hyperparams,
                weighting: self.noise.weighting,
                execution: self.execution,
            };
            let trainer = FederatedTrainer::new(trainer_config)?;
            let run_seed = self.trial_seeds.child(fingerprint).seed();
            *run_slot = Some(trainer.start(self.ctx.dataset(), self.ctx.model_spec(), run_seed)?);
        }
        let run = run_slot.as_mut().expect("run created above");
        let already = run.rounds_completed();
        let rounds_delta = request.resource.saturating_sub(already);
        if rounds_delta > 0 {
            run.run_rounds(self.ctx.dataset(), rounds_delta)?;
        }
        let fidelity = run.rounds_completed();
        if eval_cache.as_ref().is_none_or(|(at, _)| *at != fidelity) {
            let evaluation = evaluate_full_with(
                &self.execution,
                run.model(),
                self.ctx.dataset(),
                Split::Validation,
                self.noise.weighting,
            )?;
            *eval_cache = Some((fidelity, evaluation));
        }
        let full_eval = &eval_cache.as_ref().expect("cached above").1;
        let true_error = full_eval.weighted_error()?;
        let mut noise_rng = self
            .noise_seeds
            .derive(&[fingerprint, request.resource as u64, request.noise_rep])
            .rng();
        let noisy_score = noisy_error(
            full_eval,
            &self.noise,
            self.total_evaluations,
            &mut noise_rng,
        )?;
        Ok(EvalOutput {
            noisy_score,
            true_error,
            rounds_delta,
            resource_completed: run.rounds_completed(),
        })
    }
}

impl ConcurrentEval for FederatedEvalCore<'_> {
    type State = FederatedTrialState;

    fn evaluate(
        &self,
        state: &mut FederatedTrialState,
        request: &TrialRequest,
    ) -> Result<EvalOutput> {
        self.evaluate_request(&mut state.run, &mut state.eval_cache, request)
    }
}

impl ConcurrentSink for FederatedCampaignSink {
    type State = FederatedTrialState;

    fn take_state(&mut self, trial_id: usize) -> FederatedTrialState {
        FederatedTrialState {
            run: self.runs.remove(&trial_id),
            eval_cache: None,
        }
    }

    fn put_state(&mut self, trial_id: usize, state: FederatedTrialState) {
        // The eval cache is a pure memo of the run at its fidelity: dropping
        // it here cannot move a bit, it only means the next dispatch re-runs
        // the (deterministic) validation pass.
        if let Some(run) = state.run {
            self.runs.insert(trial_id, run);
        }
    }

    fn commit(&mut self, request: &TrialRequest, output: &EvalOutput, sim_time: f64) {
        self.cumulative_rounds += output.rounds_delta;
        self.log.push(ObjectiveLogEntry {
            trial_id: request.trial_id,
            resource: output.resource_completed,
            noisy_score: output.noisy_score,
            true_error: output.true_error,
            cumulative_rounds: self.cumulative_rounds,
            noise_rep: request.noise_rep,
            sim_time,
        });
    }
}

impl<'a> ConcurrentObjective for BatchFederatedObjective<'a> {
    type State = FederatedTrialState;
    type Eval = FederatedEvalCore<'a>;
    type Sink = FederatedCampaignSink;

    fn split(&mut self) -> (&FederatedEvalCore<'a>, &mut FederatedCampaignSink) {
        (&self.eval, &mut self.sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ExperimentScale;
    use feddata::Benchmark;
    use feddp::PrivacyBudget;
    use fedhpo::{RandomSearch, SearchSpace, Tuner};
    use fedmath::rng::rng_for;

    fn ctx() -> BenchmarkContext {
        BenchmarkContext::new(Benchmark::Cifar10Like, &ExperimentScale::smoke(), 0).unwrap()
    }

    #[test]
    fn objective_validation() {
        let ctx = ctx();
        assert!(FederatedObjective::new(&ctx, NoiseConfig::noiseless(), 0, 0).is_err());
        assert!(FederatedObjective::new(&ctx, NoiseConfig::subsampled(2.0), 16, 0).is_err());
        let obj = FederatedObjective::new(&ctx, NoiseConfig::noiseless(), 16, 0).unwrap();
        assert_eq!(obj.cumulative_rounds(), 0);
        assert!(obj.log().is_empty());
        assert!(obj.selected_true_error_within(100).is_none());
    }

    #[test]
    fn evaluation_trains_and_logs() {
        let ctx = ctx();
        let mut objective = FederatedObjective::new(&ctx, NoiseConfig::noiseless(), 4, 1).unwrap();
        let mut rng = rng_for(0, 0);
        let config = ctx.space().sample(&mut rng).unwrap();
        let score = objective.evaluate(0, &config, 3).unwrap();
        assert!(score.is_finite());
        assert_eq!(objective.cumulative_rounds(), 3);
        assert_eq!(objective.log().len(), 1);
        let entry = &objective.log()[0];
        assert_eq!(entry.trial_id, 0);
        assert_eq!(entry.resource, 3);
        assert_eq!(entry.cumulative_rounds, 3);
        // Noiseless: the noisy score equals the true error.
        assert!((entry.noisy_score - entry.true_error).abs() < 1e-12);

        // Resuming the same trial only pays the incremental rounds.
        let _ = objective.evaluate(0, &config, 5).unwrap();
        assert_eq!(objective.cumulative_rounds(), 5);
        assert_eq!(objective.log()[1].resource, 5);
        // Re-evaluating at the same resource costs nothing extra.
        let _ = objective.evaluate(0, &config, 5).unwrap();
        assert_eq!(objective.cumulative_rounds(), 5);
        assert_eq!(objective.into_log().len(), 3);
    }

    #[test]
    fn selection_within_budget_uses_noisy_scores() {
        let ctx = ctx();
        let mut objective = FederatedObjective::new(&ctx, NoiseConfig::noiseless(), 4, 2).unwrap();
        let tuner = RandomSearch::new(3, 2);
        let mut rng = rng_for(1, 0);
        let outcome = tuner.tune(ctx.space(), &mut objective, &mut rng).unwrap();
        assert_eq!(outcome.num_evaluations(), 3);
        assert_eq!(objective.log().len(), 3);
        let selected = objective.selected_true_error_within(usize::MAX).unwrap();
        assert!((0.0..=1.0).contains(&selected));
        // Within a budget covering only the first trial, selection must be
        // that trial's true error.
        let first = objective.log()[0].true_error;
        assert_eq!(objective.selected_true_error_within(2).unwrap(), first);
    }

    #[test]
    fn noisy_objective_reports_different_scores_than_truth() {
        let ctx = ctx();
        let noise = NoiseConfig::subsampled(0.1).with_privacy(PrivacyBudget::Finite(1.0));
        let mut objective = FederatedObjective::new(&ctx, noise, 4, 3).unwrap();
        let mut rng = rng_for(2, 0);
        let config = ctx.space().sample(&mut rng).unwrap();
        let _ = objective.evaluate(0, &config, 2).unwrap();
        let entry = &objective.log()[0];
        assert!(
            (entry.noisy_score - entry.true_error).abs() > 1e-6,
            "with 1 client and eps=1 the noisy score should differ from the truth"
        );
    }

    fn request(
        trial_id: usize,
        config: &HpConfig,
        resource: usize,
        noise_rep: u64,
    ) -> TrialRequest {
        TrialRequest {
            trial_id,
            config: config.clone(),
            resource,
            noise_rep,
        }
    }

    #[test]
    fn batch_objective_trains_logs_and_resumes() {
        let ctx = ctx();
        let mut objective =
            BatchFederatedObjective::new(&ctx, NoiseConfig::noiseless(), 4, 1).unwrap();
        let mut rng = rng_for(0, 0);
        let a = ctx.space().sample(&mut rng).unwrap();
        let b = ctx.space().sample(&mut rng).unwrap();
        let results = objective
            .evaluate_batch(&[request(0, &a, 3, 0), request(1, &b, 3, 0)])
            .unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(objective.cumulative_rounds(), 6);
        assert_eq!(objective.log().len(), 2);
        // Noiseless: noisy score equals the true error.
        for entry in objective.log() {
            assert!((entry.noisy_score - entry.true_error).abs() < 1e-12);
            assert_eq!(entry.noise_rep, 0);
        }
        // Resuming trial 0 pays only the incremental rounds; a re-evaluation
        // at the reached fidelity pays nothing.
        objective
            .evaluate_batch(&[request(0, &a, 5, 0), request(0, &a, 5, 1)])
            .unwrap();
        assert_eq!(objective.cumulative_rounds(), 8);
        assert_eq!(objective.log()[3].noise_rep, 1);
        assert!(objective.selected_true_error_within(usize::MAX).is_some());
        assert_eq!(objective.into_log().len(), 4);
    }

    #[test]
    fn batch_objective_noise_is_positional_and_rep_indexed() {
        let ctx = ctx();
        let noise = NoiseConfig::subsampled(0.1).with_privacy(PrivacyBudget::Finite(1.0));
        let config = {
            let mut rng = rng_for(1, 0);
            ctx.space().sample(&mut rng).unwrap()
        };
        let run = |requests: &[TrialRequest]| {
            let mut objective = BatchFederatedObjective::new(&ctx, noise, 4, 7).unwrap();
            objective.evaluate_batch(requests).unwrap()
        };
        // The same (trial, resource, rep) coordinate always draws the same
        // noise, regardless of what else is in the batch.
        let alone = run(&[request(0, &config, 2, 0)]);
        let with_rep = run(&[request(0, &config, 2, 0), request(0, &config, 2, 1)]);
        assert_eq!(alone[0].score.to_bits(), with_rep[0].score.to_bits());
        // Distinct reps draw independent noise.
        assert!((with_rep[0].score - with_rep[1].score).abs() > 1e-9);
    }

    #[test]
    fn batch_objective_scores_are_a_function_of_the_point_not_the_trial() {
        // Regression: randomness used to be keyed by trial_id, so two trials
        // that sampled the same configuration (possible in fully discrete
        // spaces) produced different scores for one content-addressed ledger
        // key. Point-keyed seeding makes them bit-identical.
        let scale = ExperimentScale::smoke();
        let discrete = SearchSpace::new()
            .with_fixed("server_lr", 1e-3)
            .and_then(|s| s.with_fixed("server_beta1", 0.9))
            .and_then(|s| s.with_fixed("server_beta2", 0.99))
            .and_then(|s| s.with_fixed("server_lr_decay", 0.9999))
            .and_then(|s| s.with_fixed("client_lr", 1e-2))
            .and_then(|s| s.with_fixed("client_momentum", 0.0))
            .and_then(|s| s.with_fixed("client_weight_decay", 5e-5))
            .and_then(|s| s.with_categorical("client_batch_size", vec![32.0, 64.0]))
            .and_then(|s| s.with_fixed("client_epochs", 1.0))
            .unwrap();
        let ctx = BenchmarkContext::new(Benchmark::Cifar10Like, &scale, 0)
            .unwrap()
            .with_space(discrete);
        let noise = NoiseConfig::subsampled(0.2).with_privacy(PrivacyBudget::Finite(10.0));
        let fixed = [1e-3, 0.9, 0.99, 0.9999, 1e-2, 0.0, 5e-5];
        let mut values = fixed.to_vec();
        values.extend([64.0, 1.0]);
        let config = HpConfig::new(values);
        let mut objective = BatchFederatedObjective::new(&ctx, noise, 4, 3).unwrap();
        let results = objective
            .evaluate_batch(&[request(3, &config, 2, 0), request(7, &config, 2, 0)])
            .unwrap();
        assert_eq!(results[0].score.to_bits(), results[1].score.to_bits());
        let log = objective.log();
        assert_eq!(log[0].true_error.to_bits(), log[1].true_error.to_bits());
        // Distinct points still draw independently.
        let mut other_values = fixed.to_vec();
        other_values.extend([32.0, 1.0]);
        let other = HpConfig::new(other_values);
        let more = objective
            .evaluate_batch(&[request(8, &other, 2, 0)])
            .unwrap();
        assert_ne!(more[0].score.to_bits(), results[0].score.to_bits());
    }

    #[test]
    fn batch_objective_parallel_matches_sequential_bitwise() {
        let ctx = ctx();
        let noise = NoiseConfig::paper_noisy();
        let requests: Vec<TrialRequest> = {
            let mut rng = rng_for(2, 0);
            (0..6)
                .map(|t| request(t, &ctx.space().sample(&mut rng).unwrap(), 3, 0))
                .collect()
        };
        let run = |runner: crate::engine::TrialRunner| {
            let mut objective = BatchFederatedObjective::new(&ctx, noise, 6, 9)
                .unwrap()
                .with_batch_runner(runner);
            objective.evaluate_batch(&requests).unwrap()
        };
        let sequential = run(crate::engine::TrialRunner::sequential());
        for threads in [2, 3, 8] {
            let parallel = run(crate::engine::TrialRunner::new(
                ExecutionPolicy::parallel_with(threads),
            ));
            assert_eq!(sequential.len(), parallel.len());
            for (s, p) in sequential.iter().zip(&parallel) {
                assert_eq!(s.score.to_bits(), p.score.to_bits(), "{threads} threads");
            }
        }
    }

    #[test]
    fn batch_objective_validation() {
        let ctx = ctx();
        assert!(BatchFederatedObjective::new(&ctx, NoiseConfig::noiseless(), 0, 0).is_err());
        assert!(BatchFederatedObjective::new(&ctx, NoiseConfig::subsampled(2.0), 4, 0).is_err());
        let objective = BatchFederatedObjective::new(&ctx, NoiseConfig::noiseless(), 4, 0)
            .unwrap()
            .with_execution(ExecutionPolicy::Sequential);
        assert_eq!(objective.cumulative_rounds(), 0);
        assert!(objective.log().is_empty());
        assert!(objective.selected_true_error_within(10).is_none());
    }

    #[test]
    fn selected_true_error_prefers_reevaluation_means() {
        let entry = |trial_id, noisy, true_error, noise_rep, cumulative| ObjectiveLogEntry {
            trial_id,
            resource: 5,
            noisy_score: noisy,
            true_error,
            cumulative_rounds: cumulative,
            noise_rep,
            sim_time: 0.0,
        };
        let log = vec![
            entry(0, 0.05, 0.5, 0, 5), // lucky noisy minimum
            entry(1, 0.30, 0.3, 0, 10),
            entry(0, 0.45, 0.5, 1, 10), // fresh draws expose trial 0 ...
            entry(0, 0.55, 0.5, 2, 10),
            entry(1, 0.28, 0.3, 1, 10), // ... and confirm trial 1
            entry(1, 0.32, 0.3, 2, 10),
        ];
        // Plain min-selection would be fooled by trial 0's lucky draw.
        assert_eq!(selected_true_error(&log[..2], 10), Some(0.5));
        // Re-evaluation means select trial 1 and report its true error.
        let selected = selected_true_error(&log, 10).unwrap();
        assert!((selected - 0.3).abs() < 1e-12);
        // NaN noisy scores never win.
        let poisoned = vec![entry(2, f64::NAN, 0.9, 0, 5), entry(3, 0.4, 0.4, 0, 10)];
        assert_eq!(selected_true_error(&poisoned, 10), Some(0.4));
        assert_eq!(selected_true_error(&[], 10), None);
    }

    #[test]
    fn works_with_nested_search_space() {
        let scale = ExperimentScale::smoke();
        let ctx = BenchmarkContext::new(Benchmark::Cifar10Like, &scale, 0)
            .unwrap()
            .with_space(SearchSpace::paper_nested_lr_space(2).unwrap());
        let mut objective = FederatedObjective::new(&ctx, NoiseConfig::noiseless(), 4, 4).unwrap();
        let mut rng = rng_for(3, 0);
        let config = ctx.space().sample(&mut rng).unwrap();
        assert!(objective.evaluate(0, &config, 1).is_ok());
    }
}
