//! A live federated tuning objective with noisy evaluation.
//!
//! [`FederatedObjective`] is what connects the HPO methods of `fedhpo` to the
//! federated simulator: every `evaluate(trial, config, resource)` call trains
//! (or resumes) the configuration's federated training run up to `resource`
//! rounds, evaluates the current global model on the validation pool, applies
//! the configured evaluation noise, and returns the noisy error the tuner
//! acts on. The true full-validation error of every evaluation is logged so
//! experiments can report what the tuner's choices actually cost.

use crate::context::BenchmarkContext;
use crate::noise::{noisy_error, NoiseConfig};
use crate::Result;
use feddata::Split;
use fedhpo::{HpConfig, HpoError, Objective};
use fedmath::{SeedStream, SeedTree};
use fedproxy::hyperparams_from_config;
use fedsim::evaluation::evaluate_full_with;
use fedsim::{ExecutionPolicy, FederatedTrainer, TrainerConfig, TrainingRun, WeightingScheme};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One logged evaluation of the objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveLogEntry {
    /// Trial (configuration) identifier assigned by the tuner.
    pub trial_id: usize,
    /// Cumulative rounds this configuration had been trained for.
    pub resource: usize,
    /// The noisy score returned to the tuner.
    pub noisy_score: f64,
    /// The true full-validation error of the model at this point.
    pub true_error: f64,
    /// Total training rounds consumed across all trials after this call.
    pub cumulative_rounds: usize,
}

/// A noisy federated HPO objective over one benchmark context.
pub struct FederatedObjective<'a> {
    ctx: &'a BenchmarkContext,
    noise: NoiseConfig,
    total_evaluations: usize,
    runs: HashMap<usize, TrainingRun>,
    log: Vec<ObjectiveLogEntry>,
    cumulative_rounds: usize,
    trial_seeds: SeedTree,
    eval_rng: StdRng,
    execution: ExecutionPolicy,
}

impl<'a> FederatedObjective<'a> {
    /// Creates an objective.
    ///
    /// `total_evaluations` is the number of evaluations the tuner is expected
    /// to perform; it sets the DP composition length `M` in the Laplace scale
    /// `M / (ε |S|)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the noise configuration is invalid or
    /// `total_evaluations` is zero.
    pub fn new(
        ctx: &'a BenchmarkContext,
        noise: NoiseConfig,
        total_evaluations: usize,
        seed: u64,
    ) -> Result<Self> {
        noise.validate()?;
        if total_evaluations == 0 {
            return Err(crate::CoreError::InvalidConfig {
                message: "total_evaluations must be positive".into(),
            });
        }
        let mut seeds = SeedStream::new(seed);
        let eval_rng = seeds.next_rng();
        // Each trial's training run is seeded by its trial id, not by the
        // order in which the tuner first evaluates it — so tuners that visit
        // trials in different orders still give every trial the same run.
        let trial_seeds = SeedTree::new(seeds.next_seed());
        Ok(FederatedObjective {
            ctx,
            noise,
            total_evaluations,
            runs: HashMap::new(),
            log: Vec::new(),
            cumulative_rounds: 0,
            trial_seeds,
            eval_rng,
            execution: ExecutionPolicy::Sequential,
        })
    }

    /// Sets the execution policy used for round-level client training and
    /// validation evaluation inside this objective. Both policies return
    /// bit-identical scores; `Parallel` only changes wall-clock time.
    #[must_use]
    pub fn with_execution(mut self, execution: ExecutionPolicy) -> Self {
        self.execution = execution;
        self
    }

    /// The evaluations logged so far, in call order.
    pub fn log(&self) -> &[ObjectiveLogEntry] {
        &self.log
    }

    /// Total training rounds consumed so far.
    pub fn cumulative_rounds(&self) -> usize {
        self.cumulative_rounds
    }

    /// Consumes the objective and returns its log.
    pub fn into_log(self) -> Vec<ObjectiveLogEntry> {
        self.log
    }

    /// The true error of the configuration the tuner would select within the
    /// given round budget: among logged evaluations with
    /// `cumulative_rounds <= budget`, find the lowest noisy score and report
    /// that evaluation's true error. Returns `None` if nothing was evaluated
    /// within the budget.
    pub fn selected_true_error_within(&self, budget: usize) -> Option<f64> {
        self.log
            .iter()
            .filter(|e| e.cumulative_rounds <= budget)
            .min_by(|a, b| {
                a.noisy_score
                    .partial_cmp(&b.noisy_score)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|e| e.true_error)
    }

    fn weighting(&self) -> WeightingScheme {
        self.noise.weighting
    }
}

impl Objective for FederatedObjective<'_> {
    fn evaluate(
        &mut self,
        trial_id: usize,
        config: &HpConfig,
        resource: usize,
    ) -> fedhpo::Result<f64> {
        let to_objective_error = |e: String| HpoError::Objective { message: e };

        // Create or resume the trial's training run.
        if !self.runs.contains_key(&trial_id) {
            let hyperparams = hyperparams_from_config(self.ctx.space(), config)
                .map_err(|e| to_objective_error(e.to_string()))?;
            let trainer_config = TrainerConfig {
                clients_per_round: self.ctx.scale().clients_per_round,
                hyperparams,
                weighting: self.weighting(),
                execution: self.execution,
            };
            let trainer = FederatedTrainer::new(trainer_config)
                .map_err(|e| to_objective_error(e.to_string()))?;
            let run_seed = self.trial_seeds.child(trial_id as u64).seed();
            let run = trainer
                .start(self.ctx.dataset(), self.ctx.model_spec(), run_seed)
                .map_err(|e| to_objective_error(e.to_string()))?;
            self.runs.insert(trial_id, run);
        }
        let weighting = self.weighting();
        let run = self.runs.get_mut(&trial_id).expect("inserted above");
        let already = run.rounds_completed();
        if resource > already {
            run.run_rounds(self.ctx.dataset(), resource - already)
                .map_err(|e| to_objective_error(e.to_string()))?;
            self.cumulative_rounds += resource - already;
        }

        // Evaluate the current global model on the full validation pool, then
        // apply the configured evaluation noise.
        let full_eval = evaluate_full_with(
            &self.execution,
            run.model(),
            self.ctx.dataset(),
            Split::Validation,
            weighting,
        )
        .map_err(|e| to_objective_error(e.to_string()))?;
        let true_error = full_eval
            .weighted_error()
            .map_err(|e| to_objective_error(e.to_string()))?;
        let noisy_score = noisy_error(
            &full_eval,
            &self.noise,
            self.total_evaluations,
            &mut self.eval_rng,
        )
        .map_err(|e| to_objective_error(e.to_string()))?;

        self.log.push(ObjectiveLogEntry {
            trial_id,
            resource: run.rounds_completed(),
            noisy_score,
            true_error,
            cumulative_rounds: self.cumulative_rounds,
        });
        Ok(noisy_score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ExperimentScale;
    use feddata::Benchmark;
    use feddp::PrivacyBudget;
    use fedhpo::{RandomSearch, SearchSpace, Tuner};
    use fedmath::rng::rng_for;

    fn ctx() -> BenchmarkContext {
        BenchmarkContext::new(Benchmark::Cifar10Like, &ExperimentScale::smoke(), 0).unwrap()
    }

    #[test]
    fn objective_validation() {
        let ctx = ctx();
        assert!(FederatedObjective::new(&ctx, NoiseConfig::noiseless(), 0, 0).is_err());
        assert!(FederatedObjective::new(&ctx, NoiseConfig::subsampled(2.0), 16, 0).is_err());
        let obj = FederatedObjective::new(&ctx, NoiseConfig::noiseless(), 16, 0).unwrap();
        assert_eq!(obj.cumulative_rounds(), 0);
        assert!(obj.log().is_empty());
        assert!(obj.selected_true_error_within(100).is_none());
    }

    #[test]
    fn evaluation_trains_and_logs() {
        let ctx = ctx();
        let mut objective = FederatedObjective::new(&ctx, NoiseConfig::noiseless(), 4, 1).unwrap();
        let mut rng = rng_for(0, 0);
        let config = ctx.space().sample(&mut rng).unwrap();
        let score = objective.evaluate(0, &config, 3).unwrap();
        assert!(score.is_finite());
        assert_eq!(objective.cumulative_rounds(), 3);
        assert_eq!(objective.log().len(), 1);
        let entry = &objective.log()[0];
        assert_eq!(entry.trial_id, 0);
        assert_eq!(entry.resource, 3);
        assert_eq!(entry.cumulative_rounds, 3);
        // Noiseless: the noisy score equals the true error.
        assert!((entry.noisy_score - entry.true_error).abs() < 1e-12);

        // Resuming the same trial only pays the incremental rounds.
        let _ = objective.evaluate(0, &config, 5).unwrap();
        assert_eq!(objective.cumulative_rounds(), 5);
        assert_eq!(objective.log()[1].resource, 5);
        // Re-evaluating at the same resource costs nothing extra.
        let _ = objective.evaluate(0, &config, 5).unwrap();
        assert_eq!(objective.cumulative_rounds(), 5);
        assert_eq!(objective.into_log().len(), 3);
    }

    #[test]
    fn selection_within_budget_uses_noisy_scores() {
        let ctx = ctx();
        let mut objective = FederatedObjective::new(&ctx, NoiseConfig::noiseless(), 4, 2).unwrap();
        let tuner = RandomSearch::new(3, 2);
        let mut rng = rng_for(1, 0);
        let outcome = tuner.tune(ctx.space(), &mut objective, &mut rng).unwrap();
        assert_eq!(outcome.num_evaluations(), 3);
        assert_eq!(objective.log().len(), 3);
        let selected = objective.selected_true_error_within(usize::MAX).unwrap();
        assert!((0.0..=1.0).contains(&selected));
        // Within a budget covering only the first trial, selection must be
        // that trial's true error.
        let first = objective.log()[0].true_error;
        assert_eq!(objective.selected_true_error_within(2).unwrap(), first);
    }

    #[test]
    fn noisy_objective_reports_different_scores_than_truth() {
        let ctx = ctx();
        let noise = NoiseConfig::subsampled(0.1).with_privacy(PrivacyBudget::Finite(1.0));
        let mut objective = FederatedObjective::new(&ctx, noise, 4, 3).unwrap();
        let mut rng = rng_for(2, 0);
        let config = ctx.space().sample(&mut rng).unwrap();
        let _ = objective.evaluate(0, &config, 2).unwrap();
        let entry = &objective.log()[0];
        assert!(
            (entry.noisy_score - entry.true_error).abs() > 1e-6,
            "with 1 client and eps=1 the noisy score should differ from the truth"
        );
    }

    #[test]
    fn works_with_nested_search_space() {
        let scale = ExperimentScale::smoke();
        let ctx = BenchmarkContext::new(Benchmark::Cifar10Like, &scale, 0)
            .unwrap()
            .with_space(SearchSpace::paper_nested_lr_space(2).unwrap());
        let mut objective = FederatedObjective::new(&ctx, NoiseConfig::noiseless(), 4, 4).unwrap();
        let mut rng = rng_for(3, 0);
        let config = ctx.space().sample(&mut rng).unwrap();
        assert!(objective.evaluate(0, &config, 1).is_ok());
    }
}
