//! The noisy-evaluation kernel: every evaluation-noise source studied in the
//! paper, applied to a federated evaluation.

use crate::{CoreError, Result};
use feddp::laplace::{LaplaceMechanism, PrivacyBudget};
use fedsim::evaluation::FederatedEvaluation;
use fedsim::sampling::clients_for_rate;
use fedsim::WeightingScheme;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// The evaluation-noise configuration of one experiment cell.
///
/// - `subsample_rate`: the fraction of validation clients whose error is
///   observed (§3.1). `1.0` is full evaluation.
/// - `systems_bias`: the exponent `b` of the accuracy-biased client sampling
///   `(a + δ)^b` modelling systems heterogeneity (§3.2). `0.0` is unbiased.
/// - `privacy`: the ε budget of the Laplace mechanism protecting each
///   evaluation (§3.3); [`PrivacyBudget::Infinite`] disables DP noise.
/// - `weighting`: how per-client errors are aggregated. Following the paper,
///   DP experiments must use uniform weighting so the query sensitivity does
///   not depend on client dataset sizes.
///
/// Data heterogeneity (the iid fraction `p`) is a property of the validation
/// *pool*, not of a single evaluation, and is therefore applied by
/// repartitioning the dataset (see
/// [`feddata::repartition_iid_fraction`]) rather than configured here.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Fraction of validation clients sampled per evaluation, in `(0, 1]`.
    pub subsample_rate: f64,
    /// Systems-heterogeneity bias exponent `b` (0 = unbiased sampling).
    pub systems_bias: f64,
    /// Differential-privacy budget for the whole tuning run.
    pub privacy: PrivacyBudget,
    /// Aggregation weighting for per-client errors.
    pub weighting: WeightingScheme,
}

impl NoiseConfig {
    /// Noise-free evaluation: all clients, unbiased, non-private,
    /// example-weighted (the paper's default objective).
    pub fn noiseless() -> Self {
        NoiseConfig {
            subsample_rate: 1.0,
            systems_bias: 0.0,
            privacy: PrivacyBudget::Infinite,
            weighting: WeightingScheme::ByExamples,
        }
    }

    /// Pure client subsampling at the given rate, no other noise.
    pub fn subsampled(rate: f64) -> Self {
        NoiseConfig {
            subsample_rate: rate,
            ..NoiseConfig::noiseless()
        }
    }

    /// The paper's "noisy" headline setting (Fig. 1, 8, 15, 16):
    /// 1% of clients per evaluation and ε = 100 differential privacy
    /// (which forces uniform weighting).
    pub fn paper_noisy() -> Self {
        NoiseConfig {
            subsample_rate: 0.01,
            systems_bias: 0.0,
            privacy: PrivacyBudget::Finite(100.0),
            weighting: WeightingScheme::Uniform,
        }
    }

    /// Adds a differential-privacy budget (and switches to uniform weighting,
    /// as required for bounded sensitivity).
    pub fn with_privacy(mut self, privacy: PrivacyBudget) -> Self {
        self.privacy = privacy;
        if !privacy.is_infinite() {
            self.weighting = WeightingScheme::Uniform;
        }
        self
    }

    /// Adds systems-heterogeneity bias.
    pub fn with_systems_bias(mut self, bias: f64) -> Self {
        self.systems_bias = bias;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the subsample rate is outside
    /// `(0, 1]`, the bias is negative, a finite ε is not positive, or a
    /// finite ε is combined with example weighting.
    pub fn validate(&self) -> Result<()> {
        if !(self.subsample_rate > 0.0 && self.subsample_rate <= 1.0) {
            return Err(CoreError::InvalidConfig {
                message: format!(
                    "subsample rate must be in (0, 1], got {}",
                    self.subsample_rate
                ),
            });
        }
        if self.systems_bias < 0.0 || !self.systems_bias.is_finite() {
            return Err(CoreError::InvalidConfig {
                message: format!(
                    "systems bias must be non-negative, got {}",
                    self.systems_bias
                ),
            });
        }
        self.privacy.validate()?;
        if !self.privacy.is_infinite() && self.weighting == WeightingScheme::ByExamples {
            return Err(CoreError::InvalidConfig {
                message: "differential privacy requires uniform evaluation weighting".into(),
            });
        }
        Ok(())
    }

    /// Short label for reports (e.g. `"1% clients, eps=100"`).
    pub fn label(&self) -> String {
        let mut parts = vec![format!("{:.4}% clients", self.subsample_rate * 100.0)];
        if self.systems_bias > 0.0 {
            parts.push(format!("bias b={}", self.systems_bias));
        }
        if let Some(eps) = self.privacy.epsilon() {
            parts.push(format!("eps={eps}"));
        }
        parts.join(", ")
    }
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig::noiseless()
    }
}

/// Applies every configured noise source to a *full* federated evaluation and
/// returns the noisy error estimate the tuner observes.
///
/// The full evaluation carries one entry per validation client; this function
/// (1) subsamples clients uniformly or with accuracy bias, (2) aggregates the
/// sampled errors with the configured weighting, and (3) perturbs the
/// corresponding accuracy with Laplace noise of scale
/// `M / (ε · |S|)` where `M = total_evaluations` (§3.3). The returned value
/// is an error rate and may leave `[0, 1]` when DP noise is large — exactly
/// like the paper's perturbed accuracies.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for invalid noise settings and
/// propagates sampling/aggregation failures.
pub fn noisy_error(
    full_evaluation: &FederatedEvaluation,
    noise: &NoiseConfig,
    total_evaluations: usize,
    rng: &mut StdRng,
) -> Result<f64> {
    noise.validate()?;
    let population = full_evaluation.num_clients();
    let sample_size = clients_for_rate(population, noise.subsample_rate)?;

    // 1. Select which clients report their error.
    let selected: Vec<usize> = if sample_size == population {
        (0..population).collect()
    } else if noise.systems_bias > 0.0 {
        let accuracies = full_evaluation.client_accuracies();
        let sampler = fedsim::BiasedSampler::new(noise.systems_bias)?;
        let weights = sampler.weights(&accuracies);
        fedmath::rng::weighted_sample_without_replacement(rng, &weights, sample_size)?
    } else {
        fedmath::rng::sample_without_replacement(rng, population, sample_size)?
    };

    // 2. Aggregate the sampled per-client errors.
    let per_client = full_evaluation.per_client();
    let mut errors = Vec::with_capacity(selected.len());
    let mut weights = Vec::with_capacity(selected.len());
    for &idx in &selected {
        let c = &per_client[idx];
        errors.push(c.error_rate);
        weights.push(noise.weighting.weight(c.num_examples));
    }
    let error = fedmath::stats::weighted_mean(&errors, &weights)?;

    // 3. Perturb the accuracy with Laplace noise calibrated to the sample size.
    let scale = feddp::evaluation_noise_scale(noise.privacy, total_evaluations, sample_size)?;
    let mechanism = LaplaceMechanism::new(scale)?;
    let noisy_accuracy = mechanism.privatize(1.0 - error, rng);
    Ok(1.0 - noisy_accuracy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmath::rng::rng_for;
    use fedsim::evaluation::ClientEvaluation;

    fn evaluation(errors: &[f64], sizes: &[usize]) -> FederatedEvaluation {
        let per_client: Vec<ClientEvaluation> = errors
            .iter()
            .zip(sizes.iter())
            .enumerate()
            .map(|(i, (&e, &n))| ClientEvaluation {
                client_index: i,
                error_rate: e,
                loss: e,
                num_examples: n,
            })
            .collect();
        FederatedEvaluation::new(per_client, WeightingScheme::ByExamples).unwrap()
    }

    #[test]
    fn config_presets_and_validation() {
        assert!(NoiseConfig::noiseless().validate().is_ok());
        assert!(NoiseConfig::paper_noisy().validate().is_ok());
        assert!(NoiseConfig::subsampled(0.01).validate().is_ok());
        assert!(NoiseConfig::subsampled(0.0).validate().is_err());
        assert!(NoiseConfig::subsampled(1.5).validate().is_err());
        let bad_bias = NoiseConfig::noiseless().with_systems_bias(-1.0);
        assert!(bad_bias.validate().is_err());
        // Finite privacy with example weighting is inconsistent.
        let inconsistent = NoiseConfig {
            privacy: PrivacyBudget::Finite(1.0),
            weighting: WeightingScheme::ByExamples,
            ..NoiseConfig::noiseless()
        };
        assert!(inconsistent.validate().is_err());
        // with_privacy fixes the weighting automatically.
        let fixed = NoiseConfig::noiseless().with_privacy(PrivacyBudget::Finite(1.0));
        assert!(fixed.validate().is_ok());
        assert_eq!(fixed.weighting, WeightingScheme::Uniform);
        assert!(NoiseConfig::default().validate().is_ok());
        assert!(NoiseConfig::paper_noisy().label().contains("eps=100"));
        assert!(NoiseConfig::noiseless()
            .with_systems_bias(3.0)
            .label()
            .contains("b=3"));
    }

    #[test]
    fn noiseless_full_evaluation_recovers_weighted_error() {
        let eval = evaluation(&[0.2, 0.4], &[10, 30]);
        let mut rng = rng_for(0, 0);
        let noisy = noisy_error(&eval, &NoiseConfig::noiseless(), 16, &mut rng).unwrap();
        assert!((noisy - 0.35).abs() < 1e-12);
    }

    #[test]
    fn uniform_weighting_changes_the_aggregate() {
        let eval = evaluation(&[0.2, 0.4], &[10, 30]);
        let mut rng = rng_for(0, 1);
        let noise = NoiseConfig {
            weighting: WeightingScheme::Uniform,
            ..NoiseConfig::noiseless()
        };
        let noisy = noisy_error(&eval, &noise, 16, &mut rng).unwrap();
        assert!((noisy - 0.3).abs() < 1e-12);
    }

    #[test]
    fn subsampling_introduces_variance() {
        let errors: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let sizes = vec![10usize; 100];
        let eval = evaluation(&errors, &sizes);
        let noise = NoiseConfig::subsampled(0.01);
        let mut estimates = Vec::new();
        for i in 0..200 {
            let mut rng = rng_for(7, i);
            estimates.push(noisy_error(&eval, &noise, 16, &mut rng).unwrap());
        }
        let spread = fedmath::stats::std_dev(&estimates);
        assert!(
            spread > 0.1,
            "single-client estimates should vary a lot, got {spread}"
        );
        let mean = fedmath::stats::mean(&estimates);
        assert!(
            (mean - 0.495).abs() < 0.08,
            "estimates should be unbiased, mean {mean}"
        );
    }

    #[test]
    fn systems_bias_underestimates_error() {
        // Biased sampling towards accurate clients makes the model look
        // better than it is (overly optimistic evaluation, §3.2).
        let errors: Vec<f64> = (0..50).map(|i| i as f64 / 50.0).collect();
        let sizes = vec![10usize; 50];
        let eval = evaluation(&errors, &sizes);
        let unbiased = NoiseConfig::subsampled(0.1);
        let biased = NoiseConfig::subsampled(0.1).with_systems_bias(3.0);
        let mut unbiased_scores = Vec::new();
        let mut biased_scores = Vec::new();
        for i in 0..200 {
            let mut rng = rng_for(8, i);
            unbiased_scores.push(noisy_error(&eval, &unbiased, 16, &mut rng).unwrap());
            let mut rng = rng_for(9, i);
            biased_scores.push(noisy_error(&eval, &biased, 16, &mut rng).unwrap());
        }
        let mean_unbiased = fedmath::stats::mean(&unbiased_scores);
        let mean_biased = fedmath::stats::mean(&biased_scores);
        assert!(
            mean_biased < mean_unbiased - 0.1,
            "biased sampling should be optimistic: unbiased {mean_unbiased}, biased {mean_biased}"
        );
    }

    #[test]
    fn privacy_noise_scales_with_sample_size() {
        let errors = vec![0.5; 100];
        let sizes = vec![1usize; 100];
        let eval = evaluation(&errors, &sizes);
        // With all clients error is exactly 0.5; any deviation is DP noise.
        let spread_for = |rate: f64| {
            let noise = NoiseConfig::subsampled(rate).with_privacy(PrivacyBudget::Finite(1.0));
            let mut deviations = Vec::new();
            for i in 0..300 {
                let mut rng = rng_for(10, i);
                let e = noisy_error(&eval, &noise, 16, &mut rng).unwrap();
                deviations.push((e - 0.5).abs());
            }
            fedmath::stats::mean(&deviations)
        };
        let few_clients = spread_for(0.01);
        let many_clients = spread_for(1.0);
        assert!(
            few_clients > 10.0 * many_clients,
            "DP noise with 1 client ({few_clients}) should dwarf noise with 100 clients ({many_clients})"
        );
    }

    #[test]
    fn noisy_error_can_leave_unit_interval_under_heavy_dp() {
        let eval = evaluation(&[0.5, 0.5], &[1, 1]);
        let noise = NoiseConfig::subsampled(0.5).with_privacy(PrivacyBudget::Finite(0.1));
        let mut seen_outside = false;
        for i in 0..100 {
            let mut rng = rng_for(11, i);
            let e = noisy_error(&eval, &noise, 16, &mut rng).unwrap();
            if !(0.0..=1.0).contains(&e) {
                seen_outside = true;
            }
        }
        assert!(
            seen_outside,
            "heavy DP noise should push some estimates outside [0, 1]"
        );
    }
}
