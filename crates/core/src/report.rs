//! Uniform reporting structures shared by every experiment runner.
//!
//! Each experiment produces an [`ExperimentReport`]: a set of named series,
//! each series a list of `(x, quartile-summary)` points. The bench harness
//! prints these as the rows/curves corresponding to the paper's figures, and
//! `EXPERIMENTS.md` records them.

use fedmath::stats::QuartileSummary;
use serde::{Deserialize, Serialize};

/// One x-position of one series, summarised over trials.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// The x coordinate (subsample rate, training rounds, ε, …).
    pub x: f64,
    /// Human-readable label for the x coordinate (e.g. `"1% (1)"`).
    pub x_label: String,
    /// Median / quartiles of the measured metric over trials, in percent
    /// error (the unit of every figure in the paper).
    pub summary: QuartileSummary,
}

impl SeriesPoint {
    /// Builds a point from raw per-trial error *rates* (`[0, 1]`), converting
    /// to percentages.
    ///
    /// # Errors
    ///
    /// Returns an error if `errors` is empty.
    pub fn from_error_rates(
        x: f64,
        x_label: impl Into<String>,
        errors: &[f64],
    ) -> crate::Result<Self> {
        let percents: Vec<f64> = errors.iter().map(|e| e * 100.0).collect();
        Ok(SeriesPoint {
            x,
            x_label: x_label.into(),
            summary: QuartileSummary::from_values(&percents)?,
        })
    }
}

/// One named series (one curve / one bar group member).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesGroup {
    /// Series name (e.g. a dataset, a method, an ε value).
    pub name: String,
    /// Points in x order.
    pub points: Vec<SeriesPoint>,
}

/// A complete experiment result: the experiment id (`"fig3"`, `"table1"`, …),
/// a human-readable title, and its series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Stable experiment identifier matching DESIGN.md / EXPERIMENTS.md.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The measured series.
    pub groups: Vec<SeriesGroup>,
    /// Free-form notes (reference lines, scale used, …).
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        ExperimentReport {
            id: id.into(),
            title: title.into(),
            groups: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn push_group(&mut self, group: SeriesGroup) {
        self.groups.push(group);
    }

    /// Adds a note.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the report as fixed-width text rows (one per point), the
    /// format printed by the bench harness and captured in EXPERIMENTS.md.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        out.push_str(&format!(
            "{:<28} {:>14} {:>10} {:>10} {:>10} {:>7}\n",
            "series", "x", "median%", "q25%", "q75%", "trials"
        ));
        for group in &self.groups {
            for p in &group.points {
                out.push_str(&format!(
                    "{:<28} {:>14} {:>10.2} {:>10.2} {:>10.2} {:>7}\n",
                    group.name,
                    p.x_label,
                    p.summary.median,
                    p.summary.lower,
                    p.summary.upper,
                    p.summary.count
                ));
            }
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// Serialises the report as pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns an error if serialisation fails (it cannot for these types).
    pub fn to_json(&self) -> crate::Result<String> {
        serde_json::to_string_pretty(self).map_err(|e| crate::CoreError::InvalidConfig {
            message: format!("failed to serialise report: {e}"),
        })
    }
}

/// Formats a subsample rate as the paper's x-axis labels do:
/// `"<percent>% (<raw count>)"`.
pub fn rate_label(rate: f64, population: usize) -> String {
    let count = ((population as f64 * rate).round() as usize).clamp(1, population);
    let percent = rate * 100.0;
    if percent >= 1.0 {
        format!("{percent:.0}% ({count})")
    } else {
        format!("{percent:.2}% ({count})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_point_converts_to_percent() {
        let p = SeriesPoint::from_error_rates(0.5, "50%", &[0.1, 0.2, 0.3]).unwrap();
        assert_eq!(p.summary.median, 20.0);
        assert_eq!(p.summary.count, 3);
        assert!(SeriesPoint::from_error_rates(0.5, "x", &[]).is_err());
    }

    #[test]
    fn report_renders_rows_and_json() {
        let mut report = ExperimentReport::new("fig3", "Client subsampling");
        let point = SeriesPoint::from_error_rates(0.01, "1% (1)", &[0.4, 0.5]).unwrap();
        report.push_group(SeriesGroup {
            name: "cifar10-like".into(),
            points: vec![point],
        });
        report.push_note("smoke scale");
        let table = report.to_table();
        assert!(table.contains("fig3"));
        assert!(table.contains("cifar10-like"));
        assert!(table.contains("1% (1)"));
        assert!(table.contains("note: smoke scale"));
        let json = report.to_json().unwrap();
        assert!(json.contains("\"id\": \"fig3\""));
    }

    #[test]
    fn rate_labels_match_paper_style() {
        assert_eq!(rate_label(0.01, 100), "1% (1)");
        assert_eq!(rate_label(1.0, 100), "100% (100)");
        assert_eq!(rate_label(0.0027, 360), "0.27% (1)");
        assert_eq!(rate_label(0.27, 360), "27% (97)");
    }
}
