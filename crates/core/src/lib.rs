//! Noise-aware federated hyperparameter tuning — the primary contribution of
//! *"On Noisy Evaluation in Federated Hyperparameter Tuning"* (MLSys 2023) as
//! a reusable library, plus one experiment runner per table/figure of the
//! paper's evaluation.
//!
//! # Layout
//!
//! - [`engine`] — the unified trial execution engine: [`TrialRunner`] fans
//!   independent trials out under an execution policy with per-trial derived
//!   seeds, shared progress accounting, and results that are bit-identical
//!   between sequential and parallel execution.
//! - [`scale`] — experiment scale presets (paper-scale, CPU default, smoke).
//! - [`context`] — a benchmark dataset bundled with its search space and
//!   model architecture.
//! - [`noise`] — the [`NoiseConfig`] describing every evaluation-noise source
//!   studied in the paper (client subsampling, systems-heterogeneity bias,
//!   differential privacy, weighting scheme) and the noisy-evaluation kernel.
//! - [`pool`] — the pre-trained configuration pool used by the paper's
//!   RS-only analyses (train 128 configurations once, then simulate many
//!   noisy tuning runs cheaply).
//! - [`objective`] — a live [`fedhpo::Objective`] that trains configurations
//!   on demand with noisy evaluation, used by the RS/TPE/Hyperband/BOHB
//!   comparisons, plus [`BatchFederatedObjective`] — the batched,
//!   order-independent variant behind the scheduler driver.
//! - [`scheduler`] — the parallel batch driver for `fedhpo`'s ask/tell
//!   [`fedhpo::Scheduler`] methods: suggested batches fan out across threads
//!   through the engine with bit-identical results.
//! - [`experiments`] — one runner per paper table/figure; see `DESIGN.md` for
//!   the experiment index.
//!
//! # Example
//!
//! ```
//! use fedtune_core::{BenchmarkContext, ExperimentScale, NoiseConfig};
//! use feddata::Benchmark;
//!
//! let scale = ExperimentScale::smoke();
//! let ctx = BenchmarkContext::new(Benchmark::Cifar10Like, &scale, 0).unwrap();
//! assert_eq!(ctx.dataset().num_val_clients(), 10);
//! let noise = NoiseConfig::paper_noisy();
//! assert!(noise.validate().is_ok());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod concurrent;
pub mod context;
pub mod engine;
pub mod experiments;
pub mod noise;
pub mod objective;
pub mod pool;
pub mod report;
pub mod scale;
pub mod scheduler;

pub use concurrent::{
    run_event_driven_concurrent, run_event_driven_concurrent_traced, ConcurrentEval,
    ConcurrentObjective, ConcurrentSink, EvalOutput,
};
pub use context::BenchmarkContext;
pub use engine::{ProgressTracker, TrialContext, TrialRunner};
pub use fedsim::clock::{ClientRuntimeModel, CostModel};
pub use fedsim::ExecutionPolicy;
pub use noise::{noisy_error, NoiseConfig};
pub use objective::{
    selected_true_error, selected_true_error_within_sim, BatchFederatedObjective, CampaignLog,
    FederatedObjective, ObjectiveLogEntry,
};
pub use pool::{ConfigPool, PooledConfig};
pub use report::{ExperimentReport, SeriesGroup, SeriesPoint};
pub use scale::ExperimentScale;
pub use scheduler::{
    run_event_driven, run_event_driven_traced, run_scheduled, run_scheduled_for, BatchObjective,
    DispatchedTrial, EventDrivenOutcome, ExecutorCore, ExecutorStep, VirtualExecution,
};

use std::fmt;

/// Errors produced by the experiment layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// An experiment or noise configuration was invalid.
    InvalidConfig {
        /// Description of the violation.
        message: String,
    },
    /// An underlying dataset operation failed.
    Data(feddata::DataError),
    /// An underlying simulation operation failed.
    Sim(fedsim::SimError),
    /// An underlying model operation failed.
    Model(fedmodels::ModelError),
    /// An underlying HPO operation failed.
    Hpo(fedhpo::HpoError),
    /// An underlying privacy mechanism failed.
    Dp(feddp::DpError),
    /// An underlying proxy-tuning operation failed.
    Proxy(fedproxy::ProxyError),
    /// An underlying population operation failed.
    Pop(fedpop::PopError),
    /// An underlying numerical routine failed.
    Math(fedmath::MathError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { message } => write!(f, "invalid configuration: {message}"),
            CoreError::Data(e) => write!(f, "data error: {e}"),
            CoreError::Sim(e) => write!(f, "simulation error: {e}"),
            CoreError::Model(e) => write!(f, "model error: {e}"),
            CoreError::Hpo(e) => write!(f, "hpo error: {e}"),
            CoreError::Dp(e) => write!(f, "privacy error: {e}"),
            CoreError::Proxy(e) => write!(f, "proxy error: {e}"),
            CoreError::Pop(e) => write!(f, "population error: {e}"),
            CoreError::Math(e) => write!(f, "math error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::InvalidConfig { .. } => None,
            CoreError::Data(e) => Some(e),
            CoreError::Sim(e) => Some(e),
            CoreError::Model(e) => Some(e),
            CoreError::Hpo(e) => Some(e),
            CoreError::Dp(e) => Some(e),
            CoreError::Proxy(e) => Some(e),
            CoreError::Pop(e) => Some(e),
            CoreError::Math(e) => Some(e),
        }
    }
}

macro_rules! impl_from_error {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for CoreError {
            fn from(e: $ty) -> Self {
                CoreError::$variant(e)
            }
        }
    };
}

impl_from_error!(Data, feddata::DataError);
impl_from_error!(Sim, fedsim::SimError);
impl_from_error!(Model, fedmodels::ModelError);
impl_from_error!(Hpo, fedhpo::HpoError);
impl_from_error!(Dp, feddp::DpError);
impl_from_error!(Proxy, fedproxy::ProxyError);
impl_from_error!(Pop, fedpop::PopError);
impl_from_error!(Math, fedmath::MathError);

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn error_conversions_and_display() {
        let e = CoreError::InvalidConfig {
            message: "bad rate".into(),
        };
        assert!(e.to_string().contains("bad rate"));
        assert!(e.source().is_none());
        let cases: Vec<CoreError> = vec![
            feddata::DataError::InvalidSpec {
                message: "x".into(),
            }
            .into(),
            fedsim::SimError::InvalidConfig {
                message: "x".into(),
            }
            .into(),
            fedmodels::ModelError::EmptyBatch.into(),
            fedhpo::HpoError::InvalidConfig {
                message: "x".into(),
            }
            .into(),
            feddp::DpError::InvalidParameter {
                message: "x".into(),
            }
            .into(),
            fedproxy::ProxyError::InvalidConfig {
                message: "x".into(),
            }
            .into(),
            fedmath::MathError::EmptyInput { what: "x" }.into(),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
            assert!(e.source().is_some());
        }
    }
}
