//! Experiment scale presets.
//!
//! The paper's experiments take ~1000 GPU-hours. [`ExperimentScale`] lets the
//! same experiment code run at three sizes: `paper()` reproduces the paper's
//! raw budgets, `default_scale()` is the CPU-friendly reduction used by the
//! examples and the bench harness, and `smoke()` is a tiny configuration for
//! unit and integration tests.

use serde::{Deserialize, Serialize};

/// Budgets and trial counts for one experiment campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// Scale at which the synthetic federated datasets are generated.
    pub data_scale: feddata::Scale,
    /// Size of the pre-trained configuration pool (128 in the paper).
    pub pool_size: usize,
    /// Number of configurations searched by RS/TPE (`K = 16` in the paper).
    pub num_configs: usize,
    /// Maximum training rounds per configuration (405 in the paper).
    pub rounds_per_config: usize,
    /// Total training-round budget per tuning run (6480 in the paper).
    pub total_budget: usize,
    /// Number of bootstrap trials for the RS-only analyses (100 in the paper).
    pub bootstrap_trials: usize,
    /// Number of independent trials for the method comparison (8 in the paper).
    pub method_trials: usize,
    /// Number of Hyperband/BOHB brackets (5 in the paper).
    pub num_brackets: usize,
    /// Hyperband elimination factor (η = 3 in the paper).
    pub eta: usize,
    /// Training clients sampled per round (10 in the paper).
    pub clients_per_round: usize,
}

impl ExperimentScale {
    /// The paper's budgets (Table 1/2 client counts, 128-config pools,
    /// 6480-round tuning runs). Only practical with generous compute.
    pub fn paper() -> Self {
        ExperimentScale {
            data_scale: feddata::Scale::Paper,
            pool_size: 128,
            num_configs: 16,
            rounds_per_config: 405,
            total_budget: 6480,
            bootstrap_trials: 100,
            method_trials: 8,
            num_brackets: 5,
            eta: 3,
            clients_per_round: 10,
        }
    }

    /// The CPU-friendly default: same structure, roughly an order of
    /// magnitude smaller budgets. Used by the examples and EXPERIMENTS.md.
    pub fn default_scale() -> Self {
        ExperimentScale {
            data_scale: feddata::Scale::Default,
            pool_size: 64,
            num_configs: 16,
            rounds_per_config: 40,
            total_budget: 640,
            bootstrap_trials: 100,
            method_trials: 4,
            num_brackets: 4,
            eta: 3,
            clients_per_round: 10,
        }
    }

    /// A tiny configuration for unit and integration tests and for the
    /// criterion benchmark harness (which repeats every measurement).
    pub fn smoke() -> Self {
        ExperimentScale {
            data_scale: feddata::Scale::Smoke,
            pool_size: 8,
            num_configs: 4,
            rounds_per_config: 6,
            total_budget: 24,
            bootstrap_trials: 20,
            method_trials: 2,
            num_brackets: 2,
            eta: 3,
            clients_per_round: 5,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::InvalidConfig`] if any count is zero or the
    /// total budget cannot cover a single configuration.
    pub fn validate(&self) -> crate::Result<()> {
        let positive = [
            ("pool_size", self.pool_size),
            ("num_configs", self.num_configs),
            ("rounds_per_config", self.rounds_per_config),
            ("total_budget", self.total_budget),
            ("bootstrap_trials", self.bootstrap_trials),
            ("method_trials", self.method_trials),
            ("num_brackets", self.num_brackets),
            ("clients_per_round", self.clients_per_round),
        ];
        for (name, value) in positive {
            if value == 0 {
                return Err(crate::CoreError::InvalidConfig {
                    message: format!("{name} must be positive"),
                });
            }
        }
        if self.eta < 2 {
            return Err(crate::CoreError::InvalidConfig {
                message: format!("eta must be at least 2, got {}", self.eta),
            });
        }
        if self.total_budget < self.rounds_per_config {
            return Err(crate::CoreError::InvalidConfig {
                message: format!(
                    "total budget {} cannot cover a single configuration of {} rounds",
                    self.total_budget, self.rounds_per_config
                ),
            });
        }
        Ok(())
    }
}

impl Default for ExperimentScale {
    fn default() -> Self {
        ExperimentScale::default_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        assert!(ExperimentScale::paper().validate().is_ok());
        assert!(ExperimentScale::default_scale().validate().is_ok());
        assert!(ExperimentScale::smoke().validate().is_ok());
        assert_eq!(ExperimentScale::default(), ExperimentScale::default_scale());
    }

    #[test]
    fn paper_scale_matches_paper_numbers() {
        let s = ExperimentScale::paper();
        assert_eq!(s.pool_size, 128);
        assert_eq!(s.num_configs, 16);
        assert_eq!(s.rounds_per_config, 405);
        assert_eq!(s.total_budget, 6480);
        assert_eq!(s.num_brackets, 5);
        assert_eq!(s.eta, 3);
        assert_eq!(s.clients_per_round, 10);
        assert_eq!(s.method_trials, 8);
        assert_eq!(s.bootstrap_trials, 100);
        // K configurations at max rounds exactly exhaust the budget.
        assert_eq!(s.num_configs * s.rounds_per_config, s.total_budget);
    }

    #[test]
    fn default_scale_keeps_budget_relationship() {
        let s = ExperimentScale::default_scale();
        assert_eq!(s.num_configs * s.rounds_per_config, s.total_budget);
    }

    #[test]
    fn validation_rejects_broken_scales() {
        let mut s = ExperimentScale::smoke();
        s.pool_size = 0;
        assert!(s.validate().is_err());
        let mut s = ExperimentScale::smoke();
        s.eta = 1;
        assert!(s.validate().is_err());
        let mut s = ExperimentScale::smoke();
        s.total_budget = s.rounds_per_config - 1;
        assert!(s.validate().is_err());
    }
}
