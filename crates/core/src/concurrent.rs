//! Cross-trial concurrent evaluation under virtual time.
//!
//! The blocking event-driven driver evaluates each dispatch set with one
//! synchronous `evaluate_batch_at` call, so even when the virtual
//! [`WorkerPool`](fedsim::WorkerPool) has eight trials in flight the real
//! machine trains them one set at a time. This module closes that gap: a
//! [`ConcurrentObjective`] splits into a shared, `Sync` **evaluation core**
//! and a mutable **campaign sink**, and [`run_event_driven_concurrent`]
//! drives the sans-io [`ExecutorCore`] with every in-flight virtual trial
//! evaluating concurrently on the persistent real thread pool
//! ([`fedsim::exec::with_thread_pool`]).
//!
//! # Why the outcome is bit-identical at every thread count
//!
//! Three ordering rules make real parallelism invisible to the result:
//!
//! 1. **Evaluations are pure in their coordinates.** Scores, costs, and
//!    noise derive from the canonical `(config, resource, noise_rep)` point,
//!    never from shared sequential state, so *what* a task computes cannot
//!    depend on *when* or *where* it runs.
//! 2. **Per-trial state flows in dispatch order.** A trial's training run is
//!    checked out of the sink when its first in-flight task starts and is
//!    handed directly from each completed task to that trial's next queued
//!    task (the pool's chained submission), so resume points are the same
//!    sequence the sequential driver produces.
//! 3. **Commits are sequenced.** Results reach the [`ExecutorCore`] whenever
//!    they finish (its completion buffer is order-independent), but the
//!    campaign log commits through a reorder buffer strictly in dispatch
//!    order, and virtual events still deliver in `(sim_time, EventKey)`
//!    order.
//!
//! `tests/determinism.rs` asserts the resulting [`EventDrivenOutcome`] —
//! scores, selections, timeline — is bit-identical across the sequential
//! driver and this one at 1/4/8 real threads.

use crate::scheduler::VirtualExecution;
use crate::scheduler::{DispatchedTrial, EventDrivenOutcome, ExecutorCore, ExecutorStep};
use crate::Result;
use fedhpo::{Scheduler, SearchSpace, TrialRequest, TrialResult};
use fedsim::clock::EventKey;
use fedsim::exec::with_thread_pool;
use rand::rngs::StdRng;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::mpsc;

/// Per-request output of one evaluation, before campaign accounting.
///
/// This is what an evaluation task computes on a worker thread; the sink
/// turns it into log entries and budget accounting on the driver thread, in
/// dispatch order.
#[derive(Debug, Clone)]
pub struct EvalOutput {
    /// The noisy score reported to the tuner (lower is better).
    pub noisy_score: f64,
    /// The true (noise-free) objective value of the same evaluation.
    pub true_error: f64,
    /// Incremental training rounds this evaluation consumed.
    pub rounds_delta: usize,
    /// Cumulative rounds the trial's run had completed afterwards.
    pub resource_completed: usize,
}

/// The shared, thread-safe half of a concurrent objective: evaluates one
/// request against that trial's private state.
///
/// `Sync` is the contract that makes cross-trial concurrency safe: the core
/// holds only immutable campaign-wide inputs (context, noise model, seed
/// trees), while everything mutable travels in the per-trial `State` that
/// exactly one task owns at a time.
pub trait ConcurrentEval: Sync {
    /// Per-trial mutable state (training run, caches), owned by exactly one
    /// in-flight task at a time and otherwise parked in the sink.
    type State: Send;

    /// Evaluates `request`, resuming from (and updating) `state`.
    ///
    /// Must be a pure function of `(request coordinates, state)` — all
    /// randomness derived positionally — so the outcome cannot depend on
    /// which thread runs it or when.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    fn evaluate(&self, state: &mut Self::State, request: &TrialRequest) -> Result<EvalOutput>;
}

/// The single-threaded half of a concurrent objective: parks per-trial state
/// between dispatches and accumulates the campaign log.
///
/// All methods run on the driver thread; [`commit`](Self::commit) is called
/// strictly in dispatch order regardless of real completion order.
pub trait ConcurrentSink {
    /// Same state type as the paired [`ConcurrentEval`].
    type State: Send;

    /// Checks the trial's state out for an in-flight task ("fresh" state for
    /// trials never seen).
    fn take_state(&mut self, trial_id: usize) -> Self::State;

    /// Parks the trial's state again once no task of that trial is in
    /// flight.
    fn put_state(&mut self, trial_id: usize, state: Self::State);

    /// Records one finished evaluation. Invoked in dispatch order, so
    /// cumulative accounting (rounds, log order) matches the sequential
    /// driver bit for bit.
    fn commit(&mut self, request: &TrialRequest, output: &EvalOutput, sim_time: f64);
}

/// An objective that can evaluate its in-flight trials concurrently: it
/// splits into a `Sync` evaluation core shared by worker threads and a
/// mutable campaign sink owned by the driver thread.
pub trait ConcurrentObjective {
    /// Per-trial mutable state shuttled between sink and tasks.
    type State: Send;
    /// The shared evaluation half.
    type Eval: ConcurrentEval<State = Self::State>;
    /// The driver-side accounting half.
    type Sink: ConcurrentSink<State = Self::State>;

    /// Borrows both halves at once (they must be disjoint fields).
    fn split(&mut self) -> (&Self::Eval, &mut Self::Sink);
}

/// A message from an evaluation task back to the driver thread.
enum WorkerMsg<S> {
    Done {
        seq: usize,
        key: EventKey,
        request: TrialRequest,
        sim_completion: f64,
        state: S,
        output: Result<EvalOutput>,
    },
    /// Sent by the panic guard so the driver never blocks forever on a task
    /// that died; the worker's panic itself propagates when the pool scope
    /// joins.
    Panicked,
}

/// Sends [`WorkerMsg::Panicked`] if the task unwinds before defusing.
struct PanicGuard<S> {
    tx: Option<mpsc::Sender<WorkerMsg<S>>>,
}

impl<S> Drop for PanicGuard<S> {
    fn drop(&mut self) {
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(WorkerMsg::Panicked);
        }
    }
}

/// [`run_event_driven`](crate::scheduler::run_event_driven) with every
/// in-flight virtual trial evaluating **concurrently on `threads` real
/// threads** (clamped to at least one; pass
/// [`ExecutionPolicy::from_env().pool_threads()`](fedsim::ExecutionPolicy::pool_threads)
/// to honor `FEDTUNE_THREADS`).
///
/// The outcome — scores, selections, virtual timeline, campaign log — is
/// bit-identical to the sequential driver at every thread count; only
/// wall-clock time changes. See the module docs for the ordering argument.
///
/// # Errors
///
/// Exactly the blocking driver's conditions (invalid [`VirtualExecution`],
/// scheduler stall, evaluation failure), plus a disconnect error if the
/// worker channel closes early.
pub fn run_event_driven_concurrent<O: ConcurrentObjective>(
    scheduler: &mut dyn Scheduler,
    space: &SearchSpace,
    objective: &mut O,
    rng: &mut StdRng,
    sim: &VirtualExecution,
    threads: usize,
) -> Result<EventDrivenOutcome> {
    run_event_driven_concurrent_traced(
        scheduler,
        space,
        objective,
        rng,
        sim,
        threads,
        fedtrace::global_if_enabled(),
    )
}

/// [`run_event_driven_concurrent`] with an explicit observability scope.
///
/// Wall-domain "evaluate" slices are recorded from worker threads onto the
/// trace's [`WallProfile`](fedtrace::WallProfile); sim-domain accounting is identical to the
/// blocking driver's. Accounting, never semantics.
///
/// # Errors
///
/// Exactly [`run_event_driven_concurrent`]'s conditions.
pub fn run_event_driven_concurrent_traced<O: ConcurrentObjective>(
    scheduler: &mut dyn Scheduler,
    space: &SearchSpace,
    objective: &mut O,
    rng: &mut StdRng,
    sim: &VirtualExecution,
    threads: usize,
    trace: Option<&fedtrace::Trace>,
) -> Result<EventDrivenOutcome> {
    let (eval, sink) = objective.split();
    let wall = trace.map(|t| t.wall_profile());
    let mut core = ExecutorCore::new_traced(scheduler, space, rng, sim, trace)?;
    with_thread_pool(threads, move |pool| {
        let (tx, rx) = mpsc::channel::<WorkerMsg<O::State>>();
        // Dispatch-order sequence numbers; commits drain contiguously.
        let mut next_seq: usize = 0;
        let mut next_commit: usize = 0;
        let mut commit_buf: BTreeMap<usize, (TrialRequest, EvalOutput, f64)> = BTreeMap::new();
        // Trials with a task in flight; the queue holds that trial's later
        // dispatches, chained onto the freed state as tasks complete.
        let mut in_flight: HashMap<usize, VecDeque<(usize, DispatchedTrial)>> = HashMap::new();

        let submit_eval = |seq: usize, d: DispatchedTrial, mut state: O::State, chained: bool| {
            let tx = tx.clone();
            let job = move || {
                let mut guard = PanicGuard { tx: Some(tx) };
                let started = wall.map(|w| w.now_seconds());
                let output = eval.evaluate(&mut state, &d.request);
                if let (Some(w), Some(started)) = (wall, started) {
                    w.record_since("evaluate", started);
                }
                let tx = guard.tx.take().expect("guard still armed");
                let _ = tx.send(WorkerMsg::Done {
                    seq,
                    key: d.key,
                    request: d.request,
                    sim_completion: d.sim_completion,
                    state,
                    output,
                });
            };
            if chained {
                pool.submit_chained(job);
            } else {
                pool.submit(job);
            }
        };

        loop {
            match core.step()? {
                ExecutorStep::Dispatch(batch) => {
                    for dispatched in batch {
                        let trial = dispatched.request.trial_id;
                        let seq = next_seq;
                        next_seq += 1;
                        match in_flight.get_mut(&trial) {
                            // The trial's state is on a worker right now:
                            // queue behind it, preserving per-trial dispatch
                            // order.
                            Some(queue) => queue.push_back((seq, dispatched)),
                            None => {
                                in_flight.insert(trial, VecDeque::new());
                                let state = sink.take_state(trial);
                                submit_eval(seq, dispatched, state, false);
                            }
                        }
                    }
                }
                ExecutorStep::Deliver(awaited) => loop {
                    let msg = rx.recv().map_err(|_| crate::CoreError::InvalidConfig {
                        message: "evaluation workers disconnected before completing \
                                  dispatched work"
                            .into(),
                    })?;
                    let WorkerMsg::Done {
                        seq,
                        key,
                        request,
                        sim_completion,
                        state,
                        output,
                    } = msg
                    else {
                        return Err(crate::CoreError::InvalidConfig {
                            message: "an evaluation task panicked".into(),
                        });
                    };
                    let output = output?;
                    core.complete(key, TrialResult::of(&request, output.noisy_score))?;
                    commit_buf.insert(seq, (request, output, sim_completion));
                    while let Some((request, output, time)) = commit_buf.remove(&next_commit) {
                        sink.commit(&request, &output, time);
                        next_commit += 1;
                    }
                    let trial = key.trial as usize;
                    let queue = in_flight.get_mut(&trial).expect("in-flight trial tracked");
                    if let Some((next, dispatched)) = queue.pop_front() {
                        // Hand the warm state straight to the trial's next
                        // task — no round trip through the sink.
                        submit_eval(next, dispatched, state, true);
                    } else {
                        in_flight.remove(&trial);
                        sink.put_state(trial, state);
                    }
                    if key == awaited {
                        break;
                    }
                },
                ExecutorStep::Finished => break,
            }
        }
        Ok(core.finish())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{run_event_driven, BatchObjective, EventDrivenOutcome};
    use fedhpo::{AsyncAsha, IntoScheduler};
    use fedmath::rng::rng_for;
    use fedsim::clock::{ClientRuntimeModel, CostModel};

    fn space_1d() -> SearchSpace {
        SearchSpace::new().with_uniform("x", 0.0, 1.0).unwrap()
    }

    fn analytic_score(request: &TrialRequest) -> f64 {
        let x = request.config.values()[0];
        (x - 0.3).abs() + 1.0 / (request.resource as f64 + 1.0)
    }

    /// The `Sync` half: scores analytically, optionally failing one trial.
    struct AnalyticEval {
        fail_trial: Option<usize>,
    }

    impl ConcurrentEval for AnalyticEval {
        type State = usize;

        fn evaluate(&self, state: &mut usize, request: &TrialRequest) -> Result<EvalOutput> {
            if self.fail_trial == Some(request.trial_id) {
                return Err(crate::CoreError::InvalidConfig {
                    message: format!("injected failure for trial {}", request.trial_id),
                });
            }
            let score = analytic_score(request);
            let delta = request.resource.saturating_sub(*state);
            *state = (*state).max(request.resource);
            Ok(EvalOutput {
                noisy_score: score,
                true_error: score,
                rounds_delta: delta,
                resource_completed: *state,
            })
        }
    }

    /// The driver-thread half: records every commit bit-exactly.
    #[derive(Default)]
    struct RecordingSink {
        states: HashMap<usize, usize>,
        commits: Vec<(usize, usize, u64, u64)>,
        rounds: usize,
    }

    impl ConcurrentSink for RecordingSink {
        type State = usize;

        fn take_state(&mut self, trial_id: usize) -> usize {
            self.states.remove(&trial_id).unwrap_or(0)
        }

        fn put_state(&mut self, trial_id: usize, state: usize) {
            self.states.insert(trial_id, state);
        }

        fn commit(&mut self, request: &TrialRequest, output: &EvalOutput, sim_time: f64) {
            self.rounds += output.rounds_delta;
            self.commits.push((
                request.trial_id,
                request.resource,
                output.noisy_score.to_bits(),
                sim_time.to_bits(),
            ));
        }
    }

    struct AnalyticConcurrent {
        eval: AnalyticEval,
        sink: RecordingSink,
    }

    impl ConcurrentObjective for AnalyticConcurrent {
        type State = usize;
        type Eval = AnalyticEval;
        type Sink = RecordingSink;

        fn split(&mut self) -> (&AnalyticEval, &mut RecordingSink) {
            (&self.eval, &mut self.sink)
        }
    }

    /// Blocking reference for the same analytic score.
    struct AnalyticBatch;

    impl BatchObjective for AnalyticBatch {
        fn evaluate_batch(&mut self, requests: &[TrialRequest]) -> Result<Vec<TrialResult>> {
            Ok(requests
                .iter()
                .map(|r| TrialResult::of(r, analytic_score(r)))
                .collect())
        }
    }

    fn straggler_sim() -> VirtualExecution {
        let cost = CostModel::HeterogeneousClients(ClientRuntimeModel::heavy_tailed(60, 5, 17));
        VirtualExecution::new(4, cost)
    }

    fn run_concurrent(
        threads: usize,
        fail_trial: Option<usize>,
    ) -> Result<(EventDrivenOutcome, AnalyticConcurrent)> {
        let ladder = fedhpo::Asha::new(12, 3, 1, 9);
        let mut scheduler = AsyncAsha::from_ladder(ladder).scheduler().unwrap();
        let mut objective = AnalyticConcurrent {
            eval: AnalyticEval { fail_trial },
            sink: RecordingSink::default(),
        };
        let mut rng = rng_for(3, 0);
        let outcome = run_event_driven_concurrent(
            &mut scheduler,
            &space_1d(),
            &mut objective,
            &mut rng,
            &straggler_sim(),
            threads,
        )?;
        Ok((outcome, objective))
    }

    #[test]
    fn concurrent_driver_is_bit_identical_to_blocking_at_every_thread_count() {
        // An async ASHA campaign under heavy-tailed stragglers keeps several
        // trials in flight at once — the adversarial case for reordering.
        let ladder = fedhpo::Asha::new(12, 3, 1, 9);
        let mut scheduler = AsyncAsha::from_ladder(ladder).scheduler().unwrap();
        let mut rng = rng_for(3, 0);
        let blocking = run_event_driven(
            &mut scheduler,
            &space_1d(),
            &mut AnalyticBatch,
            &mut rng,
            &straggler_sim(),
        )
        .unwrap();
        assert!(blocking.finished);
        let mut reference_commits = None;
        for threads in [1usize, 4, 8] {
            let (outcome, objective) = run_concurrent(threads, None).unwrap();
            assert_eq!(outcome, blocking, "threads = {threads}");
            for (a, b) in outcome
                .outcome
                .records()
                .iter()
                .zip(blocking.outcome.records())
            {
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "threads = {threads}");
                assert_eq!(
                    a.sim_time.to_bits(),
                    b.sim_time.to_bits(),
                    "threads = {threads}"
                );
            }
            // Commit order (dispatch order) is itself thread-invariant, and
            // every in-flight trial's state came back to the sink.
            assert_eq!(
                objective.sink.commits.len(),
                outcome.outcome.num_evaluations()
            );
            match &reference_commits {
                None => reference_commits = Some(objective.sink.commits.clone()),
                Some(reference) => {
                    assert_eq!(&objective.sink.commits, reference, "threads = {threads}");
                }
            }
            assert_eq!(
                objective.sink.rounds,
                outcome.outcome.total_resource(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn concurrent_driver_propagates_evaluation_errors() {
        for threads in [1usize, 4] {
            let Err(err) = run_concurrent(threads, Some(0)) else {
                panic!("expected the injected failure to propagate");
            };
            assert!(
                err.to_string().contains("injected failure"),
                "threads = {threads}: {err}"
            );
        }
    }
}
