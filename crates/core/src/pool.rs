//! The pre-trained configuration pool behind the paper's RS-only analyses.
//!
//! §3 ("Evaluation"): *"we train random 128 HP configs and then bootstrap 100
//! trials i.e. run RS on K = 16 HP configs that are resampled from the set of
//! 128"*. Training the pool once and replaying noisy selection many times is
//! what makes the subsampling / heterogeneity / privacy sweeps tractable;
//! this module reproduces that machinery.

use crate::context::BenchmarkContext;
use crate::engine::TrialRunner;
use crate::noise::{noisy_error, NoiseConfig};
use crate::{CoreError, Result};
use feddata::{ClientData, Split};
use fedhpo::HpConfig;
use fedmath::SeedStream;
use fedmodels::AnyModel;
use fedsim::evaluation::{evaluate_clients_with, FederatedEvaluation};
use fedsim::WeightingScheme;
use rand::rngs::StdRng;

/// One pre-trained configuration: the sampled hyperparameters, the trained
/// model, and its full-validation evaluation on the context's validation pool.
#[derive(Debug, Clone)]
pub struct PooledConfig {
    /// Index of the configuration within the pool.
    pub index: usize,
    /// The hyperparameter configuration.
    pub config: HpConfig,
    /// The model trained with this configuration.
    pub model: AnyModel,
    /// Per-client evaluation on the full validation pool.
    pub evaluation: FederatedEvaluation,
    /// Example-weighted full-validation error (Eq. 2 over all clients).
    pub full_error: f64,
}

/// A pool of configurations trained once and reused across noise settings.
#[derive(Debug, Clone)]
pub struct ConfigPool {
    entries: Vec<PooledConfig>,
}

impl ConfigPool {
    /// Samples `pool_size` configurations from the context's search space and
    /// trains each for the scale's per-configuration round budget (in
    /// parallel across configurations).
    ///
    /// # Errors
    ///
    /// Propagates sampling, training, and evaluation failures.
    pub fn train(ctx: &BenchmarkContext, seed: u64) -> Result<Self> {
        Self::train_sized(ctx, ctx.scale().pool_size, seed)
    }

    /// Trains a pool of an explicit size (used by the search-space ablation
    /// which uses `K = 128` regardless of scale).
    ///
    /// # Errors
    ///
    /// Propagates sampling, training, and evaluation failures.
    pub fn train_sized(ctx: &BenchmarkContext, pool_size: usize, seed: u64) -> Result<Self> {
        Self::train_with(ctx, pool_size, seed, &TrialRunner::from_env())
    }

    /// Trains a pool through an explicit [`TrialRunner`], so callers control
    /// the execution policy and progress accounting. Sequential and parallel
    /// runners produce bit-identical pools.
    ///
    /// # Errors
    ///
    /// Propagates sampling, training, and evaluation failures.
    pub fn train_with(
        ctx: &BenchmarkContext,
        pool_size: usize,
        seed: u64,
        trials: &TrialRunner,
    ) -> Result<Self> {
        if pool_size == 0 {
            return Err(CoreError::InvalidConfig {
                message: "pool size must be positive".into(),
            });
        }
        let mut seeds = SeedStream::new(seed);
        let mut sample_rng = seeds.next_rng();
        let configs = ctx.space().sample_many(pool_size, &mut sample_rng)?;
        let trial_root = seeds.next_seed();
        let runner = ctx.config_runner();

        let entries = trials.run_trials(trial_root, pool_size, |trial| {
            let config = &configs[trial.index()];
            let result = runner.run(ctx.dataset(), config, trial.seed(0))?;
            Ok(PooledConfig {
                index: trial.index(),
                config: config.clone(),
                model: result.model,
                evaluation: result.evaluation,
                full_error: result.full_error,
            })
        })?;
        Ok(ConfigPool { entries })
    }

    /// The pooled configurations, in sample order.
    pub fn entries(&self) -> &[PooledConfig] {
        &self.entries
    }

    /// Number of configurations in the pool.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The full-validation errors of every configuration, in pool order —
    /// the "true scores" used when reporting what a tuner actually selected.
    pub fn true_errors(&self) -> Vec<f64> {
        self.entries.iter().map(|e| e.full_error).collect()
    }

    /// The best (lowest) full-validation error in the pool — the "Best HPs"
    /// horizontal reference line of Fig. 3.
    ///
    /// # Errors
    ///
    /// Returns an error if the pool is empty.
    pub fn best_full_error(&self) -> Result<f64> {
        fedmath::stats::min(&self.true_errors()).map_err(CoreError::from)
    }

    /// The minimum per-client error of each configuration (y-axis of Fig. 7).
    pub fn min_client_errors(&self) -> Vec<f64> {
        self.entries
            .iter()
            .map(|e| e.evaluation.min_client_error())
            .collect()
    }

    /// Draws one noisy observation of every configuration's error under the
    /// given noise configuration, using the pool's stored per-client
    /// evaluations. `total_evaluations` is the DP composition length `M`.
    ///
    /// # Errors
    ///
    /// Propagates noisy-evaluation failures.
    pub fn noisy_scores(
        &self,
        noise: &NoiseConfig,
        total_evaluations: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<f64>> {
        self.entries
            .iter()
            .map(|e| noisy_error(&e.evaluation, noise, total_evaluations, rng))
            .collect()
    }

    /// Re-evaluates every pooled model on a replacement validation pool
    /// (used by the data-heterogeneity experiments, which repartition the
    /// evaluation clients while keeping the trained models fixed) and returns
    /// a new pool whose evaluations and full errors refer to that pool.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    pub fn reevaluate_on(&self, val_clients: &[ClientData]) -> Result<ConfigPool> {
        self.reevaluate_on_with(val_clients, &TrialRunner::from_env())
    }

    /// [`reevaluate_on`](Self::reevaluate_on) through an explicit
    /// [`TrialRunner`]. Evaluation consumes no randomness, so every policy
    /// produces identical pools.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    pub fn reevaluate_on_with(
        &self,
        val_clients: &[ClientData],
        trials: &TrialRunner,
    ) -> Result<ConfigPool> {
        let indices: Vec<usize> = (0..val_clients.len()).collect();
        // The outer trial fan-out already saturates the cores; keep the inner
        // per-client evaluation sequential to avoid thread oversubscription.
        let inner = fedsim::ExecutionPolicy::Sequential;
        let entries = trials.run_trials(0, self.entries.len(), |trial| {
            let entry = &self.entries[trial.index()];
            let evaluation = evaluate_clients_with(
                &inner,
                &entry.model,
                val_clients,
                &indices,
                WeightingScheme::ByExamples,
            )?;
            let full_error = evaluation.weighted_error()?;
            Ok(PooledConfig {
                index: entry.index,
                config: entry.config.clone(),
                model: entry.model.clone(),
                evaluation,
                full_error,
            })
        })?;
        Ok(ConfigPool { entries })
    }

    /// Convenience constructor for tests and analyses that already have
    /// evaluated entries.
    pub fn from_entries(entries: Vec<PooledConfig>) -> Self {
        ConfigPool { entries }
    }
}

/// Helper shared by the experiment runners: the validation pool of a context,
/// optionally repartitioned towards iid-ness by fraction `p`.
///
/// # Errors
///
/// Propagates repartitioning failures.
pub fn validation_pool_with_iid_fraction(
    ctx: &BenchmarkContext,
    p: f64,
    rng: &mut StdRng,
) -> Result<Vec<ClientData>> {
    let original = ctx.dataset().clients(Split::Validation);
    if p == 0.0 {
        return Ok(original.to_vec());
    }
    feddata::repartition_iid_fraction(rng, original, p).map_err(CoreError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ExperimentScale;
    use feddata::Benchmark;
    use fedmath::rng::rng_for;

    fn smoke_context() -> BenchmarkContext {
        BenchmarkContext::new(Benchmark::Cifar10Like, &ExperimentScale::smoke(), 0).unwrap()
    }

    #[test]
    fn pool_trains_and_exposes_scores() {
        let ctx = smoke_context();
        let pool = ConfigPool::train(&ctx, 1).unwrap();
        assert_eq!(pool.len(), ctx.scale().pool_size);
        assert!(!pool.is_empty());
        assert_eq!(pool.true_errors().len(), pool.len());
        assert!(pool.true_errors().iter().all(|&e| (0.0..=1.0).contains(&e)));
        let best = pool.best_full_error().unwrap();
        assert!(pool.true_errors().iter().all(|&e| e >= best));
        assert_eq!(pool.min_client_errors().len(), pool.len());
        for (i, entry) in pool.entries().iter().enumerate() {
            assert_eq!(entry.index, i);
            assert_eq!(
                entry.evaluation.num_clients(),
                ctx.dataset().num_val_clients()
            );
        }
    }

    #[test]
    fn pool_rejects_zero_size() {
        let ctx = smoke_context();
        assert!(ConfigPool::train_sized(&ctx, 0, 1).is_err());
    }

    #[test]
    fn pool_training_is_deterministic() {
        let ctx = smoke_context();
        let a = ConfigPool::train_sized(&ctx, 3, 9).unwrap();
        let b = ConfigPool::train_sized(&ctx, 3, 9).unwrap();
        assert_eq!(a.true_errors(), b.true_errors());
    }

    #[test]
    fn noisy_scores_differ_from_true_scores_under_subsampling() {
        let ctx = smoke_context();
        let pool = ConfigPool::train_sized(&ctx, 4, 2).unwrap();
        let mut rng = rng_for(0, 0);
        let noiseless = pool
            .noisy_scores(&NoiseConfig::noiseless(), 16, &mut rng)
            .unwrap();
        for (noisy, truth) in noiseless.iter().zip(pool.true_errors().iter()) {
            assert!((noisy - truth).abs() < 1e-12);
        }
        let subsampled = pool
            .noisy_scores(&NoiseConfig::subsampled(0.1), 16, &mut rng)
            .unwrap();
        let differs = subsampled
            .iter()
            .zip(pool.true_errors().iter())
            .any(|(a, b)| (a - b).abs() > 1e-9);
        assert!(
            differs,
            "subsampled scores should deviate from the full errors"
        );
    }

    #[test]
    fn reevaluation_on_iid_pool_preserves_entry_count() {
        let ctx = smoke_context();
        let pool = ConfigPool::train_sized(&ctx, 3, 3).unwrap();
        let mut rng = rng_for(1, 0);
        let iid_pool = validation_pool_with_iid_fraction(&ctx, 1.0, &mut rng).unwrap();
        assert_eq!(iid_pool.len(), ctx.dataset().num_val_clients());
        let reevaluated = pool.reevaluate_on(&iid_pool).unwrap();
        assert_eq!(reevaluated.len(), pool.len());
        // Full-population error barely changes (same pooled data overall),
        // but the per-client structure does; just sanity-check the range.
        for e in reevaluated.true_errors() {
            assert!((0.0..=1.0).contains(&e));
        }
        // p = 0 returns the original partition.
        let same = validation_pool_with_iid_fraction(&ctx, 0.0, &mut rng).unwrap();
        assert_eq!(same, ctx.dataset().clients(Split::Validation).to_vec());
    }

    #[test]
    fn from_entries_roundtrip() {
        let ctx = smoke_context();
        let pool = ConfigPool::train_sized(&ctx, 2, 4).unwrap();
        let rebuilt = ConfigPool::from_entries(pool.entries().to_vec());
        assert_eq!(rebuilt.len(), 2);
    }
}
