//! One experiment runner per table/figure of the paper's evaluation.
//!
//! | module | paper content |
//! |---|---|
//! | [`table1`] | Tables 1–2: dataset statistics |
//! | [`subsampling`] | Fig. 3 (RS vs subsample rate) and Fig. 5 (error vs budget) |
//! | [`heterogeneity`] | Fig. 4 (data heterogeneity), Fig. 6 (systems heterogeneity), Fig. 7 (min-client-error scatter) |
//! | [`privacy`] | Fig. 9 (privacy budget sweep) |
//! | [`methods`] | Fig. 1, Fig. 8, Fig. 15/16 (RS vs TPE vs Hyperband vs BOHB, noiseless vs noisy) |
//! | [`proxy`] | Fig. 10/14 (HP transfer), Fig. 11 (proxy matrix), Fig. 12 (proxy vs noisy evaluation) |
//! | [`space_ablation`] | Fig. 13 (search-space size under noise) |
//! | [`stragglers`] | Straggler scenario: sync SHA vs async ASHA in simulated wall-clock under heavy-tailed client runtimes |
//! | [`population`] | Population-scale subsampling noise: variance and rank fidelity vs cohort size at N up to 1e6 lazy clients |
//!
//! Every runner takes a [`crate::ExperimentScale`] and a seed, returns a
//! serialisable result struct, and can render an [`crate::ExperimentReport`].

pub mod heterogeneity;
pub mod methods;
pub mod population;
pub mod privacy;
pub mod proxy;
pub mod space_ablation;
pub mod stragglers;
pub mod subsampling;
pub mod table1;

use crate::engine::TrialRunner;
use crate::noise::NoiseConfig;
use crate::pool::ConfigPool;
use crate::Result;

/// The subsample-rate grid used on the x-axes of Figures 3, 4, 6, and 9:
/// client counts `1, 3, 9, 27, …` (powers of the paper's η = 3) up to the
/// full population, expressed as fractions of the population.
pub fn subsample_rate_grid(population: usize) -> Vec<f64> {
    let mut counts = Vec::new();
    let mut c = 1usize;
    while c < population {
        counts.push(c);
        c *= 3;
    }
    counts.push(population);
    counts
        .into_iter()
        .map(|c| c as f64 / population as f64)
        .collect()
}

/// Number of objective evaluations a Hyperband/BOHB run with the given
/// schedule performs — the DP composition length `M` for those methods.
pub fn hyperband_planned_evaluations(
    max_resource: usize,
    eta: usize,
    num_brackets: usize,
) -> usize {
    let hb = fedhpo::Hyperband::new(max_resource, eta, Some(num_brackets));
    let mut evaluations = 0usize;
    for s in (0..hb.num_brackets()).rev() {
        let (mut n, mut r) = hb.bracket_plan(s);
        loop {
            evaluations += n;
            if n < hb.eta() || r >= hb.max_resource() {
                break;
            }
            n = (n / hb.eta()).max(1);
            r = (r * hb.eta()).min(hb.max_resource());
        }
    }
    evaluations
}

/// Simulates one random-search trial over a pre-trained pool: draw `k`
/// distinct configurations, observe each through the noise model, select the
/// lowest noisy score, and return the *true* full-validation error of the
/// selected configuration (§3, "Evaluation").
///
/// # Errors
///
/// Propagates noisy-evaluation failures; fails if `k` exceeds the pool size.
pub fn simulated_rs_trial(
    pool: &ConfigPool,
    noise: &NoiseConfig,
    k: usize,
    total_evaluations: usize,
    rng: &mut rand::rngs::StdRng,
) -> Result<f64> {
    let subset = fedmath::rng::sample_without_replacement(rng, pool.len(), k.min(pool.len()))?;
    let mut best_noisy = f64::INFINITY;
    let mut best_true = f64::NAN;
    for idx in subset {
        let entry = &pool.entries()[idx];
        let noisy = crate::noise::noisy_error(&entry.evaluation, noise, total_evaluations, rng)?;
        if noisy < best_noisy {
            best_noisy = noisy;
            best_true = entry.full_error;
        }
    }
    Ok(best_true)
}

/// Runs [`simulated_rs_trial`] `trials` times with independent randomness and
/// returns the selected true errors. Fans trials out under the
/// `FEDTUNE_THREADS`-overridable default ([`TrialRunner::from_env`]); see
/// [`simulated_rs_trials_with`] for an explicit execution policy.
///
/// # Errors
///
/// Propagates trial failures.
pub fn simulated_rs_trials(
    pool: &ConfigPool,
    noise: &NoiseConfig,
    k: usize,
    total_evaluations: usize,
    trials: usize,
    seed: u64,
) -> Result<Vec<f64>> {
    simulated_rs_trials_with(
        &TrialRunner::from_env(),
        pool,
        noise,
        k,
        total_evaluations,
        trials,
        seed,
    )
}

/// [`simulated_rs_trials`] through an explicit [`TrialRunner`]. Trial `i`
/// draws its randomness from the seed derived at `(seed, i)`, so sequential
/// and parallel runners return bit-identical error vectors.
///
/// # Errors
///
/// Propagates trial failures.
pub fn simulated_rs_trials_with(
    runner: &TrialRunner,
    pool: &ConfigPool,
    noise: &NoiseConfig,
    k: usize,
    total_evaluations: usize,
    trials: usize,
    seed: u64,
) -> Result<Vec<f64>> {
    runner.run_trials(seed, trials, |trial| {
        let mut rng = trial.rng(0);
        simulated_rs_trial(pool, noise, k, total_evaluations, &mut rng)
    })
}

/// Runs [`simulated_rs_trajectory`] `trials` times through a [`TrialRunner`]
/// and returns one incumbent trajectory per trial, in trial order.
///
/// # Errors
///
/// Propagates trial failures.
pub fn simulated_rs_trajectories_with(
    runner: &TrialRunner,
    pool: &ConfigPool,
    noise: &NoiseConfig,
    k: usize,
    total_evaluations: usize,
    trials: usize,
    seed: u64,
) -> Result<Vec<Vec<f64>>> {
    runner.run_trials(seed, trials, |trial| {
        let mut rng = trial.rng(0);
        simulated_rs_trajectory(pool, noise, k, total_evaluations, &mut rng)
    })
}

/// Simulates the *online* trajectory of one random-search trial: the true
/// error of the incumbent after each configuration finishes training
/// (`rounds_per_config` budget units per configuration). Returns a vector of
/// length `k`: entry `j` is the incumbent's true error after `j + 1`
/// configurations.
///
/// # Errors
///
/// Propagates noisy-evaluation failures.
pub fn simulated_rs_trajectory(
    pool: &ConfigPool,
    noise: &NoiseConfig,
    k: usize,
    total_evaluations: usize,
    rng: &mut rand::rngs::StdRng,
) -> Result<Vec<f64>> {
    let subset = fedmath::rng::sample_without_replacement(rng, pool.len(), k.min(pool.len()))?;
    let mut best_noisy = f64::INFINITY;
    let mut best_true = f64::NAN;
    let mut trajectory = Vec::with_capacity(subset.len());
    for idx in subset {
        let entry = &pool.entries()[idx];
        let noisy = crate::noise::noisy_error(&entry.evaluation, noise, total_evaluations, rng)?;
        if noisy < best_noisy {
            best_noisy = noisy;
            best_true = entry.full_error;
        }
        trajectory.push(best_true);
    }
    Ok(trajectory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::BenchmarkContext;
    use crate::scale::ExperimentScale;
    use feddata::Benchmark;
    use fedmath::rng::rng_for;

    #[test]
    fn rate_grid_covers_one_client_to_everyone() {
        let grid = subsample_rate_grid(100);
        assert!((grid[0] - 0.01).abs() < 1e-12);
        assert_eq!(*grid.last().unwrap(), 1.0);
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
        // 1, 3, 9, 27, 81, 100 -> six points.
        assert_eq!(grid.len(), 6);
        let tiny = subsample_rate_grid(2);
        assert_eq!(tiny, vec![0.5, 1.0]);
    }

    #[test]
    fn hyperband_evaluation_count_matches_manual_count() {
        // R = 9, eta = 3, 3 brackets:
        // s=2: n=9,r=1 -> 9 + 3 + 1 evaluations
        // s=1: n=5,r=3 -> 5 + 1
        // s=0: n=3,r=9 -> 3
        assert_eq!(
            hyperband_planned_evaluations(9, 3, 3),
            9 + 3 + 1 + 5 + 1 + 3
        );
    }

    #[test]
    fn simulated_rs_behaviour() {
        let ctx =
            BenchmarkContext::new(Benchmark::Cifar10Like, &ExperimentScale::smoke(), 0).unwrap();
        let pool = ConfigPool::train(&ctx, 1).unwrap();
        // Noiseless selection over the whole pool always returns the best error.
        let mut rng = rng_for(0, 0);
        let chosen =
            simulated_rs_trial(&pool, &NoiseConfig::noiseless(), pool.len(), 16, &mut rng).unwrap();
        assert_eq!(chosen, pool.best_full_error().unwrap());

        let errors =
            simulated_rs_trials(&pool, &NoiseConfig::subsampled(0.2), 4, 16, 10, 3).unwrap();
        assert_eq!(errors.len(), 10);
        assert!(errors.iter().all(|e| (0.0..=1.0).contains(e)));

        let mut rng = rng_for(1, 0);
        let trajectory =
            simulated_rs_trajectory(&pool, &NoiseConfig::noiseless(), 5, 16, &mut rng).unwrap();
        assert_eq!(trajectory.len(), 5);
        // The noiseless incumbent error never increases.
        assert!(trajectory.windows(2).all(|w| w[1] <= w[0] + 1e-12));
    }
}
