//! Fig. 13 (Appendix C): the interaction between search-space size and noisy
//! evaluation. Enlarging the server-learning-rate range helps in the
//! noiseless setting but can hurt when evaluation is noisy.

use crate::context::BenchmarkContext;
use crate::experiments::simulated_rs_trials;
use crate::noise::NoiseConfig;
use crate::pool::ConfigPool;
use crate::report::{ExperimentReport, SeriesGroup, SeriesPoint};
use crate::scale::ExperimentScale;
use crate::Result;
use feddata::Benchmark;
use feddp::PrivacyBudget;
use fedhpo::SearchSpace;
use fedmath::SeedStream;
use serde::{Deserialize, Serialize};

/// Fig. 13 for one benchmark: noiseless vs. noisy selection error as a
/// function of the (log-) width of the server-learning-rate search interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpaceAblation {
    /// Benchmark the ablation was run on.
    pub benchmark: String,
    /// Selection error under noiseless evaluation, one point per width.
    pub noiseless: Vec<SeriesPoint>,
    /// Selection error under noisy evaluation (single-client subsample,
    /// ε = 10), one point per width.
    pub noisy: Vec<SeriesPoint>,
}

impl SpaceAblation {
    /// Renders Fig. 13 for this benchmark.
    pub fn to_report(&self) -> ExperimentReport {
        let mut report = ExperimentReport::new(
            "fig13",
            format!(
                "Search-space size under noisy evaluation on {} (Fig. 13)",
                self.benchmark
            ),
        );
        report.push_group(SeriesGroup {
            name: format!("{} noiseless", self.benchmark),
            points: self.noiseless.clone(),
        });
        report.push_group(SeriesGroup {
            name: format!("{} noisy", self.benchmark),
            points: self.noisy.clone(),
        });
        report.push_note("x = log10(eta_max / eta_min) of the server learning-rate interval");
        report
    }
}

/// Runs Fig. 13: for each nested server-lr interval width `w ∈ {1, 2, 3, 4}`,
/// train a pool of configurations sampled from that space and compare RS
/// selection over the *whole* pool (the paper's `K = 128`) under noiseless
/// evaluation against selection under single-client, ε = 10 evaluation.
///
/// # Errors
///
/// Propagates training and evaluation failures.
pub fn run_space_ablation(
    benchmark: Benchmark,
    scale: &ExperimentScale,
    seed: u64,
) -> Result<SpaceAblation> {
    let mut seeds = SeedStream::new(fedmath::rng::derive_seed(seed, 12));
    let mut noiseless_points = Vec::new();
    let mut noisy_points = Vec::new();
    for width in 1u32..=4 {
        let space = SearchSpace::paper_nested_lr_space(width)?;
        let ctx = BenchmarkContext::new(benchmark, scale, seed)?.with_space(space);
        let pool = ConfigPool::train(&ctx, seeds.next_seed())?;
        let k = pool.len();

        // Noiseless evaluation over the whole pool always selects the best
        // configuration; sampling noise comes only from the pool itself.
        let noiseless_errors = simulated_rs_trials(
            &pool,
            &NoiseConfig::noiseless(),
            k,
            k,
            scale.bootstrap_trials,
            seeds.next_seed(),
        )?;
        noiseless_points.push(SeriesPoint::from_error_rates(
            width as f64,
            format!("width {width}"),
            &noiseless_errors,
        )?);

        // Noisy evaluation: a single validation client and ε = 10.
        let single_client = 1.0 / ctx.dataset().num_val_clients() as f64;
        let noise =
            NoiseConfig::subsampled(single_client).with_privacy(PrivacyBudget::Finite(10.0));
        let noisy_errors = simulated_rs_trials(
            &pool,
            &noise,
            k,
            k,
            scale.bootstrap_trials,
            seeds.next_seed(),
        )?;
        noisy_points.push(SeriesPoint::from_error_rates(
            width as f64,
            format!("width {width}"),
            &noisy_errors,
        )?);
    }
    Ok(SpaceAblation {
        benchmark: benchmark.name().to_string(),
        noiseless: noiseless_points,
        noisy: noisy_points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_ablation_smoke() {
        let scale = ExperimentScale::smoke();
        let ablation = run_space_ablation(Benchmark::Cifar10Like, &scale, 0).unwrap();
        assert_eq!(ablation.noiseless.len(), 4);
        assert_eq!(ablation.noisy.len(), 4);
        for (clean, noisy) in ablation.noiseless.iter().zip(ablation.noisy.iter()) {
            // Noisy selection can never beat noiseless selection in the median
            // (both select from the same pool; noiseless always picks the best).
            assert!(noisy.summary.median + 1e-9 >= clean.summary.median);
        }
        let report = ablation.to_report();
        assert!(report.to_table().contains("width 4"));
        assert!(report.to_table().contains("noisy"));
    }
}
