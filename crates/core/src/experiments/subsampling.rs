//! Fig. 3 (random search vs. evaluation-client subsampling) and
//! Fig. 5 (error vs. training budget at several subsampling rates).

use crate::context::BenchmarkContext;
use crate::engine::TrialRunner;
use crate::experiments::{
    simulated_rs_trajectories_with, simulated_rs_trials_with, subsample_rate_grid,
};
use crate::noise::NoiseConfig;
use crate::pool::ConfigPool;
use crate::report::{rate_label, ExperimentReport, SeriesGroup, SeriesPoint};
use crate::scale::ExperimentScale;
use crate::Result;
use feddata::Benchmark;
use fedmath::SeedStream;
use serde::{Deserialize, Serialize};

/// The result of the Fig. 3 sweep for one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubsamplingSweep {
    /// Benchmark the sweep was run on.
    pub benchmark: String,
    /// Points of the sweep: one per subsampling rate.
    pub points: Vec<SeriesPoint>,
    /// The "Best HPs" reference: the lowest full-validation error in the
    /// trained pool, in percent.
    pub best_hps_percent: f64,
}

/// Runs the Fig. 3 experiment for one benchmark: train a configuration pool,
/// then for each subsampling rate simulate `bootstrap_trials` RS runs of
/// `num_configs` configurations and record the full-validation error of the
/// selected configuration.
///
/// # Errors
///
/// Propagates pool-training and noisy-evaluation failures.
pub fn run_subsampling_sweep(
    benchmark: Benchmark,
    scale: &ExperimentScale,
    seed: u64,
) -> Result<SubsamplingSweep> {
    run_subsampling_sweep_with(&TrialRunner::from_env(), benchmark, scale, seed)
}

/// [`run_subsampling_sweep`] through an explicit [`TrialRunner`]; sequential
/// and parallel runners produce bit-identical sweeps.
///
/// # Errors
///
/// Propagates pool-training and noisy-evaluation failures.
pub fn run_subsampling_sweep_with(
    runner: &TrialRunner,
    benchmark: Benchmark,
    scale: &ExperimentScale,
    seed: u64,
) -> Result<SubsamplingSweep> {
    let ctx = BenchmarkContext::new(benchmark, scale, seed)?;
    let mut seeds = SeedStream::new(fedmath::rng::derive_seed(seed, 1));
    let pool = ConfigPool::train_with(&ctx, scale.pool_size, seeds.next_seed(), runner)?;
    subsampling_sweep_from_pool_with(runner, &ctx, &pool, scale, seeds.next_seed())
}

/// The Fig. 3 sweep given an already-trained pool (so several figures can
/// share one pool).
///
/// # Errors
///
/// Propagates noisy-evaluation failures.
pub fn subsampling_sweep_from_pool(
    ctx: &BenchmarkContext,
    pool: &ConfigPool,
    scale: &ExperimentScale,
    seed: u64,
) -> Result<SubsamplingSweep> {
    subsampling_sweep_from_pool_with(&TrialRunner::from_env(), ctx, pool, scale, seed)
}

/// [`subsampling_sweep_from_pool`] through an explicit [`TrialRunner`].
/// Each rate's bootstrap trials fan out through the runner, seeded by the
/// rate's position in the grid — so the sweep is a pure function of
/// `(pool, scale, seed)` under every execution policy.
///
/// # Errors
///
/// Propagates noisy-evaluation failures.
pub fn subsampling_sweep_from_pool_with(
    runner: &TrialRunner,
    ctx: &BenchmarkContext,
    pool: &ConfigPool,
    scale: &ExperimentScale,
    seed: u64,
) -> Result<SubsamplingSweep> {
    let population = ctx.dataset().num_val_clients();
    let rate_seeds = fedmath::SeedTree::new(seed);
    let mut points = Vec::new();
    for (rate_idx, rate) in subsample_rate_grid(population).into_iter().enumerate() {
        let noise = NoiseConfig::subsampled(rate);
        let errors = simulated_rs_trials_with(
            runner,
            pool,
            &noise,
            scale.num_configs,
            scale.num_configs,
            scale.bootstrap_trials,
            rate_seeds.child(rate_idx as u64).seed(),
        )?;
        points.push(SeriesPoint::from_error_rates(
            rate,
            rate_label(rate, population),
            &errors,
        )?);
    }
    Ok(SubsamplingSweep {
        benchmark: ctx.benchmark().name().to_string(),
        points,
        best_hps_percent: pool.best_full_error()? * 100.0,
    })
}

/// Renders Fig. 3 sweeps (one per benchmark) as a report.
pub fn subsampling_report(sweeps: &[SubsamplingSweep]) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig3",
        "Random search under evaluation-client subsampling (Fig. 3)",
    );
    for sweep in sweeps {
        report.push_group(SeriesGroup {
            name: sweep.benchmark.clone(),
            points: sweep.points.clone(),
        });
        report.push_note(format!(
            "{}: best HPs (full evaluation) = {:.2}%",
            sweep.benchmark, sweep.best_hps_percent
        ));
    }
    report
}

/// The result of the Fig. 5 experiment for one benchmark: one error-vs-budget
/// curve per subsampling rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetCurves {
    /// Benchmark the curves were computed on.
    pub benchmark: String,
    /// One curve per subsampling rate (the group name is the rate label).
    pub curves: Vec<SeriesGroup>,
}

/// Runs the Fig. 5 experiment: the online performance of RS (true error of
/// the incumbent) as its round budget is consumed, at a single-client rate,
/// an intermediate rate, and full evaluation.
///
/// # Errors
///
/// Propagates pool-training and noisy-evaluation failures.
pub fn run_budget_curves(
    benchmark: Benchmark,
    scale: &ExperimentScale,
    seed: u64,
) -> Result<BudgetCurves> {
    run_budget_curves_with(&TrialRunner::from_env(), benchmark, scale, seed)
}

/// [`run_budget_curves`] through an explicit [`TrialRunner`]; sequential and
/// parallel runners produce bit-identical curves.
///
/// # Errors
///
/// Propagates pool-training and noisy-evaluation failures.
pub fn run_budget_curves_with(
    runner: &TrialRunner,
    benchmark: Benchmark,
    scale: &ExperimentScale,
    seed: u64,
) -> Result<BudgetCurves> {
    let ctx = BenchmarkContext::new(benchmark, scale, seed)?;
    let mut seeds = SeedStream::new(fedmath::rng::derive_seed(seed, 2));
    let pool = ConfigPool::train_with(&ctx, scale.pool_size, seeds.next_seed(), runner)?;
    budget_curves_from_pool_with(runner, &ctx, &pool, scale, seeds.next_seed())
}

/// The Fig. 5 curves given an already-trained pool.
///
/// # Errors
///
/// Propagates noisy-evaluation failures.
pub fn budget_curves_from_pool(
    ctx: &BenchmarkContext,
    pool: &ConfigPool,
    scale: &ExperimentScale,
    seed: u64,
) -> Result<BudgetCurves> {
    budget_curves_from_pool_with(&TrialRunner::from_env(), ctx, pool, scale, seed)
}

/// [`budget_curves_from_pool`] through an explicit [`TrialRunner`]; the
/// bootstrap trajectories of each rate fan out through the runner.
///
/// # Errors
///
/// Propagates noisy-evaluation failures.
pub fn budget_curves_from_pool_with(
    runner: &TrialRunner,
    ctx: &BenchmarkContext,
    pool: &ConfigPool,
    scale: &ExperimentScale,
    seed: u64,
) -> Result<BudgetCurves> {
    let population = ctx.dataset().num_val_clients();
    // The paper plots a single client, a small percentage, and 100%.
    let single = 1.0 / population as f64;
    let small = (3.0 / population as f64).min(1.0);
    let rates = [single, small, 1.0];
    let rate_seeds = fedmath::SeedTree::new(seed);
    let mut curves = Vec::new();
    for (rate_idx, &rate) in rates.iter().enumerate() {
        let noise = NoiseConfig::subsampled(rate);
        // Collect incumbent trajectories over bootstrap trials.
        let trajectories = simulated_rs_trajectories_with(
            runner,
            pool,
            &noise,
            scale.num_configs,
            scale.num_configs,
            scale.bootstrap_trials,
            rate_seeds.child(rate_idx as u64).seed(),
        )?;
        let mut per_step: Vec<Vec<f64>> = vec![Vec::new(); scale.num_configs];
        for trajectory in trajectories {
            for (step, err) in trajectory.into_iter().enumerate() {
                per_step[step].push(err);
            }
        }
        let mut points = Vec::new();
        for (step, errors) in per_step.iter().enumerate() {
            let rounds = (step + 1) * scale.rounds_per_config;
            points.push(SeriesPoint::from_error_rates(
                rounds as f64,
                format!("{rounds} rounds"),
                errors,
            )?);
        }
        curves.push(SeriesGroup {
            name: rate_label(rate, population),
            points,
        });
    }
    Ok(BudgetCurves {
        benchmark: ctx.benchmark().name().to_string(),
        curves,
    })
}

/// Renders Fig. 5 curves as a report.
pub fn budget_report(all: &[BudgetCurves]) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig5",
        "RS performance vs. training budget under subsampling (Fig. 5)",
    );
    for curves in all {
        for curve in &curves.curves {
            report.push_group(SeriesGroup {
                name: format!("{} @ {}", curves.benchmark, curve.name),
                points: curve.points.clone(),
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsampling_sweep_shape_and_monotone_trend() {
        let scale = ExperimentScale::smoke();
        let sweep = run_subsampling_sweep(Benchmark::Cifar10Like, &scale, 0).unwrap();
        assert_eq!(sweep.benchmark, "cifar10-like");
        // One point per rate in the grid for a 10-client validation pool:
        // counts 1, 3, 9, 10.
        assert_eq!(sweep.points.len(), 4);
        // Full evaluation selects at least as good a configuration (in the
        // median) as single-client evaluation.
        let single = sweep.points.first().unwrap().summary.median;
        let full = sweep.points.last().unwrap().summary.median;
        assert!(
            full <= single + 1e-9,
            "full eval ({full}) should not be worse than 1 client ({single})"
        );
        // Best HPs is a lower bound on every median.
        for p in &sweep.points {
            assert!(p.summary.median + 1e-9 >= sweep.best_hps_percent);
        }
        let report = subsampling_report(&[sweep]);
        assert!(report.to_table().contains("fig3"));
    }

    #[test]
    fn budget_curves_shape() {
        let scale = ExperimentScale::smoke();
        let curves = run_budget_curves(Benchmark::FemnistLike, &scale, 1).unwrap();
        assert_eq!(curves.curves.len(), 3);
        for curve in &curves.curves {
            assert_eq!(curve.points.len(), scale.num_configs);
            // x is the cumulative number of rounds.
            assert!((curve.points[0].x - scale.rounds_per_config as f64).abs() < 1e-9);
            // Within a curve, the median incumbent error never increases with
            // budget in the noiseless (full evaluation) case.
        }
        let full_curve = curves.curves.last().unwrap();
        let medians: Vec<f64> = full_curve.points.iter().map(|p| p.summary.median).collect();
        assert!(medians.windows(2).all(|w| w[1] <= w[0] + 1e-9));
        let report = budget_report(&[curves]);
        assert!(report.to_table().contains("fig5"));
    }
}
