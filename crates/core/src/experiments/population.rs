//! Population-scale subsampling noise: the paper's §3.1 story — evaluating a
//! configuration on a cohort of `K` clients drawn from a population of `N`
//! is a *noisy* observation of its true score — reproduced where it actually
//! lives: `N` up to a million virtual clients, materialized lazily through
//! `fedpop`.
//!
//! For each population size the runner trains a small grid of
//! configurations with population-backed training (sample cohort ids →
//! materialize → train → drop), computes each configuration's **true** score
//! on a deterministic reference probe, and then measures two noise curves as
//! functions of the evaluation-cohort size `K`:
//!
//! - **evaluation-noise variance** — the variance of the noisy cohort score
//!   across repeats, averaged over configurations (Fig. 2's spread, at
//!   population scale);
//! - **Spearman rank correlation** between the noisy ranking of the
//!   configurations and their true ranking (how often subsampling noise
//!   reorders the leaderboard — the mechanism behind Fig. 3's selection
//!   regressions).
//!
//! Everything fans out through the [`TrialRunner`], so parallel and
//! sequential execution produce bit-identical curves (asserted in
//! `tests/determinism.rs`).

use crate::engine::TrialRunner;
use crate::report::{ExperimentReport, SeriesGroup, SeriesPoint};
use crate::{CoreError, Result};
use feddata::{Benchmark, ClientData};
use fedmodels::{AnyModel, Model, ModelSpec};
use fedpop::{
    train_on_population, CachedPopulation, ClientCache, CohortSampler, Population, PopulationSpec,
    SyntheticPopulation,
};
use fedsim::clock::VirtualClock;
use fedsim::hyperparams::FederatedHyperparams;
use fedsim::{FederatedTrainer, TrainerConfig, WeightingScheme};
use serde::{Deserialize, Serialize};

/// Scale knobs of the population-noise experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationExperimentScale {
    /// Population sizes `N` to sweep (the paper story uses 1e3/1e5/1e6).
    pub populations: Vec<u64>,
    /// Evaluation cohort sizes `K` (x-axis of both noise curves).
    pub cohort_sizes: Vec<usize>,
    /// Number of configurations to train and rank.
    pub num_configs: usize,
    /// Clients sampled per training round.
    pub train_cohort: usize,
    /// Training rounds per configuration.
    pub train_rounds: usize,
    /// Noisy evaluations per `(configuration, K)` cell.
    pub repeats: usize,
    /// Clients in the deterministic reference probe that defines the "true"
    /// score (capped at `N`).
    pub reference_probe: usize,
    /// Capacity of the client cache shared by a population's campaign.
    pub cache_capacity: usize,
}

impl PopulationExperimentScale {
    /// Tiny configuration for unit tests.
    pub fn smoke() -> Self {
        PopulationExperimentScale {
            populations: vec![1_000],
            cohort_sizes: vec![1, 8, 64],
            num_configs: 5,
            train_cohort: 8,
            train_rounds: 5,
            repeats: 10,
            reference_probe: 192,
            cache_capacity: 64,
        }
    }

    /// The reduced-scale smoke sweep used by CI: `N = 100 000`, three
    /// spread-out cohort sizes, enough repeats for stable monotone curves.
    pub fn ci_smoke() -> Self {
        PopulationExperimentScale {
            populations: vec![100_000],
            cohort_sizes: vec![2, 16, 128],
            num_configs: 6,
            train_cohort: 10,
            train_rounds: 8,
            repeats: 16,
            reference_probe: 512,
            cache_capacity: 256,
        }
    }

    /// The full paper-story sweep: `N ∈ {1e3, 1e5, 1e6}` with cohort sizes
    /// spanning one client to a thousand.
    pub fn paper_story() -> Self {
        PopulationExperimentScale {
            populations: vec![1_000, 100_000, 1_000_000],
            cohort_sizes: vec![1, 9, 81, 729],
            num_configs: 8,
            train_cohort: 10,
            train_rounds: 10,
            repeats: 24,
            reference_probe: 2_048,
            cache_capacity: 1_024,
        }
    }

    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for empty grids or zero counts.
    pub fn validate(&self) -> Result<()> {
        let ok = !self.populations.is_empty()
            && !self.populations.contains(&0)
            && !self.cohort_sizes.is_empty()
            && !self.cohort_sizes.contains(&0)
            && self.num_configs >= 2
            && self.train_cohort >= 1
            && self.train_rounds >= 1
            && self.repeats >= 2
            && self.reference_probe >= 1;
        if !ok {
            return Err(CoreError::InvalidConfig {
                message: format!("invalid population experiment scale: {self:?}"),
            });
        }
        Ok(())
    }
}

/// One `(N, K)` cell of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationNoisePoint {
    /// Population size the cohort was drawn from.
    pub population: u64,
    /// Evaluation cohort size.
    pub cohort_size: usize,
    /// Variance of the noisy cohort score across repeats, averaged over
    /// configurations.
    pub noise_variance: f64,
    /// Mean Spearman rank correlation between noisy and true configuration
    /// rankings, over the repeats where the correlation is defined (0 when
    /// every repeat was degenerate).
    pub spearman: f64,
    /// Per-repeat Spearman values (for spread reporting). Repeats whose
    /// noisy scores were all tied — possible at tiny cohorts, where the
    /// rank correlation is undefined — are excluded rather than coerced to
    /// a fabricated value; see [`degenerate_repeats`](Self::degenerate_repeats).
    pub spearman_per_repeat: Vec<f64>,
    /// Repeats excluded from the Spearman statistics because their noisy
    /// scores admitted no ranking (all configurations tied).
    pub degenerate_repeats: usize,
}

/// The noise curves of one population size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationSweep {
    /// Population size `N`.
    pub population: u64,
    /// True (reference-probe) error of every configuration, in config order.
    pub true_errors: Vec<f64>,
    /// One point per cohort size, in grid order.
    pub points: Vec<PopulationNoisePoint>,
    /// Client-cache hit rate over the population's whole campaign.
    pub cache_hit_rate: f64,
    /// Peak clients resident in the cache during the campaign.
    pub cache_peak_resident: usize,
    /// Total clients materialized (cache misses) during the campaign.
    pub clients_materialized: u64,
}

/// The full population-noise experiment result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationNoiseResult {
    /// Benchmark family the populations were synthesized from.
    pub benchmark: String,
    /// One sweep per population size, in grid order.
    pub sweeps: Vec<PopulationSweep>,
}

impl PopulationNoiseResult {
    /// `true` iff, within every population sweep, the noise variance is
    /// non-increasing and the rank correlation non-decreasing in the cohort
    /// size, with strict improvement from the smallest to the largest
    /// cohort. `tolerance` absorbs float noise in the comparisons.
    pub fn is_monotone(&self, tolerance: f64) -> bool {
        self.sweeps.iter().all(|sweep| {
            let ok_steps = sweep.points.windows(2).all(|w| {
                w[1].noise_variance <= w[0].noise_variance + tolerance
                    && w[1].spearman >= w[0].spearman - tolerance
            });
            let (Some(first), Some(last)) = (sweep.points.first(), sweep.points.last()) else {
                return false;
            };
            ok_steps
                && last.noise_variance < first.noise_variance + tolerance
                && last.spearman > first.spearman - tolerance
        })
    }

    /// Renders the sweep as a report: one Spearman curve and one
    /// noise-standard-deviation curve per population size.
    pub fn to_report(&self) -> ExperimentReport {
        let mut report = ExperimentReport::new(
            "population",
            "Subsampling noise vs cohort size at population scale",
        );
        for sweep in &self.sweeps {
            report.push_group(SeriesGroup {
                name: format!("N={} spearman", sweep.population),
                points: sweep
                    .points
                    .iter()
                    .filter_map(|p| {
                        SeriesPoint::from_error_rates(
                            p.cohort_size as f64,
                            format!("K={}", p.cohort_size),
                            &p.spearman_per_repeat,
                        )
                        .ok()
                    })
                    .collect(),
            });
            report.push_note(format!(
                "N={}: true errors span [{:.4}, {:.4}], cache hit rate {:.1}%, {} clients materialized (peak resident {})",
                sweep.population,
                sweep
                    .true_errors
                    .iter()
                    .fold(f64::INFINITY, |a, &b| a.min(b)),
                sweep
                    .true_errors
                    .iter()
                    .fold(f64::NEG_INFINITY, |a, &b| a.max(b)),
                sweep.cache_hit_rate * 100.0,
                sweep.clients_materialized,
                sweep.cache_peak_resident,
            ));
            for p in &sweep.points {
                let degenerate = if p.degenerate_repeats > 0 {
                    format!(" ({} degenerate repeats excluded)", p.degenerate_repeats)
                } else {
                    String::new()
                };
                report.push_note(format!(
                    "N={} K={}: noise variance {:.3e}, spearman {:.3}{degenerate}",
                    p.population, p.cohort_size, p.noise_variance, p.spearman
                ));
            }
        }
        report
    }
}

/// The configuration grid: `num_configs` FedAdam settings spaced so that
/// neighbouring configurations are close enough in quality for small-cohort
/// noise to scramble their ranking (the regime the paper studies). Shared
/// with `examples/population_scale.rs` so the example and the experiment
/// rank the same grid.
pub fn config_grid(num_configs: usize) -> Vec<FederatedHyperparams> {
    (0..num_configs)
        .map(|i| {
            let t = i as f64 / (num_configs.max(2) - 1) as f64;
            let mut hp = FederatedHyperparams::default();
            // Client LR log-spaced over [0.01, 1.0]: quality degrades
            // smoothly from the middle outward.
            hp.client.learning_rate = 0.01 * 100f64.powf(t);
            hp.server.learning_rate = 0.03 + 0.04 * t;
            hp
        })
        .collect()
}

/// Example-weighted error of `model` over an already-materialized cohort,
/// folded in cohort order (the same float-op sequence under every execution
/// policy).
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] if the cohort has no examples, and
/// propagates model-evaluation failures.
/// The cohort streams through one client at a time (materialize → score →
/// drop), so the caller never needs to hold more than a single client
/// resident — the property the population memory bound rests on.
pub fn cohort_error<C: std::borrow::Borrow<ClientData>>(
    model: &AnyModel,
    cohort: impl IntoIterator<Item = Result<C>>,
) -> Result<f64> {
    let weighting = WeightingScheme::ByExamples;
    let mut num = 0.0;
    let mut den = 0.0;
    for client in cohort {
        let client = client?;
        let client = client.borrow();
        if client.is_empty() {
            continue;
        }
        let metrics = model.evaluate(client.examples())?;
        let weight = weighting.weight(metrics.num_examples);
        num += metrics.error_rate * weight;
        den += weight;
    }
    if den <= 0.0 {
        return Err(CoreError::InvalidConfig {
            message: "evaluation cohort had no examples".into(),
        });
    }
    Ok(num / den)
}

/// Deterministic reference-probe ids: an even stride across the population.
pub fn reference_ids(population: u64, probe: usize) -> Vec<u64> {
    fedpop::summary::stride_probe_ids(population, probe)
}

/// Runs the experiment under the `FEDTUNE_THREADS`-overridable default
/// runner.
///
/// # Errors
///
/// Propagates training and evaluation failures.
pub fn run_population_noise(
    benchmark: Benchmark,
    scale: &PopulationExperimentScale,
    seed: u64,
) -> Result<PopulationNoiseResult> {
    run_population_noise_with(&TrialRunner::from_env(), benchmark, scale, seed)
}

/// [`run_population_noise`] through an explicit [`TrialRunner`]; sequential
/// and parallel runners produce bit-identical results — the cache in front
/// of each population only changes how often shards are regenerated, never
/// their bits.
///
/// # Errors
///
/// Propagates training and evaluation failures.
pub fn run_population_noise_with(
    runner: &TrialRunner,
    benchmark: Benchmark,
    scale: &PopulationExperimentScale,
    seed: u64,
) -> Result<PopulationNoiseResult> {
    scale.validate()?;
    let grid = config_grid(scale.num_configs);
    let mut sweeps = Vec::with_capacity(scale.populations.len());
    for (p_idx, &population_size) in scale.populations.iter().enumerate() {
        let spec = PopulationSpec::benchmark(benchmark, population_size);
        let model_spec = ModelSpec::for_task(spec.task_kind());
        let population =
            SyntheticPopulation::new(spec, fedmath::rng::derive_seed(seed, p_idx as u64))?;
        let cache = ClientCache::new(scale.cache_capacity);
        let source = CachedPopulation::new(&population, &cache);
        let sweep_seeds = fedmath::SeedTree::new(seed).derive(&[1, p_idx as u64]);

        // 1. Train the configuration grid against the population: cohort ids
        //    are sampled per round, materialized, trained, and dropped.
        let models: Vec<AnyModel> =
            runner.run_trials(sweep_seeds.child(0).seed(), grid.len(), |trial| {
                let config = TrainerConfig {
                    clients_per_round: scale.train_cohort,
                    hyperparams: grid[trial.index()],
                    weighting: WeightingScheme::ByExamples,
                    execution: fedsim::ExecutionPolicy::Sequential,
                };
                let mut run = FederatedTrainer::new(config)?.start_with_dims(
                    population.input_dim(),
                    population.num_classes(),
                    model_spec,
                    trial.seed(0),
                )?;
                let mut clock = VirtualClock::new();
                train_on_population(
                    &mut run,
                    &source,
                    CohortSampler::Uniform,
                    scale.train_cohort,
                    scale.train_rounds,
                    60.0,
                    &mut clock,
                )?;
                Ok(run.into_model())
            })?;

        // 2. True scores on the deterministic reference probe, streamed one
        //    client at a time (materialize → score all configs → drop).
        let ref_ids = reference_ids(population_size, scale.reference_probe);
        let per_client: Vec<Vec<(f64, f64)>> =
            runner.run_trials(sweep_seeds.child(1).seed(), ref_ids.len(), |trial| {
                let client = population.materialize(ref_ids[trial.index()])?;
                models
                    .iter()
                    .map(|model| {
                        let metrics = model.evaluate(client.examples())?;
                        let weight = WeightingScheme::ByExamples.weight(metrics.num_examples);
                        Ok((metrics.error_rate * weight, weight))
                    })
                    .collect()
            })?;
        let mut true_errors = vec![0.0f64; grid.len()];
        for (config_idx, error) in true_errors.iter_mut().enumerate() {
            let (num, den) = per_client.iter().fold((0.0, 0.0), |(n, d), client_row| {
                (n + client_row[config_idx].0, d + client_row[config_idx].1)
            });
            *error = num / den;
        }

        // 3. The noise sweep: every (K, repeat, config) cell draws its own
        //    evaluation cohort — the independent-subsample regime of the
        //    paper's random-search analysis.
        let mut points = Vec::with_capacity(scale.cohort_sizes.len());
        for (k_idx, &cohort_size) in scale.cohort_sizes.iter().enumerate() {
            let cells = scale.repeats * grid.len();
            let scores: Vec<f64> = runner.run_trials(
                sweep_seeds.derive(&[2, k_idx as u64]).seed(),
                cells,
                |trial| {
                    let config_idx = trial.index() % grid.len();
                    let mut rng = trial.rng(0);
                    let cohort =
                        CohortSampler::Uniform.sample(&population, &mut rng, cohort_size, 0.0)?;
                    // Stream the cohort: each concurrent cell holds at most
                    // one client resident beyond the shared cache.
                    cohort_error(
                        &models[config_idx],
                        cohort.iter().map(|&id| {
                            fedsim::training::CohortSource::materialize(&source, id)
                                .map_err(CoreError::from)
                        }),
                    )
                },
            )?;
            // scores are laid out repeat-major: cell = repeat * configs + config.
            let score_at = |rep: usize, config: usize| scores[rep * grid.len() + config];
            let mut per_config_variance = Vec::with_capacity(grid.len());
            for config_idx in 0..grid.len() {
                let series: Vec<f64> = (0..scale.repeats)
                    .map(|rep| score_at(rep, config_idx))
                    .collect();
                per_config_variance.push(fedmath::stats::variance(&series));
            }
            // A repeat where every config drew an identical score (possible
            // at tiny cohorts) has no defined rank correlation; exclude it
            // instead of fabricating a 0, which would deflate the small-K
            // end of the curve.
            let spearman_per_repeat: Vec<f64> = (0..scale.repeats)
                .filter_map(|rep| {
                    let noisy: Vec<f64> = (0..grid.len()).map(|c| score_at(rep, c)).collect();
                    fedmath::stats::spearman_correlation(&noisy, &true_errors).ok()
                })
                .collect();
            let degenerate_repeats = scale.repeats - spearman_per_repeat.len();
            points.push(PopulationNoisePoint {
                population: population_size,
                cohort_size,
                noise_variance: fedmath::stats::mean(&per_config_variance),
                spearman: fedmath::stats::mean(&spearman_per_repeat),
                spearman_per_repeat,
                degenerate_repeats,
            });
        }

        let stats = cache.stats();
        sweeps.push(PopulationSweep {
            population: population_size,
            true_errors,
            points,
            cache_hit_rate: stats.hit_rate(),
            cache_peak_resident: stats.peak_resident,
            clients_materialized: stats.misses,
        });
    }
    Ok(PopulationNoiseResult {
        benchmark: benchmark.name().to_string(),
        sweeps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_validation() {
        assert!(PopulationExperimentScale::smoke().validate().is_ok());
        assert!(PopulationExperimentScale::ci_smoke().validate().is_ok());
        assert!(PopulationExperimentScale::paper_story().validate().is_ok());
        let mut bad = PopulationExperimentScale::smoke();
        bad.populations.clear();
        assert!(bad.validate().is_err());
        let mut bad = PopulationExperimentScale::smoke();
        bad.cohort_sizes = vec![0];
        assert!(bad.validate().is_err());
        let mut bad = PopulationExperimentScale::smoke();
        bad.num_configs = 1;
        assert!(bad.validate().is_err());
        let mut bad = PopulationExperimentScale::smoke();
        bad.repeats = 1;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn config_grid_spans_distinct_learning_rates() {
        let grid = config_grid(5);
        assert_eq!(grid.len(), 5);
        assert!(grid[0].client.learning_rate < grid[4].client.learning_rate);
        for hp in &grid {
            assert!(hp.validate().is_ok());
        }
    }

    #[test]
    fn reference_ids_are_strided_and_capped() {
        let ids = reference_ids(1_000_000, 4);
        assert_eq!(ids, vec![0, 250_000, 500_000, 750_000]);
        let ids = reference_ids(3, 10);
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn smoke_sweep_shows_the_noise_story() {
        let scale = PopulationExperimentScale::smoke();
        let result = run_population_noise(Benchmark::Cifar10Like, &scale, 0).unwrap();
        assert_eq!(result.benchmark, "cifar10-like");
        assert_eq!(result.sweeps.len(), 1);
        let sweep = &result.sweeps[0];
        assert_eq!(sweep.population, 1_000);
        assert_eq!(sweep.true_errors.len(), scale.num_configs);
        assert!(sweep.true_errors.iter().all(|e| (0.0..=1.0).contains(e)));
        assert_eq!(sweep.points.len(), scale.cohort_sizes.len());
        // The headline: more evaluation clients, less noise, better ranks.
        assert!(
            result.is_monotone(1e-9),
            "noise curves not monotone: {:#?}",
            sweep.points
        );
        let first = sweep.points.first().unwrap();
        let last = sweep.points.last().unwrap();
        assert!(last.noise_variance < first.noise_variance);
        assert!(last.spearman > first.spearman);
        assert!(last.spearman > 0.5, "full-ish cohorts should rank well");
        // Repeated cohort sampling over a small population hits the cache.
        assert!(sweep.cache_hit_rate > 0.0);
        assert!(sweep.cache_peak_resident <= scale.cache_capacity);
        let report = result.to_report();
        let table = report.to_table();
        assert!(table.contains("population"));
        assert!(table.contains("spearman"));
    }
}
