//! The **straggler scenario**: synchronous SHA vs asynchronous ASHA under
//! heavy-tailed client runtimes.
//!
//! The paper's systems-heterogeneity story (§3.2) is about *bias* — slow
//! clients drop out of evaluation. This scenario models the other half of
//! systems noise: slow clients make *training rounds* slow, and a
//! rung-synchronous ladder stalls every worker at the barrier until the
//! slowest trial of the rung finishes. The event-driven executor
//! ([`run_event_driven`]) makes that cost measurable in simulated wall-clock
//! and lets asynchronous ASHA demonstrate its point: promote on completion,
//! keep every worker busy, and reach a given accuracy sooner.
//!
//! Both ladders are identical ([`TuningMethod::Asha`] vs
//! [`TuningMethod::AsyncAsha`]); only the driver/scheduler handshake differs,
//! so any throughput gap is attributable to the barrier.

use crate::context::BenchmarkContext;
use crate::engine::TrialRunner;
use crate::experiments::methods::TuningMethod;
use crate::noise::NoiseConfig;
use crate::objective::{
    selected_true_error_within_sim, BatchFederatedObjective, ObjectiveLogEntry,
};
use crate::report::{ExperimentReport, SeriesGroup, SeriesPoint};
use crate::scale::ExperimentScale;
use crate::scheduler::{run_event_driven, VirtualExecution};
use crate::Result;
use feddata::Benchmark;
use fedsim::clock::{ClientRuntimeModel, CostModel};
use serde::{Deserialize, Serialize};

/// The heavy-tailed client-runtime model the scenario runs under: a
/// population ten times the per-round cohort with Pareto `α = 1.1` speeds,
/// so a few clients are dramatic stragglers. Shared by every method in one
/// comparison (same `seed` ⇒ same clients), which is what makes the sync vs
/// async gap attributable to the rung barrier alone.
pub fn straggler_cost_model(scale: &ExperimentScale, seed: u64) -> CostModel {
    CostModel::HeterogeneousClients(ClientRuntimeModel::heavy_tailed(
        scale.clients_per_round * 10,
        scale.clients_per_round,
        fedmath::rng::derive_seed(seed, 11),
    ))
}

/// One event-driven campaign of the straggler comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StragglerRun {
    /// Method name (`"ASHA"` or `"ASHA-ASYNC"`).
    pub method: String,
    /// Virtual workers of the simulated tuning service.
    pub workers: usize,
    /// The objective log in evaluation order, entries stamped with their
    /// simulated completion times.
    pub log: Vec<ObjectiveLogEntry>,
    /// Simulated wall-clock the campaign took.
    pub sim_elapsed: f64,
    /// Evaluations performed.
    pub evaluations: usize,
    /// Whether the schedule ran to completion.
    pub finished: bool,
    /// The virtual-time execution timeline (one span per dispatched
    /// evaluation, in dispatch order) — exportable as a Chrome trace via
    /// [`fedtrace::virtual_timeline_json`].
    pub timeline: Vec<fedtrace::TrialSpan>,
}

impl StragglerRun {
    /// Simulated throughput: evaluations per simulated hour.
    pub fn trials_per_sim_hour(&self) -> f64 {
        if self.sim_elapsed > 0.0 {
            self.evaluations as f64 / (self.sim_elapsed / 3600.0)
        } else {
            0.0
        }
    }

    /// The selected configuration's true error given everything that had
    /// completed within `sim_budget` virtual seconds; see
    /// [`selected_true_error_within_sim`].
    pub fn selected_true_error_within_sim(&self, sim_budget: f64) -> Option<f64> {
        selected_true_error_within_sim(&self.log, sim_budget)
    }
}

/// The full straggler comparison: sync SHA vs async ASHA across a grid of
/// virtual worker counts on one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StragglerComparison {
    /// Benchmark the comparison ran on.
    pub benchmark: String,
    /// All runs (method × worker count).
    pub runs: Vec<StragglerRun>,
    /// The simulated-seconds grid time-to-accuracy curves are drawn over.
    pub time_grid: Vec<f64>,
}

impl StragglerComparison {
    /// Time-to-accuracy curves: per (method, workers) series of the selected
    /// configuration's true error over simulated wall-clock. Grid points
    /// before a run's first completion are skipped.
    ///
    /// # Errors
    ///
    /// Propagates summary failures.
    pub fn time_to_accuracy_curves(&self) -> Result<Vec<SeriesGroup>> {
        let mut groups = Vec::new();
        for run in &self.runs {
            let mut points = Vec::new();
            for &t in &self.time_grid {
                let Some(error) = run.selected_true_error_within_sim(t) else {
                    continue;
                };
                points.push(SeriesPoint::from_error_rates(
                    t,
                    format!("{t:.0}s"),
                    &[error],
                )?);
            }
            groups.push(SeriesGroup {
                name: format!("{} ({} workers)", run.method, run.workers),
                points,
            });
        }
        Ok(groups)
    }

    /// Renders the scenario report: time-to-accuracy curves plus a
    /// throughput note per run.
    ///
    /// # Errors
    ///
    /// Propagates summary failures.
    pub fn to_report(&self) -> Result<ExperimentReport> {
        let mut report = ExperimentReport::new(
            "stragglers",
            format!(
                "Sync SHA vs async ASHA under heavy-tailed client runtimes on {}",
                self.benchmark
            ),
        );
        for group in self.time_to_accuracy_curves()? {
            report.push_group(group);
        }
        for run in &self.runs {
            report.push_note(format!(
                "{} @ {} workers: {} evaluations in {:.1} sim-s ({:.0} trials/sim-h)",
                run.method,
                run.workers,
                run.evaluations,
                run.sim_elapsed,
                run.trials_per_sim_hour()
            ));
        }
        Ok(report)
    }
}

/// Runs the straggler scenario on one benchmark: the sync and async variants
/// of the same ASHA ladder, each at every worker count in `workers_grid`,
/// under the shared heavy-tailed [`straggler_cost_model`] and the paper's
/// noisy evaluation. Campaign seeds are positional in the (method, workers)
/// grid, and `batch_policy` only governs how the real compute fans out —
/// the comparison (including every virtual timeline) is bit-identical under
/// any policy and thread count.
///
/// # Errors
///
/// Propagates training and evaluation failures.
pub fn run_straggler_comparison(
    batch_policy: crate::ExecutionPolicy,
    benchmark: Benchmark,
    scale: &ExperimentScale,
    workers_grid: &[usize],
    seed: u64,
) -> Result<StragglerComparison> {
    let ctx = BenchmarkContext::new(benchmark, scale, seed)?;
    let cost = straggler_cost_model(scale, seed);
    let methods = [TuningMethod::Asha, TuningMethod::AsyncAsha];
    let units: Vec<(TuningMethod, usize)> = methods
        .iter()
        .flat_map(|&method| workers_grid.iter().map(move |&workers| (method, workers)))
        .collect();
    let root = fedmath::rng::derive_seed(seed, 9);
    // Campaigns run one after another (the parallelism lives inside each
    // batch), with engine-style positional unit seeds.
    let runs = TrialRunner::sequential().run_trials(root, units.len(), |unit| {
        let (method, workers) = units[unit.index()];
        let mut scheduler = method.scheduler(scale)?;
        let planned = method.planned_evaluations(scale);
        let mut objective =
            BatchFederatedObjective::new(&ctx, NoiseConfig::paper_noisy(), planned, unit.seed(0))?
                .with_batch_runner(TrialRunner::new(batch_policy));
        let mut rng = unit.rng(1);
        let sim = VirtualExecution::new(workers, cost);
        let event = run_event_driven(
            scheduler.as_mut(),
            ctx.space(),
            &mut objective,
            &mut rng,
            &sim,
        )?;
        Ok(StragglerRun {
            method: method.name().to_string(),
            workers,
            log: objective.into_log(),
            sim_elapsed: event.sim_elapsed,
            evaluations: event.outcome.num_evaluations(),
            finished: event.finished,
            timeline: event.timeline,
        })
    })?;
    let horizon = runs.iter().map(|r| r.sim_elapsed).fold(0.0, f64::max);
    let grid_steps = 8usize;
    let time_grid: Vec<f64> = (1..=grid_steps)
        .map(|i| i as f64 * horizon / grid_steps as f64)
        .collect();
    Ok(StragglerComparison {
        benchmark: benchmark.name().to_string(),
        runs,
        time_grid,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straggler_comparison_smoke_run() {
        let scale = ExperimentScale::smoke();
        let comparison = run_straggler_comparison(
            crate::ExecutionPolicy::parallel(),
            Benchmark::Cifar10Like,
            &scale,
            &[2, 8],
            0,
        )
        .unwrap();
        assert_eq!(comparison.benchmark, "cifar10-like");
        // 2 methods × 2 worker counts.
        assert_eq!(comparison.runs.len(), 4);
        assert_eq!(comparison.time_grid.len(), 8);
        for run in &comparison.runs {
            assert!(run.finished, "{} @ {}", run.method, run.workers);
            assert!(run.evaluations > 0);
            assert!(run.sim_elapsed > 0.0);
            assert!(run.trials_per_sim_hour() > 0.0);
            assert_eq!(run.log.len(), run.evaluations);
            // The log carries a real virtual timeline.
            assert!(run.log.iter().all(|e| e.sim_time > 0.0));
            assert!(run
                .selected_true_error_within_sim(run.sim_elapsed)
                .is_some_and(|e| (0.0..=1.5).contains(&e)));
        }
        // Async ASHA never has lower simulated throughput than sync SHA on
        // the same virtual hardware — the headline of the scenario.
        for &workers in &[2usize, 8] {
            let throughput = |name: &str| {
                comparison
                    .runs
                    .iter()
                    .find(|r| r.method == name && r.workers == workers)
                    .map(StragglerRun::trials_per_sim_hour)
                    .unwrap()
            };
            assert!(
                throughput("ASHA-ASYNC") >= throughput("ASHA"),
                "{workers} workers: async {} < sync {}",
                throughput("ASHA-ASYNC"),
                throughput("ASHA")
            );
        }
        let curves = comparison.time_to_accuracy_curves().unwrap();
        assert_eq!(curves.len(), 4);
        let table = comparison.to_report().unwrap().to_table();
        assert!(table.contains("ASHA-ASYNC (8 workers)"), "{table}");
        assert!(table.contains("trials/sim-h"), "{table}");
    }

    #[test]
    fn cost_model_is_shared_and_heavy_tailed() {
        let scale = ExperimentScale::smoke();
        let a = straggler_cost_model(&scale, 3);
        let b = straggler_cost_model(&scale, 3);
        assert_eq!(a, b);
        assert_ne!(a, straggler_cost_model(&scale, 4));
        assert!(a.validate().is_ok());
        let CostModel::HeterogeneousClients(model) = a else {
            panic!("straggler scenario must model client heterogeneity");
        };
        assert_eq!(model.clients_per_round, scale.clients_per_round);
        assert!(model.num_clients > scale.clients_per_round);
        assert!(model.tail_alpha < 2.0, "the tail must be heavy");
    }
}
