//! Fig. 10/14 (HP transfer between dataset pairs), Fig. 11 (one-shot proxy
//! RS matrix), and Fig. 12 (proxy tuning vs. noisy evaluation over budget).

use crate::context::BenchmarkContext;
use crate::experiments::simulated_rs_trajectory;
use crate::noise::NoiseConfig;
use crate::pool::ConfigPool;
use crate::report::{ExperimentReport, SeriesGroup, SeriesPoint};
use crate::scale::ExperimentScale;
use crate::Result;
use feddata::Benchmark;
use feddp::PrivacyBudget;
use fedmath::stats::QuartileSummary;
use fedmath::SeedStream;
use fedproxy::{transfer_analysis, OneShotProxy, TransferAnalysis};
use serde::{Deserialize, Serialize};

/// The dataset pairs of Fig. 10 (same task family) and Fig. 14 (cross
/// family), in the paper's order.
pub const TRANSFER_PAIRS: [(Benchmark, Benchmark); 4] = [
    (Benchmark::Cifar10Like, Benchmark::FemnistLike),
    (Benchmark::StackOverflowLike, Benchmark::RedditLike),
    (Benchmark::Cifar10Like, Benchmark::RedditLike),
    (Benchmark::FemnistLike, Benchmark::StackOverflowLike),
];

/// Runs the HP-transfer analysis of Fig. 10/14: the same configurations are
/// trained and evaluated independently on both datasets of every pair.
///
/// The number of configurations per pair follows `scale.num_configs` (the
/// paper uses 128; use [`ExperimentScale::paper`] to match).
///
/// # Errors
///
/// Propagates training failures.
pub fn run_transfer_pairs(scale: &ExperimentScale, seed: u64) -> Result<Vec<TransferAnalysis>> {
    let mut seeds = SeedStream::new(fedmath::rng::derive_seed(seed, 9));
    let mut analyses = Vec::new();
    for &(a, b) in &TRANSFER_PAIRS {
        let ctx_a = BenchmarkContext::new(a, scale, seed)?;
        let ctx_b = BenchmarkContext::new(b, scale, seed)?;
        let mut sample_rng = seeds.next_rng();
        let configs = ctx_a
            .space()
            .sample_many(scale.num_configs, &mut sample_rng)?;
        let analysis = transfer_analysis(
            ctx_a.dataset(),
            &ctx_a.config_runner(),
            ctx_b.dataset(),
            &ctx_b.config_runner(),
            &configs,
            seeds.next_seed(),
        )?;
        analyses.push(analysis);
    }
    Ok(analyses)
}

/// Renders the transfer scatters as a report (one row per configuration, plus
/// correlation notes).
pub fn transfer_report(analyses: &[TransferAnalysis]) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig10",
        "Hyperparameter transfer between dataset pairs (Fig. 10 and Fig. 14)",
    );
    for analysis in analyses {
        let points = analysis
            .points
            .iter()
            .map(|p| SeriesPoint {
                x: p.error_a * 100.0,
                x_label: format!("{:.1}% on {}", p.error_a * 100.0, analysis.dataset_a),
                summary: QuartileSummary {
                    lower: p.error_b * 100.0,
                    median: p.error_b * 100.0,
                    upper: p.error_b * 100.0,
                    count: 1,
                },
            })
            .collect();
        report.push_group(SeriesGroup {
            name: format!("{} vs {}", analysis.dataset_a, analysis.dataset_b),
            points,
        });
        report.push_note(format!(
            "{} vs {}: pearson = {:?}, spearman = {:?}",
            analysis.dataset_a, analysis.dataset_b, analysis.pearson, analysis.spearman
        ));
    }
    report
}

/// One cell of the Fig. 11 matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProxyMatrixCell {
    /// Proxy dataset used for the search.
    pub proxy: String,
    /// Client dataset the selected configuration was deployed on.
    pub client: String,
    /// Full-validation error on the client dataset, in percent.
    pub client_error_percent: f64,
    /// Full-validation error on the proxy dataset, in percent.
    pub proxy_error_percent: f64,
}

/// The Fig. 11 matrix: one-shot proxy RS for every (proxy, client) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProxyMatrix {
    /// All cells, grouped by client dataset then proxy dataset.
    pub cells: Vec<ProxyMatrixCell>,
}

impl ProxyMatrix {
    /// The best proxy for a given client dataset (lowest client error).
    pub fn best_proxy_for(&self, client: &str) -> Option<&ProxyMatrixCell> {
        self.cells
            .iter()
            .filter(|c| c.client == client)
            .min_by(|a, b| {
                a.client_error_percent
                    .partial_cmp(&b.client_error_percent)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// Renders the matrix as a report (one series per client dataset, one
    /// point per proxy).
    pub fn to_report(&self) -> ExperimentReport {
        let mut report =
            ExperimentReport::new("fig11", "One-shot proxy RS across dataset pairs (Fig. 11)");
        let clients: Vec<String> = {
            let mut seen = Vec::new();
            for c in &self.cells {
                if !seen.contains(&c.client) {
                    seen.push(c.client.clone());
                }
            }
            seen
        };
        for client in clients {
            let points = self
                .cells
                .iter()
                .filter(|c| c.client == client)
                .enumerate()
                .map(|(i, c)| SeriesPoint {
                    x: i as f64,
                    x_label: format!("proxy={}", c.proxy),
                    summary: QuartileSummary {
                        lower: c.client_error_percent,
                        median: c.client_error_percent,
                        upper: c.client_error_percent,
                        count: 1,
                    },
                })
                .collect();
            report.push_group(SeriesGroup {
                name: format!("client={client}"),
                points,
            });
        }
        report
    }
}

/// Runs the Fig. 11 experiment: for every (proxy, client) pair of the four
/// benchmarks, run one-shot proxy RS (`K` configurations searched on the
/// proxy, a single configuration deployed on the client).
///
/// # Errors
///
/// Propagates training failures.
pub fn run_proxy_matrix(scale: &ExperimentScale, seed: u64) -> Result<ProxyMatrix> {
    let mut seeds = SeedStream::new(fedmath::rng::derive_seed(seed, 10));
    let contexts: Vec<BenchmarkContext> = Benchmark::ALL
        .iter()
        .map(|&b| BenchmarkContext::new(b, scale, seed))
        .collect::<Result<_>>()?;
    let pipeline = OneShotProxy::new(scale.num_configs);
    let mut cells = Vec::new();
    for client_ctx in &contexts {
        for proxy_ctx in &contexts {
            let outcome = pipeline.run(
                proxy_ctx.dataset(),
                &proxy_ctx.config_runner(),
                client_ctx.dataset(),
                &client_ctx.config_runner(),
                seeds.next_seed(),
            )?;
            cells.push(ProxyMatrixCell {
                proxy: proxy_ctx.benchmark().name().to_string(),
                client: client_ctx.benchmark().name().to_string(),
                client_error_percent: outcome.client_error * 100.0,
                proxy_error_percent: outcome.proxy_error * 100.0,
            });
        }
    }
    Ok(ProxyMatrix { cells })
}

/// Fig. 12 for one client benchmark: noisy-RS budget curves at several
/// privacy levels, plus the (budget-independent) one-shot proxy baselines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProxyVsNoisy {
    /// The client benchmark.
    pub benchmark: String,
    /// One curve per privacy budget (`eps=1`, `eps=10`, `eps=inf`), each at a
    /// 1% client subsample.
    pub noisy_curves: Vec<SeriesGroup>,
    /// One horizontal reference per proxy dataset: the client error of the
    /// configuration chosen by one-shot proxy RS, in percent.
    pub proxy_references: Vec<(String, f64)>,
}

impl ProxyVsNoisy {
    /// Renders Fig. 12 for this benchmark.
    pub fn to_report(&self) -> ExperimentReport {
        let mut report = ExperimentReport::new(
            "fig12",
            format!(
                "Noisy-evaluation RS vs. one-shot proxy tuning on {} (Fig. 12)",
                self.benchmark
            ),
        );
        for curve in &self.noisy_curves {
            report.push_group(curve.clone());
        }
        for (proxy, error) in &self.proxy_references {
            report.push_note(format!(
                "proxy {proxy}: {error:.2}% client error (budget-independent)"
            ));
        }
        report
    }
}

/// Runs Fig. 12 for one client benchmark. The noisy curves reuse a trained
/// configuration pool (RS trajectories under 1% subsampling and the given ε);
/// the proxy references run one-shot proxy RS from each of the other three
/// benchmarks (and the benchmark itself, matching the paper's inclusion of
/// the "perfect" proxy).
///
/// # Errors
///
/// Propagates training and evaluation failures.
pub fn run_proxy_vs_noisy(
    benchmark: Benchmark,
    scale: &ExperimentScale,
    seed: u64,
) -> Result<ProxyVsNoisy> {
    let ctx = BenchmarkContext::new(benchmark, scale, seed)?;
    let mut seeds = SeedStream::new(fedmath::rng::derive_seed(seed, 11));
    let pool = ConfigPool::train(&ctx, seeds.next_seed())?;

    // Noisy RS curves at 1% subsample for eps in {1, 10, inf}.
    let subsample = 0.01f64.max(1.0 / ctx.dataset().num_val_clients() as f64);
    let budgets: [(&str, PrivacyBudget); 3] = [
        ("eps=1", PrivacyBudget::Finite(1.0)),
        ("eps=10", PrivacyBudget::Finite(10.0)),
        ("eps=inf", PrivacyBudget::Infinite),
    ];
    let mut noisy_curves = Vec::new();
    for (label, privacy) in budgets {
        let noise = NoiseConfig::subsampled(subsample).with_privacy(privacy);
        let mut per_step: Vec<Vec<f64>> = vec![Vec::new(); scale.num_configs];
        for _ in 0..scale.bootstrap_trials {
            let mut rng = seeds.next_rng();
            let trajectory = simulated_rs_trajectory(
                &pool,
                &noise,
                scale.num_configs,
                scale.num_configs,
                &mut rng,
            )?;
            for (step, err) in trajectory.into_iter().enumerate() {
                per_step[step].push(err);
            }
        }
        let mut points = Vec::new();
        for (step, errors) in per_step.iter().enumerate() {
            let rounds = (step + 1) * scale.rounds_per_config;
            points.push(SeriesPoint::from_error_rates(
                rounds as f64,
                format!("{rounds} rounds"),
                errors,
            )?);
        }
        noisy_curves.push(SeriesGroup {
            name: label.to_string(),
            points,
        });
    }

    // Proxy references from every benchmark (including the client itself).
    let pipeline = OneShotProxy::new(scale.num_configs);
    let mut proxy_references = Vec::new();
    for &proxy in &Benchmark::ALL {
        let proxy_ctx = BenchmarkContext::new(proxy, scale, seed)?;
        let outcome = pipeline.run(
            proxy_ctx.dataset(),
            &proxy_ctx.config_runner(),
            ctx.dataset(),
            &ctx.config_runner(),
            seeds.next_seed(),
        )?;
        proxy_references.push((proxy.name().to_string(), outcome.client_error * 100.0));
    }

    Ok(ProxyVsNoisy {
        benchmark: benchmark.name().to_string(),
        noisy_curves,
        proxy_references,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proxy_matrix_smoke() {
        let scale = ExperimentScale::smoke();
        let matrix = run_proxy_matrix(&scale, 0).unwrap();
        assert_eq!(matrix.cells.len(), 16);
        for cell in &matrix.cells {
            assert!((0.0..=100.0).contains(&cell.client_error_percent));
            assert!((0.0..=100.0).contains(&cell.proxy_error_percent));
        }
        let best = matrix.best_proxy_for("cifar10-like").unwrap();
        assert_eq!(best.client, "cifar10-like");
        let report = matrix.to_report();
        assert_eq!(report.groups.len(), 4);
        assert!(report.to_table().contains("proxy="));
    }

    #[test]
    fn transfer_pairs_smoke() {
        let mut scale = ExperimentScale::smoke();
        scale.num_configs = 3;
        let analyses = run_transfer_pairs(&scale, 1).unwrap();
        assert_eq!(analyses.len(), 4);
        assert_eq!(analyses[0].dataset_a, "cifar10-like");
        assert_eq!(analyses[0].dataset_b, "femnist-like");
        for a in &analyses {
            assert_eq!(a.points.len(), 3);
        }
        let report = transfer_report(&analyses);
        assert!(report
            .to_table()
            .contains("stackoverflow-like vs reddit-like"));
    }

    #[test]
    fn proxy_vs_noisy_smoke() {
        let scale = ExperimentScale::smoke();
        let result = run_proxy_vs_noisy(Benchmark::Cifar10Like, &scale, 2).unwrap();
        assert_eq!(result.noisy_curves.len(), 3);
        assert_eq!(result.proxy_references.len(), 4);
        for curve in &result.noisy_curves {
            assert_eq!(curve.points.len(), scale.num_configs);
        }
        // The self-proxy (tuning on the client dataset itself without noise)
        // should be among the proxies reported.
        assert!(result
            .proxy_references
            .iter()
            .any(|(name, _)| name == "cifar10-like"));
        let report = result.to_report();
        assert!(report.to_table().contains("eps=inf"));
        assert!(report.to_table().contains("proxy"));
    }
}
