//! Tables 1 and 2: statistics of the four benchmark datasets.

use crate::report::{ExperimentReport, SeriesGroup, SeriesPoint};
use crate::scale::ExperimentScale;
use crate::Result;
use feddata::{Benchmark, DatasetSpec, DatasetStatistics};
use fedmath::stats::QuartileSummary;
use serde::{Deserialize, Serialize};

/// The dataset-statistics table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetTable {
    /// One row per benchmark, in the paper's order.
    pub rows: Vec<DatasetStatistics>,
}

impl DatasetTable {
    /// Generates all four benchmarks at the scale's data size and collects
    /// their statistics.
    ///
    /// # Errors
    ///
    /// Propagates dataset-generation failures.
    pub fn generate(scale: &ExperimentScale, seed: u64) -> Result<Self> {
        scale.validate()?;
        let mut rows = Vec::with_capacity(Benchmark::ALL.len());
        for (i, &benchmark) in Benchmark::ALL.iter().enumerate() {
            let dataset = DatasetSpec::benchmark(benchmark, scale.data_scale)
                .generate(fedmath::rng::derive_seed(seed, i as u64))?;
            rows.push(dataset.statistics());
        }
        Ok(DatasetTable { rows })
    }

    /// Renders the table in the layout of Table 2.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&DatasetStatistics::table_header());
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.to_table_row());
            out.push('\n');
        }
        out
    }

    /// Converts the table into the uniform report format (one series per
    /// dataset; x = train clients, median column = mean examples per client).
    pub fn to_report(&self) -> ExperimentReport {
        let mut report = ExperimentReport::new("table1", "Dataset statistics (Tables 1-2)");
        for row in &self.rows {
            let point = SeriesPoint {
                x: row.train_clients as f64,
                x_label: format!(
                    "{} train / {} eval clients",
                    row.train_clients, row.val_clients
                ),
                summary: QuartileSummary {
                    lower: row.examples.min as f64,
                    median: row.examples.mean,
                    upper: row.examples.max as f64,
                    count: row.examples.total,
                },
            };
            report.push_group(SeriesGroup {
                name: row.name.clone(),
                points: vec![point],
            });
        }
        report.push_note(
            "summary column shows min/mean/max examples per client; count = total examples",
        );
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_covers_all_benchmarks_with_paper_ratios() {
        let table = DatasetTable::generate(&ExperimentScale::smoke(), 0).unwrap();
        assert_eq!(table.rows.len(), 4);
        let names: Vec<&str> = table.rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "cifar10-like",
                "femnist-like",
                "stackoverflow-like",
                "reddit-like"
            ]
        );
        for row in &table.rows {
            assert!(row.train_clients > 0);
            assert!(row.val_clients > 0);
            assert!(row.examples.total > 0);
        }
        let text = table.to_text();
        assert!(text.contains("cifar10-like"));
        assert!(text.contains("Total"));
        let report = table.to_report();
        assert_eq!(report.groups.len(), 4);
        assert_eq!(report.id, "table1");
    }

    #[test]
    fn default_scale_preserves_relative_ordering_of_client_counts() {
        let table = DatasetTable::generate(&ExperimentScale::default_scale(), 1).unwrap();
        // Reddit-like has the most validation clients, CIFAR10-like the fewest
        // training clients — the ordering of Table 1 must be preserved.
        let by_name = |name: &str| table.rows.iter().find(|r| r.name == name).unwrap();
        assert!(by_name("reddit-like").val_clients > by_name("cifar10-like").val_clients);
        assert!(
            by_name("stackoverflow-like").train_clients > by_name("femnist-like").train_clients
        );
        assert!(by_name("reddit-like").examples.mean < by_name("stackoverflow-like").examples.mean);
    }
}
