//! Fig. 1 (headline bars), Fig. 8 (online curves), and Fig. 15/16
//! (method bars at one-third and full budget): RS vs. TPE vs. Hyperband vs.
//! BOHB under noiseless and noisy evaluation.

use crate::context::BenchmarkContext;
use crate::engine::TrialRunner;
use crate::experiments::hyperband_planned_evaluations;
use crate::noise::NoiseConfig;
use crate::objective::{FederatedObjective, ObjectiveLogEntry};
use crate::report::{ExperimentReport, SeriesGroup, SeriesPoint};
use crate::scale::ExperimentScale;
use crate::Result;
use feddata::Benchmark;
use fedhpo::{Bohb, Hyperband, RandomSearch, Tpe, Tuner};
use serde::{Deserialize, Serialize};

/// The four HP-tuning methods compared throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TuningMethod {
    /// Random search (simple baseline).
    RandomSearch,
    /// Tree-structured Parzen Estimator (Bayesian optimization).
    Tpe,
    /// Hyperband (early stopping).
    Hyperband,
    /// BOHB (hybrid of TPE and Hyperband).
    Bohb,
}

impl TuningMethod {
    /// The four methods in the paper's plotting order.
    pub const ALL: [TuningMethod; 4] = [
        TuningMethod::RandomSearch,
        TuningMethod::Tpe,
        TuningMethod::Hyperband,
        TuningMethod::Bohb,
    ];

    /// Short display name (`RS`, `TPE`, `HB`, `BOHB`).
    pub fn name(&self) -> &'static str {
        match self {
            TuningMethod::RandomSearch => "RS",
            TuningMethod::Tpe => "TPE",
            TuningMethod::Hyperband => "HB",
            TuningMethod::Bohb => "BOHB",
        }
    }

    /// Builds the tuner with the budgets of the given scale
    /// (`K` configurations for RS/TPE; η and bracket count for HB/BOHB).
    pub fn build(&self, scale: &ExperimentScale) -> Box<dyn Tuner> {
        match self {
            TuningMethod::RandomSearch => Box::new(RandomSearch::new(
                scale.num_configs,
                scale.rounds_per_config,
            )),
            TuningMethod::Tpe => Box::new(Tpe::new(scale.num_configs, scale.rounds_per_config)),
            TuningMethod::Hyperband => Box::new(Hyperband::new(
                scale.rounds_per_config,
                scale.eta,
                Some(scale.num_brackets),
            )),
            TuningMethod::Bohb => Box::new(Bohb::new(
                scale.rounds_per_config,
                scale.eta,
                Some(scale.num_brackets),
            )),
        }
    }

    /// Number of objective evaluations the method performs — the DP
    /// composition length `M` used to calibrate Laplace noise.
    pub fn planned_evaluations(&self, scale: &ExperimentScale) -> usize {
        match self {
            TuningMethod::RandomSearch | TuningMethod::Tpe => scale.num_configs,
            TuningMethod::Hyperband | TuningMethod::Bohb => hyperband_planned_evaluations(
                scale.rounds_per_config,
                scale.eta,
                scale.num_brackets,
            ),
        }
    }
}

impl std::fmt::Display for TuningMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One tuning run: a method, a noise setting, a trial index, and the full
/// objective log (noisy score and true error of every evaluation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodRun {
    /// Method name.
    pub method: String,
    /// Noise-setting label (`"noiseless"` or `"noisy"`).
    pub noise_label: String,
    /// Trial index.
    pub trial: usize,
    /// The objective log, in evaluation order.
    pub log: Vec<ObjectiveLogEntry>,
}

impl MethodRun {
    /// True error of the configuration the tuner would select within the
    /// given round budget (lowest noisy score among evaluations completed by
    /// then). `None` if nothing was evaluated within the budget.
    pub fn selected_true_error_within(&self, budget: usize) -> Option<f64> {
        self.log
            .iter()
            .filter(|e| e.cumulative_rounds <= budget)
            .min_by(|a, b| {
                a.noisy_score
                    .partial_cmp(&b.noisy_score)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|e| e.true_error)
    }
}

/// The full method-comparison campaign on one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodComparison {
    /// Benchmark the comparison was run on.
    pub benchmark: String,
    /// All runs (method × noise setting × trial).
    pub runs: Vec<MethodRun>,
    /// The budget grid (total training rounds) used for online curves.
    pub budget_grid: Vec<usize>,
}

impl MethodComparison {
    /// Distinct (method, noise) pairs present in the runs, in insertion order.
    fn run_keys(&self) -> Vec<(String, String)> {
        let mut keys: Vec<(String, String)> = Vec::new();
        for run in &self.runs {
            let key = (run.method.clone(), run.noise_label.clone());
            if !keys.contains(&key) {
                keys.push(key);
            }
        }
        keys
    }

    /// Fig. 8 online curves: per (method, noise) series of the selected
    /// configuration's true error over the budget grid, summarised over
    /// trials. Budget points where no trial has evaluated anything yet are
    /// skipped.
    ///
    /// # Errors
    ///
    /// Propagates summary failures.
    pub fn online_curves(&self) -> Result<Vec<SeriesGroup>> {
        let mut groups = Vec::new();
        for (method, noise) in self.run_keys() {
            let runs: Vec<&MethodRun> = self
                .runs
                .iter()
                .filter(|r| r.method == method && r.noise_label == noise)
                .collect();
            let mut points = Vec::new();
            for &budget in &self.budget_grid {
                let errors: Vec<f64> = runs
                    .iter()
                    .filter_map(|r| r.selected_true_error_within(budget))
                    .collect();
                if errors.is_empty() {
                    continue;
                }
                points.push(SeriesPoint::from_error_rates(
                    budget as f64,
                    format!("{budget} rounds"),
                    &errors,
                )?);
            }
            groups.push(SeriesGroup {
                name: format!("{method} ({noise})"),
                points,
            });
        }
        Ok(groups)
    }

    /// Fig. 15/16 bars: the selected configuration's true error at the given
    /// round budget, per (method, noise), summarised over trials.
    ///
    /// # Errors
    ///
    /// Propagates summary failures.
    pub fn bars_at(&self, budget: usize) -> Result<Vec<SeriesGroup>> {
        let mut groups = Vec::new();
        for (method, noise) in self.run_keys() {
            let errors: Vec<f64> = self
                .runs
                .iter()
                .filter(|r| r.method == method && r.noise_label == noise)
                .filter_map(|r| r.selected_true_error_within(budget))
                .collect();
            if errors.is_empty() {
                continue;
            }
            groups.push(SeriesGroup {
                name: format!("{method} ({noise})"),
                points: vec![SeriesPoint::from_error_rates(
                    budget as f64,
                    format!("{budget} rounds"),
                    &errors,
                )?],
            });
        }
        Ok(groups)
    }

    /// Renders the Fig. 8 online curves.
    ///
    /// # Errors
    ///
    /// Propagates summary failures.
    pub fn to_online_report(&self) -> Result<ExperimentReport> {
        let mut report = ExperimentReport::new(
            "fig8",
            format!(
                "Online performance of RS/TPE/HB/BOHB on {} (Fig. 8)",
                self.benchmark
            ),
        );
        for group in self.online_curves()? {
            report.push_group(group);
        }
        Ok(report)
    }

    /// Renders the Fig. 15 (one-third budget) or Fig. 16 (full budget) bars.
    ///
    /// # Errors
    ///
    /// Propagates summary failures.
    pub fn to_bars_report(&self, id: &str, budget: usize) -> Result<ExperimentReport> {
        let mut report = ExperimentReport::new(
            id,
            format!(
                "Method comparison at {budget} training rounds on {} (Fig. 15/16)",
                self.benchmark
            ),
        );
        for group in self.bars_at(budget)? {
            report.push_group(group);
        }
        Ok(report)
    }
}

/// The standard pair of noise settings compared in Fig. 1/8/15/16:
/// noiseless evaluation vs. 1% client subsampling with ε = 100 DP.
pub fn paper_noise_settings() -> Vec<(String, NoiseConfig)> {
    vec![
        ("noiseless".to_string(), NoiseConfig::noiseless()),
        ("noisy".to_string(), NoiseConfig::paper_noisy()),
    ]
}

/// Runs the method comparison on one benchmark: every method × every noise
/// setting × `method_trials` independent trials, with live federated training
/// through [`FederatedObjective`].
///
/// # Errors
///
/// Propagates training and evaluation failures.
pub fn run_method_comparison(
    benchmark: Benchmark,
    scale: &ExperimentScale,
    noise_settings: &[(String, NoiseConfig)],
    seed: u64,
) -> Result<MethodComparison> {
    run_method_comparison_with(
        &TrialRunner::parallel(),
        benchmark,
        scale,
        noise_settings,
        seed,
    )
}

/// [`run_method_comparison`] through an explicit [`TrialRunner`]: every
/// (method × noise setting × trial) campaign is one engine trial, seeded by
/// its position in the campaign grid. Sequential and parallel runners
/// produce bit-identical comparisons.
///
/// # Errors
///
/// Propagates training and evaluation failures.
pub fn run_method_comparison_with(
    runner: &TrialRunner,
    benchmark: Benchmark,
    scale: &ExperimentScale,
    noise_settings: &[(String, NoiseConfig)],
    seed: u64,
) -> Result<MethodComparison> {
    let ctx = BenchmarkContext::new(benchmark, scale, seed)?;
    // One work unit per (method, noise, trial), in the paper's nesting order
    // so `runs` keeps its historical layout.
    let units: Vec<(TuningMethod, &str, &NoiseConfig, usize)> = TuningMethod::ALL
        .iter()
        .flat_map(|&method| {
            noise_settings.iter().flat_map(move |(label, noise)| {
                (0..scale.method_trials).map(move |trial| (method, label.as_str(), noise, trial))
            })
        })
        .collect();
    let root = fedmath::rng::derive_seed(seed, 7);
    let runs = runner.run_trials(root, units.len(), |unit| {
        let (method, noise_label, noise, trial) = units[unit.index()];
        let tuner = method.build(scale);
        let planned = method.planned_evaluations(scale);
        let mut objective = FederatedObjective::new(&ctx, *noise, planned, unit.seed(0))?;
        let mut rng = unit.rng(1);
        tuner.tune(ctx.space(), &mut objective, &mut rng)?;
        Ok(MethodRun {
            method: method.name().to_string(),
            noise_label: noise_label.to_string(),
            trial,
            log: objective.into_log(),
        })
    })?;
    let grid_steps = scale.num_configs.max(4);
    let budget_grid: Vec<usize> = (1..=grid_steps)
        .map(|i| i * scale.total_budget / grid_steps)
        .collect();
    Ok(MethodComparison {
        benchmark: benchmark.name().to_string(),
        runs,
        budget_grid,
    })
}

/// The Fig. 1 headline: method bars on CIFAR10-like at one third of the
/// budget, noiseless vs. noisy, plus the proxy-RS reference (which is
/// unaffected by evaluation noise).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadlineResult {
    /// Bars for the four tuning methods.
    pub method_bars: Vec<SeriesGroup>,
    /// Full-validation error (percent) of one-shot proxy RS.
    pub proxy_rs_percent: f64,
    /// The round budget the bars are evaluated at (one third of the total).
    pub budget: usize,
}

impl HeadlineResult {
    /// Renders Fig. 1.
    pub fn to_report(&self) -> ExperimentReport {
        let mut report = ExperimentReport::new(
            "fig1",
            "Headline: tuning methods under noise vs. proxy RS on CIFAR10-like (Fig. 1)",
        );
        for group in &self.method_bars {
            report.push_group(group.clone());
        }
        report.push_group(SeriesGroup {
            name: "RS (proxy)".into(),
            points: vec![SeriesPoint {
                x: self.budget as f64,
                x_label: format!("{} rounds", self.budget),
                summary: fedmath::stats::QuartileSummary {
                    lower: self.proxy_rs_percent,
                    median: self.proxy_rs_percent,
                    upper: self.proxy_rs_percent,
                    count: 1,
                },
            }],
        });
        report
            .push_note("proxy RS tunes on FEMNIST-like data and is unaffected by evaluation noise");
        report
    }
}

/// Runs the Fig. 1 headline experiment.
///
/// # Errors
///
/// Propagates training and evaluation failures.
pub fn run_headline(scale: &ExperimentScale, seed: u64) -> Result<HeadlineResult> {
    let comparison =
        run_method_comparison(Benchmark::Cifar10Like, scale, &paper_noise_settings(), seed)?;
    let budget = (scale.total_budget / 3).max(scale.rounds_per_config);
    let method_bars = comparison.bars_at(budget)?;

    // One-shot proxy RS with FEMNIST-like as the proxy dataset (the best
    // proxy for CIFAR10 in Fig. 11).
    let proxy_ctx = BenchmarkContext::new(Benchmark::FemnistLike, scale, seed)?;
    let client_ctx = BenchmarkContext::new(Benchmark::Cifar10Like, scale, seed)?;
    let pipeline = fedproxy::OneShotProxy::new(scale.num_configs);
    let outcome = pipeline.run(
        proxy_ctx.dataset(),
        &proxy_ctx.config_runner(),
        client_ctx.dataset(),
        &client_ctx.config_runner(),
        fedmath::rng::derive_seed(seed, 8),
    )?;
    Ok(HeadlineResult {
        method_bars,
        proxy_rs_percent: outcome.client_error * 100.0,
        budget,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuning_method_metadata() {
        assert_eq!(TuningMethod::ALL.len(), 4);
        assert_eq!(TuningMethod::RandomSearch.name(), "RS");
        assert_eq!(TuningMethod::Bohb.to_string(), "BOHB");
        let scale = ExperimentScale::smoke();
        assert_eq!(
            TuningMethod::RandomSearch.planned_evaluations(&scale),
            scale.num_configs
        );
        assert!(TuningMethod::Hyperband.planned_evaluations(&scale) > 0);
        for m in TuningMethod::ALL {
            let _ = m.build(&scale);
        }
    }

    #[test]
    fn method_comparison_smoke_run() {
        let scale = ExperimentScale::smoke();
        let noise_settings = paper_noise_settings();
        let comparison =
            run_method_comparison(Benchmark::Cifar10Like, &scale, &noise_settings, 0).unwrap();
        assert_eq!(comparison.benchmark, "cifar10-like");
        // 4 methods x 2 noise settings x method_trials runs.
        assert_eq!(comparison.runs.len(), 4 * 2 * scale.method_trials);
        assert!(!comparison.budget_grid.is_empty());
        for run in &comparison.runs {
            assert!(
                !run.log.is_empty(),
                "{} produced no evaluations",
                run.method
            );
        }

        let curves = comparison.online_curves().unwrap();
        assert_eq!(curves.len(), 8);
        let bars = comparison.bars_at(scale.total_budget).unwrap();
        assert_eq!(bars.len(), 8);
        for bar in &bars {
            let median = bar.points[0].summary.median;
            assert!(
                (0.0..=100.0).contains(&median),
                "{}: median {median}",
                bar.name
            );
        }
        let report = comparison.to_online_report().unwrap();
        assert!(report.to_table().contains("RS (noiseless)"));
        let report = comparison
            .to_bars_report("fig16", scale.total_budget)
            .unwrap();
        assert!(report.to_table().contains("BOHB"));
    }

    #[test]
    fn selected_error_respects_budget() {
        let run = MethodRun {
            method: "RS".into(),
            noise_label: "noiseless".into(),
            trial: 0,
            log: vec![
                ObjectiveLogEntry {
                    trial_id: 0,
                    resource: 5,
                    noisy_score: 0.5,
                    true_error: 0.5,
                    cumulative_rounds: 5,
                },
                ObjectiveLogEntry {
                    trial_id: 1,
                    resource: 5,
                    noisy_score: 0.2,
                    true_error: 0.3,
                    cumulative_rounds: 10,
                },
            ],
        };
        assert_eq!(run.selected_true_error_within(5), Some(0.5));
        assert_eq!(run.selected_true_error_within(10), Some(0.3));
        assert_eq!(run.selected_true_error_within(1), None);
    }
}
