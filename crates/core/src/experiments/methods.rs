//! Fig. 1 (headline bars), Fig. 8 (online curves), and Fig. 15/16
//! (method bars at one-third and full budget): RS vs. TPE vs. Hyperband vs.
//! BOHB under noiseless and noisy evaluation — plus the scheduler-era
//! extensions: ASHA (asynchronous successive halving) and the noise-aware
//! re-evaluation mitigation, both driven through the batched ask/tell
//! scheduler.

use crate::context::BenchmarkContext;
use crate::engine::TrialRunner;
use crate::experiments::hyperband_planned_evaluations;
use crate::noise::NoiseConfig;
use crate::objective::{
    selected_true_error, BatchFederatedObjective, FederatedObjective, ObjectiveLogEntry,
};
use crate::report::{ExperimentReport, SeriesGroup, SeriesPoint};
use crate::scale::ExperimentScale;
use crate::scheduler::run_scheduled;
use crate::{ExecutionPolicy, Result};
use feddata::Benchmark;
use fedhpo::{
    Asha, AsyncAsha, Bohb, Hyperband, IntoScheduler, RandomSearch, ReEvaluation, Scheduler, Tpe,
    Tuner,
};
use serde::{Deserialize, Serialize};

/// The HP-tuning methods compared throughout the paper (RS, TPE, HB, BOHB)
/// plus the scheduler-era extensions (ASHA and ASHA with the re-evaluation
/// mitigation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TuningMethod {
    /// Random search (simple baseline).
    RandomSearch,
    /// Tree-structured Parzen Estimator (Bayesian optimization).
    Tpe,
    /// Hyperband (early stopping).
    Hyperband,
    /// BOHB (hybrid of TPE and Hyperband).
    Bohb,
    /// ASHA: asynchronous successive halving, promotions computed per rung
    /// from whatever results have arrived.
    Asha,
    /// ASHA wrapped in the noise-aware re-evaluation policy: top-k survivors
    /// are re-evaluated with fresh noise draws before selection (§5).
    AshaReEval,
    /// The ASHA ladder run genuinely asynchronously: under the event-driven
    /// driver the scheduler is re-polled on every completion, so promotions
    /// fire without rung barriers. Deliberately *not* part of
    /// [`EXTENDED`](Self::EXTENDED): asynchronous promotion acts on partial
    /// rungs, so its selections legitimately differ from the barrier
    /// drivers'.
    AsyncAsha,
}

impl TuningMethod {
    /// The four methods in the paper's plotting order.
    pub const ALL: [TuningMethod; 4] = [
        TuningMethod::RandomSearch,
        TuningMethod::Tpe,
        TuningMethod::Hyperband,
        TuningMethod::Bohb,
    ];

    /// The paper's four methods plus the scheduler-era extensions.
    pub const EXTENDED: [TuningMethod; 6] = [
        TuningMethod::RandomSearch,
        TuningMethod::Tpe,
        TuningMethod::Hyperband,
        TuningMethod::Bohb,
        TuningMethod::Asha,
        TuningMethod::AshaReEval,
    ];

    /// Short display name (`RS`, `TPE`, `HB`, `BOHB`, `ASHA`, `ASHA+RE`,
    /// `ASHA-ASYNC`).
    pub fn name(&self) -> &'static str {
        match self {
            TuningMethod::RandomSearch => "RS",
            TuningMethod::Tpe => "TPE",
            TuningMethod::Hyperband => "HB",
            TuningMethod::Bohb => "BOHB",
            TuningMethod::Asha => "ASHA",
            TuningMethod::AshaReEval => "ASHA+RE",
            TuningMethod::AsyncAsha => "ASHA-ASYNC",
        }
    }

    /// The ASHA ladder at the given scale: as many starting configurations
    /// as Hyperband's most exploratory bracket would sample, the same rung
    /// spacing (`min = R / η^(brackets-1)`), and the full per-config budget
    /// at the top rung.
    fn asha(scale: &ExperimentScale) -> Asha {
        let eta = scale.eta.max(2) as f64;
        let min_resource = ((scale.rounds_per_config as f64)
            / eta.powi(scale.num_brackets.saturating_sub(1) as i32))
        .round()
        .max(1.0) as usize;
        Asha::new(
            scale.num_configs * scale.eta,
            scale.eta,
            min_resource.min(scale.rounds_per_config),
            scale.rounds_per_config,
        )
    }

    /// The re-evaluation mitigation at the given scale: the top quarter of
    /// the searched configurations (at least 2), three fresh draws each,
    /// around the ASHA ladder.
    fn asha_reeval(scale: &ExperimentScale) -> ReEvaluation<Asha> {
        ReEvaluation::new(Self::asha(scale), (scale.num_configs / 4).max(2), 3)
    }

    /// The [`asha`](Self::asha) ladder run asynchronously (see
    /// [`fedhpo::AsyncAsha`]).
    fn async_asha(scale: &ExperimentScale) -> AsyncAsha {
        AsyncAsha::from_ladder(Self::asha(scale))
    }

    /// RS at the scale's budgets: `K` configurations at full fidelity.
    fn rs(scale: &ExperimentScale) -> RandomSearch {
        RandomSearch::new(scale.num_configs, scale.rounds_per_config)
    }

    /// TPE at the scale's budgets: `K` sequential proposals at full fidelity.
    fn tpe(scale: &ExperimentScale) -> Tpe {
        Tpe::new(scale.num_configs, scale.rounds_per_config)
    }

    /// Hyperband at the scale's budgets: η and bracket count from the scale.
    fn hyperband(scale: &ExperimentScale) -> Hyperband {
        Hyperband::new(scale.rounds_per_config, scale.eta, Some(scale.num_brackets))
    }

    /// BOHB on the same bracket ladder as [`hyperband`](Self::hyperband).
    fn bohb(scale: &ExperimentScale) -> Bohb {
        Bohb::new(scale.rounds_per_config, scale.eta, Some(scale.num_brackets))
    }

    /// Builds the tuner with the budgets of the given scale.
    /// [`scheduler`](Self::scheduler) builds the same configurations, so the
    /// pull-style and scheduled paths always compare identically-budgeted
    /// methods.
    pub fn build(&self, scale: &ExperimentScale) -> Box<dyn Tuner> {
        match self {
            TuningMethod::RandomSearch => Box::new(Self::rs(scale)),
            TuningMethod::Tpe => Box::new(Self::tpe(scale)),
            TuningMethod::Hyperband => Box::new(Self::hyperband(scale)),
            TuningMethod::Bohb => Box::new(Self::bohb(scale)),
            TuningMethod::Asha => Box::new(Self::asha(scale)),
            TuningMethod::AshaReEval => Box::new(Self::asha_reeval(scale)),
            TuningMethod::AsyncAsha => Box::new(Self::async_asha(scale)),
        }
    }

    /// Builds the ask/tell scheduler for this method at the given scale —
    /// the state machine driven by [`run_method_comparison_scheduled`],
    /// configured identically to [`build`](Self::build).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    pub fn scheduler(&self, scale: &ExperimentScale) -> fedhpo::Result<Box<dyn Scheduler>> {
        Ok(match self {
            TuningMethod::RandomSearch => Box::new(Self::rs(scale).scheduler()?),
            TuningMethod::Tpe => Box::new(Self::tpe(scale).scheduler()?),
            TuningMethod::Hyperband => Box::new(Self::hyperband(scale).scheduler()?),
            TuningMethod::Bohb => Box::new(Self::bohb(scale).scheduler()?),
            TuningMethod::Asha => Box::new(Self::asha(scale).scheduler()?),
            TuningMethod::AshaReEval => Box::new(Self::asha_reeval(scale).scheduler()?),
            TuningMethod::AsyncAsha => Box::new(Self::async_asha(scale).scheduler()?),
        })
    }

    /// Number of objective evaluations the method plans to perform — the DP
    /// composition length `M` used to calibrate Laplace noise. For
    /// [`AsyncAsha`](Self::AsyncAsha) this is the *nominal* rung-synchronous
    /// plan (shared with [`Asha`](Self::Asha) so the sync and async variants
    /// face comparable noise); an event-driven async campaign may exceed it
    /// by promoting on partial rungs (see
    /// [`fedhpo::AsyncAsha::planned_evaluations`]).
    pub fn planned_evaluations(&self, scale: &ExperimentScale) -> usize {
        match self {
            TuningMethod::RandomSearch | TuningMethod::Tpe => scale.num_configs,
            TuningMethod::Hyperband | TuningMethod::Bohb => hyperband_planned_evaluations(
                scale.rounds_per_config,
                scale.eta,
                scale.num_brackets,
            ),
            TuningMethod::Asha | TuningMethod::AsyncAsha => Self::asha(scale).planned_evaluations(),
            TuningMethod::AshaReEval => {
                let policy = Self::asha_reeval(scale);
                policy.inner().planned_evaluations() + policy.top_k() * policy.reps()
            }
        }
    }
}

impl std::fmt::Display for TuningMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One tuning run: a method, a noise setting, a trial index, and the full
/// objective log (noisy score and true error of every evaluation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodRun {
    /// Method name.
    pub method: String,
    /// Noise-setting label (`"noiseless"` or `"noisy"`).
    pub noise_label: String,
    /// Trial index.
    pub trial: usize,
    /// The objective log, in evaluation order.
    pub log: Vec<ObjectiveLogEntry>,
}

impl MethodRun {
    /// True error of the configuration the tuner would select within the
    /// given round budget: the lowest noisy score among evaluations completed
    /// by then — or, when the run carries fresh-noise re-evaluations
    /// (`noise_rep >= 1`), the survivor with the best *mean* re-evaluation
    /// score (the §5 mitigation). `None` if nothing was evaluated within the
    /// budget.
    pub fn selected_true_error_within(&self, budget: usize) -> Option<f64> {
        selected_true_error(&self.log, budget)
    }
}

/// The full method-comparison campaign on one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodComparison {
    /// Benchmark the comparison was run on.
    pub benchmark: String,
    /// All runs (method × noise setting × trial).
    pub runs: Vec<MethodRun>,
    /// The budget grid (total training rounds) used for online curves.
    pub budget_grid: Vec<usize>,
}

impl MethodComparison {
    /// Distinct (method, noise) pairs present in the runs, in insertion order.
    fn run_keys(&self) -> Vec<(String, String)> {
        let mut keys: Vec<(String, String)> = Vec::new();
        for run in &self.runs {
            let key = (run.method.clone(), run.noise_label.clone());
            if !keys.contains(&key) {
                keys.push(key);
            }
        }
        keys
    }

    /// Fig. 8 online curves: per (method, noise) series of the selected
    /// configuration's true error over the budget grid, summarised over
    /// trials. Budget points where no trial has evaluated anything yet are
    /// skipped.
    ///
    /// # Errors
    ///
    /// Propagates summary failures.
    pub fn online_curves(&self) -> Result<Vec<SeriesGroup>> {
        let mut groups = Vec::new();
        for (method, noise) in self.run_keys() {
            let runs: Vec<&MethodRun> = self
                .runs
                .iter()
                .filter(|r| r.method == method && r.noise_label == noise)
                .collect();
            let mut points = Vec::new();
            for &budget in &self.budget_grid {
                let errors: Vec<f64> = runs
                    .iter()
                    .filter_map(|r| r.selected_true_error_within(budget))
                    .collect();
                if errors.is_empty() {
                    continue;
                }
                points.push(SeriesPoint::from_error_rates(
                    budget as f64,
                    format!("{budget} rounds"),
                    &errors,
                )?);
            }
            groups.push(SeriesGroup {
                name: format!("{method} ({noise})"),
                points,
            });
        }
        Ok(groups)
    }

    /// Fig. 15/16 bars: the selected configuration's true error at the given
    /// round budget, per (method, noise), summarised over trials.
    ///
    /// # Errors
    ///
    /// Propagates summary failures.
    pub fn bars_at(&self, budget: usize) -> Result<Vec<SeriesGroup>> {
        let mut groups = Vec::new();
        for (method, noise) in self.run_keys() {
            let errors: Vec<f64> = self
                .runs
                .iter()
                .filter(|r| r.method == method && r.noise_label == noise)
                .filter_map(|r| r.selected_true_error_within(budget))
                .collect();
            if errors.is_empty() {
                continue;
            }
            groups.push(SeriesGroup {
                name: format!("{method} ({noise})"),
                points: vec![SeriesPoint::from_error_rates(
                    budget as f64,
                    format!("{budget} rounds"),
                    &errors,
                )?],
            });
        }
        Ok(groups)
    }

    /// Renders the Fig. 8 online curves.
    ///
    /// # Errors
    ///
    /// Propagates summary failures.
    pub fn to_online_report(&self) -> Result<ExperimentReport> {
        let mut report = ExperimentReport::new(
            "fig8",
            format!(
                "Online performance of RS/TPE/HB/BOHB on {} (Fig. 8)",
                self.benchmark
            ),
        );
        for group in self.online_curves()? {
            report.push_group(group);
        }
        Ok(report)
    }

    /// Renders the Fig. 15 (one-third budget) or Fig. 16 (full budget) bars.
    ///
    /// # Errors
    ///
    /// Propagates summary failures.
    pub fn to_bars_report(&self, id: &str, budget: usize) -> Result<ExperimentReport> {
        let mut report = ExperimentReport::new(
            id,
            format!(
                "Method comparison at {budget} training rounds on {} (Fig. 15/16)",
                self.benchmark
            ),
        );
        for group in self.bars_at(budget)? {
            report.push_group(group);
        }
        Ok(report)
    }
}

/// The standard pair of noise settings compared in Fig. 1/8/15/16:
/// noiseless evaluation vs. 1% client subsampling with ε = 100 DP.
pub fn paper_noise_settings() -> Vec<(String, NoiseConfig)> {
    vec![
        ("noiseless".to_string(), NoiseConfig::noiseless()),
        ("noisy".to_string(), NoiseConfig::paper_noisy()),
    ]
}

/// Runs the method comparison on one benchmark: every method × every noise
/// setting × `method_trials` independent trials, with live federated training
/// through [`FederatedObjective`].
///
/// # Errors
///
/// Propagates training and evaluation failures.
pub fn run_method_comparison(
    benchmark: Benchmark,
    scale: &ExperimentScale,
    noise_settings: &[(String, NoiseConfig)],
    seed: u64,
) -> Result<MethodComparison> {
    run_method_comparison_with(
        &TrialRunner::from_env(),
        benchmark,
        scale,
        noise_settings,
        seed,
    )
}

/// [`run_method_comparison`] through an explicit [`TrialRunner`]: every
/// (method × noise setting × trial) campaign is one engine trial, seeded by
/// its position in the campaign grid. Sequential and parallel runners
/// produce bit-identical comparisons.
///
/// # Errors
///
/// Propagates training and evaluation failures.
pub fn run_method_comparison_with(
    runner: &TrialRunner,
    benchmark: Benchmark,
    scale: &ExperimentScale,
    noise_settings: &[(String, NoiseConfig)],
    seed: u64,
) -> Result<MethodComparison> {
    let ctx = BenchmarkContext::new(benchmark, scale, seed)?;
    // One work unit per (method, noise, trial), in the paper's nesting order
    // so `runs` keeps its historical layout.
    let units: Vec<(TuningMethod, &str, &NoiseConfig, usize)> = TuningMethod::ALL
        .iter()
        .flat_map(|&method| {
            noise_settings.iter().flat_map(move |(label, noise)| {
                (0..scale.method_trials).map(move |trial| (method, label.as_str(), noise, trial))
            })
        })
        .collect();
    let root = fedmath::rng::derive_seed(seed, 7);
    let runs = runner.run_trials(root, units.len(), |unit| {
        let (method, noise_label, noise, trial) = units[unit.index()];
        let tuner = method.build(scale);
        let planned = method.planned_evaluations(scale);
        let mut objective = FederatedObjective::new(&ctx, *noise, planned, unit.seed(0))?;
        let mut rng = unit.rng(1);
        tuner.tune(ctx.space(), &mut objective, &mut rng)?;
        Ok(MethodRun {
            method: method.name().to_string(),
            noise_label: noise_label.to_string(),
            trial,
            log: objective.into_log(),
        })
    })?;
    let grid_steps = scale.num_configs.max(4);
    let budget_grid: Vec<usize> = (1..=grid_steps)
        .map(|i| i * scale.total_budget / grid_steps)
        .collect();
    Ok(MethodComparison {
        benchmark: benchmark.name().to_string(),
        runs,
        budget_grid,
    })
}

/// The method comparison through the batched **ask/tell scheduler**: every
/// (method × noise setting × trial) campaign is driven by
/// [`run_scheduled`], with each suggested batch fanned out across threads by
/// a [`BatchFederatedObjective`] under `batch_policy`. Campaign seeds are
/// positional (derived from the unit's grid position), and all evaluation
/// randomness is keyed by request coordinates, so `Sequential` and
/// `Parallel` batch policies produce **bit-identical** comparisons
/// (`tests/determinism.rs`).
///
/// Unlike [`run_method_comparison`] (which parallelises across campaigns but
/// runs each tuner pull-style and therefore sequentially), this is the
/// scalable path for live tuning: a single campaign saturates the machine —
/// RS suggests its whole schedule as one batch, HB/BOHB/ASHA suggest whole
/// rungs.
///
/// # Errors
///
/// Propagates training and evaluation failures.
pub fn run_method_comparison_scheduled(
    batch_policy: ExecutionPolicy,
    benchmark: Benchmark,
    scale: &ExperimentScale,
    methods: &[TuningMethod],
    noise_settings: &[(String, NoiseConfig)],
    seed: u64,
) -> Result<MethodComparison> {
    let ctx = BenchmarkContext::new(benchmark, scale, seed)?;
    let units: Vec<(TuningMethod, &str, &NoiseConfig, usize)> = methods
        .iter()
        .flat_map(|&method| {
            noise_settings.iter().flat_map(move |(label, noise)| {
                (0..scale.method_trials).map(move |trial| (method, label.as_str(), noise, trial))
            })
        })
        .collect();
    // Campaigns run one after another — the parallelism lives *inside* each
    // campaign's batches — but unit seeds are derived exactly as the engine
    // would, keyed by grid position.
    let root = fedmath::rng::derive_seed(seed, 7);
    let runs = TrialRunner::sequential().run_trials(root, units.len(), |unit| {
        let (method, noise_label, noise, trial) = units[unit.index()];
        let mut scheduler = method.scheduler(scale)?;
        let planned = method.planned_evaluations(scale);
        let mut objective = BatchFederatedObjective::new(&ctx, *noise, planned, unit.seed(0))?
            .with_batch_runner(TrialRunner::new(batch_policy));
        let mut rng = unit.rng(1);
        run_scheduled(scheduler.as_mut(), ctx.space(), &mut objective, &mut rng)?;
        Ok(MethodRun {
            method: method.name().to_string(),
            noise_label: noise_label.to_string(),
            trial,
            log: objective.into_log(),
        })
    })?;
    let grid_steps = scale.num_configs.max(4);
    let budget_grid: Vec<usize> = (1..=grid_steps)
        .map(|i| i * scale.total_budget / grid_steps)
        .collect();
    Ok(MethodComparison {
        benchmark: benchmark.name().to_string(),
        runs,
        budget_grid,
    })
}

/// The Fig. 1 headline: method bars on CIFAR10-like at one third of the
/// budget, noiseless vs. noisy, plus the proxy-RS reference (which is
/// unaffected by evaluation noise).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadlineResult {
    /// Bars for the four tuning methods.
    pub method_bars: Vec<SeriesGroup>,
    /// Full-validation error (percent) of one-shot proxy RS.
    pub proxy_rs_percent: f64,
    /// The round budget the bars are evaluated at (one third of the total).
    pub budget: usize,
}

impl HeadlineResult {
    /// Renders Fig. 1.
    pub fn to_report(&self) -> ExperimentReport {
        let mut report = ExperimentReport::new(
            "fig1",
            "Headline: tuning methods under noise vs. proxy RS on CIFAR10-like (Fig. 1)",
        );
        for group in &self.method_bars {
            report.push_group(group.clone());
        }
        report.push_group(SeriesGroup {
            name: "RS (proxy)".into(),
            points: vec![SeriesPoint {
                x: self.budget as f64,
                x_label: format!("{} rounds", self.budget),
                summary: fedmath::stats::QuartileSummary {
                    lower: self.proxy_rs_percent,
                    median: self.proxy_rs_percent,
                    upper: self.proxy_rs_percent,
                    count: 1,
                },
            }],
        });
        report
            .push_note("proxy RS tunes on FEMNIST-like data and is unaffected by evaluation noise");
        report
    }
}

/// Runs the Fig. 1 headline experiment.
///
/// # Errors
///
/// Propagates training and evaluation failures.
pub fn run_headline(scale: &ExperimentScale, seed: u64) -> Result<HeadlineResult> {
    let comparison =
        run_method_comparison(Benchmark::Cifar10Like, scale, &paper_noise_settings(), seed)?;
    let budget = (scale.total_budget / 3).max(scale.rounds_per_config);
    let method_bars = comparison.bars_at(budget)?;

    // One-shot proxy RS with FEMNIST-like as the proxy dataset (the best
    // proxy for CIFAR10 in Fig. 11).
    let proxy_ctx = BenchmarkContext::new(Benchmark::FemnistLike, scale, seed)?;
    let client_ctx = BenchmarkContext::new(Benchmark::Cifar10Like, scale, seed)?;
    let pipeline = fedproxy::OneShotProxy::new(scale.num_configs);
    let outcome = pipeline.run(
        proxy_ctx.dataset(),
        &proxy_ctx.config_runner(),
        client_ctx.dataset(),
        &client_ctx.config_runner(),
        fedmath::rng::derive_seed(seed, 8),
    )?;
    Ok(HeadlineResult {
        method_bars,
        proxy_rs_percent: outcome.client_error * 100.0,
        budget,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuning_method_metadata() {
        assert_eq!(TuningMethod::ALL.len(), 4);
        assert_eq!(TuningMethod::EXTENDED.len(), 6);
        assert_eq!(TuningMethod::RandomSearch.name(), "RS");
        assert_eq!(TuningMethod::Bohb.to_string(), "BOHB");
        assert_eq!(TuningMethod::Asha.name(), "ASHA");
        assert_eq!(TuningMethod::AshaReEval.to_string(), "ASHA+RE");
        let scale = ExperimentScale::smoke();
        assert_eq!(
            TuningMethod::RandomSearch.planned_evaluations(&scale),
            scale.num_configs
        );
        assert!(TuningMethod::Hyperband.planned_evaluations(&scale) > 0);
        assert!(TuningMethod::Asha.planned_evaluations(&scale) > 0);
        // The re-evaluation wrapper adds exactly top_k × reps evaluations.
        assert!(
            TuningMethod::AshaReEval.planned_evaluations(&scale)
                > TuningMethod::Asha.planned_evaluations(&scale)
        );
        for m in TuningMethod::EXTENDED {
            let _ = m.build(&scale);
            assert!(m.scheduler(&scale).is_ok());
        }
    }

    #[test]
    fn scheduled_comparison_covers_extended_methods() {
        let scale = ExperimentScale::smoke();
        let noise_settings = paper_noise_settings();
        let comparison = run_method_comparison_scheduled(
            ExecutionPolicy::parallel(),
            Benchmark::Cifar10Like,
            &scale,
            &TuningMethod::EXTENDED,
            &noise_settings,
            1,
        )
        .unwrap();
        assert_eq!(comparison.runs.len(), 6 * 2 * scale.method_trials);
        for run in &comparison.runs {
            assert!(
                !run.log.is_empty(),
                "{} produced no evaluations",
                run.method
            );
            assert!(run
                .selected_true_error_within(usize::MAX)
                .is_some_and(|e| (0.0..=1.5).contains(&e)));
        }
        // The re-evaluation runs carry fresh-noise replicates; others do not.
        for run in &comparison.runs {
            let has_reps = run.log.iter().any(|e| e.noise_rep >= 1);
            assert_eq!(has_reps, run.method == "ASHA+RE", "{}", run.method);
        }
        let bars = comparison.bars_at(scale.total_budget).unwrap();
        assert_eq!(bars.len(), 12);
        let report = comparison.to_online_report().unwrap();
        assert!(report.to_table().contains("ASHA (noisy)"));
        assert!(report.to_table().contains("ASHA+RE (noisy)"));
    }

    #[test]
    fn method_comparison_smoke_run() {
        let scale = ExperimentScale::smoke();
        let noise_settings = paper_noise_settings();
        let comparison =
            run_method_comparison(Benchmark::Cifar10Like, &scale, &noise_settings, 0).unwrap();
        assert_eq!(comparison.benchmark, "cifar10-like");
        // 4 methods x 2 noise settings x method_trials runs.
        assert_eq!(comparison.runs.len(), 4 * 2 * scale.method_trials);
        assert!(!comparison.budget_grid.is_empty());
        for run in &comparison.runs {
            assert!(
                !run.log.is_empty(),
                "{} produced no evaluations",
                run.method
            );
        }

        let curves = comparison.online_curves().unwrap();
        assert_eq!(curves.len(), 8);
        let bars = comparison.bars_at(scale.total_budget).unwrap();
        assert_eq!(bars.len(), 8);
        for bar in &bars {
            let median = bar.points[0].summary.median;
            assert!(
                (0.0..=100.0).contains(&median),
                "{}: median {median}",
                bar.name
            );
        }
        let report = comparison.to_online_report().unwrap();
        assert!(report.to_table().contains("RS (noiseless)"));
        let report = comparison
            .to_bars_report("fig16", scale.total_budget)
            .unwrap();
        assert!(report.to_table().contains("BOHB"));
    }

    #[test]
    fn selected_error_respects_budget() {
        let run = MethodRun {
            method: "RS".into(),
            noise_label: "noiseless".into(),
            trial: 0,
            log: vec![
                ObjectiveLogEntry {
                    trial_id: 0,
                    resource: 5,
                    noisy_score: 0.5,
                    true_error: 0.5,
                    cumulative_rounds: 5,
                    noise_rep: 0,
                    sim_time: 0.0,
                },
                ObjectiveLogEntry {
                    trial_id: 1,
                    resource: 5,
                    noisy_score: 0.2,
                    true_error: 0.3,
                    cumulative_rounds: 10,
                    noise_rep: 0,
                    sim_time: 0.0,
                },
            ],
        };
        assert_eq!(run.selected_true_error_within(5), Some(0.5));
        assert_eq!(run.selected_true_error_within(10), Some(0.3));
        assert_eq!(run.selected_true_error_within(1), None);
    }
}
