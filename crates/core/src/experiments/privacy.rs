//! Fig. 9: the effect of the differential-privacy budget ε on random search,
//! across evaluation-client subsampling rates.

use crate::context::BenchmarkContext;
use crate::experiments::{simulated_rs_trials, subsample_rate_grid};
use crate::noise::NoiseConfig;
use crate::pool::ConfigPool;
use crate::report::{rate_label, ExperimentReport, SeriesGroup, SeriesPoint};
use crate::scale::ExperimentScale;
use crate::Result;
use feddata::Benchmark;
use feddp::PrivacyBudget;
use fedmath::SeedStream;
use serde::{Deserialize, Serialize};

/// The ε grid of Fig. 9.
pub const PRIVACY_GRID: [PrivacyBudget; 5] = [
    PrivacyBudget::Finite(0.1),
    PrivacyBudget::Finite(1.0),
    PrivacyBudget::Finite(10.0),
    PrivacyBudget::Finite(100.0),
    PrivacyBudget::Infinite,
];

/// Fig. 9 for one benchmark: one subsampling sweep per privacy budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrivacySweep {
    /// Benchmark the sweep was run on.
    pub benchmark: String,
    /// One series per ε (labelled `"eps=<value>"` or `"eps=inf"`).
    pub series: Vec<SeriesGroup>,
}

/// Runs Fig. 9: random search where every evaluation is an ε-DP release of
/// the subsampled validation accuracy (uniform weighting, Laplace noise of
/// scale `M / (ε |S|)` with `M = K` evaluations per tuning run).
///
/// # Errors
///
/// Propagates pool-training and noisy-evaluation failures.
pub fn run_privacy_sweep(
    benchmark: Benchmark,
    scale: &ExperimentScale,
    seed: u64,
) -> Result<PrivacySweep> {
    let ctx = BenchmarkContext::new(benchmark, scale, seed)?;
    let mut seeds = SeedStream::new(fedmath::rng::derive_seed(seed, 6));
    let pool = ConfigPool::train(&ctx, seeds.next_seed())?;
    privacy_sweep_from_pool(&ctx, &pool, scale, seeds.next_seed())
}

/// The Fig. 9 sweep given an already-trained pool.
///
/// # Errors
///
/// Propagates noisy-evaluation failures.
pub fn privacy_sweep_from_pool(
    ctx: &BenchmarkContext,
    pool: &ConfigPool,
    scale: &ExperimentScale,
    seed: u64,
) -> Result<PrivacySweep> {
    let population = ctx.dataset().num_val_clients();
    let mut seeds = SeedStream::new(seed);
    let mut series = Vec::new();
    for budget in PRIVACY_GRID {
        let mut points = Vec::new();
        for rate in subsample_rate_grid(population) {
            let noise = NoiseConfig::subsampled(rate).with_privacy(budget);
            let errors = simulated_rs_trials(
                pool,
                &noise,
                scale.num_configs,
                scale.num_configs,
                scale.bootstrap_trials,
                seeds.next_seed(),
            )?;
            points.push(SeriesPoint::from_error_rates(
                rate,
                rate_label(rate, population),
                &errors,
            )?);
        }
        series.push(SeriesGroup {
            name: format!("eps={}", budget.label()),
            points,
        });
    }
    Ok(PrivacySweep {
        benchmark: ctx.benchmark().name().to_string(),
        series,
    })
}

/// Renders Fig. 9 sweeps as a report.
pub fn privacy_report(sweeps: &[PrivacySweep]) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig9",
        "Differential privacy: RS under Laplace-perturbed evaluation (Fig. 9)",
    );
    for sweep in sweeps {
        for group in &sweep.series {
            report.push_group(SeriesGroup {
                name: format!("{} {}", sweep.benchmark, group.name),
                points: group.points.clone(),
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn privacy_sweep_shape_and_ordering() {
        let scale = ExperimentScale::smoke();
        let sweep = run_privacy_sweep(Benchmark::Cifar10Like, &scale, 0).unwrap();
        assert_eq!(sweep.series.len(), 5);
        assert_eq!(sweep.series[0].name, "eps=0.1");
        assert_eq!(sweep.series[4].name, "eps=inf");
        let grid_len = subsample_rate_grid(10).len();
        for s in &sweep.series {
            assert_eq!(s.points.len(), grid_len);
        }
        // Strict privacy with a single client should be no better than
        // non-private evaluation with a single client (medians compared).
        let strict_single = sweep.series[0].points[0].summary.median;
        let nonprivate_single = sweep.series[4].points[0].summary.median;
        assert!(strict_single + 1e-9 >= nonprivate_single - 20.0);
        // At ε = 0.1 with one client, selection should be close to random:
        // its median error is far above the non-private full-evaluation one.
        let strict = sweep.series[0].points[0].summary.median;
        let nonprivate_full = sweep.series[4].points.last().unwrap().summary.median;
        assert!(
            strict >= nonprivate_full - 1e-9,
            "strict DP ({strict}) should not beat non-private full evaluation ({nonprivate_full})"
        );
        let report = privacy_report(&[sweep]);
        assert!(report.to_table().contains("eps=inf"));
    }
}
