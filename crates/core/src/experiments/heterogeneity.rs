//! Fig. 4 (data heterogeneity), Fig. 6 (systems heterogeneity), and
//! Fig. 7 (global error vs. minimum client error).

use crate::context::BenchmarkContext;
use crate::experiments::{simulated_rs_trials, subsample_rate_grid};
use crate::noise::NoiseConfig;
use crate::pool::{validation_pool_with_iid_fraction, ConfigPool};
use crate::report::{rate_label, ExperimentReport, SeriesGroup, SeriesPoint};
use crate::scale::ExperimentScale;
use crate::Result;
use feddata::Benchmark;
use fedmath::stats::QuartileSummary;
use fedmath::SeedStream;
use serde::{Deserialize, Serialize};

/// Fig. 4 for one benchmark: one subsampling sweep per iid fraction `p`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataHeterogeneitySweep {
    /// Benchmark the sweep was run on.
    pub benchmark: String,
    /// One series per iid fraction (`p = 0`, `0.5`, `1`).
    pub series: Vec<SeriesGroup>,
}

/// Runs Fig. 4: the validation pool is repartitioned towards iid-ness with
/// fraction `p ∈ {0, 0.5, 1}` (training data untouched, §3.2), the pool of
/// trained configurations is re-evaluated on each partition, and the RS
/// bootstrap is repeated across subsampling rates.
///
/// # Errors
///
/// Propagates pool-training, repartitioning, and evaluation failures.
pub fn run_data_heterogeneity(
    benchmark: Benchmark,
    scale: &ExperimentScale,
    seed: u64,
) -> Result<DataHeterogeneitySweep> {
    let ctx = BenchmarkContext::new(benchmark, scale, seed)?;
    let mut seeds = SeedStream::new(fedmath::rng::derive_seed(seed, 3));
    let pool = ConfigPool::train(&ctx, seeds.next_seed())?;
    let population = ctx.dataset().num_val_clients();

    let mut series = Vec::new();
    for &p in &[0.0, 0.5, 1.0] {
        let mut partition_rng = seeds.next_rng();
        let val_clients = validation_pool_with_iid_fraction(&ctx, p, &mut partition_rng)?;
        let reevaluated = pool.reevaluate_on(&val_clients)?;
        let mut points = Vec::new();
        for rate in subsample_rate_grid(population) {
            let noise = NoiseConfig::subsampled(rate);
            let errors = simulated_rs_trials(
                &reevaluated,
                &noise,
                scale.num_configs,
                scale.num_configs,
                scale.bootstrap_trials,
                seeds.next_seed(),
            )?;
            points.push(SeriesPoint::from_error_rates(
                rate,
                rate_label(rate, population),
                &errors,
            )?);
        }
        series.push(SeriesGroup {
            name: format!("p={p}"),
            points,
        });
    }
    Ok(DataHeterogeneitySweep {
        benchmark: ctx.benchmark().name().to_string(),
        series,
    })
}

/// Renders Fig. 4 sweeps as a report.
pub fn data_heterogeneity_report(sweeps: &[DataHeterogeneitySweep]) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig4",
        "Data heterogeneity: RS under subsampling on repartitioned validation pools (Fig. 4)",
    );
    for sweep in sweeps {
        for group in &sweep.series {
            report.push_group(SeriesGroup {
                name: format!("{} {}", sweep.benchmark, group.name),
                points: group.points.clone(),
            });
        }
    }
    report
}

/// Fig. 6 for one benchmark: one subsampling sweep per systems-bias exponent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemsHeterogeneitySweep {
    /// Benchmark the sweep was run on.
    pub benchmark: String,
    /// One series per bias exponent (`b = 0, 1, 1.5, 3`).
    pub series: Vec<SeriesGroup>,
}

/// Runs Fig. 6: evaluation-client sampling is biased towards clients on which
/// the evaluated model performs well, with weight `(a + δ)^b`.
///
/// # Errors
///
/// Propagates pool-training and noisy-evaluation failures.
pub fn run_systems_heterogeneity(
    benchmark: Benchmark,
    scale: &ExperimentScale,
    seed: u64,
) -> Result<SystemsHeterogeneitySweep> {
    let ctx = BenchmarkContext::new(benchmark, scale, seed)?;
    let mut seeds = SeedStream::new(fedmath::rng::derive_seed(seed, 4));
    let pool = ConfigPool::train(&ctx, seeds.next_seed())?;
    systems_heterogeneity_from_pool(&ctx, &pool, scale, seeds.next_seed())
}

/// The Fig. 6 sweep given an already-trained pool.
///
/// # Errors
///
/// Propagates noisy-evaluation failures.
pub fn systems_heterogeneity_from_pool(
    ctx: &BenchmarkContext,
    pool: &ConfigPool,
    scale: &ExperimentScale,
    seed: u64,
) -> Result<SystemsHeterogeneitySweep> {
    let population = ctx.dataset().num_val_clients();
    // Common random numbers across bias series: each rate's trial seed is
    // derived from the rate's position only, so every `b` replays the same
    // bootstrap draws. This reduces cross-series variance and makes the
    // series *exactly* coincide at full evaluation, where bias cannot matter.
    let rate_seeds = fedmath::SeedTree::new(seed);
    let mut series = Vec::new();
    for &bias in &[0.0, 1.0, 1.5, 3.0] {
        let mut points = Vec::new();
        for (rate_idx, rate) in subsample_rate_grid(population).into_iter().enumerate() {
            let noise = NoiseConfig::subsampled(rate).with_systems_bias(bias);
            let errors = simulated_rs_trials(
                pool,
                &noise,
                scale.num_configs,
                scale.num_configs,
                scale.bootstrap_trials,
                rate_seeds.child(rate_idx as u64).seed(),
            )?;
            points.push(SeriesPoint::from_error_rates(
                rate,
                rate_label(rate, population),
                &errors,
            )?);
        }
        series.push(SeriesGroup {
            name: format!("b={bias}"),
            points,
        });
    }
    Ok(SystemsHeterogeneitySweep {
        benchmark: ctx.benchmark().name().to_string(),
        series,
    })
}

/// Renders Fig. 6 sweeps as a report.
pub fn systems_heterogeneity_report(sweeps: &[SystemsHeterogeneitySweep]) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig6",
        "Systems heterogeneity: accuracy-biased client sampling (Fig. 6)",
    );
    for sweep in sweeps {
        for group in &sweep.series {
            report.push_group(SeriesGroup {
                name: format!("{} {}", sweep.benchmark, group.name),
                points: group.points.clone(),
            });
        }
    }
    report
}

/// One point of the Fig. 7 scatter: a configuration's global (full
/// validation) error against its minimum per-client error.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MinClientPoint {
    /// Full-validation error, in percent.
    pub global_error_percent: f64,
    /// Minimum per-client error, in percent.
    pub min_client_error_percent: f64,
}

/// Fig. 7 for one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinClientScatter {
    /// Benchmark the scatter was computed on.
    pub benchmark: String,
    /// One point per pooled configuration.
    pub points: Vec<MinClientPoint>,
}

impl MinClientScatter {
    /// Fraction of configurations with poor global performance (error above
    /// `global_threshold`) but excellent performance on at least one client
    /// (minimum client error below `client_threshold`) — the lower-right
    /// corner of Fig. 7 that makes biased sampling catastrophic.
    pub fn deceptive_fraction(&self, global_threshold: f64, client_threshold: f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let count = self
            .points
            .iter()
            .filter(|p| {
                p.global_error_percent > global_threshold
                    && p.min_client_error_percent < client_threshold
            })
            .count();
        count as f64 / self.points.len() as f64
    }
}

/// Runs Fig. 7: plots every pooled configuration at
/// (global error, minimum client error).
///
/// # Errors
///
/// Propagates pool-training failures.
pub fn run_min_client_scatter(
    benchmark: Benchmark,
    scale: &ExperimentScale,
    seed: u64,
) -> Result<MinClientScatter> {
    let ctx = BenchmarkContext::new(benchmark, scale, seed)?;
    let pool = ConfigPool::train(&ctx, fedmath::rng::derive_seed(seed, 5))?;
    Ok(min_client_scatter_from_pool(&ctx, &pool))
}

/// The Fig. 7 scatter from an already-trained pool.
pub fn min_client_scatter_from_pool(ctx: &BenchmarkContext, pool: &ConfigPool) -> MinClientScatter {
    let points = pool
        .entries()
        .iter()
        .map(|e| MinClientPoint {
            global_error_percent: e.full_error * 100.0,
            min_client_error_percent: e.evaluation.min_client_error() * 100.0,
        })
        .collect();
    MinClientScatter {
        benchmark: ctx.benchmark().name().to_string(),
        points,
    }
}

/// Renders Fig. 7 scatters as a report (each configuration becomes one row).
pub fn min_client_report(scatters: &[MinClientScatter]) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig7",
        "Global error vs. minimum client error per configuration (Fig. 7)",
    );
    for scatter in scatters {
        let points = scatter
            .points
            .iter()
            .map(|p| SeriesPoint {
                x: p.global_error_percent,
                x_label: format!("{:.1}% global", p.global_error_percent),
                summary: QuartileSummary {
                    lower: p.min_client_error_percent,
                    median: p.min_client_error_percent,
                    upper: p.min_client_error_percent,
                    count: 1,
                },
            })
            .collect();
        report.push_group(SeriesGroup {
            name: scatter.benchmark.clone(),
            points,
        });
        report.push_note(format!(
            "{}: {:.0}% of configurations are globally poor (>60% error) yet have a client below 20% error",
            scatter.benchmark,
            scatter.deceptive_fraction(60.0, 20.0) * 100.0
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_heterogeneity_sweep_shape() {
        let scale = ExperimentScale::smoke();
        let sweep = run_data_heterogeneity(Benchmark::Cifar10Like, &scale, 0).unwrap();
        assert_eq!(sweep.series.len(), 3);
        let grid = subsample_rate_grid(10).len();
        for s in &sweep.series {
            assert_eq!(s.points.len(), grid);
        }
        // At full evaluation, heterogeneity has (almost) no effect: the
        // medians across p values must be close to each other.
        let full_medians: Vec<f64> = sweep
            .series
            .iter()
            .map(|s| s.points.last().unwrap().summary.median)
            .collect();
        let spread = fedmath::stats::max(&full_medians).unwrap()
            - fedmath::stats::min(&full_medians).unwrap();
        assert!(
            spread < 25.0,
            "full-evaluation medians should not diverge wildly, spread {spread}"
        );
        let report = data_heterogeneity_report(&[sweep]);
        assert!(report.to_table().contains("p=0"));
    }

    #[test]
    fn systems_heterogeneity_sweep_shape() {
        let scale = ExperimentScale::smoke();
        let sweep = run_systems_heterogeneity(Benchmark::Cifar10Like, &scale, 1).unwrap();
        assert_eq!(sweep.series.len(), 4);
        assert_eq!(sweep.series[0].name, "b=0");
        assert_eq!(sweep.series[3].name, "b=3");
        // At full evaluation, bias has no effect (all clients are used), so
        // the b=0 and b=3 medians coincide there.
        let full_b0 = sweep.series[0].points.last().unwrap().summary.median;
        let full_b3 = sweep.series[3].points.last().unwrap().summary.median;
        assert!((full_b0 - full_b3).abs() < 10.0);
        let report = systems_heterogeneity_report(&[sweep]);
        assert!(report.to_table().contains("b=1.5"));
    }

    #[test]
    fn min_client_scatter_shape() {
        let scale = ExperimentScale::smoke();
        let scatter = run_min_client_scatter(Benchmark::Cifar10Like, &scale, 2).unwrap();
        assert_eq!(scatter.points.len(), scale.pool_size);
        for p in &scatter.points {
            // The minimum client error can never exceed the global error by
            // definition of a minimum over clients... it CAN be lower, and it
            // can also be higher than the weighted mean only if weighting
            // differs; sanity-check ranges instead.
            assert!((0.0..=100.0).contains(&p.global_error_percent));
            assert!((0.0..=100.0).contains(&p.min_client_error_percent));
            assert!(p.min_client_error_percent <= p.global_error_percent + 50.0);
        }
        let frac = scatter.deceptive_fraction(0.0, 100.0);
        assert!((0.0..=1.0).contains(&frac));
        let report = min_client_report(&[scatter]);
        assert!(report.to_table().contains("fig7"));
    }
}
