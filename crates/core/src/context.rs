//! A benchmark dataset bundled with its search space and model architecture.

use crate::scale::ExperimentScale;
use crate::Result;
use feddata::{Benchmark, DatasetSpec, FederatedDataset};
use fedhpo::SearchSpace;
use fedmodels::ModelSpec;
use fedproxy::ConfigRunner;

/// Everything an experiment needs to evaluate hyperparameters on one of the
/// paper's four benchmarks: the generated federated dataset, the Appendix B
/// search space, and the model architecture for the dataset's task family.
#[derive(Debug, Clone)]
pub struct BenchmarkContext {
    benchmark: Benchmark,
    dataset: FederatedDataset,
    space: SearchSpace,
    model_spec: ModelSpec,
    scale: ExperimentScale,
}

impl BenchmarkContext {
    /// Generates the dataset for `benchmark` at the scale's data size and
    /// bundles it with the paper's search space and the default model.
    ///
    /// # Errors
    ///
    /// Propagates dataset-generation failures and scale validation.
    pub fn new(benchmark: Benchmark, scale: &ExperimentScale, seed: u64) -> Result<Self> {
        scale.validate()?;
        let dataset = DatasetSpec::benchmark(benchmark, scale.data_scale).generate(seed)?;
        let model_spec = ModelSpec::for_dataset(&dataset);
        Ok(BenchmarkContext {
            benchmark,
            dataset,
            space: SearchSpace::paper_default(),
            model_spec,
            scale: *scale,
        })
    }

    /// Replaces the search space (used by the search-space ablation, Fig. 13).
    pub fn with_space(mut self, space: SearchSpace) -> Self {
        self.space = space;
        self
    }

    /// The benchmark identity.
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// The generated federated dataset.
    pub fn dataset(&self) -> &FederatedDataset {
        &self.dataset
    }

    /// Mutable access to the dataset (used to repartition the validation
    /// pool for the heterogeneity experiments).
    pub fn dataset_mut(&mut self) -> &mut FederatedDataset {
        &mut self.dataset
    }

    /// The hyperparameter search space.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// The model architecture used for this benchmark.
    pub fn model_spec(&self) -> ModelSpec {
        self.model_spec
    }

    /// The experiment scale this context was built for.
    pub fn scale(&self) -> &ExperimentScale {
        &self.scale
    }

    /// A [`ConfigRunner`] that trains one configuration for the scale's
    /// per-configuration round budget on this benchmark.
    pub fn config_runner(&self) -> ConfigRunner {
        ConfigRunner::new(
            self.space.clone(),
            self.model_spec,
            self.scale.rounds_per_config,
        )
        .with_clients_per_round(self.scale.clients_per_round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_builds_for_every_benchmark() {
        let scale = ExperimentScale::smoke();
        for &b in &Benchmark::ALL {
            let ctx = BenchmarkContext::new(b, &scale, 0).unwrap();
            assert_eq!(ctx.benchmark(), b);
            assert_eq!(ctx.dataset().name(), b.name());
            assert_eq!(ctx.space().len(), 9);
            assert_eq!(ctx.scale(), &scale);
            assert_eq!(ctx.config_runner().rounds(), scale.rounds_per_config);
        }
    }

    #[test]
    fn model_spec_matches_task_family() {
        let scale = ExperimentScale::smoke();
        let image = BenchmarkContext::new(Benchmark::Cifar10Like, &scale, 0).unwrap();
        assert!(matches!(image.model_spec(), ModelSpec::Mlp { .. }));
        let text = BenchmarkContext::new(Benchmark::RedditLike, &scale, 0).unwrap();
        assert!(matches!(text.model_spec(), ModelSpec::Bigram { .. }));
    }

    #[test]
    fn with_space_replaces_search_space() {
        let scale = ExperimentScale::smoke();
        let ctx = BenchmarkContext::new(Benchmark::Cifar10Like, &scale, 0).unwrap();
        let nested = SearchSpace::paper_nested_lr_space(1).unwrap();
        let ctx = ctx.with_space(nested.clone());
        assert_eq!(ctx.space(), &nested);
    }

    #[test]
    fn invalid_scale_is_rejected() {
        let mut scale = ExperimentScale::smoke();
        scale.num_configs = 0;
        assert!(BenchmarkContext::new(Benchmark::Cifar10Like, &scale, 0).is_err());
    }

    #[test]
    fn dataset_mut_allows_repartitioning() {
        let scale = ExperimentScale::smoke();
        let mut ctx = BenchmarkContext::new(Benchmark::Cifar10Like, &scale, 0).unwrap();
        let n = ctx.dataset().num_val_clients();
        ctx.dataset_mut()
            .clients_mut(feddata::Split::Validation)
            .pop();
        assert_eq!(ctx.dataset().num_val_clients(), n - 1);
    }
}
