//! The parallel **batch driver** for ask/tell tuning schedulers.
//!
//! `fedhpo`'s [`Scheduler`] trait inverts tuner control flow — the method
//! *suggests* batches of [`TrialRequest`]s instead of calling the objective
//! itself — and this module supplies the driver that makes the inversion pay:
//! each suggested batch is executed through a [`BatchObjective`] (in
//! practice [`BatchFederatedObjective`], which fans the batch's distinct
//! trials out over the engine's [`TrialRunner`](crate::engine::TrialRunner)),
//! results are reported back in the deterministic batch order, and resource
//! accounting flows through the shared [`BudgetLedger`].
//!
//! Because every scheduler suggests deterministically and every
//! [`BatchFederatedObjective`] evaluation derives its randomness from the
//! request's coordinates, the produced [`TuningOutcome`] is **bit-identical**
//! under every execution policy and thread count (`tests/determinism.rs`) —
//! tuner-driven campaigns finally scale across cores without giving up
//! reproducibility.

use crate::objective::BatchFederatedObjective;
use crate::Result;
use fedhpo::{BudgetLedger, Scheduler, SearchSpace, TrialRequest, TrialResult, TuningOutcome};
use rand::rngs::StdRng;

/// An objective that evaluates a whole batch of trial requests at once.
///
/// Implementations decide how the batch executes (sequentially, across
/// threads, on remote workers); the returned results must be in request
/// order and independent of that choice.
pub trait BatchObjective {
    /// Evaluates every request, returning one result per request in order.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    fn evaluate_batch(&mut self, requests: &[TrialRequest]) -> Result<Vec<TrialResult>>;

    /// True (noise-free) objective values of the most recent
    /// [`evaluate_batch`](Self::evaluate_batch) call, aligned with its
    /// returned results — or `None` when the objective cannot separate truth
    /// from its reported scores. Recording wrappers (the `fedstore` trial
    /// ledger) use this to persist ground truth next to each noisy
    /// observation.
    fn last_true_errors(&self) -> Option<Vec<f64>> {
        None
    }
}

impl BatchObjective for BatchFederatedObjective<'_> {
    fn evaluate_batch(&mut self, requests: &[TrialRequest]) -> Result<Vec<TrialResult>> {
        BatchFederatedObjective::evaluate_batch(self, requests)
    }

    fn last_true_errors(&self) -> Option<Vec<f64>> {
        Some(self.last_batch_true_errors())
    }
}

/// Drives `scheduler` to completion against `objective`: suggest a batch,
/// evaluate it (parallel inside the objective), report every result in batch
/// order, repeat. The counterpart of `fedhpo::run_scheduler` with batch
/// fan-out instead of one-at-a-time evaluation.
///
/// # Errors
///
/// Propagates scheduler and objective errors, and fails if the scheduler
/// stalls (returns an empty batch while unfinished).
pub fn run_scheduled(
    scheduler: &mut dyn Scheduler,
    space: &SearchSpace,
    objective: &mut dyn BatchObjective,
    rng: &mut StdRng,
) -> Result<TuningOutcome> {
    let (outcome, finished) = run_scheduled_for(scheduler, space, objective, rng, None)?;
    debug_assert!(finished, "an unbounded run always finishes");
    Ok(outcome)
}

/// [`run_scheduled`] with an optional interruption point: drives at most
/// `max_batches` suggest → evaluate → report cycles and returns the outcome
/// so far plus whether the schedule completed.
///
/// Interrupting at a batch boundary leaves every suggested request evaluated
/// and reported, which is the invariant store-backed resumption relies on: a
/// fresh scheduler re-driven with the same seed re-suggests the interrupted
/// campaign's prefix verbatim, a recording objective (`fedstore`) serves
/// those requests from the trial ledger without recomputation, and the
/// campaign continues bit-identically to an uninterrupted run.
///
/// # Errors
///
/// Propagates scheduler and objective errors, and fails if the scheduler
/// stalls (returns an empty batch while unfinished).
pub fn run_scheduled_for(
    scheduler: &mut dyn Scheduler,
    space: &SearchSpace,
    objective: &mut dyn BatchObjective,
    rng: &mut StdRng,
    max_batches: Option<usize>,
) -> Result<(TuningOutcome, bool)> {
    let mut outcome = TuningOutcome::default();
    let mut ledger = BudgetLedger::new();
    let mut batches = 0usize;
    while !scheduler.is_finished() {
        if max_batches.is_some_and(|max| batches >= max) {
            return Ok((outcome, false));
        }
        let batch = scheduler.suggest(space, rng)?;
        if batch.is_empty() {
            if scheduler.is_finished() {
                break;
            }
            return Err(crate::CoreError::InvalidConfig {
                message: format!(
                    "scheduler {} stalled: empty batch while unfinished",
                    scheduler.name()
                ),
            });
        }
        let results = objective.evaluate_batch(&batch)?;
        for result in &results {
            outcome.push(ledger.record(result));
            scheduler.report(result)?;
        }
        batches += 1;
    }
    Ok((outcome, true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::BenchmarkContext;
    use crate::noise::NoiseConfig;
    use crate::scale::ExperimentScale;
    use feddata::Benchmark;
    use fedhpo::{Asha, HpConfig, IntoScheduler, RandomSearch, Tuner};
    use fedmath::rng::rng_for;

    /// A batch objective scoring configurations analytically, recording the
    /// batch sizes it saw.
    struct AnalyticBatchObjective {
        batch_sizes: Vec<usize>,
    }

    impl BatchObjective for AnalyticBatchObjective {
        fn evaluate_batch(&mut self, requests: &[TrialRequest]) -> Result<Vec<TrialResult>> {
            self.batch_sizes.push(requests.len());
            Ok(requests
                .iter()
                .map(|r| {
                    let x = r.config.values()[0];
                    TrialResult::of(r, (x - 0.3).abs() + 1.0 / (r.resource as f64 + 1.0))
                })
                .collect())
        }
    }

    fn space_1d() -> fedhpo::SearchSpace {
        fedhpo::SearchSpace::new()
            .with_uniform("x", 0.0, 1.0)
            .unwrap()
    }

    #[test]
    fn random_search_arrives_as_one_batch() {
        let mut scheduler = RandomSearch::new(8, 2).scheduler().unwrap();
        let mut objective = AnalyticBatchObjective {
            batch_sizes: Vec::new(),
        };
        let mut rng = rng_for(0, 0);
        let outcome = run_scheduled(&mut scheduler, &space_1d(), &mut objective, &mut rng).unwrap();
        assert_eq!(objective.batch_sizes, vec![8]);
        assert_eq!(outcome.num_evaluations(), 8);
        assert_eq!(outcome.total_resource(), 16);
    }

    #[test]
    fn batched_asha_matches_sequential_tuner_outcome() {
        // The batch driver over an analytic objective must agree exactly with
        // fedhpo's sequential reference driver on the same scheduler.
        let asha = Asha::new(9, 3, 1, 9);
        let mut scheduler = asha.scheduler().unwrap();
        let mut batch_objective = AnalyticBatchObjective {
            batch_sizes: Vec::new(),
        };
        let mut rng = rng_for(1, 0);
        let batched =
            run_scheduled(&mut scheduler, &space_1d(), &mut batch_objective, &mut rng).unwrap();
        assert!(batch_objective.batch_sizes[0] >= 9);

        let mut sequential_objective =
            fedhpo::FunctionObjective::new(|config: &HpConfig, resource: usize| {
                let x = config.values()[0];
                (x - 0.3).abs() + 1.0 / (resource as f64 + 1.0)
            });
        let mut rng = rng_for(1, 0);
        let sequential = asha
            .tune(&space_1d(), &mut sequential_objective, &mut rng)
            .unwrap();
        assert_eq!(batched, sequential);
    }

    #[test]
    fn bounded_driver_interrupts_at_batch_boundaries() {
        // ASHA suggests rung by rung; capping at one batch stops after the
        // first rung with the outcome so far, and an uncapped re-drive with
        // the same seed reproduces the full run exactly.
        let asha = Asha::new(9, 3, 1, 9);
        let run_until = |max_batches: Option<usize>| {
            let mut scheduler = asha.scheduler().unwrap();
            let mut objective = AnalyticBatchObjective {
                batch_sizes: Vec::new(),
            };
            let mut rng = rng_for(3, 0);
            run_scheduled_for(
                &mut scheduler,
                &space_1d(),
                &mut objective,
                &mut rng,
                max_batches,
            )
            .unwrap()
        };
        let (full, finished) = run_until(None);
        assert!(finished);
        let (first_rung, finished) = run_until(Some(1));
        assert!(!finished);
        assert!(first_rung.num_evaluations() < full.num_evaluations());
        // The interrupted prefix is exactly the head of the full run.
        assert_eq!(
            full.records()[..first_rung.num_evaluations()],
            *first_rung.records()
        );
        let (rerun, finished) = run_until(Some(usize::MAX));
        assert!(finished);
        assert_eq!(full, rerun);
    }

    #[test]
    fn batch_objective_exposes_true_errors_of_the_last_batch() {
        let ctx =
            BenchmarkContext::new(Benchmark::Cifar10Like, &ExperimentScale::smoke(), 0).unwrap();
        let mut objective =
            BatchFederatedObjective::new(&ctx, NoiseConfig::paper_noisy(), 2, 5).unwrap();
        let dyn_objective: &mut dyn BatchObjective = &mut objective;
        assert_eq!(dyn_objective.last_true_errors(), Some(Vec::new()));
        let mut rng = rng_for(4, 0);
        let requests: Vec<TrialRequest> = (0..2)
            .map(|t| TrialRequest {
                trial_id: t,
                config: ctx.space().sample(&mut rng).unwrap(),
                resource: 2,
                noise_rep: 0,
            })
            .collect();
        let results = dyn_objective.evaluate_batch(&requests).unwrap();
        let trues = dyn_objective.last_true_errors().unwrap();
        assert_eq!(trues.len(), results.len());
        // Under noise, truth and reported score differ; the log agrees.
        for (entry, true_error) in objective.log().iter().zip(&trues) {
            assert_eq!(entry.true_error, *true_error);
        }
        // An objective without truth introspection reports None.
        let mut analytic = AnalyticBatchObjective {
            batch_sizes: Vec::new(),
        };
        let dyn_analytic: &mut dyn BatchObjective = &mut analytic;
        assert!(dyn_analytic.last_true_errors().is_none());
    }

    #[test]
    fn drives_the_federated_batch_objective() {
        let ctx =
            BenchmarkContext::new(Benchmark::Cifar10Like, &ExperimentScale::smoke(), 0).unwrap();
        let tuner = RandomSearch::new(3, 2);
        let mut scheduler = tuner.scheduler().unwrap();
        let mut objective =
            BatchFederatedObjective::new(&ctx, NoiseConfig::noiseless(), 3, 5).unwrap();
        let mut rng = rng_for(2, 0);
        let outcome = run_scheduled(&mut scheduler, ctx.space(), &mut objective, &mut rng).unwrap();
        assert_eq!(outcome.num_evaluations(), 3);
        assert_eq!(objective.log().len(), 3);
        assert_eq!(objective.cumulative_rounds(), 6);
        assert!(outcome.best().unwrap().score.is_finite());
    }
}
