//! The drivers for ask/tell tuning schedulers: the barrier-synchronous
//! **batch driver** and the **event-driven virtual-time executor**.
//!
//! `fedhpo`'s [`Scheduler`] trait inverts tuner control flow — the method
//! *suggests* batches of [`TrialRequest`]s instead of calling the objective
//! itself — and this module supplies the drivers that make the inversion pay.
//!
//! [`run_scheduled`] is the barrier driver: each suggested batch is executed
//! through a [`BatchObjective`] (in practice [`BatchFederatedObjective`],
//! which fans the batch's distinct trials out over the engine's
//! [`TrialRunner`](crate::engine::TrialRunner)), results are reported back in
//! the deterministic batch order, and resource accounting flows through the
//! shared [`BudgetLedger`].
//!
//! [`run_event_driven`] replaces the barrier with a **deterministic
//! discrete-event simulation** over `fedsim`'s virtual clock: a pool of
//! *virtual* workers pulls trials as they free up, every evaluation's
//! simulated runtime comes from a [`CostModel`] keyed by the point's
//! canonical fingerprint, completions are delivered to
//! [`Scheduler::report`] in total `(sim_time, key)` order, and
//! [`Scheduler::async_capable`] schedulers (async ASHA) are re-polled on
//! every completion — promote-on-completion with no rung barrier, the
//! paper's actual adaptive-allocation algorithm. Campaign budgets can be
//! expressed in **simulated wall-clock** seconds on top of training rounds.
//!
//! Because every scheduler suggests deterministically, every
//! [`BatchFederatedObjective`] evaluation derives its randomness from the
//! request's coordinates, and the virtual timeline is a pure function of the
//! schedule and cost model, the produced [`TuningOutcome`] — including its
//! virtual timeline — is **bit-identical** under every execution policy and
//! real thread count (`tests/determinism.rs`).

use crate::objective::BatchFederatedObjective;
use crate::Result;
use fedhpo::{BudgetLedger, Scheduler, SearchSpace, TrialRequest, TrialResult, TuningOutcome};
use fedsim::clock::{CostModel, EventKey, EventQueue, VirtualClock, WorkerPool};
use fedtrace::{ClockDomain, EventKind, TrialSpan};
use rand::rngs::StdRng;
use std::collections::{HashMap, VecDeque};

/// An objective that evaluates a whole batch of trial requests at once.
///
/// Implementations decide how the batch executes (sequentially, across
/// threads, on remote workers); the returned results must be in request
/// order and independent of that choice.
pub trait BatchObjective {
    /// Evaluates every request, returning one result per request in order.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    fn evaluate_batch(&mut self, requests: &[TrialRequest]) -> Result<Vec<TrialResult>>;

    /// True (noise-free) objective values of the most recent
    /// [`evaluate_batch`](Self::evaluate_batch) call, aligned with its
    /// returned results — or `None` when the objective cannot separate truth
    /// from its reported scores. Recording wrappers (the `fedstore` trial
    /// ledger) use this to persist ground truth next to each noisy
    /// observation.
    fn last_true_errors(&self) -> Option<Vec<f64>> {
        None
    }

    /// [`evaluate_batch`](Self::evaluate_batch) with each request's
    /// **simulated completion time** supplied by the event-driven driver
    /// (`sim_times[i]` belongs to `requests[i]`). Objectives that keep a
    /// campaign log should stamp the entries with these times; the default
    /// simply ignores them, which is always correct for scoring because
    /// evaluations are pure functions of their request coordinates.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    fn evaluate_batch_at(
        &mut self,
        requests: &[TrialRequest],
        sim_times: &[f64],
    ) -> Result<Vec<TrialResult>> {
        debug_assert_eq!(requests.len(), sim_times.len());
        self.evaluate_batch(requests)
    }
}

impl BatchObjective for BatchFederatedObjective<'_> {
    fn evaluate_batch(&mut self, requests: &[TrialRequest]) -> Result<Vec<TrialResult>> {
        BatchFederatedObjective::evaluate_batch(self, requests)
    }

    fn last_true_errors(&self) -> Option<Vec<f64>> {
        Some(self.last_batch_true_errors())
    }

    fn evaluate_batch_at(
        &mut self,
        requests: &[TrialRequest],
        sim_times: &[f64],
    ) -> Result<Vec<TrialResult>> {
        BatchFederatedObjective::evaluate_batch_at(self, requests, sim_times)
    }
}

/// Drives `scheduler` to completion against `objective`: suggest a batch,
/// evaluate it (parallel inside the objective), report every result in batch
/// order, repeat. The counterpart of `fedhpo::run_scheduler` with batch
/// fan-out instead of one-at-a-time evaluation.
///
/// # Errors
///
/// Propagates scheduler and objective errors, and fails if the scheduler
/// stalls (returns an empty batch while unfinished).
pub fn run_scheduled(
    scheduler: &mut dyn Scheduler,
    space: &SearchSpace,
    objective: &mut dyn BatchObjective,
    rng: &mut StdRng,
) -> Result<TuningOutcome> {
    let (outcome, finished) = run_scheduled_for(scheduler, space, objective, rng, None)?;
    debug_assert!(finished, "an unbounded run always finishes");
    Ok(outcome)
}

/// [`run_scheduled`] with an optional interruption point: drives at most
/// `max_batches` suggest → evaluate → report cycles and returns the outcome
/// so far plus whether the schedule completed.
///
/// Interrupting at a batch boundary leaves every suggested request evaluated
/// and reported, which is the invariant store-backed resumption relies on: a
/// fresh scheduler re-driven with the same seed re-suggests the interrupted
/// campaign's prefix verbatim, a recording objective (`fedstore`) serves
/// those requests from the trial ledger without recomputation, and the
/// campaign continues bit-identically to an uninterrupted run.
///
/// # Errors
///
/// Propagates scheduler and objective errors, and fails if the scheduler
/// stalls (returns an empty batch while unfinished).
pub fn run_scheduled_for(
    scheduler: &mut dyn Scheduler,
    space: &SearchSpace,
    objective: &mut dyn BatchObjective,
    rng: &mut StdRng,
    max_batches: Option<usize>,
) -> Result<(TuningOutcome, bool)> {
    let mut outcome = TuningOutcome::default();
    let mut ledger = BudgetLedger::new();
    let mut batches = 0usize;
    while !scheduler.is_finished() {
        if max_batches.is_some_and(|max| batches >= max) {
            return Ok((outcome, false));
        }
        let batch = scheduler.suggest(space, rng)?;
        if batch.is_empty() {
            if scheduler.is_finished() {
                break;
            }
            return Err(crate::CoreError::InvalidConfig {
                message: format!(
                    "scheduler {} stalled: empty batch while unfinished",
                    scheduler.name()
                ),
            });
        }
        let results = objective.evaluate_batch(&batch)?;
        for result in &results {
            outcome.push(ledger.record(result));
            scheduler.report(result)?;
        }
        batches += 1;
    }
    Ok((outcome, true))
}

/// Configuration of the event-driven virtual-time executor: how many
/// *virtual* workers the simulated tuning service runs, what each evaluation
/// costs in simulated seconds, and an optional simulated wall-clock budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VirtualExecution {
    /// Number of virtual workers trials are scheduled onto. Independent of
    /// the real thread count — real parallelism lives inside the batch
    /// objective and never changes the virtual timeline.
    pub workers: usize,
    /// Simulated runtime of each evaluation.
    pub cost: CostModel,
    /// Optional simulated wall-clock budget in virtual seconds: no
    /// evaluation *starts* at or after this deadline (in-flight evaluations
    /// still complete and report), and no further work is suggested once the
    /// clock reaches it.
    pub sim_budget: Option<f64>,
}

impl VirtualExecution {
    /// A virtual service with `workers` workers and the given cost model,
    /// with no wall-clock budget.
    pub fn new(workers: usize, cost: CostModel) -> Self {
        VirtualExecution {
            workers,
            cost,
            sim_budget: None,
        }
    }

    /// Sets a simulated wall-clock budget in virtual seconds.
    #[must_use]
    pub fn with_sim_budget(mut self, sim_budget: f64) -> Self {
        self.sim_budget = Some(sim_budget);
        self
    }

    fn validate(&self) -> Result<()> {
        self.cost.validate()?;
        let budget_ok = self.sim_budget.is_none_or(|b| b.is_finite() && b > 0.0);
        if self.workers == 0 || !budget_ok {
            return Err(crate::CoreError::InvalidConfig {
                message: format!("invalid virtual execution: {self:?}"),
            });
        }
        Ok(())
    }
}

/// The result of one event-driven campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct EventDrivenOutcome {
    /// The evaluation history in **virtual completion order**, every record
    /// stamped with its simulated completion time.
    pub outcome: TuningOutcome,
    /// The simulated wall-clock the campaign took (the virtual clock at the
    /// last delivered completion).
    pub sim_elapsed: f64,
    /// Whether the schedule ran to completion (`false` when a simulated
    /// wall-clock budget cut it off).
    pub finished: bool,
    /// The virtual-time execution timeline: one [`TrialSpan`] per dispatched
    /// evaluation, in dispatch order, carrying its virtual worker and
    /// simulated start/end. Collected unconditionally — it is part of the
    /// result, not tracing output, so its bits are covered by the driver's
    /// determinism contract (and the replay identity asserted in
    /// `tests/determinism.rs`). Export it with
    /// [`fedtrace::virtual_timeline_json`].
    pub timeline: Vec<TrialSpan>,
}

/// Per-campaign driver metrics on a [`fedtrace::Trace`] registry, all
/// prefixed with the scheduler's name. Pure accounting: the driver writes
/// them and never reads them back.
struct DriverMetrics {
    suggests: fedtrace::Counter,
    reports: fedtrace::Counter,
    dispatched: fedtrace::Counter,
    promotions: fedtrace::Counter,
    queue_depth: fedtrace::Histogram,
    busy_workers: fedtrace::Histogram,
    rung_resource: fedtrace::Histogram,
}

impl DriverMetrics {
    fn register(trace: &fedtrace::Trace, scheduler: &str) -> Self {
        let registry = trace.registry();
        DriverMetrics {
            suggests: registry.counter(&format!("{scheduler}.suggests")),
            reports: registry.counter(&format!("{scheduler}.reports")),
            dispatched: registry.counter(&format!("{scheduler}.dispatched")),
            promotions: registry.counter(&format!("{scheduler}.promotions")),
            queue_depth: registry.histogram(&format!("{scheduler}.queue_depth")),
            busy_workers: registry.histogram(&format!("{scheduler}.busy_workers")),
            rung_resource: registry.histogram(&format!("{scheduler}.rung_resource")),
        }
    }
}

/// Drives `scheduler` through a **deterministic discrete-event simulation**:
/// a virtual [`WorkerPool`] of `sim.workers` workers executes suggested
/// requests, each costing [`CostModel::evaluation_seconds`] simulated
/// seconds (keyed by the configuration's canonical fingerprint and its
/// incremental training span), and completions are delivered to
/// [`Scheduler::report`] in total `(sim_time, trial key)` order through an
/// [`EventQueue`].
///
/// Polling discipline — the heart of the sync/async distinction:
///
/// - **Barrier schedulers** (`async_capable() == false`, every classic
///   method) are only polled when no results are outstanding, and each
///   suggested batch is committed to the virtual workers in batch order.
///   With the homogeneous [`CostModel::Unit`] this performs *exactly* the
///   evaluations [`run_scheduled`] performs, so selections reproduce the
///   barrier driver bit for bit (asserted in the tests below); heterogeneous
///   costs only change *when* results land, never *what* is evaluated.
/// - **Async schedulers** ([`fedhpo::AsyncAsha`]) are re-polled on **every**
///   completion, and newly suggested work (promotions) jumps ahead of
///   queued fresh configurations, while only idle virtual workers accept
///   work — one slow trial no longer stalls a rung, which is the paper's
///   actual asynchronous successive halving.
///
/// Real-compute parallelism is orthogonal: all requests dispatched at one
/// virtual instant are evaluated as one real batch (fanned out by the
/// objective), and since scores and costs are pure functions of request
/// coordinates, the entire outcome **including its virtual timeline** is
/// bit-identical across real thread counts.
///
/// # Errors
///
/// Propagates scheduler, objective, and cost-model errors, and fails if the
/// scheduler stalls (no outstanding work, no queued work, and an empty
/// suggestion while unfinished).
pub fn run_event_driven(
    scheduler: &mut dyn Scheduler,
    space: &SearchSpace,
    objective: &mut dyn BatchObjective,
    rng: &mut StdRng,
    sim: &VirtualExecution,
) -> Result<EventDrivenOutcome> {
    // `FEDTUNE_TRACE=1` turns on the process-global trace for every caller
    // without a signature change; the determinism suite asserts that this
    // cannot move a result bit.
    run_event_driven_traced(
        scheduler,
        space,
        objective,
        rng,
        sim,
        fedtrace::global_if_enabled(),
    )
}

/// [`run_event_driven`] with an explicit observability scope.
///
/// When `trace` is `Some`, the driver registers counters and histograms
/// under the scheduler's name (`<name>.suggests`, `<name>.reports`,
/// `<name>.dispatched`, `<name>.promotions`, `<name>.queue_depth`,
/// `<name>.busy_workers`, `<name>.rung_resource`) and journals campaign
/// boundaries plus one sim-domain instant per delivered completion.
///
/// **Accounting, never semantics**: metrics are write-only from the
/// driver's point of view, so `None` and `Some` produce bit-identical
/// [`EventDrivenOutcome`]s — including the [`EventDrivenOutcome::timeline`],
/// which is collected unconditionally as part of the result.
///
/// # Errors
///
/// Exactly [`run_event_driven`]'s conditions.
pub fn run_event_driven_traced(
    scheduler: &mut dyn Scheduler,
    space: &SearchSpace,
    objective: &mut dyn BatchObjective,
    rng: &mut StdRng,
    sim: &VirtualExecution,
    trace: Option<&fedtrace::Trace>,
) -> Result<EventDrivenOutcome> {
    sim.validate()?;
    let async_mode = scheduler.async_capable();
    let mut clock = VirtualClock::new();
    let mut pool = WorkerPool::new(sim.workers)?;
    let mut events: EventQueue<TrialResult> = EventQueue::new();
    let mut queue: VecDeque<TrialRequest> = VecDeque::new();
    // Rounds each trial's training run has been simulated to, mirroring the
    // objective's resume logic so costs charge only incremental rounds.
    let mut trained: HashMap<usize, usize> = HashMap::new();
    let mut outstanding = 0usize;
    let mut ledger = BudgetLedger::new();
    let mut outcome = TuningOutcome::default();
    let mut timeline: Vec<TrialSpan> = Vec::new();
    let metrics = trace.map(|t| DriverMetrics::register(t, scheduler.name()));
    if let Some(t) = trace {
        t.journal()
            .record_boundary(ClockDomain::Sim, EventKind::Begin, "campaign", 0.0);
    }

    loop {
        let within_budget = sim.sim_budget.is_none_or(|b| clock.now() < b);

        // 1. Poll the scheduler whenever its contract allows: between batches
        //    for barrier schedulers, at any time for async ones. Fresh
        //    suggestions go to the *front* of the dispatch queue so async
        //    promotions overtake queued fresh configurations.
        if within_budget && !scheduler.is_finished() && (outstanding == 0 || async_mode) {
            let batch = scheduler.suggest(space, rng)?;
            if batch.is_empty() && outstanding == 0 && queue.is_empty() && !scheduler.is_finished()
            {
                return Err(crate::CoreError::InvalidConfig {
                    message: format!(
                        "scheduler {} stalled: empty batch while unfinished",
                        scheduler.name()
                    ),
                });
            }
            if let Some(m) = &metrics {
                m.suggests.incr();
                m.queue_depth.observe(batch.len() as u64);
            }
            for request in batch.into_iter().rev() {
                queue.push_front(request);
            }
        }

        // 2. Dispatch queued requests to virtual workers. Barrier schedulers
        //    commit the whole batch (workers serialize it); async schedulers
        //    only fill workers that are idle *now*, so the next completion
        //    can re-poll before the remaining queue is committed.
        let mut dispatched: Vec<(TrialRequest, f64)> = Vec::new();
        while !queue.is_empty() {
            let (worker, free_at) = pool.next_free();
            if async_mode && free_at > clock.now() {
                break;
            }
            // The service stops handing out work at the deadline: a request
            // whose start would land on or past the budget is never
            // dispatched (and since `next_free` is the earliest worker, no
            // later request could start sooner — stop here).
            let start = free_at.max(clock.now());
            if sim.sim_budget.is_some_and(|b| start >= b) {
                break;
            }
            let request = queue.pop_front().expect("queue checked non-empty");
            let fingerprint = space.canonical_fingerprint(&request.config)?;
            let already = trained.get(&request.trial_id).copied().unwrap_or(0);
            let reached = already.max(request.resource);
            let seconds = sim.cost.evaluation_seconds(fingerprint, already, reached);
            trained.insert(request.trial_id, reached);
            let completion = pool.assign(worker, start, seconds)?;
            timeline.push(TrialSpan {
                trial: request.trial_id as u64,
                resource: request.resource as u64,
                rep: request.noise_rep,
                worker: worker as u64,
                start,
                end: completion,
            });
            if let Some(m) = &metrics {
                m.dispatched.incr();
                m.rung_resource.observe(request.resource as u64);
                if already > 0 {
                    // Re-dispatching a trained trial is a promotion (ASHA) or
                    // a resume/re-evaluation (fresh-noise reps).
                    m.promotions.incr();
                }
            }
            dispatched.push((request, completion));
        }
        if let Some(m) = &metrics {
            if !dispatched.is_empty() {
                m.busy_workers.observe(pool.busy_at(clock.now()) as u64);
            }
        }
        if !dispatched.is_empty() {
            let requests: Vec<TrialRequest> = dispatched.iter().map(|(r, _)| r.clone()).collect();
            let times: Vec<f64> = dispatched.iter().map(|(_, t)| *t).collect();
            let results = objective.evaluate_batch_at(&requests, &times)?;
            if results.len() != requests.len() {
                return Err(crate::CoreError::InvalidConfig {
                    message: format!(
                        "objective returned {} results for {} requests",
                        results.len(),
                        requests.len()
                    ),
                });
            }
            for ((request, completion), result) in dispatched.iter().zip(results) {
                let key = EventKey::new(
                    request.trial_id as u64,
                    request.resource as u64,
                    request.noise_rep,
                );
                events.push(*completion, key, result).map_err(|e| {
                    crate::CoreError::InvalidConfig {
                        message: format!("virtual event queue rejected a completion: {e}"),
                    }
                })?;
            }
            outstanding += dispatched.len();
        }

        // 3. Deliver the earliest completion: advance the virtual clock,
        //    record the result at its completion instant, and report it.
        match events.pop() {
            Some((time, key, result)) => {
                clock.advance_to(time)?;
                outcome.push(ledger.record_at(&result, time));
                scheduler.report(&result)?;
                outstanding -= 1;
                if let Some(m) = &metrics {
                    m.reports.incr();
                }
                if let Some(t) = trace {
                    t.journal().record_instant(
                        ClockDomain::Sim,
                        "trial.complete",
                        time,
                        key.trial,
                        key.resource,
                    );
                }
            }
            None => break,
        }
    }

    if let Some(t) = trace {
        t.journal()
            .record_boundary(ClockDomain::Sim, EventKind::End, "campaign", clock.now());
    }
    Ok(EventDrivenOutcome {
        sim_elapsed: clock.now(),
        finished: scheduler.is_finished(),
        outcome,
        timeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::BenchmarkContext;
    use crate::noise::NoiseConfig;
    use crate::scale::ExperimentScale;
    use feddata::Benchmark;
    use fedhpo::{Asha, HpConfig, IntoScheduler, RandomSearch, Tuner};
    use fedmath::rng::rng_for;

    /// A batch objective scoring configurations analytically, recording the
    /// batch sizes it saw.
    struct AnalyticBatchObjective {
        batch_sizes: Vec<usize>,
    }

    impl BatchObjective for AnalyticBatchObjective {
        fn evaluate_batch(&mut self, requests: &[TrialRequest]) -> Result<Vec<TrialResult>> {
            self.batch_sizes.push(requests.len());
            Ok(requests
                .iter()
                .map(|r| {
                    let x = r.config.values()[0];
                    TrialResult::of(r, (x - 0.3).abs() + 1.0 / (r.resource as f64 + 1.0))
                })
                .collect())
        }
    }

    fn space_1d() -> fedhpo::SearchSpace {
        fedhpo::SearchSpace::new()
            .with_uniform("x", 0.0, 1.0)
            .unwrap()
    }

    #[test]
    fn random_search_arrives_as_one_batch() {
        let mut scheduler = RandomSearch::new(8, 2).scheduler().unwrap();
        let mut objective = AnalyticBatchObjective {
            batch_sizes: Vec::new(),
        };
        let mut rng = rng_for(0, 0);
        let outcome = run_scheduled(&mut scheduler, &space_1d(), &mut objective, &mut rng).unwrap();
        assert_eq!(objective.batch_sizes, vec![8]);
        assert_eq!(outcome.num_evaluations(), 8);
        assert_eq!(outcome.total_resource(), 16);
    }

    #[test]
    fn batched_asha_matches_sequential_tuner_outcome() {
        // The batch driver over an analytic objective must agree exactly with
        // fedhpo's sequential reference driver on the same scheduler.
        let asha = Asha::new(9, 3, 1, 9);
        let mut scheduler = asha.scheduler().unwrap();
        let mut batch_objective = AnalyticBatchObjective {
            batch_sizes: Vec::new(),
        };
        let mut rng = rng_for(1, 0);
        let batched =
            run_scheduled(&mut scheduler, &space_1d(), &mut batch_objective, &mut rng).unwrap();
        assert!(batch_objective.batch_sizes[0] >= 9);

        let mut sequential_objective =
            fedhpo::FunctionObjective::new(|config: &HpConfig, resource: usize| {
                let x = config.values()[0];
                (x - 0.3).abs() + 1.0 / (resource as f64 + 1.0)
            });
        let mut rng = rng_for(1, 0);
        let sequential = asha
            .tune(&space_1d(), &mut sequential_objective, &mut rng)
            .unwrap();
        assert_eq!(batched, sequential);
    }

    #[test]
    fn bounded_driver_interrupts_at_batch_boundaries() {
        // ASHA suggests rung by rung; capping at one batch stops after the
        // first rung with the outcome so far, and an uncapped re-drive with
        // the same seed reproduces the full run exactly.
        let asha = Asha::new(9, 3, 1, 9);
        let run_until = |max_batches: Option<usize>| {
            let mut scheduler = asha.scheduler().unwrap();
            let mut objective = AnalyticBatchObjective {
                batch_sizes: Vec::new(),
            };
            let mut rng = rng_for(3, 0);
            run_scheduled_for(
                &mut scheduler,
                &space_1d(),
                &mut objective,
                &mut rng,
                max_batches,
            )
            .unwrap()
        };
        let (full, finished) = run_until(None);
        assert!(finished);
        let (first_rung, finished) = run_until(Some(1));
        assert!(!finished);
        assert!(first_rung.num_evaluations() < full.num_evaluations());
        // The interrupted prefix is exactly the head of the full run.
        assert_eq!(
            full.records()[..first_rung.num_evaluations()],
            *first_rung.records()
        );
        let (rerun, finished) = run_until(Some(usize::MAX));
        assert!(finished);
        assert_eq!(full, rerun);
    }

    #[test]
    fn batch_objective_exposes_true_errors_of_the_last_batch() {
        let ctx =
            BenchmarkContext::new(Benchmark::Cifar10Like, &ExperimentScale::smoke(), 0).unwrap();
        let mut objective =
            BatchFederatedObjective::new(&ctx, NoiseConfig::paper_noisy(), 2, 5).unwrap();
        let dyn_objective: &mut dyn BatchObjective = &mut objective;
        assert_eq!(dyn_objective.last_true_errors(), Some(Vec::new()));
        let mut rng = rng_for(4, 0);
        let requests: Vec<TrialRequest> = (0..2)
            .map(|t| TrialRequest {
                trial_id: t,
                config: ctx.space().sample(&mut rng).unwrap(),
                resource: 2,
                noise_rep: 0,
            })
            .collect();
        let results = dyn_objective.evaluate_batch(&requests).unwrap();
        let trues = dyn_objective.last_true_errors().unwrap();
        assert_eq!(trues.len(), results.len());
        // Under noise, truth and reported score differ; the log agrees.
        for (entry, true_error) in objective.log().iter().zip(&trues) {
            assert_eq!(entry.true_error, *true_error);
        }
        // An objective without truth introspection reports None.
        let mut analytic = AnalyticBatchObjective {
            batch_sizes: Vec::new(),
        };
        let dyn_analytic: &mut dyn BatchObjective = &mut analytic;
        assert!(dyn_analytic.last_true_errors().is_none());
    }

    #[test]
    fn virtual_execution_validates() {
        assert!(VirtualExecution::new(0, CostModel::Unit)
            .validate()
            .is_err());
        assert!(VirtualExecution::new(4, CostModel::Unit).validate().is_ok());
        assert!(VirtualExecution::new(
            4,
            CostModel::PerRound {
                round_seconds: -1.0,
                eval_seconds: 0.0
            }
        )
        .validate()
        .is_err());
        assert!(VirtualExecution::new(4, CostModel::Unit)
            .with_sim_budget(0.0)
            .validate()
            .is_err());
        assert!(VirtualExecution::new(4, CostModel::Unit)
            .with_sim_budget(f64::NAN)
            .validate()
            .is_err());
        assert!(VirtualExecution::new(4, CostModel::Unit)
            .with_sim_budget(10.0)
            .validate()
            .is_ok());
    }

    /// The regression satellite: with the homogeneous unit-cost model the
    /// event-driven executor performs exactly the evaluations the barrier
    /// driver performs, so every `TuningMethod::EXTENDED` entry reproduces
    /// `run_scheduled`'s selections bit for bit, at any worker count.
    #[test]
    fn event_driven_unit_cost_reproduces_run_scheduled_selections() {
        use crate::experiments::methods::TuningMethod;
        let scale = crate::scale::ExperimentScale::smoke();
        let space = space_1d();
        for method in TuningMethod::EXTENDED {
            let mut scheduler = method.scheduler(&scale).unwrap();
            let mut objective = AnalyticBatchObjective {
                batch_sizes: Vec::new(),
            };
            let mut rng = rng_for(13, 0);
            let scheduled =
                run_scheduled(scheduler.as_mut(), &space, &mut objective, &mut rng).unwrap();
            for workers in [1usize, 3, 16] {
                let mut scheduler = method.scheduler(&scale).unwrap();
                let mut objective = AnalyticBatchObjective {
                    batch_sizes: Vec::new(),
                };
                let mut rng = rng_for(13, 0);
                let sim = VirtualExecution::new(workers, CostModel::Unit);
                let event =
                    run_event_driven(scheduler.as_mut(), &space, &mut objective, &mut rng, &sim)
                        .unwrap();
                let label = format!("{method}, {workers} workers");
                assert!(event.finished, "{label}");
                assert_eq!(
                    event.outcome.num_evaluations(),
                    scheduled.num_evaluations(),
                    "{label}"
                );
                assert_eq!(
                    event.outcome.total_resource(),
                    scheduled.total_resource(),
                    "{label}"
                );
                // Identical evaluation multiset with identical score bits.
                let identity = |r: &fedhpo::EvaluationRecord| {
                    (r.trial_id, r.resource, r.noise_rep, r.score.to_bits())
                };
                let mut a: Vec<_> = scheduled.records().iter().map(identity).collect();
                let mut b: Vec<_> = event.outcome.records().iter().map(identity).collect();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "{label}");
                // Selections reproduce bit for bit.
                let scheduled_best = scheduled.best().unwrap();
                let event_best = event.outcome.best().unwrap();
                assert_eq!(scheduled_best.trial_id, event_best.trial_id, "{label}");
                assert_eq!(
                    scheduled_best.score.to_bits(),
                    event_best.score.to_bits(),
                    "{label}"
                );
                let scheduled_pick = scheduled.selected_within_budget(usize::MAX).unwrap();
                let event_pick = event.outcome.selected_within_budget(usize::MAX).unwrap();
                assert_eq!(scheduled_pick.trial_id, event_pick.trial_id, "{label}");
                assert_eq!(
                    scheduled_pick.score.to_bits(),
                    event_pick.score.to_bits(),
                    "{label}"
                );
            }
        }
    }

    #[test]
    fn event_driven_timeline_is_monotone_and_respects_worker_count() {
        // 8 unit-cost trials on 2 virtual workers take 4 simulated waves.
        let mut scheduler = RandomSearch::new(8, 2).scheduler().unwrap();
        let mut objective = AnalyticBatchObjective {
            batch_sizes: Vec::new(),
        };
        let mut rng = rng_for(0, 0);
        let sim = VirtualExecution::new(2, CostModel::Unit);
        let event =
            run_event_driven(&mut scheduler, &space_1d(), &mut objective, &mut rng, &sim).unwrap();
        assert!(event.finished);
        assert_eq!(event.outcome.num_evaluations(), 8);
        assert_eq!(event.sim_elapsed, 4.0);
        assert_eq!(event.outcome.sim_elapsed(), 4.0);
        let times: Vec<f64> = event.outcome.records().iter().map(|r| r.sim_time).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
        // Two completions per wave at times 1, 2, 3, 4.
        assert_eq!(times, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0]);
        // Virtual-time selection sees only what had completed by then.
        assert!(event.outcome.best_within_sim_time(0.5).is_none());
        assert!(event.outcome.best_within_sim_time(1.0).is_some());
    }

    #[test]
    fn sim_budget_cuts_the_campaign_off_cleanly() {
        // The same 8-trial schedule on 1 worker with a 3-second budget: three
        // evaluations complete, the rest are never dispatched.
        let mut scheduler = RandomSearch::new(8, 2).scheduler().unwrap();
        let mut objective = AnalyticBatchObjective {
            batch_sizes: Vec::new(),
        };
        let mut rng = rng_for(0, 0);
        let sim = VirtualExecution::new(1, CostModel::Unit).with_sim_budget(3.0);
        let event =
            run_event_driven(&mut scheduler, &space_1d(), &mut objective, &mut rng, &sim).unwrap();
        assert!(!event.finished);
        assert_eq!(event.outcome.num_evaluations(), 3);
        assert_eq!(event.sim_elapsed, 3.0);
        // A budget larger than the whole campaign changes nothing.
        let mut scheduler = RandomSearch::new(8, 2).scheduler().unwrap();
        let mut objective = AnalyticBatchObjective {
            batch_sizes: Vec::new(),
        };
        let mut rng = rng_for(0, 0);
        let sim = VirtualExecution::new(1, CostModel::Unit).with_sim_budget(1e6);
        let event =
            run_event_driven(&mut scheduler, &space_1d(), &mut objective, &mut rng, &sim).unwrap();
        assert!(event.finished);
        assert_eq!(event.outcome.num_evaluations(), 8);
    }

    #[test]
    fn async_asha_beats_sync_sha_under_stragglers() {
        use fedhpo::AsyncAsha;
        // Heavy-tailed client runtimes with a narrow worker pool: the sync
        // ladder waits for every rung's slowest trial, the async ladder keeps
        // all workers busy and promotes on completion.
        let ladder = fedhpo::Asha::new(12, 3, 1, 9);
        let cost = CostModel::HeterogeneousClients(
            fedsim::clock::ClientRuntimeModel::heavy_tailed(60, 5, 17),
        );
        let sim = VirtualExecution::new(4, cost);
        let run = |scheduler: &mut dyn Scheduler| {
            let mut objective = AnalyticBatchObjective {
                batch_sizes: Vec::new(),
            };
            let mut rng = rng_for(3, 0);
            run_event_driven(scheduler, &space_1d(), &mut objective, &mut rng, &sim).unwrap()
        };
        let sync = run(&mut ladder.scheduler().unwrap());
        let asynchronous = run(&mut AsyncAsha::from_ladder(ladder).scheduler().unwrap());
        assert!(sync.finished && asynchronous.finished);
        assert!(sync.sim_elapsed > 0.0);
        // Same fresh configurations, so the first rung is identical work.
        assert_eq!(
            sync.outcome
                .records()
                .iter()
                .filter(|r| r.resource == 1)
                .count(),
            12
        );
        let throughput =
            |e: &EventDrivenOutcome| e.outcome.num_evaluations() as f64 / e.sim_elapsed;
        assert!(
            throughput(&asynchronous) >= throughput(&sync),
            "async {:.4} evals/s should be at least sync {:.4} evals/s",
            throughput(&asynchronous),
            throughput(&sync)
        );
        // The async campaign finishes no later than the barrier one on the
        // same virtual hardware whenever it does the same or more work.
        if asynchronous.outcome.num_evaluations() >= sync.outcome.num_evaluations() {
            assert!(asynchronous.sim_elapsed <= sync.sim_elapsed);
        }
    }

    #[test]
    fn event_driven_stalled_scheduler_is_rejected() {
        struct Staller;
        impl Scheduler for Staller {
            fn name(&self) -> &'static str {
                "staller"
            }
            fn suggest(
                &mut self,
                _space: &SearchSpace,
                _rng: &mut StdRng,
            ) -> fedhpo::Result<Vec<TrialRequest>> {
                Ok(Vec::new())
            }
            fn report(&mut self, _result: &TrialResult) -> fedhpo::Result<()> {
                Ok(())
            }
            fn is_finished(&self) -> bool {
                false
            }
        }
        let mut objective = AnalyticBatchObjective {
            batch_sizes: Vec::new(),
        };
        let mut rng = rng_for(0, 2);
        let err = run_event_driven(
            &mut Staller,
            &space_1d(),
            &mut objective,
            &mut rng,
            &VirtualExecution::new(2, CostModel::Unit),
        )
        .unwrap_err();
        assert!(err.to_string().contains("stalled"), "{err}");
    }

    #[test]
    fn drives_the_federated_batch_objective() {
        let ctx =
            BenchmarkContext::new(Benchmark::Cifar10Like, &ExperimentScale::smoke(), 0).unwrap();
        let tuner = RandomSearch::new(3, 2);
        let mut scheduler = tuner.scheduler().unwrap();
        let mut objective =
            BatchFederatedObjective::new(&ctx, NoiseConfig::noiseless(), 3, 5).unwrap();
        let mut rng = rng_for(2, 0);
        let outcome = run_scheduled(&mut scheduler, ctx.space(), &mut objective, &mut rng).unwrap();
        assert_eq!(outcome.num_evaluations(), 3);
        assert_eq!(objective.log().len(), 3);
        assert_eq!(objective.cumulative_rounds(), 6);
        assert!(outcome.best().unwrap().score.is_finite());
    }
}
