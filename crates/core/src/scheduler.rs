//! The parallel **batch driver** for ask/tell tuning schedulers.
//!
//! `fedhpo`'s [`Scheduler`] trait inverts tuner control flow — the method
//! *suggests* batches of [`TrialRequest`]s instead of calling the objective
//! itself — and this module supplies the driver that makes the inversion pay:
//! each suggested batch is executed through a [`BatchObjective`] (in
//! practice [`BatchFederatedObjective`], which fans the batch's distinct
//! trials out over the engine's [`TrialRunner`](crate::engine::TrialRunner)),
//! results are reported back in the deterministic batch order, and resource
//! accounting flows through the shared [`BudgetLedger`].
//!
//! Because every scheduler suggests deterministically and every
//! [`BatchFederatedObjective`] evaluation derives its randomness from the
//! request's coordinates, the produced [`TuningOutcome`] is **bit-identical**
//! under every execution policy and thread count (`tests/determinism.rs`) —
//! tuner-driven campaigns finally scale across cores without giving up
//! reproducibility.

use crate::objective::BatchFederatedObjective;
use crate::Result;
use fedhpo::{BudgetLedger, Scheduler, SearchSpace, TrialRequest, TrialResult, TuningOutcome};
use rand::rngs::StdRng;

/// An objective that evaluates a whole batch of trial requests at once.
///
/// Implementations decide how the batch executes (sequentially, across
/// threads, on remote workers); the returned results must be in request
/// order and independent of that choice.
pub trait BatchObjective {
    /// Evaluates every request, returning one result per request in order.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    fn evaluate_batch(&mut self, requests: &[TrialRequest]) -> Result<Vec<TrialResult>>;
}

impl BatchObjective for BatchFederatedObjective<'_> {
    fn evaluate_batch(&mut self, requests: &[TrialRequest]) -> Result<Vec<TrialResult>> {
        BatchFederatedObjective::evaluate_batch(self, requests)
    }
}

/// Drives `scheduler` to completion against `objective`: suggest a batch,
/// evaluate it (parallel inside the objective), report every result in batch
/// order, repeat. The counterpart of `fedhpo::run_scheduler` with batch
/// fan-out instead of one-at-a-time evaluation.
///
/// # Errors
///
/// Propagates scheduler and objective errors, and fails if the scheduler
/// stalls (returns an empty batch while unfinished).
pub fn run_scheduled(
    scheduler: &mut dyn Scheduler,
    space: &SearchSpace,
    objective: &mut dyn BatchObjective,
    rng: &mut StdRng,
) -> Result<TuningOutcome> {
    let mut outcome = TuningOutcome::default();
    let mut ledger = BudgetLedger::new();
    while !scheduler.is_finished() {
        let batch = scheduler.suggest(space, rng)?;
        if batch.is_empty() {
            if scheduler.is_finished() {
                break;
            }
            return Err(crate::CoreError::InvalidConfig {
                message: format!(
                    "scheduler {} stalled: empty batch while unfinished",
                    scheduler.name()
                ),
            });
        }
        let results = objective.evaluate_batch(&batch)?;
        for result in &results {
            outcome.push(ledger.record(result));
            scheduler.report(result)?;
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::BenchmarkContext;
    use crate::noise::NoiseConfig;
    use crate::scale::ExperimentScale;
    use feddata::Benchmark;
    use fedhpo::{Asha, HpConfig, IntoScheduler, RandomSearch, Tuner};
    use fedmath::rng::rng_for;

    /// A batch objective scoring configurations analytically, recording the
    /// batch sizes it saw.
    struct AnalyticBatchObjective {
        batch_sizes: Vec<usize>,
    }

    impl BatchObjective for AnalyticBatchObjective {
        fn evaluate_batch(&mut self, requests: &[TrialRequest]) -> Result<Vec<TrialResult>> {
            self.batch_sizes.push(requests.len());
            Ok(requests
                .iter()
                .map(|r| {
                    let x = r.config.values()[0];
                    TrialResult::of(r, (x - 0.3).abs() + 1.0 / (r.resource as f64 + 1.0))
                })
                .collect())
        }
    }

    fn space_1d() -> fedhpo::SearchSpace {
        fedhpo::SearchSpace::new()
            .with_uniform("x", 0.0, 1.0)
            .unwrap()
    }

    #[test]
    fn random_search_arrives_as_one_batch() {
        let mut scheduler = RandomSearch::new(8, 2).scheduler().unwrap();
        let mut objective = AnalyticBatchObjective {
            batch_sizes: Vec::new(),
        };
        let mut rng = rng_for(0, 0);
        let outcome = run_scheduled(&mut scheduler, &space_1d(), &mut objective, &mut rng).unwrap();
        assert_eq!(objective.batch_sizes, vec![8]);
        assert_eq!(outcome.num_evaluations(), 8);
        assert_eq!(outcome.total_resource(), 16);
    }

    #[test]
    fn batched_asha_matches_sequential_tuner_outcome() {
        // The batch driver over an analytic objective must agree exactly with
        // fedhpo's sequential reference driver on the same scheduler.
        let asha = Asha::new(9, 3, 1, 9);
        let mut scheduler = asha.scheduler().unwrap();
        let mut batch_objective = AnalyticBatchObjective {
            batch_sizes: Vec::new(),
        };
        let mut rng = rng_for(1, 0);
        let batched =
            run_scheduled(&mut scheduler, &space_1d(), &mut batch_objective, &mut rng).unwrap();
        assert!(batch_objective.batch_sizes[0] >= 9);

        let mut sequential_objective =
            fedhpo::FunctionObjective::new(|config: &HpConfig, resource: usize| {
                let x = config.values()[0];
                (x - 0.3).abs() + 1.0 / (resource as f64 + 1.0)
            });
        let mut rng = rng_for(1, 0);
        let sequential = asha
            .tune(&space_1d(), &mut sequential_objective, &mut rng)
            .unwrap();
        assert_eq!(batched, sequential);
    }

    #[test]
    fn drives_the_federated_batch_objective() {
        let ctx =
            BenchmarkContext::new(Benchmark::Cifar10Like, &ExperimentScale::smoke(), 0).unwrap();
        let tuner = RandomSearch::new(3, 2);
        let mut scheduler = tuner.scheduler().unwrap();
        let mut objective =
            BatchFederatedObjective::new(&ctx, NoiseConfig::noiseless(), 3, 5).unwrap();
        let mut rng = rng_for(2, 0);
        let outcome = run_scheduled(&mut scheduler, ctx.space(), &mut objective, &mut rng).unwrap();
        assert_eq!(outcome.num_evaluations(), 3);
        assert_eq!(objective.log().len(), 3);
        assert_eq!(objective.cumulative_rounds(), 6);
        assert!(outcome.best().unwrap().score.is_finite());
    }
}
