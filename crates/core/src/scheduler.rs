//! The drivers for ask/tell tuning schedulers: the barrier-synchronous
//! **batch driver** and the **event-driven virtual-time executor**.
//!
//! `fedhpo`'s [`Scheduler`] trait inverts tuner control flow — the method
//! *suggests* batches of [`TrialRequest`]s instead of calling the objective
//! itself — and this module supplies the drivers that make the inversion pay.
//!
//! [`run_scheduled`] is the barrier driver: each suggested batch is executed
//! through a [`BatchObjective`] (in practice [`BatchFederatedObjective`],
//! which fans the batch's distinct trials out over the engine's
//! [`TrialRunner`](crate::engine::TrialRunner)), results are reported back in
//! the deterministic batch order, and resource accounting flows through the
//! shared [`BudgetLedger`].
//!
//! [`run_event_driven`] replaces the barrier with a **deterministic
//! discrete-event simulation** over `fedsim`'s virtual clock: a pool of
//! *virtual* workers pulls trials as they free up, every evaluation's
//! simulated runtime comes from a [`CostModel`] keyed by the point's
//! canonical fingerprint, completions are delivered to
//! [`Scheduler::report`] in total `(sim_time, key)` order, and
//! [`Scheduler::async_capable`] schedulers (async ASHA) are re-polled on
//! every completion — promote-on-completion with no rung barrier, the
//! paper's actual adaptive-allocation algorithm. Campaign budgets can be
//! expressed in **simulated wall-clock** seconds on top of training rounds.
//!
//! Because every scheduler suggests deterministically, every
//! [`BatchFederatedObjective`] evaluation derives its randomness from the
//! request's coordinates, and the virtual timeline is a pure function of the
//! schedule and cost model, the produced [`TuningOutcome`] — including its
//! virtual timeline — is **bit-identical** under every execution policy and
//! real thread count (`tests/determinism.rs`).

use crate::objective::BatchFederatedObjective;
use crate::Result;
use fedhpo::{BudgetLedger, Scheduler, SearchSpace, TrialRequest, TrialResult, TuningOutcome};
use fedsim::clock::{CostModel, EventKey, EventQueue, VirtualClock, WorkerPool};
use fedtrace::{ClockDomain, EventKind, TrialSpan};
use rand::rngs::StdRng;
use std::collections::{HashMap, VecDeque};

/// An objective that evaluates a whole batch of trial requests at once.
///
/// Implementations decide how the batch executes (sequentially, across
/// threads, on remote workers); the returned results must be in request
/// order and independent of that choice.
pub trait BatchObjective {
    /// Evaluates every request, returning one result per request in order.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    fn evaluate_batch(&mut self, requests: &[TrialRequest]) -> Result<Vec<TrialResult>>;

    /// True (noise-free) objective values of the most recent
    /// [`evaluate_batch`](Self::evaluate_batch) call, aligned with its
    /// returned results — or `None` when the objective cannot separate truth
    /// from its reported scores. Recording wrappers (the `fedstore` trial
    /// ledger) use this to persist ground truth next to each noisy
    /// observation.
    fn last_true_errors(&self) -> Option<Vec<f64>> {
        None
    }

    /// [`evaluate_batch`](Self::evaluate_batch) with each request's
    /// **simulated completion time** supplied by the event-driven driver
    /// (`sim_times[i]` belongs to `requests[i]`). Objectives that keep a
    /// campaign log should stamp the entries with these times; the default
    /// simply ignores them, which is always correct for scoring because
    /// evaluations are pure functions of their request coordinates.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    fn evaluate_batch_at(
        &mut self,
        requests: &[TrialRequest],
        sim_times: &[f64],
    ) -> Result<Vec<TrialResult>> {
        debug_assert_eq!(requests.len(), sim_times.len());
        self.evaluate_batch(requests)
    }
}

impl BatchObjective for BatchFederatedObjective<'_> {
    fn evaluate_batch(&mut self, requests: &[TrialRequest]) -> Result<Vec<TrialResult>> {
        BatchFederatedObjective::evaluate_batch(self, requests)
    }

    fn last_true_errors(&self) -> Option<Vec<f64>> {
        Some(self.last_batch_true_errors())
    }

    fn evaluate_batch_at(
        &mut self,
        requests: &[TrialRequest],
        sim_times: &[f64],
    ) -> Result<Vec<TrialResult>> {
        BatchFederatedObjective::evaluate_batch_at(self, requests, sim_times)
    }
}

/// Drives `scheduler` to completion against `objective`: suggest a batch,
/// evaluate it (parallel inside the objective), report every result in batch
/// order, repeat. The counterpart of `fedhpo::run_scheduler` with batch
/// fan-out instead of one-at-a-time evaluation.
///
/// # Errors
///
/// Propagates scheduler and objective errors, and fails if the scheduler
/// stalls (returns an empty batch while unfinished).
pub fn run_scheduled(
    scheduler: &mut dyn Scheduler,
    space: &SearchSpace,
    objective: &mut dyn BatchObjective,
    rng: &mut StdRng,
) -> Result<TuningOutcome> {
    let (outcome, finished) = run_scheduled_for(scheduler, space, objective, rng, None)?;
    debug_assert!(finished, "an unbounded run always finishes");
    Ok(outcome)
}

/// [`run_scheduled`] with an optional interruption point: drives at most
/// `max_batches` suggest → evaluate → report cycles and returns the outcome
/// so far plus whether the schedule completed.
///
/// Interrupting at a batch boundary leaves every suggested request evaluated
/// and reported, which is the invariant store-backed resumption relies on: a
/// fresh scheduler re-driven with the same seed re-suggests the interrupted
/// campaign's prefix verbatim, a recording objective (`fedstore`) serves
/// those requests from the trial ledger without recomputation, and the
/// campaign continues bit-identically to an uninterrupted run.
///
/// # Errors
///
/// Propagates scheduler and objective errors, and fails if the scheduler
/// stalls (returns an empty batch while unfinished).
pub fn run_scheduled_for(
    scheduler: &mut dyn Scheduler,
    space: &SearchSpace,
    objective: &mut dyn BatchObjective,
    rng: &mut StdRng,
    max_batches: Option<usize>,
) -> Result<(TuningOutcome, bool)> {
    let mut outcome = TuningOutcome::default();
    let mut ledger = BudgetLedger::new();
    let mut batches = 0usize;
    while !scheduler.is_finished() {
        if max_batches.is_some_and(|max| batches >= max) {
            return Ok((outcome, false));
        }
        let batch = scheduler.suggest(space, rng)?;
        if batch.is_empty() {
            if scheduler.is_finished() {
                break;
            }
            return Err(crate::CoreError::InvalidConfig {
                message: format!(
                    "scheduler {} stalled: empty batch while unfinished",
                    scheduler.name()
                ),
            });
        }
        let results = objective.evaluate_batch(&batch)?;
        for result in &results {
            outcome.push(ledger.record(result));
            scheduler.report(result)?;
        }
        batches += 1;
    }
    Ok((outcome, true))
}

/// Configuration of the event-driven virtual-time executor: how many
/// *virtual* workers the simulated tuning service runs, what each evaluation
/// costs in simulated seconds, and an optional simulated wall-clock budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VirtualExecution {
    /// Number of virtual workers trials are scheduled onto. Independent of
    /// the real thread count — real parallelism lives inside the batch
    /// objective and never changes the virtual timeline.
    pub workers: usize,
    /// Simulated runtime of each evaluation.
    pub cost: CostModel,
    /// Optional simulated wall-clock budget in virtual seconds: no
    /// evaluation *starts* at or after this deadline (in-flight evaluations
    /// still complete and report), and no further work is suggested once the
    /// clock reaches it.
    pub sim_budget: Option<f64>,
}

impl VirtualExecution {
    /// A virtual service with `workers` workers and the given cost model,
    /// with no wall-clock budget.
    pub fn new(workers: usize, cost: CostModel) -> Self {
        VirtualExecution {
            workers,
            cost,
            sim_budget: None,
        }
    }

    /// Sets a simulated wall-clock budget in virtual seconds.
    #[must_use]
    pub fn with_sim_budget(mut self, sim_budget: f64) -> Self {
        self.sim_budget = Some(sim_budget);
        self
    }

    fn validate(&self) -> Result<()> {
        self.cost.validate()?;
        let budget_ok = self.sim_budget.is_none_or(|b| b.is_finite() && b > 0.0);
        if self.workers == 0 || !budget_ok {
            return Err(crate::CoreError::InvalidConfig {
                message: format!("invalid virtual execution: {self:?}"),
            });
        }
        Ok(())
    }
}

/// The result of one event-driven campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct EventDrivenOutcome {
    /// The evaluation history in **virtual completion order**, every record
    /// stamped with its simulated completion time.
    pub outcome: TuningOutcome,
    /// The simulated wall-clock the campaign took (the virtual clock at the
    /// last delivered completion).
    pub sim_elapsed: f64,
    /// Whether the schedule ran to completion (`false` when a simulated
    /// wall-clock budget cut it off).
    pub finished: bool,
    /// The virtual-time execution timeline: one [`TrialSpan`] per dispatched
    /// evaluation, in dispatch order, carrying its virtual worker and
    /// simulated start/end. Collected unconditionally — it is part of the
    /// result, not tracing output, so its bits are covered by the driver's
    /// determinism contract (and the replay identity asserted in
    /// `tests/determinism.rs`). Export it with
    /// [`fedtrace::virtual_timeline_json`].
    pub timeline: Vec<TrialSpan>,
}

/// Per-campaign driver metrics on a [`fedtrace::Trace`] registry, all
/// prefixed with the scheduler's name. Pure accounting: the driver writes
/// them and never reads them back.
struct DriverMetrics {
    suggests: fedtrace::Counter,
    reports: fedtrace::Counter,
    dispatched: fedtrace::Counter,
    promotions: fedtrace::Counter,
    queue_depth: fedtrace::Histogram,
    busy_workers: fedtrace::Histogram,
    rung_resource: fedtrace::Histogram,
}

impl DriverMetrics {
    fn register(trace: &fedtrace::Trace, scheduler: &str) -> Self {
        let registry = trace.registry();
        DriverMetrics {
            suggests: registry.counter(&format!("{scheduler}.suggests")),
            reports: registry.counter(&format!("{scheduler}.reports")),
            dispatched: registry.counter(&format!("{scheduler}.dispatched")),
            promotions: registry.counter(&format!("{scheduler}.promotions")),
            queue_depth: registry.histogram(&format!("{scheduler}.queue_depth")),
            busy_workers: registry.histogram(&format!("{scheduler}.busy_workers")),
            rung_resource: registry.histogram(&format!("{scheduler}.rung_resource")),
        }
    }
}

/// One externally visible action of the sans-io [`ExecutorCore`].
#[derive(Debug)]
pub enum ExecutorStep {
    /// Trials were just committed to virtual workers. Evaluate them — in any
    /// real order, on any thread — and feed each result back through
    /// [`ExecutorCore::complete`]. The core never blocks on them itself.
    Dispatch(Vec<DispatchedTrial>),
    /// The earliest virtual event is this key and its completion has not
    /// been fed yet; the core cannot advance virtual time until
    /// [`ExecutorCore::complete`] is called for it. (A blocking driver that
    /// completes every dispatch before stepping again never sees this.)
    Deliver(EventKey),
    /// The campaign is over: every dispatched trial has been delivered and
    /// the scheduler has no further work (or the simulated budget cut the
    /// schedule off). Call [`ExecutorCore::finish`].
    Finished,
}

/// One trial committed to a virtual worker by [`ExecutorCore::step`].
#[derive(Debug, Clone)]
pub struct DispatchedTrial {
    /// The suggested request to evaluate.
    pub request: TrialRequest,
    /// The virtual event-queue key identifying this evaluation; pass it to
    /// [`ExecutorCore::complete`] together with the result.
    pub key: EventKey,
    /// Index of the virtual worker executing the trial.
    pub worker: usize,
    /// Simulated start time of the evaluation.
    pub sim_start: f64,
    /// Simulated completion time — the instant the result will be delivered
    /// at, and the timestamp an objective log should stamp it with.
    pub sim_completion: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Poll,
    Deliver,
    Finished,
}

/// The sans-io heart of the event-driven virtual-time executor.
///
/// `ExecutorCore` owns the poll/dispatch/deliver state machine of
/// [`run_event_driven`] — virtual clock, virtual [`WorkerPool`], event queue,
/// dispatch queue, trained high-water marks, metrics — but performs **no
/// evaluation and no waiting**. It communicates with its driver through
/// explicit actions: [`step`](Self::step) returns what the world should do
/// next ([`ExecutorStep`]), and the world feeds evaluation results back with
/// [`complete`](Self::complete), in any order and from any thread's output.
/// Virtual events are still *delivered* in strict `(sim_time, EventKey)`
/// order, so the outcome is a pure function of the schedule and cost model —
/// never of how, where, or in what real order evaluations ran.
///
/// The blocking drivers ([`run_event_driven`], [`run_event_driven_traced`])
/// and the concurrent one ([`run_event_driven_concurrent`](crate::concurrent::run_event_driven_concurrent)) are thin wrappers
/// over this core; a future campaign daemon can drive the same machine from
/// an RPC frontend.
///
/// Two invariants the core maintains for its callers:
///
/// - **Validated-only training accounting.** A trial's trained-rounds
///   high-water mark ([`trained_rounds`](Self::trained_rounds)) is committed
///   only when its evaluation result is fed back via `complete`; a dispatch
///   whose evaluation errors out never claims rounds it did not train. Cost
///   accounting for overlapping in-flight dispatches of the same trial uses
///   a staged overlay so incremental costs match the sequential driver
///   exactly.
/// - **Order-independent completion.** `complete` may be called in any
///   order; results wait in a completion buffer until their event is the
///   earliest, and committing the high-water mark is a max-merge, so the
///   observable state never depends on completion order.
pub struct ExecutorCore<'a> {
    scheduler: &'a mut dyn Scheduler,
    space: &'a SearchSpace,
    rng: &'a mut StdRng,
    sim: VirtualExecution,
    async_mode: bool,
    clock: VirtualClock,
    pool: WorkerPool,
    /// Virtual completion events, payload-free: results arrive via
    /// [`complete`](Self::complete) and wait in `fed` until delivered.
    events: EventQueue<()>,
    queue: VecDeque<TrialRequest>,
    /// Validated trained-rounds high-water per trial: committed only by
    /// [`complete`](Self::complete).
    trained: HashMap<usize, usize>,
    /// Rounds each trial has been *dispatched* to (including unvalidated
    /// in-flight work), so costs charge only incremental rounds even when
    /// several reps of one trial are in flight.
    staged: HashMap<usize, usize>,
    /// Reached-rounds values of in-flight dispatches, FIFO per key (a key
    /// can be in flight more than once only at distinct completion times).
    pending: HashMap<EventKey, Vec<usize>>,
    /// Completions fed in but not yet delivered.
    fed: HashMap<EventKey, Vec<TrialResult>>,
    outstanding: usize,
    ledger: BudgetLedger,
    outcome: TuningOutcome,
    timeline: Vec<TrialSpan>,
    metrics: Option<DriverMetrics>,
    trace: Option<&'a fedtrace::Trace>,
    phase: Phase,
    halted: bool,
}

impl<'a> ExecutorCore<'a> {
    /// Builds an executor core over `scheduler`, tracing to the process
    /// global scope when `FEDTUNE_TRACE=1`.
    ///
    /// # Errors
    ///
    /// Fails when `sim` is invalid (zero workers, non-finite or non-positive
    /// budget).
    pub fn new(
        scheduler: &'a mut dyn Scheduler,
        space: &'a SearchSpace,
        rng: &'a mut StdRng,
        sim: &VirtualExecution,
    ) -> Result<Self> {
        Self::new_traced(scheduler, space, rng, sim, fedtrace::global_if_enabled())
    }

    /// [`new`](Self::new) with an explicit observability scope.
    ///
    /// # Errors
    ///
    /// Exactly [`new`](Self::new)'s conditions.
    pub fn new_traced(
        scheduler: &'a mut dyn Scheduler,
        space: &'a SearchSpace,
        rng: &'a mut StdRng,
        sim: &VirtualExecution,
        trace: Option<&'a fedtrace::Trace>,
    ) -> Result<Self> {
        sim.validate()?;
        let async_mode = scheduler.async_capable();
        let pool = WorkerPool::new(sim.workers)?;
        let metrics = trace.map(|t| DriverMetrics::register(t, scheduler.name()));
        if let Some(t) = trace {
            t.journal()
                .record_boundary(ClockDomain::Sim, EventKind::Begin, "campaign", 0.0);
        }
        Ok(ExecutorCore {
            scheduler,
            space,
            rng,
            sim: *sim,
            async_mode,
            clock: VirtualClock::new(),
            pool,
            events: EventQueue::new(),
            queue: VecDeque::new(),
            trained: HashMap::new(),
            staged: HashMap::new(),
            pending: HashMap::new(),
            fed: HashMap::new(),
            outstanding: 0,
            ledger: BudgetLedger::new(),
            outcome: TuningOutcome::default(),
            timeline: Vec::new(),
            metrics,
            trace,
            phase: Phase::Poll,
            halted: false,
        })
    }

    /// Current simulated time.
    pub fn sim_now(&self) -> f64 {
        self.clock.now()
    }

    /// Number of dispatched evaluations whose completions have not been
    /// delivered yet.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Halts the campaign early: the scheduler is never polled again and
    /// queued (undispatched) requests are discarded, while evaluations
    /// already dispatched still complete and deliver — so the partial
    /// outcome remains internally consistent, exactly like a simulated
    /// wall-clock budget cutoff. The multiplexing service daemon uses this
    /// for per-campaign trial/resource budget enforcement and operator
    /// stops. Idempotent.
    pub fn halt(&mut self) {
        self.halted = true;
        self.queue.clear();
    }

    /// Whether [`halt`](Self::halt) has been called.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// The **validated** trained-rounds high-water mark of a trial: rounds
    /// are committed only when an evaluation result covering them is fed
    /// back through [`complete`](Self::complete), never at dispatch — so an
    /// objective error mid-campaign cannot leave the core claiming rounds
    /// that were never trained.
    pub fn trained_rounds(&self, trial_id: usize) -> usize {
        self.trained.get(&trial_id).copied().unwrap_or(0)
    }

    /// Advances the state machine until it has something to say.
    ///
    /// Internally the core delivers every already-fed completion and
    /// re-polls the scheduler as its contract allows; it returns as soon as
    /// new work was dispatched ([`ExecutorStep::Dispatch`]), a completion is
    /// missing ([`ExecutorStep::Deliver`]), or the campaign is over
    /// ([`ExecutorStep::Finished`]).
    ///
    /// # Errors
    ///
    /// Propagates scheduler and cost-model errors, and fails if the
    /// scheduler stalls (no outstanding work, no queued work, and an empty
    /// suggestion while unfinished).
    pub fn step(&mut self) -> Result<ExecutorStep> {
        loop {
            match self.phase {
                Phase::Poll => {
                    let started = self.trace.map(|t| t.wall_profile().now_seconds());
                    let poll = self.poll();
                    let batch = match poll {
                        Ok(()) => self.dispatch(),
                        Err(e) => Err(e),
                    };
                    if let (Some(t), Some(started)) = (self.trace, started) {
                        t.wall_profile().record_since("suggest", started);
                    }
                    let batch = batch?;
                    self.phase = Phase::Deliver;
                    if !batch.is_empty() {
                        return Ok(ExecutorStep::Dispatch(batch));
                    }
                }
                Phase::Deliver => {
                    let Some((time, key)) = self.events.peek() else {
                        self.phase = Phase::Finished;
                        if let Some(t) = self.trace {
                            t.journal().record_boundary(
                                ClockDomain::Sim,
                                EventKind::End,
                                "campaign",
                                self.clock.now(),
                            );
                        }
                        return Ok(ExecutorStep::Finished);
                    };
                    let has_result = self.fed.get(&key).is_some_and(|stack| !stack.is_empty());
                    if !has_result {
                        return Ok(ExecutorStep::Deliver(key));
                    }
                    let started = self.trace.map(|t| t.wall_profile().now_seconds());
                    let delivered = self.deliver(time, key);
                    if let (Some(t), Some(started)) = (self.trace, started) {
                        t.wall_profile().record_since("deliver", started);
                    }
                    delivered?;
                    self.phase = Phase::Poll;
                }
                Phase::Finished => return Ok(ExecutorStep::Finished),
            }
        }
    }

    /// Feeds the evaluation result of a dispatched trial back into the core.
    ///
    /// May be called in any order relative to other in-flight dispatches;
    /// delivery to the scheduler still happens in `(sim_time, EventKey)`
    /// order inside [`step`](Self::step). Commits the trial's validated
    /// trained-rounds high-water mark (a max-merge, so completion order
    /// cannot change it).
    ///
    /// # Errors
    ///
    /// Fails when `key` has no in-flight dispatch or `result` does not carry
    /// the key's coordinates.
    pub fn complete(&mut self, key: EventKey, result: TrialResult) -> Result<()> {
        let Some(stack) = self.pending.get_mut(&key) else {
            return Err(crate::CoreError::InvalidConfig {
                message: format!("completion for unknown or already-completed key {key:?}"),
            });
        };
        if result.trial_id as u64 != key.trial
            || result.resource as u64 != key.resource
            || result.noise_rep != key.rep
        {
            return Err(crate::CoreError::InvalidConfig {
                message: format!(
                    "completion result (trial {}, resource {}, rep {}) does not match key {key:?}",
                    result.trial_id, result.resource, result.noise_rep
                ),
            });
        }
        let reached = stack.remove(0);
        if stack.is_empty() {
            self.pending.remove(&key);
        }
        // Satellite of the sans-io refactor: the high-water mark is committed
        // only here, against a validated result — never at dispatch.
        let committed = self.trained.entry(key.trial as usize).or_insert(0);
        *committed = (*committed).max(reached);
        self.fed.entry(key).or_default().push(result);
        Ok(())
    }

    /// Consumes the core into its campaign outcome. Typically called after
    /// [`step`](Self::step) returned [`ExecutorStep::Finished`]; calling it
    /// earlier yields the (consistent) partial outcome, as a budget cutoff
    /// does.
    pub fn finish(self) -> EventDrivenOutcome {
        EventDrivenOutcome {
            sim_elapsed: self.clock.now(),
            finished: self.scheduler.is_finished(),
            outcome: self.outcome,
            timeline: self.timeline,
        }
    }

    /// Polls the scheduler whenever its contract allows: between batches for
    /// barrier schedulers, at any time for async ones. Fresh suggestions go
    /// to the *front* of the dispatch queue so async promotions overtake
    /// queued fresh configurations.
    fn poll(&mut self) -> Result<()> {
        let within_budget = self.sim.sim_budget.is_none_or(|b| self.clock.now() < b);
        if !self.halted
            && within_budget
            && !self.scheduler.is_finished()
            && (self.outstanding == 0 || self.async_mode)
        {
            let batch = self.scheduler.suggest(self.space, self.rng)?;
            if batch.is_empty()
                && self.outstanding == 0
                && self.queue.is_empty()
                && !self.scheduler.is_finished()
            {
                return Err(crate::CoreError::InvalidConfig {
                    message: format!(
                        "scheduler {} stalled: empty batch while unfinished",
                        self.scheduler.name()
                    ),
                });
            }
            if let Some(m) = &self.metrics {
                m.suggests.incr();
            }
            for request in batch.into_iter().rev() {
                self.queue.push_front(request);
            }
            if let Some(m) = &self.metrics {
                // The *dispatch queue* depth after enqueue — not the size of
                // the suggested batch, which undercounted whenever requests
                // were still queued from an earlier poll.
                m.queue_depth.observe(self.queue.len() as u64);
            }
        }
        Ok(())
    }

    /// Dispatches queued requests to virtual workers. Barrier schedulers
    /// commit the whole batch (workers serialize it); async schedulers only
    /// fill workers that are idle *now*, so the next completion can re-poll
    /// before the remaining queue is committed.
    fn dispatch(&mut self) -> Result<Vec<DispatchedTrial>> {
        let mut batch: Vec<DispatchedTrial> = Vec::new();
        while !self.queue.is_empty() {
            let (worker, free_at) = self.pool.next_free();
            if self.async_mode && free_at > self.clock.now() {
                break;
            }
            // The service stops handing out work at the deadline: a request
            // whose start would land on or past the budget is never
            // dispatched (and since `next_free` is the earliest worker, no
            // later request could start sooner — stop here).
            let start = free_at.max(self.clock.now());
            if self.sim.sim_budget.is_some_and(|b| start >= b) {
                break;
            }
            let request = self.queue.pop_front().expect("queue checked non-empty");
            let fingerprint = self.space.canonical_fingerprint(&request.config)?;
            // Incremental cost baseline: validated rounds plus rounds already
            // dispatched (staged) — the same `already` the sequential driver
            // saw when it updated its map eagerly, without claiming
            // unvalidated rounds as trained.
            let committed = self.trained.get(&request.trial_id).copied().unwrap_or(0);
            let already = committed.max(self.staged.get(&request.trial_id).copied().unwrap_or(0));
            let reached = already.max(request.resource);
            let seconds = self
                .sim
                .cost
                .evaluation_seconds(fingerprint, already, reached);
            self.staged.insert(request.trial_id, reached);
            let completion = self.pool.assign(worker, start, seconds)?;
            let key = EventKey::new(
                request.trial_id as u64,
                request.resource as u64,
                request.noise_rep,
            );
            self.events
                .push(completion, key, ())
                .map_err(|e| crate::CoreError::InvalidConfig {
                    message: format!("virtual event queue rejected a completion: {e}"),
                })?;
            self.pending.entry(key).or_default().push(reached);
            self.timeline.push(TrialSpan {
                trial: request.trial_id as u64,
                resource: request.resource as u64,
                rep: request.noise_rep,
                worker: worker as u64,
                start,
                end: completion,
            });
            if let Some(m) = &self.metrics {
                m.dispatched.incr();
                m.rung_resource.observe(request.resource as u64);
                if already > 0 {
                    // Re-dispatching a trained trial is a promotion (ASHA) or
                    // a resume/re-evaluation (fresh-noise reps).
                    m.promotions.incr();
                }
            }
            self.outstanding += 1;
            batch.push(DispatchedTrial {
                request,
                key,
                worker,
                sim_start: start,
                sim_completion: completion,
            });
        }
        if let Some(m) = &self.metrics {
            if !batch.is_empty() {
                m.busy_workers
                    .observe(self.pool.busy_at(self.clock.now()) as u64);
            }
        }
        Ok(batch)
    }

    /// Delivers the earliest completion: advances the virtual clock, records
    /// the result at its completion instant, and reports it.
    fn deliver(&mut self, time: f64, key: EventKey) -> Result<()> {
        self.events.pop();
        let stack = self.fed.get_mut(&key).expect("checked fed before deliver");
        let result = stack.remove(0);
        if stack.is_empty() {
            self.fed.remove(&key);
        }
        self.clock.advance_to(time)?;
        self.outcome.push(self.ledger.record_at(&result, time));
        self.scheduler.report(&result)?;
        self.outstanding -= 1;
        if let Some(m) = &self.metrics {
            m.reports.incr();
        }
        if let Some(t) = self.trace {
            t.journal().record_instant(
                ClockDomain::Sim,
                "trial.complete",
                time,
                key.trial,
                key.resource,
            );
        }
        Ok(())
    }
}

/// Drives `scheduler` through a **deterministic discrete-event simulation**:
/// a virtual [`WorkerPool`] of `sim.workers` workers executes suggested
/// requests, each costing [`CostModel::evaluation_seconds`] simulated
/// seconds (keyed by the configuration's canonical fingerprint and its
/// incremental training span), and completions are delivered to
/// [`Scheduler::report`] in total `(sim_time, trial key)` order through an
/// [`EventQueue`].
///
/// Polling discipline — the heart of the sync/async distinction:
///
/// - **Barrier schedulers** (`async_capable() == false`, every classic
///   method) are only polled when no results are outstanding, and each
///   suggested batch is committed to the virtual workers in batch order.
///   With the homogeneous [`CostModel::Unit`] this performs *exactly* the
///   evaluations [`run_scheduled`] performs, so selections reproduce the
///   barrier driver bit for bit (asserted in the tests below); heterogeneous
///   costs only change *when* results land, never *what* is evaluated.
/// - **Async schedulers** ([`fedhpo::AsyncAsha`]) are re-polled on **every**
///   completion, and newly suggested work (promotions) jumps ahead of
///   queued fresh configurations, while only idle virtual workers accept
///   work — one slow trial no longer stalls a rung, which is the paper's
///   actual asynchronous successive halving.
///
/// Real-compute parallelism is orthogonal: all requests dispatched at one
/// virtual instant are evaluated as one real batch (fanned out by the
/// objective), and since scores and costs are pure functions of request
/// coordinates, the entire outcome **including its virtual timeline** is
/// bit-identical across real thread counts.
///
/// # Errors
///
/// Propagates scheduler, objective, and cost-model errors, and fails if the
/// scheduler stalls (no outstanding work, no queued work, and an empty
/// suggestion while unfinished).
pub fn run_event_driven(
    scheduler: &mut dyn Scheduler,
    space: &SearchSpace,
    objective: &mut dyn BatchObjective,
    rng: &mut StdRng,
    sim: &VirtualExecution,
) -> Result<EventDrivenOutcome> {
    // `FEDTUNE_TRACE=1` turns on the process-global trace for every caller
    // without a signature change; the determinism suite asserts that this
    // cannot move a result bit.
    run_event_driven_traced(
        scheduler,
        space,
        objective,
        rng,
        sim,
        fedtrace::global_if_enabled(),
    )
}

/// [`run_event_driven`] with an explicit observability scope.
///
/// When `trace` is `Some`, the driver registers counters and histograms
/// under the scheduler's name (`<name>.suggests`, `<name>.reports`,
/// `<name>.dispatched`, `<name>.promotions`, `<name>.queue_depth`,
/// `<name>.busy_workers`, `<name>.rung_resource`) and journals campaign
/// boundaries plus one sim-domain instant per delivered completion.
///
/// **Accounting, never semantics**: metrics are write-only from the
/// driver's point of view, so `None` and `Some` produce bit-identical
/// [`EventDrivenOutcome`]s — including the [`EventDrivenOutcome::timeline`],
/// which is collected unconditionally as part of the result.
///
/// # Errors
///
/// Exactly [`run_event_driven`]'s conditions.
pub fn run_event_driven_traced(
    scheduler: &mut dyn Scheduler,
    space: &SearchSpace,
    objective: &mut dyn BatchObjective,
    rng: &mut StdRng,
    sim: &VirtualExecution,
    trace: Option<&fedtrace::Trace>,
) -> Result<EventDrivenOutcome> {
    let mut core = ExecutorCore::new_traced(scheduler, space, rng, sim, trace)?;
    loop {
        match core.step()? {
            ExecutorStep::Dispatch(batch) => {
                let requests: Vec<TrialRequest> = batch.iter().map(|d| d.request.clone()).collect();
                let times: Vec<f64> = batch.iter().map(|d| d.sim_completion).collect();
                let started = trace.map(|t| t.wall_profile().now_seconds());
                let results = objective.evaluate_batch_at(&requests, &times);
                if let (Some(t), Some(started)) = (trace, started) {
                    t.wall_profile().record_since("evaluate", started);
                }
                let results = results?;
                if results.len() != requests.len() {
                    return Err(crate::CoreError::InvalidConfig {
                        message: format!(
                            "objective returned {} results for {} requests",
                            results.len(),
                            requests.len()
                        ),
                    });
                }
                for (dispatched, result) in batch.iter().zip(results) {
                    core.complete(dispatched.key, result)?;
                }
            }
            // This driver completes every dispatch before stepping again, so
            // the core can never be waiting on a missing completion.
            ExecutorStep::Deliver(key) => {
                return Err(crate::CoreError::InvalidConfig {
                    message: format!(
                        "executor waited on a completion that was never produced: {key:?}"
                    ),
                });
            }
            ExecutorStep::Finished => break,
        }
    }
    Ok(core.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::BenchmarkContext;
    use crate::noise::NoiseConfig;
    use crate::scale::ExperimentScale;
    use feddata::Benchmark;
    use fedhpo::{Asha, HpConfig, IntoScheduler, RandomSearch, Tuner};
    use fedmath::rng::rng_for;

    /// A batch objective scoring configurations analytically, recording the
    /// batch sizes it saw.
    struct AnalyticBatchObjective {
        batch_sizes: Vec<usize>,
    }

    impl BatchObjective for AnalyticBatchObjective {
        fn evaluate_batch(&mut self, requests: &[TrialRequest]) -> Result<Vec<TrialResult>> {
            self.batch_sizes.push(requests.len());
            Ok(requests
                .iter()
                .map(|r| {
                    let x = r.config.values()[0];
                    TrialResult::of(r, (x - 0.3).abs() + 1.0 / (r.resource as f64 + 1.0))
                })
                .collect())
        }
    }

    fn space_1d() -> fedhpo::SearchSpace {
        fedhpo::SearchSpace::new()
            .with_uniform("x", 0.0, 1.0)
            .unwrap()
    }

    #[test]
    fn random_search_arrives_as_one_batch() {
        let mut scheduler = RandomSearch::new(8, 2).scheduler().unwrap();
        let mut objective = AnalyticBatchObjective {
            batch_sizes: Vec::new(),
        };
        let mut rng = rng_for(0, 0);
        let outcome = run_scheduled(&mut scheduler, &space_1d(), &mut objective, &mut rng).unwrap();
        assert_eq!(objective.batch_sizes, vec![8]);
        assert_eq!(outcome.num_evaluations(), 8);
        assert_eq!(outcome.total_resource(), 16);
    }

    #[test]
    fn batched_asha_matches_sequential_tuner_outcome() {
        // The batch driver over an analytic objective must agree exactly with
        // fedhpo's sequential reference driver on the same scheduler.
        let asha = Asha::new(9, 3, 1, 9);
        let mut scheduler = asha.scheduler().unwrap();
        let mut batch_objective = AnalyticBatchObjective {
            batch_sizes: Vec::new(),
        };
        let mut rng = rng_for(1, 0);
        let batched =
            run_scheduled(&mut scheduler, &space_1d(), &mut batch_objective, &mut rng).unwrap();
        assert!(batch_objective.batch_sizes[0] >= 9);

        let mut sequential_objective =
            fedhpo::FunctionObjective::new(|config: &HpConfig, resource: usize| {
                let x = config.values()[0];
                (x - 0.3).abs() + 1.0 / (resource as f64 + 1.0)
            });
        let mut rng = rng_for(1, 0);
        let sequential = asha
            .tune(&space_1d(), &mut sequential_objective, &mut rng)
            .unwrap();
        assert_eq!(batched, sequential);
    }

    #[test]
    fn halt_stops_suggesting_but_drains_outstanding_dispatches() {
        // Halt right after the first dispatch batch: the already-dispatched
        // evaluations still complete and deliver, nothing new is suggested,
        // and the partial outcome reports `finished == false`.
        let mut scheduler = Asha::new(9, 3, 1, 9).scheduler().unwrap();
        let mut rng = rng_for(5, 0);
        let space = space_1d();
        let sim = VirtualExecution::new(2, fedsim::clock::CostModel::Unit);
        let mut core = ExecutorCore::new(&mut scheduler, &space, &mut rng, &sim).unwrap();
        let mut first_batch = 0usize;
        loop {
            match core.step().unwrap() {
                ExecutorStep::Dispatch(batch) => {
                    assert!(!core.is_halted(), "no dispatches after halt");
                    first_batch = batch.len();
                    for d in batch {
                        let x = d.request.config.values()[0];
                        core.complete(d.key, TrialResult::of(&d.request, x))
                            .unwrap();
                    }
                    core.halt();
                    assert!(core.is_halted());
                    core.halt(); // idempotent
                }
                ExecutorStep::Deliver(_) => {
                    panic!("all dispatched work was completed inline");
                }
                ExecutorStep::Finished => break,
            }
        }
        assert_eq!(core.outstanding(), 0, "outstanding work drained");
        let outcome = core.finish();
        assert!(!outcome.finished, "halt cut the ASHA ladder off mid-rung");
        assert_eq!(outcome.outcome.num_evaluations(), first_batch);
        assert_eq!(first_batch, 9, "only the first rung was dispatched");
    }

    #[test]
    fn bounded_driver_interrupts_at_batch_boundaries() {
        // ASHA suggests rung by rung; capping at one batch stops after the
        // first rung with the outcome so far, and an uncapped re-drive with
        // the same seed reproduces the full run exactly.
        let asha = Asha::new(9, 3, 1, 9);
        let run_until = |max_batches: Option<usize>| {
            let mut scheduler = asha.scheduler().unwrap();
            let mut objective = AnalyticBatchObjective {
                batch_sizes: Vec::new(),
            };
            let mut rng = rng_for(3, 0);
            run_scheduled_for(
                &mut scheduler,
                &space_1d(),
                &mut objective,
                &mut rng,
                max_batches,
            )
            .unwrap()
        };
        let (full, finished) = run_until(None);
        assert!(finished);
        let (first_rung, finished) = run_until(Some(1));
        assert!(!finished);
        assert!(first_rung.num_evaluations() < full.num_evaluations());
        // The interrupted prefix is exactly the head of the full run.
        assert_eq!(
            full.records()[..first_rung.num_evaluations()],
            *first_rung.records()
        );
        let (rerun, finished) = run_until(Some(usize::MAX));
        assert!(finished);
        assert_eq!(full, rerun);
    }

    #[test]
    fn batch_objective_exposes_true_errors_of_the_last_batch() {
        let ctx =
            BenchmarkContext::new(Benchmark::Cifar10Like, &ExperimentScale::smoke(), 0).unwrap();
        let mut objective =
            BatchFederatedObjective::new(&ctx, NoiseConfig::paper_noisy(), 2, 5).unwrap();
        let dyn_objective: &mut dyn BatchObjective = &mut objective;
        assert_eq!(dyn_objective.last_true_errors(), Some(Vec::new()));
        let mut rng = rng_for(4, 0);
        let requests: Vec<TrialRequest> = (0..2)
            .map(|t| TrialRequest {
                trial_id: t,
                config: ctx.space().sample(&mut rng).unwrap(),
                resource: 2,
                noise_rep: 0,
            })
            .collect();
        let results = dyn_objective.evaluate_batch(&requests).unwrap();
        let trues = dyn_objective.last_true_errors().unwrap();
        assert_eq!(trues.len(), results.len());
        // Under noise, truth and reported score differ; the log agrees.
        for (entry, true_error) in objective.log().iter().zip(&trues) {
            assert_eq!(entry.true_error, *true_error);
        }
        // An objective without truth introspection reports None.
        let mut analytic = AnalyticBatchObjective {
            batch_sizes: Vec::new(),
        };
        let dyn_analytic: &mut dyn BatchObjective = &mut analytic;
        assert!(dyn_analytic.last_true_errors().is_none());
    }

    #[test]
    fn virtual_execution_validates() {
        assert!(VirtualExecution::new(0, CostModel::Unit)
            .validate()
            .is_err());
        assert!(VirtualExecution::new(4, CostModel::Unit).validate().is_ok());
        assert!(VirtualExecution::new(
            4,
            CostModel::PerRound {
                round_seconds: -1.0,
                eval_seconds: 0.0
            }
        )
        .validate()
        .is_err());
        assert!(VirtualExecution::new(4, CostModel::Unit)
            .with_sim_budget(0.0)
            .validate()
            .is_err());
        assert!(VirtualExecution::new(4, CostModel::Unit)
            .with_sim_budget(f64::NAN)
            .validate()
            .is_err());
        assert!(VirtualExecution::new(4, CostModel::Unit)
            .with_sim_budget(10.0)
            .validate()
            .is_ok());
    }

    /// The regression satellite: with the homogeneous unit-cost model the
    /// event-driven executor performs exactly the evaluations the barrier
    /// driver performs, so every `TuningMethod::EXTENDED` entry reproduces
    /// `run_scheduled`'s selections bit for bit, at any worker count.
    #[test]
    fn event_driven_unit_cost_reproduces_run_scheduled_selections() {
        use crate::experiments::methods::TuningMethod;
        let scale = crate::scale::ExperimentScale::smoke();
        let space = space_1d();
        for method in TuningMethod::EXTENDED {
            let mut scheduler = method.scheduler(&scale).unwrap();
            let mut objective = AnalyticBatchObjective {
                batch_sizes: Vec::new(),
            };
            let mut rng = rng_for(13, 0);
            let scheduled =
                run_scheduled(scheduler.as_mut(), &space, &mut objective, &mut rng).unwrap();
            for workers in [1usize, 3, 16] {
                let mut scheduler = method.scheduler(&scale).unwrap();
                let mut objective = AnalyticBatchObjective {
                    batch_sizes: Vec::new(),
                };
                let mut rng = rng_for(13, 0);
                let sim = VirtualExecution::new(workers, CostModel::Unit);
                let event =
                    run_event_driven(scheduler.as_mut(), &space, &mut objective, &mut rng, &sim)
                        .unwrap();
                let label = format!("{method}, {workers} workers");
                assert!(event.finished, "{label}");
                assert_eq!(
                    event.outcome.num_evaluations(),
                    scheduled.num_evaluations(),
                    "{label}"
                );
                assert_eq!(
                    event.outcome.total_resource(),
                    scheduled.total_resource(),
                    "{label}"
                );
                // Identical evaluation multiset with identical score bits.
                let identity = |r: &fedhpo::EvaluationRecord| {
                    (r.trial_id, r.resource, r.noise_rep, r.score.to_bits())
                };
                let mut a: Vec<_> = scheduled.records().iter().map(identity).collect();
                let mut b: Vec<_> = event.outcome.records().iter().map(identity).collect();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "{label}");
                // Selections reproduce bit for bit.
                let scheduled_best = scheduled.best().unwrap();
                let event_best = event.outcome.best().unwrap();
                assert_eq!(scheduled_best.trial_id, event_best.trial_id, "{label}");
                assert_eq!(
                    scheduled_best.score.to_bits(),
                    event_best.score.to_bits(),
                    "{label}"
                );
                let scheduled_pick = scheduled.selected_within_budget(usize::MAX).unwrap();
                let event_pick = event.outcome.selected_within_budget(usize::MAX).unwrap();
                assert_eq!(scheduled_pick.trial_id, event_pick.trial_id, "{label}");
                assert_eq!(
                    scheduled_pick.score.to_bits(),
                    event_pick.score.to_bits(),
                    "{label}"
                );
            }
        }
    }

    #[test]
    fn event_driven_timeline_is_monotone_and_respects_worker_count() {
        // 8 unit-cost trials on 2 virtual workers take 4 simulated waves.
        let mut scheduler = RandomSearch::new(8, 2).scheduler().unwrap();
        let mut objective = AnalyticBatchObjective {
            batch_sizes: Vec::new(),
        };
        let mut rng = rng_for(0, 0);
        let sim = VirtualExecution::new(2, CostModel::Unit);
        let event =
            run_event_driven(&mut scheduler, &space_1d(), &mut objective, &mut rng, &sim).unwrap();
        assert!(event.finished);
        assert_eq!(event.outcome.num_evaluations(), 8);
        assert_eq!(event.sim_elapsed, 4.0);
        assert_eq!(event.outcome.sim_elapsed(), 4.0);
        let times: Vec<f64> = event.outcome.records().iter().map(|r| r.sim_time).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
        // Two completions per wave at times 1, 2, 3, 4.
        assert_eq!(times, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0]);
        // Virtual-time selection sees only what had completed by then.
        assert!(event.outcome.best_within_sim_time(0.5).is_none());
        assert!(event.outcome.best_within_sim_time(1.0).is_some());
    }

    #[test]
    fn sim_budget_cuts_the_campaign_off_cleanly() {
        // The same 8-trial schedule on 1 worker with a 3-second budget: three
        // evaluations complete, the rest are never dispatched.
        let mut scheduler = RandomSearch::new(8, 2).scheduler().unwrap();
        let mut objective = AnalyticBatchObjective {
            batch_sizes: Vec::new(),
        };
        let mut rng = rng_for(0, 0);
        let sim = VirtualExecution::new(1, CostModel::Unit).with_sim_budget(3.0);
        let event =
            run_event_driven(&mut scheduler, &space_1d(), &mut objective, &mut rng, &sim).unwrap();
        assert!(!event.finished);
        assert_eq!(event.outcome.num_evaluations(), 3);
        assert_eq!(event.sim_elapsed, 3.0);
        // A budget larger than the whole campaign changes nothing.
        let mut scheduler = RandomSearch::new(8, 2).scheduler().unwrap();
        let mut objective = AnalyticBatchObjective {
            batch_sizes: Vec::new(),
        };
        let mut rng = rng_for(0, 0);
        let sim = VirtualExecution::new(1, CostModel::Unit).with_sim_budget(1e6);
        let event =
            run_event_driven(&mut scheduler, &space_1d(), &mut objective, &mut rng, &sim).unwrap();
        assert!(event.finished);
        assert_eq!(event.outcome.num_evaluations(), 8);
    }

    #[test]
    fn async_asha_beats_sync_sha_under_stragglers() {
        use fedhpo::AsyncAsha;
        // Heavy-tailed client runtimes with a narrow worker pool: the sync
        // ladder waits for every rung's slowest trial, the async ladder keeps
        // all workers busy and promotes on completion.
        let ladder = fedhpo::Asha::new(12, 3, 1, 9);
        let cost = CostModel::HeterogeneousClients(
            fedsim::clock::ClientRuntimeModel::heavy_tailed(60, 5, 17),
        );
        let sim = VirtualExecution::new(4, cost);
        let run = |scheduler: &mut dyn Scheduler| {
            let mut objective = AnalyticBatchObjective {
                batch_sizes: Vec::new(),
            };
            let mut rng = rng_for(3, 0);
            run_event_driven(scheduler, &space_1d(), &mut objective, &mut rng, &sim).unwrap()
        };
        let sync = run(&mut ladder.scheduler().unwrap());
        let asynchronous = run(&mut AsyncAsha::from_ladder(ladder).scheduler().unwrap());
        assert!(sync.finished && asynchronous.finished);
        assert!(sync.sim_elapsed > 0.0);
        // Same fresh configurations, so the first rung is identical work.
        assert_eq!(
            sync.outcome
                .records()
                .iter()
                .filter(|r| r.resource == 1)
                .count(),
            12
        );
        let throughput =
            |e: &EventDrivenOutcome| e.outcome.num_evaluations() as f64 / e.sim_elapsed;
        assert!(
            throughput(&asynchronous) >= throughput(&sync),
            "async {:.4} evals/s should be at least sync {:.4} evals/s",
            throughput(&asynchronous),
            throughput(&sync)
        );
        // The async campaign finishes no later than the barrier one on the
        // same virtual hardware whenever it does the same or more work.
        if asynchronous.outcome.num_evaluations() >= sync.outcome.num_evaluations() {
            assert!(asynchronous.sim_elapsed <= sync.sim_elapsed);
        }
    }

    #[test]
    fn event_driven_stalled_scheduler_is_rejected() {
        struct Staller;
        impl Scheduler for Staller {
            fn name(&self) -> &'static str {
                "staller"
            }
            fn suggest(
                &mut self,
                _space: &SearchSpace,
                _rng: &mut StdRng,
            ) -> fedhpo::Result<Vec<TrialRequest>> {
                Ok(Vec::new())
            }
            fn report(&mut self, _result: &TrialResult) -> fedhpo::Result<()> {
                Ok(())
            }
            fn is_finished(&self) -> bool {
                false
            }
        }
        let mut objective = AnalyticBatchObjective {
            batch_sizes: Vec::new(),
        };
        let mut rng = rng_for(0, 2);
        let err = run_event_driven(
            &mut Staller,
            &space_1d(),
            &mut objective,
            &mut rng,
            &VirtualExecution::new(2, CostModel::Unit),
        )
        .unwrap_err();
        assert!(err.to_string().contains("stalled"), "{err}");
    }

    #[test]
    fn executor_core_enforces_budget_boundaries_sans_io() {
        // A zero budget is rejected up front by construction.
        let space = space_1d();
        let mut scheduler = RandomSearch::new(8, 2).scheduler().unwrap();
        let mut rng = rng_for(0, 0);
        let zero = VirtualExecution::new(1, CostModel::Unit).with_sim_budget(0.0);
        assert!(ExecutorCore::new(&mut scheduler, &space, &mut rng, &zero).is_err());

        // A dispatch whose start lands exactly on the deadline is never
        // issued: unit costs on one worker under a 2.0-second budget admit
        // the starts at 0 and 1, and reject the start at exactly 2.0.
        let mut scheduler = RandomSearch::new(8, 2).scheduler().unwrap();
        let mut rng = rng_for(0, 0);
        let sim = VirtualExecution::new(1, CostModel::Unit).with_sim_budget(2.0);
        let mut core = ExecutorCore::new(&mut scheduler, &space, &mut rng, &sim).unwrap();
        let ExecutorStep::Dispatch(batch) = core.step().unwrap() else {
            panic!("expected an initial dispatch");
        };
        assert_eq!(batch.len(), 2);
        assert!(batch.iter().all(|d| d.sim_start < 2.0));
        assert_eq!(core.outstanding(), 2);
        // Without the completions fed, the core asks for the earliest one.
        let ExecutorStep::Deliver(waiting) = core.step().unwrap() else {
            panic!("expected the core to wait on a completion");
        };
        assert_eq!(waiting, batch[0].key);
        // Feed the completions out of dispatch order; delivery order is the
        // event queue's business, not the caller's.
        for d in batch.iter().rev() {
            let x = d.request.config.values()[0];
            core.complete(d.key, TrialResult::of(&d.request, (x - 0.3).abs()))
                .unwrap();
        }
        // Budget hit with a non-empty dispatch queue (6 of the 8 suggested
        // requests still queued): the core drains its deliveries and finishes
        // with `finished == false`, never dispatching the rest.
        assert!(matches!(core.step().unwrap(), ExecutorStep::Finished));
        assert_eq!(core.outstanding(), 0);
        let outcome = core.finish();
        assert!(!outcome.finished);
        assert_eq!(outcome.outcome.num_evaluations(), 2);
        assert_eq!(outcome.sim_elapsed, 2.0);
        assert_eq!(outcome.timeline.len(), 2);
    }

    #[test]
    fn executor_core_reports_stall_through_the_sans_io_api() {
        struct Staller;
        impl Scheduler for Staller {
            fn name(&self) -> &'static str {
                "staller"
            }
            fn suggest(
                &mut self,
                _space: &SearchSpace,
                _rng: &mut StdRng,
            ) -> fedhpo::Result<Vec<TrialRequest>> {
                Ok(Vec::new())
            }
            fn report(&mut self, _result: &TrialResult) -> fedhpo::Result<()> {
                Ok(())
            }
            fn is_finished(&self) -> bool {
                false
            }
        }
        let space = space_1d();
        let mut staller = Staller;
        let mut rng = rng_for(0, 2);
        let sim = VirtualExecution::new(2, CostModel::Unit);
        let mut core = ExecutorCore::new(&mut staller, &space, &mut rng, &sim).unwrap();
        let err = core.step().unwrap_err();
        assert!(err.to_string().contains("stalled"), "{err}");
    }

    #[test]
    fn trained_rounds_commit_only_on_validated_results() {
        // ASHA promotions resume from the trained high-water mark; the core
        // must not claim rounds at dispatch time, only once a result has
        // validated them — an objective failure mid-flight leaves no phantom
        // training behind.
        let space = space_1d();
        let mut scheduler = Asha::new(9, 3, 1, 9).scheduler().unwrap();
        let mut rng = rng_for(1, 0);
        let sim = VirtualExecution::new(9, CostModel::Unit);
        let mut core = ExecutorCore::new(&mut scheduler, &space, &mut rng, &sim).unwrap();
        let ExecutorStep::Dispatch(rung) = core.step().unwrap() else {
            panic!("expected the first rung");
        };
        assert_eq!(rung.len(), 9);
        // In flight, nothing is validated yet.
        for d in &rung {
            assert_eq!(core.trained_rounds(d.request.trial_id), 0);
        }
        let (last, rest) = rung.split_last().unwrap();
        for d in rest {
            let x = d.request.config.values()[0];
            core.complete(d.key, TrialResult::of(&d.request, (x - 0.3).abs()))
                .unwrap();
            assert_eq!(core.trained_rounds(d.request.trial_id), d.request.resource);
        }
        assert_eq!(core.trained_rounds(last.request.trial_id), 0);
        // A result that does not carry the key's coordinates is refused and
        // commits nothing.
        let mut wrong = TrialResult::of(&last.request, 0.0);
        wrong.resource += 1;
        assert!(core.complete(last.key, wrong).is_err());
        assert_eq!(core.trained_rounds(last.request.trial_id), 0);
        // So is a completion for a key that was never dispatched.
        let mut bogus = last.request.clone();
        bogus.trial_id = 99;
        let bogus_key = EventKey::new(99, bogus.resource as u64, bogus.noise_rep);
        assert!(core
            .complete(bogus_key, TrialResult::of(&bogus, 0.0))
            .is_err());
        // The genuine result commits the mark.
        let x = last.request.config.values()[0];
        core.complete(last.key, TrialResult::of(&last.request, (x - 0.3).abs()))
            .unwrap();
        assert_eq!(
            core.trained_rounds(last.request.trial_id),
            last.request.resource
        );
    }

    #[test]
    fn drives_the_federated_batch_objective() {
        let ctx =
            BenchmarkContext::new(Benchmark::Cifar10Like, &ExperimentScale::smoke(), 0).unwrap();
        let tuner = RandomSearch::new(3, 2);
        let mut scheduler = tuner.scheduler().unwrap();
        let mut objective =
            BatchFederatedObjective::new(&ctx, NoiseConfig::noiseless(), 3, 5).unwrap();
        let mut rng = rng_for(2, 0);
        let outcome = run_scheduled(&mut scheduler, ctx.space(), &mut objective, &mut rng).unwrap();
        assert_eq!(outcome.num_evaluations(), 3);
        assert_eq!(objective.log().len(), 3);
        assert_eq!(objective.cumulative_rounds(), 6);
        assert!(outcome.best().unwrap().score.is_finite());
    }
}
