//! The unified trial execution engine.
//!
//! Every experiment in the paper boils down to the same shape of work: run
//! `N` independent trials (train a pooled configuration, replay a bootstrap
//! RS selection, run one tuner campaign), each needing its own reproducible
//! randomness, and collect the results in trial order. Before this module
//! each of those call sites hand-rolled its own loop over a sequential
//! [`fedmath::SeedStream`], which made the result depend on iteration order
//! and ruled out parallelism.
//!
//! [`TrialRunner`] centralises that pattern:
//!
//! - **Per-trial seed derivation.** Trial `i` receives a [`TrialContext`]
//!   whose [`fedmath::SeedTree`] is derived from `(root_seed, i)` — a pure
//!   function of position, so results are identical no matter how trials are
//!   scheduled.
//! - **Policy-driven fan-out.** Trials execute through
//!   [`fedsim::exec::map_range`] under the runner's
//!   [`ExecutionPolicy`], sequentially or across threads, with bit-identical
//!   results (asserted by `tests/determinism.rs`).
//! - **Shared progress accounting.** An optional [`ProgressTracker`] counts
//!   completed trials across concurrently-running experiments.

use crate::Result;
use fedmath::SeedTree;
use fedsim::exec::{self, ExecutionPolicy};
use rand::rngs::StdRng;
use std::sync::{Arc, OnceLock};

/// The reproducible identity of one trial inside a fan-out.
#[derive(Debug, Clone)]
pub struct TrialContext {
    index: usize,
    seeds: SeedTree,
}

impl TrialContext {
    /// The trial's index within its fan-out (`0..count`).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The trial's seed tree (rooted at `(root_seed, index)`).
    pub fn seeds(&self) -> &SeedTree {
        &self.seeds
    }

    /// The derived seed on `channel` — use distinct channels for distinct
    /// consumers within one trial (e.g. objective vs. tuner randomness).
    pub fn seed(&self, channel: u64) -> u64 {
        self.seeds.child(channel).seed()
    }

    /// An RNG on `channel`; see [`seed`](Self::seed).
    pub fn rng(&self, channel: u64) -> StdRng {
        self.seeds.child(channel).rng()
    }
}

/// Process-wide totals mirrored by every [`ProgressTracker`], registered on
/// the global `fedtrace` registry as `engine.trials_planned` /
/// `engine.trials_completed`.
struct EngineCounters {
    planned: fedtrace::Counter,
    completed: fedtrace::Counter,
}

fn engine_counters() -> &'static EngineCounters {
    static COUNTERS: OnceLock<EngineCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let registry = fedtrace::global().registry();
        EngineCounters {
            planned: registry.counter("engine.trials_planned"),
            completed: registry.counter("engine.trials_completed"),
        }
    })
}

/// Cross-experiment progress accounting: how many trials are planned and how
/// many have completed. Shared between runners via `Arc`; updates are
/// lock-free so parallel fan-outs can report without coordination.
///
/// Since the observability PR this is a thin shim over [`fedtrace::Counter`]
/// handles: each tracker keeps its own standalone counters (the public API
/// is unchanged) and mirrors every update into the global registry's
/// `engine.trials_planned` / `engine.trials_completed` totals.
#[derive(Debug, Default)]
pub struct ProgressTracker {
    planned: fedtrace::Counter,
    completed: fedtrace::Counter,
}

impl ProgressTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        ProgressTracker::default()
    }

    /// Registers `count` upcoming trials.
    pub fn add_planned(&self, count: usize) {
        self.planned.add(count as u64);
        engine_counters().planned.add(count as u64);
    }

    /// Records one completed trial.
    pub fn record_completed(&self) {
        self.completed.incr();
        engine_counters().completed.incr();
    }

    /// Number of trials registered so far.
    pub fn planned(&self) -> usize {
        self.planned.value() as usize
    }

    /// Number of trials completed so far.
    pub fn completed(&self) -> usize {
        self.completed.value() as usize
    }

    /// Completed fraction in `[0, 1]` (1 when nothing is planned).
    pub fn fraction(&self) -> f64 {
        let planned = self.planned();
        if planned == 0 {
            1.0
        } else {
            self.completed() as f64 / planned as f64
        }
    }
}

/// Executes independent trials under an [`ExecutionPolicy`] with per-trial
/// derived seeds and optional shared progress accounting.
#[derive(Debug, Clone, Default)]
pub struct TrialRunner {
    policy: ExecutionPolicy,
    progress: Option<Arc<ProgressTracker>>,
}

impl TrialRunner {
    /// Creates a runner with the given policy.
    pub fn new(policy: ExecutionPolicy) -> Self {
        TrialRunner {
            policy,
            progress: None,
        }
    }

    /// A sequential runner.
    pub fn sequential() -> Self {
        TrialRunner::new(ExecutionPolicy::Sequential)
    }

    /// A runner fanning trials out over all available cores.
    pub fn parallel() -> Self {
        TrialRunner::new(ExecutionPolicy::parallel())
    }

    /// A runner honoring the `FEDTUNE_THREADS` environment override
    /// ([`ExecutionPolicy::from_env`]): all cores unless the variable pins a
    /// thread count. The default of every plain experiment entry point, so
    /// one environment variable governs the whole fan-out of an example or
    /// bench run — with bit-identical results at any setting.
    pub fn from_env() -> Self {
        TrialRunner::new(ExecutionPolicy::from_env())
    }

    /// Attaches a shared progress tracker.
    #[must_use]
    pub fn with_progress(mut self, progress: Arc<ProgressTracker>) -> Self {
        self.progress = Some(progress);
        self
    }

    /// The runner's execution policy.
    pub fn policy(&self) -> ExecutionPolicy {
        self.policy
    }

    /// Runs `count` trials of `trial`, returning results in trial order.
    ///
    /// Trial `i` receives a [`TrialContext`] seeded at `(root_seed, i)`;
    /// results are independent of execution order, so sequential and parallel
    /// policies agree bit-for-bit whenever `trial` derives all randomness
    /// from its context.
    ///
    /// # Errors
    ///
    /// Returns the first (lowest-index) trial error, matching the behaviour
    /// of a sequential short-circuiting loop.
    pub fn run_trials<T, F>(&self, root_seed: u64, count: usize, trial: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(&TrialContext) -> Result<T> + Sync,
    {
        if let Some(progress) = &self.progress {
            progress.add_planned(count);
        }
        let root = SeedTree::new(root_seed);
        let progress = self.progress.as_deref();
        let results = exec::map_range(&self.policy, count, |index| {
            let ctx = TrialContext {
                index,
                seeds: root.child(index as u64),
            };
            let result = trial(&ctx);
            if let Some(progress) = progress {
                progress.record_completed();
            }
            result
        });
        results.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_contexts_are_positional() {
        let runner = TrialRunner::sequential();
        let seeds_forward = runner.run_trials(7, 8, |ctx| Ok(ctx.seed(0))).unwrap();
        let seeds_parallel = TrialRunner::parallel()
            .run_trials(7, 8, |ctx| Ok(ctx.seed(0)))
            .unwrap();
        assert_eq!(seeds_forward, seeds_parallel);
        // Distinct trials, distinct seeds; distinct channels, distinct seeds.
        let unique: std::collections::HashSet<u64> = seeds_forward.iter().copied().collect();
        assert_eq!(unique.len(), 8);
        let channel1 = runner.run_trials(7, 8, |ctx| Ok(ctx.seed(1))).unwrap();
        assert!(seeds_forward.iter().zip(&channel1).all(|(a, b)| a != b));
    }

    #[test]
    fn results_come_back_in_trial_order() {
        let runner = TrialRunner::parallel();
        let indices = runner.run_trials(0, 100, |ctx| Ok(ctx.index())).unwrap();
        assert_eq!(indices, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn first_error_wins() {
        let runner = TrialRunner::parallel();
        let result: Result<Vec<usize>> = runner.run_trials(0, 10, |ctx| {
            if ctx.index() >= 4 {
                Err(crate::CoreError::InvalidConfig {
                    message: format!("trial {}", ctx.index()),
                })
            } else {
                Ok(ctx.index())
            }
        });
        let err = result.unwrap_err();
        assert!(err.to_string().contains("trial 4"), "{err}");
    }

    #[test]
    fn progress_is_shared_and_counted() {
        let progress = Arc::new(ProgressTracker::new());
        assert_eq!(progress.fraction(), 1.0);
        let runner = TrialRunner::parallel().with_progress(Arc::clone(&progress));
        runner.run_trials(1, 5, |_| Ok(())).unwrap();
        let second = TrialRunner::sequential().with_progress(Arc::clone(&progress));
        second.run_trials(2, 3, |_| Ok(())).unwrap();
        assert_eq!(progress.planned(), 8);
        assert_eq!(progress.completed(), 8);
        assert_eq!(progress.fraction(), 1.0);
        progress.add_planned(2);
        assert!(progress.fraction() < 1.0);
    }

    #[test]
    fn trial_rngs_are_reproducible() {
        use rand::Rng;
        let runner = TrialRunner::parallel();
        let draws_a = runner
            .run_trials(3, 4, |ctx| Ok(ctx.rng(0).gen::<u64>()))
            .unwrap();
        let draws_b = runner
            .run_trials(3, 4, |ctx| Ok(ctx.rng(0).gen::<u64>()))
            .unwrap();
        assert_eq!(draws_a, draws_b);
    }
}
