//! Property tests for the service wire protocol.
//!
//! The decoder is the service's only untrusted-input surface, so its
//! contract is absolute: for *any* byte string, `decode_frame` returns a
//! classified error or a frame — it never panics — and every truncation of
//! a valid frame is reported as `Truncated`, never misparsed as a shorter
//! valid frame.

use fedserve::{decode_frame, encode_frame, FrameError, MAGIC};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any payload survives an encode→decode round trip bit-exactly, and
    /// the decoder consumes exactly the encoded length.
    #[test]
    fn prop_codec_round_trips(payload in collection::vec(any::<u8>(), 0..2048)) {
        let frame = encode_frame(&payload);
        let (decoded, used) = decode_frame(&frame).expect("valid frame must decode");
        prop_assert_eq!(&decoded, &payload);
        prop_assert_eq!(used, frame.len());

        // Two frames back-to-back decode independently.
        let mut double = frame.clone();
        double.extend_from_slice(&frame);
        let (first, used) = decode_frame(&double).expect("first frame");
        prop_assert_eq!(&first, &payload);
        let (second, _) = decode_frame(&double[used..]).expect("second frame");
        prop_assert_eq!(&second, &payload);
    }

    /// EVERY single-byte truncation of a valid frame decodes to
    /// `Truncated` — no prefix of a frame is ever a valid shorter frame,
    /// and none of them panics.
    #[test]
    fn prop_every_truncation_is_classified(payload in collection::vec(any::<u8>(), 0..512)) {
        let frame = encode_frame(&payload);
        for cut in 0..frame.len() {
            match decode_frame(&frame[..cut]) {
                Err(FrameError::Truncated { needed, have }) => {
                    prop_assert!(have < needed, "cut {}: have {} needed {}", cut, have, needed);
                }
                other => {
                    return Err(TestCaseError::Fail(format!(
                        "truncation at {cut} of {} decoded as {other:?}",
                        frame.len()
                    )));
                }
            }
        }
    }

    /// The decoder never panics on arbitrary garbage.
    #[test]
    fn prop_garbage_never_panics(bytes in collection::vec(any::<u8>(), 0..4096)) {
        let _ = decode_frame(&bytes);
    }

    /// Flipping any single byte of a valid frame never panics the decoder,
    /// and corrupting the magic is always classified as `BadMagic`.
    #[test]
    fn prop_single_byte_corruption_is_safe(
        payload in collection::vec(any::<u8>(), 1..256),
        position in 0usize..1024,
        flip in 1u8..=255,
    ) {
        let mut frame = encode_frame(&payload);
        let position = position % frame.len();
        frame[position] ^= flip;
        match decode_frame(&frame) {
            Ok(_) => {
                // Corruption inside the payload still frames correctly —
                // but magic corruption may never decode.
                prop_assert!(position >= MAGIC.len());
            }
            Err(FrameError::BadMagic { .. }) => {
                prop_assert!(position < MAGIC.len());
            }
            // A corrupted length field may claim more bytes than present
            // (Truncated) or exceed the frame cap (Oversized).
            Err(FrameError::Truncated { .. } | FrameError::Oversized { .. }) => {
                prop_assert!(
                    (MAGIC.len()..MAGIC.len() + 4).contains(&position),
                    "unexpected framing error from corruption at {}", position
                );
            }
            Err(FrameError::BadPayload { .. }) => {
                return Err(TestCaseError::Fail(
                    "decode_frame must not inspect payload bytes".to_string(),
                ));
            }
        }
    }
}
