//! Client library for the tuning service protocol.
//!
//! A [`Client`] wraps any bidirectional byte stream (unix socket, TCP, or
//! an in-memory pipe in tests) and speaks the framed request/response
//! protocol from [`proto`]. Convenience wrappers mirror the
//! service API one-to-one; a structured `Response::Error` from the server
//! surfaces as [`ServeError::Remote`].

use crate::proto::{self, Request, Response};
use crate::spec::{CampaignSpec, CampaignStatus};
use crate::{Result, ServeError};
use fedtrace::MetricsSnapshot;
use std::io::{Read, Write};
use std::path::Path;

/// A connected protocol client.
pub struct Client {
    stream: Box<dyn Stream>,
}

/// The transport a client runs over.
pub trait Stream: Read + Write + Send {}
impl<T: Read + Write + Send> Stream for T {}

impl Client {
    /// Wraps an already-connected stream.
    pub fn new(stream: Box<dyn Stream>) -> Self {
        Client { stream }
    }

    /// Connects to a unix-domain socket.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the socket cannot be reached.
    pub fn connect_unix(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let stream = std::os::unix::net::UnixStream::connect(path).map_err(|e| ServeError::Io {
            message: format!("connecting to {}: {e}", path.display()),
        })?;
        Ok(Client::new(Box::new(stream)))
    }

    /// Connects to a TCP endpoint (`host:port`).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the endpoint cannot be reached.
    pub fn connect_tcp(addr: &str) -> Result<Self> {
        let stream = std::net::TcpStream::connect(addr).map_err(|e| ServeError::Io {
            message: format!("connecting to {addr}: {e}"),
        })?;
        let _ = stream.set_nodelay(true);
        Ok(Client::new(Box::new(stream)))
    }

    /// Sends one request and reads one response.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on transport failure, [`ServeError::Proto`] on a
    /// malformed reply.
    pub fn request(&mut self, request: &Request) -> Result<Response> {
        proto::write_message(&mut self.stream, request).map_err(|e| ServeError::Io {
            message: format!("sending request: {e}"),
        })?;
        match proto::read_message::<Response>(&mut self.stream)? {
            Some(response) => Ok(response),
            None => Err(ServeError::Io {
                message: "server closed the connection mid-request".to_string(),
            }),
        }
    }

    /// Round-trips a ping.
    ///
    /// # Errors
    ///
    /// Transport failures, or an unexpected reply.
    pub fn ping(&mut self) -> Result<()> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Submits a campaign; returns its registered name.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] for validation/duplicate rejections.
    pub fn submit(&mut self, spec: CampaignSpec) -> Result<String> {
        match self.request(&Request::Submit { spec })? {
            Response::Submitted { name } => Ok(name),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the status of every campaign, or of one.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] when `name` is unknown.
    pub fn status(&mut self, name: Option<&str>) -> Result<Vec<CampaignStatus>> {
        let request = Request::Status {
            name: name.map(str::to_string),
        };
        match self.request(&request)? {
            Response::Status { campaigns } => Ok(campaigns),
            other => Err(unexpected(&other)),
        }
    }

    /// Blocks server-side until the campaign settles (or `timeout_ms`
    /// elapses), returning its settled status.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] with a `Timeout` code when the deadline
    /// passes first.
    pub fn wait(&mut self, name: &str, timeout_ms: u64) -> Result<CampaignStatus> {
        let request = Request::Wait {
            name: name.to_string(),
            timeout_ms,
        };
        match self.request(&request)? {
            Response::Status { mut campaigns } if !campaigns.is_empty() => Ok(campaigns.remove(0)),
            other => Err(unexpected(&other)),
        }
    }

    /// Requests a cooperative stop of one campaign.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] when `name` is unknown.
    pub fn stop(&mut self, name: &str) -> Result<()> {
        let request = Request::Stop {
            name: name.to_string(),
        };
        match self.request(&request)? {
            Response::Stopping { .. } => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the merged service + per-campaign metrics snapshot.
    ///
    /// # Errors
    ///
    /// Transport failures, or an unexpected reply.
    pub fn metrics(&mut self) -> Result<MetricsSnapshot> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { snapshot } => Ok(snapshot),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the service to shut down gracefully (running campaigns
    /// suspend, resumable at the next open).
    ///
    /// # Errors
    ///
    /// Transport failures, or an unexpected reply.
    pub fn shutdown(&mut self) -> Result<()> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

/// Folds an off-script reply into an error (`Error` frames become
/// [`ServeError::Remote`]).
fn unexpected(response: &Response) -> ServeError {
    match response {
        Response::Error { code, message } => ServeError::Remote {
            code: *code,
            message: message.clone(),
        },
        other => ServeError::Io {
            message: format!("unexpected server reply: {other:?}"),
        },
    }
}
