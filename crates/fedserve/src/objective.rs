//! The served objective: ledger-backed, bit-deterministic, latency-aware.
//!
//! [`ServeEval`] / [`ServeSink`] implement fedtune_core's concurrent
//! objective contract for service campaigns. Three properties matter here:
//!
//! - **Purity.** A live evaluation is a pure function of its canonical
//!   `(config, resource, noise_rep)` coordinates: the score is analytic and
//!   the observation noise comes from an RNG keyed positionally off the
//!   campaign seed and those coordinates. No thread count, completion order,
//!   or co-tenant can move a bit.
//! - **Replay.** The eval carries a snapshot of the campaign's recovered
//!   ledger; a request whose key is already recorded returns the *recorded*
//!   bits without recomputation (and without paying the simulated latency).
//!   This is what makes kill-and-restart resume exactly where it left off:
//!   the scheduler re-derives the same request sequence from the same seed,
//!   and the paid prefix is served from disk.
//! - **Durability.** The sink appends every commit to the campaign's segment
//!   ledger with per-insert durability, so the instant a result influences
//!   the scheduler it is already on disk — a crash can lose in-flight work
//!   (recomputed on restart) but never an observed result.
//!
//! [`ServeObjective`] glues the halves together so the *standalone*
//! reference runs — the ones the service's bit-identity tests compare
//! against — go through the very same code via
//! [`run_event_driven_concurrent`](fedtune_core::run_event_driven_concurrent).

use crate::spec::{CampaignSpec, ObjectiveSpec};
use crate::{Result, ServeError};
use fedhpo::{SearchSpace, TrialRequest};
use fedsim::clock::CostModel;
use fedstore::{StoreError, TrialKey, TrialRecord, TrialStore};
use fedtune_core::{ConcurrentEval, ConcurrentObjective, ConcurrentSink, CoreError, EvalOutput};
use rand_distr::{Distribution, Normal};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The thread-shared evaluation half (see module docs).
pub struct ServeEval {
    space: SearchSpace,
    objective: ObjectiveSpec,
    cost: CostModel,
    seed: u64,
    /// Recorded `(noisy_score, true_error)` bits from the recovered ledger.
    hits: HashMap<TrialKey, (f64, f64)>,
    served_hits: AtomicU64,
    served_misses: AtomicU64,
}

impl ServeEval {
    /// Evaluations answered from the recovered ledger so far.
    pub fn ledger_hits(&self) -> u64 {
        self.served_hits.load(Ordering::Relaxed)
    }

    /// Evaluations computed live so far.
    pub fn ledger_misses(&self) -> u64 {
        self.served_misses.load(Ordering::Relaxed)
    }

    /// The analytic true error at one request's coordinates.
    fn true_error(&self, request: &TrialRequest) -> f64 {
        match &self.objective {
            ObjectiveSpec::Analytic { target, .. } => {
                let values = request.config.values();
                let distance: f64 =
                    values.iter().map(|v| (v - target).abs()).sum::<f64>() / values.len() as f64;
                distance + 1.0 / (request.resource as f64 + 1.0)
            }
        }
    }

    /// The positional observation-noise draw for one ledger key.
    fn noise_draw(&self, key: &TrialKey, noise_sd: f64) -> f64 {
        if noise_sd <= 0.0 {
            return 0.0;
        }
        // Keyed by canonical coordinates, not trial id: promotions of the
        // same config to a new rung draw fresh noise, re-evaluations of the
        // same (config, resource, rep) reproduce the same draw.
        let index = key
            .config
            .fingerprint()
            .wrapping_add((key.resource as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(key.rep.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        let mut rng = fedmath::rng::rng_for(self.seed, index);
        match Normal::new(0.0, noise_sd) {
            Ok(normal) => normal.sample(&mut rng),
            // Unreachable for validated specs (finite positive sd).
            Err(_) => 0.0,
        }
    }
}

impl ConcurrentEval for ServeEval {
    type State = usize;

    fn evaluate(
        &self,
        trained: &mut usize,
        request: &TrialRequest,
    ) -> fedtune_core::Result<EvalOutput> {
        let key =
            TrialKey::for_request(&self.space, request).map_err(|e| CoreError::InvalidConfig {
                message: format!("unkeyable request: {e}"),
            })?;
        let already = *trained;
        let reached = already.max(request.resource);
        let rounds_delta = reached - already;
        *trained = reached;
        if let Some(&(noisy_score, true_error)) = self.hits.get(&key) {
            // Served from the ledger: recorded bits, no latency — a resumed
            // campaign fast-forwards through its paid prefix.
            self.served_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(EvalOutput {
                noisy_score,
                true_error,
                rounds_delta,
                resource_completed: reached,
            });
        }
        self.served_misses.fetch_add(1, Ordering::Relaxed);
        let ObjectiveSpec::Analytic {
            noise_sd,
            latency_scale,
            fail_trial,
            panic_trial,
            ..
        } = &self.objective;
        if *panic_trial == Some(request.trial_id) {
            panic!("injected evaluation panic for trial {}", request.trial_id);
        }
        if *fail_trial == Some(request.trial_id) {
            return Err(CoreError::InvalidConfig {
                message: format!("injected evaluation failure for trial {}", request.trial_id),
            });
        }
        if *latency_scale > 0.0 {
            // The federated latency this evaluation would wait on: training
            // from `already` to `reached` rounds under the campaign's cost
            // model, scaled from virtual to real seconds. Pure in the same
            // coordinates as the score, so sleeping never moves a bit.
            let fingerprint = key.config.fingerprint();
            let virtual_seconds = self.cost.evaluation_seconds(fingerprint, already, reached);
            std::thread::sleep(Duration::from_secs_f64(virtual_seconds * latency_scale));
        }
        let true_error = self.true_error(request);
        Ok(EvalOutput {
            noisy_score: true_error + self.noise_draw(&key, *noise_sd),
            true_error,
            rounds_delta,
            resource_completed: reached,
        })
    }
}

/// The driver-thread accounting half: parks per-trial trained-rounds state
/// and appends every commit to the campaign's ledger.
pub struct ServeSink {
    store: TrialStore,
    provenance: fedstore::Provenance,
    space: SearchSpace,
    states: HashMap<usize, usize>,
    /// Committed evaluations (hits and misses alike).
    pub evaluations: u64,
    /// Committed incremental training rounds.
    pub resource_spent: u64,
    /// First ledger failure, stashed because [`ConcurrentSink::commit`]
    /// cannot return errors; the campaign driver checks it after every
    /// commit drain and fails the campaign.
    pub io_error: Option<StoreError>,
}

impl ServeSink {
    /// Consumes the sink, returning its ledger.
    pub fn into_store(self) -> TrialStore {
        self.store
    }

    /// The ledger being appended to.
    pub fn store(&self) -> &TrialStore {
        &self.store
    }
}

impl ConcurrentSink for ServeSink {
    type State = usize;

    fn take_state(&mut self, trial_id: usize) -> usize {
        self.states.remove(&trial_id).unwrap_or(0)
    }

    fn put_state(&mut self, trial_id: usize, state: usize) {
        self.states.insert(trial_id, state);
    }

    fn commit(&mut self, request: &TrialRequest, output: &EvalOutput, sim_time: f64) {
        self.evaluations += 1;
        self.resource_spent += output.rounds_delta as u64;
        if self.io_error.is_some() {
            return;
        }
        let record = match TrialKey::for_request(&self.space, request) {
            Ok(key) => TrialRecord {
                config: key.config,
                resource: key.resource,
                rep: key.rep,
                noisy_score: output.noisy_score,
                true_error: output.true_error,
                sim_time,
                provenance: self.provenance.clone(),
            },
            Err(e) => {
                self.io_error = Some(e);
                return;
            }
        };
        // Idempotent: replayed hits re-insert their existing record, which
        // the ledger recognizes and skips.
        if let Err(e) = self.store.insert(record) {
            self.io_error = Some(e);
        }
    }
}

/// Both halves of a campaign's objective, shaped for
/// [`run_event_driven_concurrent`](fedtune_core::run_event_driven_concurrent)
/// (the standalone reference) and for the service's own driver (which `Arc`s
/// the eval half across the shared pool).
pub struct ServeObjective {
    /// The thread-shared evaluation half.
    pub eval: std::sync::Arc<ServeEval>,
    /// The driver-side accounting half.
    pub sink: ServeSink,
}

impl ConcurrentObjective for ServeObjective {
    type State = usize;
    type Eval = ServeEval;
    type Sink = ServeSink;

    fn split(&mut self) -> (&ServeEval, &mut ServeSink) {
        (&self.eval, &mut self.sink)
    }
}

/// Builds a campaign's objective around an already-opened (and possibly
/// recovered) ledger: every record in `store` becomes a replay hit.
///
/// # Errors
///
/// Propagates an invalid search space from the spec.
pub fn build_objective(spec: &CampaignSpec, store: TrialStore) -> Result<ServeObjective> {
    let space = spec.build_space()?;
    let mut hits = HashMap::with_capacity(store.len());
    for record in store.records() {
        hits.insert(record.key(), (record.noisy_score, record.true_error));
    }
    let eval = ServeEval {
        space: spec.build_space()?,
        objective: spec.objective.clone(),
        cost: spec.cost.build(),
        seed: spec.seed,
        hits,
        served_hits: AtomicU64::new(0),
        served_misses: AtomicU64::new(0),
    };
    let sink = ServeSink {
        store,
        provenance: spec.provenance(),
        space,
        states: HashMap::new(),
        evaluations: 0,
        resource_spent: 0,
        io_error: None,
    };
    Ok(ServeObjective {
        eval: std::sync::Arc::new(eval),
        sink,
    })
}

/// Maps a sink's stashed ledger failure into a service error.
pub(crate) fn sink_failure(sink: &mut ServeSink) -> Option<ServeError> {
    sink.io_error.take().map(ServeError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CampaignLimits, CostSpec, DimSpec, SchedulerSpec};
    use fedhpo::HpConfig;

    fn spec(noise_sd: f64) -> CampaignSpec {
        CampaignSpec {
            name: "objective".to_string(),
            seed: 11,
            space: vec![
                DimSpec::Uniform {
                    name: "x".to_string(),
                    low: 0.0,
                    high: 1.0,
                },
                DimSpec::Fixed {
                    name: "b".to_string(),
                    value: 0.5,
                },
            ],
            scheduler: SchedulerSpec::RandomSearch {
                trials: 3,
                resource: 2,
            },
            objective: ObjectiveSpec::Analytic {
                target: 0.25,
                noise_sd,
                latency_scale: 0.0,
                fail_trial: None,
                panic_trial: None,
            },
            cost: CostSpec::Unit,
            workers: 2,
            sim_budget: None,
            limits: CampaignLimits::default(),
        }
    }

    fn request(trial_id: usize, x: f64, resource: usize, rep: u64) -> TrialRequest {
        TrialRequest {
            trial_id,
            config: HpConfig::new(vec![x, 0.5]),
            resource,
            noise_rep: rep,
        }
    }

    #[test]
    fn noise_is_positional_and_rep_distinct() {
        let mut objective = build_objective(&spec(0.2), TrialStore::in_memory()).unwrap();
        let (eval, _) = objective.split();
        let mut s0 = 0usize;
        let a = eval.evaluate(&mut s0, &request(0, 0.75, 2, 0)).unwrap();
        let mut s1 = 0usize;
        // Same coordinates under a different trial id: identical bits.
        let b = eval.evaluate(&mut s1, &request(9, 0.75, 2, 0)).unwrap();
        assert_eq!(a.noisy_score.to_bits(), b.noisy_score.to_bits());
        assert_eq!(a.true_error.to_bits(), b.true_error.to_bits());
        // A different replicate draws different noise around the same truth.
        let mut s2 = 0usize;
        let c = eval.evaluate(&mut s2, &request(0, 0.75, 2, 1)).unwrap();
        assert_eq!(a.true_error.to_bits(), c.true_error.to_bits());
        assert_ne!(a.noisy_score.to_bits(), c.noisy_score.to_bits());
        assert_eq!(eval.ledger_misses(), 3);
        assert_eq!(eval.ledger_hits(), 0);
    }

    #[test]
    fn recorded_evaluations_replay_bit_exactly() {
        let spec = spec(0.3);
        // First pass: live evaluations, committed to an in-memory ledger.
        let mut live = build_objective(&spec, TrialStore::in_memory()).unwrap();
        let req = request(0, 0.6, 3, 0);
        let mut state = 0usize;
        let (eval, _) = live.split();
        let first = eval.evaluate(&mut state, &req).unwrap();
        let (_, sink) = live.split();
        sink.commit(&req, &first, 7.5);
        assert_eq!(sink.evaluations, 1);
        assert_eq!(sink.resource_spent, 3);
        assert!(sink.io_error.is_none());

        // Second pass: an objective rebuilt over the committed ledger serves
        // the same request from disk, bit for bit.
        let store = live.sink.into_store();
        assert_eq!(store.len(), 1);
        let mut replay = build_objective(&spec, store).unwrap();
        let (eval, _) = replay.split();
        let mut state = 0usize;
        let again = eval.evaluate(&mut state, &req).unwrap();
        assert_eq!(first.noisy_score.to_bits(), again.noisy_score.to_bits());
        assert_eq!(first.true_error.to_bits(), again.true_error.to_bits());
        assert_eq!(eval.ledger_hits(), 1);
        assert_eq!(eval.ledger_misses(), 0);
    }

    #[test]
    fn fail_injection_targets_one_trial() {
        let mut bad = spec(0.0);
        bad.objective = ObjectiveSpec::Analytic {
            target: 0.25,
            noise_sd: 0.0,
            latency_scale: 0.0,
            fail_trial: Some(1),
            panic_trial: None,
        };
        let mut objective = build_objective(&bad, TrialStore::in_memory()).unwrap();
        let (eval, _) = objective.split();
        let mut state = 0usize;
        assert!(eval.evaluate(&mut state, &request(0, 0.5, 1, 0)).is_ok());
        let mut state = 0usize;
        assert!(eval.evaluate(&mut state, &request(1, 0.5, 1, 0)).is_err());
    }
}
