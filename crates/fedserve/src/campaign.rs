//! One campaign driver: an `ExecutorCore` pumped through the fair gate.
//!
//! [`run_campaign`] is the service-side sibling of
//! [`run_event_driven_concurrent`](fedtune_core::run_event_driven_concurrent):
//! the same sans-io core, the same dispatch-order commit discipline, the
//! same per-trial state chaining — with two insertions that make it
//! multi-tenant:
//!
//! - every ready dispatch passes through the [`FairGate`] before touching a
//!   real worker (admission may lag dispatch; grants arrive on the driver's
//!   own channel, in dispatch order, so the reorder logic is unchanged), and
//! - evaluation jobs go to a process-wide [`SharedPool`] instead of a
//!   campaign-private scoped pool, so co-tenants share threads.
//!
//! Neither insertion touches the virtual-time state machine: admission
//! delays and co-tenant scheduling shift only *wall* time, so a campaign's
//! outcome — selections, scores, `sim_elapsed`, timeline — is bit-identical
//! to the same campaign run standalone. The unit tests at the bottom assert
//! exactly that.
//!
//! # Control and isolation
//!
//! Three cooperative flags steer a driver mid-flight: `stop` (operator
//! request → terminal), `suspend` (service shutdown → resumable), and
//! `kill` (simulated crash → abort *now*, no terminal marker, restart
//! resumes from the ledger). Stop and suspend use
//! [`ExecutorCore::halt`]: the scheduler is never polled again but already
//! dispatched evaluations drain, leaving a consistent partial outcome.
//! A panicking or failing evaluation aborts only its own campaign — the
//! shared pool isolates the panic, the driver maps it to
//! [`ServeError::EvalPanicked`], and the gate guard releases the
//! campaign's admitted capacity on the way out.

use crate::dispatch::{DrrConfig, FairGate, GateError};
use crate::objective::{build_objective, sink_failure, ServeEval, ServeSink};
use crate::spec::CampaignSpec;
use crate::{Result, ServeError};
use fedhpo::{TrialRequest, TrialResult};
use fedsim::clock::EventKey;
use fedsim::SharedPool;
use fedstore::TrialStore;
use fedtune_core::{
    ConcurrentEval, ConcurrentSink, DispatchedTrial, EvalOutput, EventDrivenOutcome, ExecutorCore,
    ExecutorStep, VirtualExecution,
};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};

/// Why a campaign halted before its schedule finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltReason {
    /// An operator stop request (terminal).
    Stopped,
    /// A graceful service shutdown (resumable: no terminal marker is
    /// written, the next service start resumes from the ledger).
    Suspended,
    /// The campaign's `max_evaluations` budget was reached (terminal).
    BudgetEvaluations,
    /// The campaign's `max_resource` budget was reached (terminal).
    BudgetResource,
}

/// Cooperative control flags shared between the service frontend and one
/// campaign driver. All flags are one-way: once raised they stay raised.
#[derive(Debug, Default)]
pub struct CampaignFlags {
    /// Operator stop: halt polling, drain in-flight work, settle terminal.
    pub stop: AtomicBool,
    /// Service shutdown: like stop, but the campaign is left resumable.
    pub suspend: AtomicBool,
    /// Simulated crash: abort immediately, mid-everything.
    pub kill: AtomicBool,
}

/// Live progress counters a driver reports after every commit.
#[derive(Debug, Clone, Copy)]
pub struct Progress {
    /// Committed evaluations so far.
    pub evaluations: u64,
    /// Committed training rounds so far.
    pub resource_spent: u64,
    /// Virtual completion time of the latest commit.
    pub sim_time: f64,
    /// Evaluations served from the recovered ledger so far.
    pub ledger_hits: u64,
    /// Evaluations computed live so far.
    pub ledger_misses: u64,
}

/// Everything a settled campaign driver hands back to the registry.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// The tuning outcome (selections, log, timeline, `sim_elapsed`).
    pub outcome: EventDrivenOutcome,
    /// Why the driver halted early, if it did. `None` with
    /// `outcome.finished == false` means the *simulated* budget cut the
    /// schedule off.
    pub halt: Option<HaltReason>,
    /// Committed evaluations.
    pub evaluations: u64,
    /// Committed training rounds.
    pub resource_spent: u64,
    /// Evaluations served from the recovered ledger.
    pub ledger_hits: u64,
    /// Evaluations computed live.
    pub ledger_misses: u64,
    /// The campaign's ledger, every commit durably appended.
    pub store: TrialStore,
}

/// A message into the driver's single inbox: gate grants and evaluation
/// completions share one channel so the driver has exactly one blocking
/// point.
enum CampaignMsg {
    /// The gate admitted the ticket at the front of the pending queue.
    Grant(u64),
    /// An evaluation task finished on the shared pool.
    Done {
        seq: usize,
        key: EventKey,
        request: TrialRequest,
        sim_completion: f64,
        state: usize,
        output: fedtune_core::Result<EvalOutput>,
    },
    /// An evaluation task unwound before reporting.
    Panicked,
}

/// Sends [`CampaignMsg::Panicked`] if the task unwinds before defusing,
/// so the driver never blocks forever on a dead task.
struct PanicGuard {
    tx: Option<mpsc::Sender<CampaignMsg>>,
}

impl Drop for PanicGuard {
    fn drop(&mut self) {
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(CampaignMsg::Panicked);
        }
    }
}

/// Deregisters the campaign from the gate on every exit path, releasing
/// its admitted capacity to the co-tenants.
struct GateGuard<'g> {
    gate: &'g FairGate,
    member: u64,
}

impl Drop for GateGuard<'_> {
    fn drop(&mut self) {
        self.gate.deregister(self.member);
    }
}

/// Immutable driver context shared by submit sites.
struct Shared<'s> {
    pool: &'s SharedPool,
    gate: &'s FairGate,
    member: u64,
    eval: Arc<ServeEval>,
    tx: mpsc::Sender<CampaignMsg>,
    trace: Option<Arc<fedtrace::Trace>>,
}

impl Shared<'_> {
    /// Ships one granted dispatch to the shared pool.
    fn submit(&self, seq: usize, dispatched: DispatchedTrial, mut state: usize, chained: bool) {
        let eval = Arc::clone(&self.eval);
        let tx = self.tx.clone();
        let trace = self.trace.clone();
        let job = move || {
            let mut guard = PanicGuard { tx: Some(tx) };
            let started = trace.as_ref().map(|t| t.wall_profile().now_seconds());
            let output = eval.evaluate(&mut state, &dispatched.request);
            if let (Some(t), Some(started)) = (trace.as_ref(), started) {
                t.wall_profile().record_since("evaluate", started);
            }
            let tx = guard.tx.take().expect("guard still armed");
            let _ = tx.send(CampaignMsg::Done {
                seq,
                key: dispatched.key,
                request: dispatched.request,
                sim_completion: dispatched.sim_completion,
                state,
                output,
            });
        };
        if chained {
            self.pool.submit_chained(job);
        } else {
            self.pool.submit(job);
        }
    }
}

/// Mutable reorder state of one driver (everything that is not the core or
/// the sink).
struct Flow {
    next_seq: usize,
    next_commit: usize,
    /// Out-of-order completions parked until their dispatch-order turn.
    commit_buf: BTreeMap<usize, (TrialRequest, EvalOutput, f64)>,
    /// Dispatches enqueued at the gate, awaiting admission (FIFO — the
    /// gate grants a member's tickets in enqueue order).
    pending_grant: VecDeque<(u64, usize, DispatchedTrial)>,
    /// Trials with a task in flight; queued later dispatches chain onto
    /// the freed state in order.
    busy: HashMap<usize, VecDeque<(usize, DispatchedTrial)>>,
}

impl Flow {
    /// Handles one inbox message; returns the delivered key for `Done`.
    fn handle(
        &mut self,
        msg: CampaignMsg,
        shared: &Shared<'_>,
        core: &mut ExecutorCore<'_>,
        sink: &mut ServeSink,
        on_progress: &mut dyn FnMut(Progress),
    ) -> Result<Option<EventKey>> {
        match msg {
            CampaignMsg::Grant(ticket) => {
                let (expected, seq, dispatched) = self
                    .pending_grant
                    .pop_front()
                    .expect("grant with empty pending queue");
                debug_assert_eq!(expected, ticket, "gate granted out of enqueue order");
                let trial = dispatched.request.trial_id;
                match self.busy.get_mut(&trial) {
                    // The trial's state is on a worker right now: queue
                    // behind it, preserving per-trial dispatch order.
                    Some(queue) => queue.push_back((seq, dispatched)),
                    None => {
                        self.busy.insert(trial, VecDeque::new());
                        let state = sink.take_state(trial);
                        shared.submit(seq, dispatched, state, false);
                    }
                }
                Ok(None)
            }
            CampaignMsg::Done {
                seq,
                key,
                request,
                sim_completion,
                state,
                output,
            } => {
                shared.gate.release(shared.member);
                let output = output?;
                core.complete(key, TrialResult::of(&request, output.noisy_score))?;
                self.commit_buf
                    .insert(seq, (request, output, sim_completion));
                let mut last_commit = None;
                while let Some((request, output, time)) = self.commit_buf.remove(&self.next_commit)
                {
                    sink.commit(&request, &output, time);
                    self.next_commit += 1;
                    last_commit = Some(time);
                }
                if let Some(e) = sink_failure(sink) {
                    return Err(e);
                }
                if let Some(sim_time) = last_commit {
                    on_progress(Progress {
                        evaluations: sink.evaluations,
                        resource_spent: sink.resource_spent,
                        sim_time,
                        ledger_hits: shared.eval.ledger_hits(),
                        ledger_misses: shared.eval.ledger_misses(),
                    });
                }
                let trial = key.trial as usize;
                let queue = self.busy.get_mut(&trial).expect("in-flight trial tracked");
                if let Some((next, dispatched)) = queue.pop_front() {
                    // Hand the warm state straight to the trial's next task.
                    shared.submit(next, dispatched, state, true);
                } else {
                    self.busy.remove(&trial);
                    sink.put_state(trial, state);
                }
                Ok(Some(key))
            }
            CampaignMsg::Panicked => Err(ServeError::EvalPanicked),
        }
    }
}

/// Runs one campaign to a settled outcome over the shared pool and gate.
///
/// `store` is the campaign's (possibly recovered) ledger; every record in
/// it replays bit-exactly instead of re-evaluating, which is the whole
/// crash-restart story. See the module docs for the control flags.
///
/// # Errors
///
/// - [`ServeError::Killed`] when the kill flag fires (nothing terminal is
///   recorded; the ledger already holds every commit).
/// - [`ServeError::EvalPanicked`] / core / store errors when this
///   campaign's own machinery fails.
#[allow(clippy::too_many_arguments)]
pub fn run_campaign(
    spec: &CampaignSpec,
    store: TrialStore,
    pool: &SharedPool,
    gate: &FairGate,
    flags: &CampaignFlags,
    trace: Option<Arc<fedtrace::Trace>>,
    on_progress: &mut dyn FnMut(Progress),
) -> Result<CampaignOutcome> {
    spec.validate()?;
    let space = spec.build_space()?;
    let mut scheduler = spec.build_scheduler()?;
    let mut rng = fedmath::rng::rng_for(spec.seed, 0);
    let mut sim = VirtualExecution::new(spec.workers, spec.cost.build());
    if let Some(budget) = spec.sim_budget {
        sim = sim.with_sim_budget(budget);
    }
    let mut objective = build_objective(spec, store)?;
    let eval = Arc::clone(&objective.eval);
    let sink = &mut objective.sink;

    let (tx, rx) = mpsc::channel::<CampaignMsg>();
    let grant_tx = tx.clone();
    let member = gate.register(
        DrrConfig {
            quantum: spec.limits.quantum,
            max_in_flight: spec.limits.max_in_flight,
            max_queued: spec.limits.max_queued,
        },
        move |ticket| {
            let _ = grant_tx.send(CampaignMsg::Grant(ticket));
        },
    );
    let _gate_guard = GateGuard { gate, member };

    let shared = Shared {
        pool,
        gate,
        member,
        eval: Arc::clone(&eval),
        tx,
        trace: trace.clone(),
    };
    let mut core =
        ExecutorCore::new_traced(scheduler.as_mut(), &space, &mut rng, &sim, trace.as_deref())?;
    let mut flow = Flow {
        next_seq: 0,
        next_commit: 0,
        commit_buf: BTreeMap::new(),
        pending_grant: VecDeque::new(),
        busy: HashMap::new(),
    };
    let mut halt_reason: Option<HaltReason> = None;
    // Budget enforcement is *dispatch-side*: the dispatch sequence is a pure
    // function of the virtual state machine (never of real thread timing),
    // so the halt lands on the same evaluation in every execution and a
    // budget-capped campaign stays bit-reproducible. `planned` mirrors each
    // trial's dispatched (not yet necessarily committed) training rounds.
    let mut planned: HashMap<usize, usize> = HashMap::new();
    let mut planned_rounds: u64 = 0;

    let recv = |rx: &mpsc::Receiver<CampaignMsg>| -> Result<CampaignMsg> {
        rx.recv().map_err(|_| ServeError::Core {
            message: "evaluation workers disconnected before completing dispatched work"
                .to_string(),
        })
    };

    loop {
        if flags.kill.load(Ordering::Relaxed) {
            return Err(ServeError::Killed);
        }
        if halt_reason.is_none() {
            if flags.stop.load(Ordering::Relaxed) {
                core.halt();
                halt_reason = Some(HaltReason::Stopped);
            } else if flags.suspend.load(Ordering::Relaxed) {
                core.halt();
                halt_reason = Some(HaltReason::Suspended);
            }
        }
        match core.step()? {
            ExecutorStep::Dispatch(batch) => {
                for dispatched in batch {
                    let seq = flow.next_seq;
                    flow.next_seq += 1;
                    // Admission cost = incremental rounds this evaluation
                    // will train (affects only fairness, never bits).
                    let trial = dispatched.request.trial_id;
                    let trained = planned.entry(trial).or_insert(0);
                    let delta = dispatched.request.resource.saturating_sub(*trained);
                    *trained = (*trained).max(dispatched.request.resource);
                    planned_rounds += delta as u64;
                    let cost = (delta as u64).max(1);
                    let ticket = loop {
                        if flags.kill.load(Ordering::Relaxed) {
                            return Err(ServeError::Killed);
                        }
                        match gate.enqueue(member, cost) {
                            Ok(ticket) => break ticket,
                            Err(GateError::QueueFull { .. }) => {
                                // Back-pressure: drain one completion or
                                // grant before queueing more.
                                let msg = recv(&rx)?;
                                flow.handle(msg, &shared, &mut core, sink, on_progress)?;
                            }
                            Err(e @ GateError::UnknownMember { .. }) => {
                                return Err(ServeError::Core {
                                    message: e.to_string(),
                                });
                            }
                        }
                    };
                    flow.pending_grant.push_back((ticket, seq, dispatched));
                }
                // Trial/resource budgets cut the schedule off at dispatch
                // granularity: everything already dispatched still drains
                // (exactly like a simulated wall-clock cutoff).
                if halt_reason.is_none() {
                    let limits = &spec.limits;
                    if limits
                        .max_evaluations
                        .is_some_and(|cap| flow.next_seq as u64 >= cap)
                    {
                        core.halt();
                        halt_reason = Some(HaltReason::BudgetEvaluations);
                    } else if limits.max_resource.is_some_and(|cap| planned_rounds >= cap) {
                        core.halt();
                        halt_reason = Some(HaltReason::BudgetResource);
                    }
                }
            }
            ExecutorStep::Deliver(awaited) => loop {
                if flags.kill.load(Ordering::Relaxed) {
                    return Err(ServeError::Killed);
                }
                let msg = recv(&rx)?;
                let delivered = flow.handle(msg, &shared, &mut core, sink, on_progress)?;
                if delivered == Some(awaited) {
                    break;
                }
            },
            ExecutorStep::Finished => break,
        }
    }

    let outcome = core.finish();
    Ok(CampaignOutcome {
        outcome,
        halt: halt_reason,
        evaluations: sink.evaluations,
        resource_spent: sink.resource_spent,
        ledger_hits: eval.ledger_hits(),
        ledger_misses: eval.ledger_misses(),
        store: objective.sink.into_store(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CampaignLimits, CostSpec, DimSpec, ObjectiveSpec, SchedulerSpec};
    use fedtune_core::run_event_driven_concurrent;

    fn spec(name: &str, seed: u64) -> CampaignSpec {
        CampaignSpec {
            name: name.to_string(),
            seed,
            space: vec![DimSpec::Uniform {
                name: "x".to_string(),
                low: 0.0,
                high: 1.0,
            }],
            scheduler: SchedulerSpec::AsyncAsha {
                trials: 12,
                eta: 3,
                min_resource: 1,
                max_resource: 9,
            },
            objective: ObjectiveSpec::Analytic {
                target: 0.3,
                noise_sd: 0.15,
                latency_scale: 0.0,
                fail_trial: None,
                panic_trial: None,
            },
            cost: CostSpec::HeavyTailedClients {
                clients: 40,
                per_round: 4,
                seed: 5,
            },
            workers: 4,
            sim_budget: None,
            limits: CampaignLimits::default(),
        }
    }

    fn standalone(spec: &CampaignSpec, threads: usize) -> EventDrivenOutcome {
        let space = spec.build_space().unwrap();
        let mut scheduler = spec.build_scheduler().unwrap();
        let mut rng = fedmath::rng::rng_for(spec.seed, 0);
        let mut sim = VirtualExecution::new(spec.workers, spec.cost.build());
        if let Some(budget) = spec.sim_budget {
            sim = sim.with_sim_budget(budget);
        }
        let mut objective = build_objective(spec, TrialStore::in_memory()).unwrap();
        run_event_driven_concurrent(
            scheduler.as_mut(),
            &space,
            &mut objective,
            &mut rng,
            &sim,
            threads,
        )
        .unwrap()
    }

    #[test]
    fn served_campaign_is_bit_identical_to_standalone() {
        let spec = spec("bit-identity", 41);
        let reference = standalone(&spec, 4);
        assert!(reference.finished);

        let pool = SharedPool::new(4);
        let gate = FairGate::new(4);
        let flags = CampaignFlags::default();
        let mut progress = Vec::new();
        let served = run_campaign(
            &spec,
            TrialStore::in_memory(),
            &pool,
            &gate,
            &flags,
            None,
            &mut |p| progress.push(p.evaluations),
        )
        .unwrap();
        assert_eq!(served.outcome, reference, "service changed campaign bits");
        assert_eq!(
            served.outcome.sim_elapsed.to_bits(),
            reference.sim_elapsed.to_bits()
        );
        assert!(served.halt.is_none());
        assert_eq!(
            served.evaluations,
            reference.outcome.num_evaluations() as u64
        );
        assert_eq!(served.ledger_misses, served.evaluations);
        assert_eq!(served.ledger_hits, 0);
        assert_eq!(
            progress.last().copied(),
            Some(served.evaluations),
            "progress callback tracked every commit"
        );
        // Every commit landed in the ledger.
        assert_eq!(served.store.len() as u64, served.evaluations);
        assert_eq!(gate.global_in_flight(), 0, "gate capacity fully released");
    }

    #[test]
    fn evaluation_budget_halts_deterministically() {
        let mut capped = spec("budget", 17);
        capped.limits.max_evaluations = Some(7);
        let pool = SharedPool::new(2);
        let gate = FairGate::new(4);
        let flags = CampaignFlags::default();
        let outcome = run_campaign(
            &capped,
            TrialStore::in_memory(),
            &pool,
            &gate,
            &flags,
            None,
            &mut |_| {},
        )
        .unwrap();
        assert_eq!(outcome.halt, Some(HaltReason::BudgetEvaluations));
        assert!(!outcome.outcome.finished);
        // The halt lands after the budget-crossing commit plus whatever was
        // already dispatched — never more than the in-flight cap beyond it.
        assert!(outcome.evaluations >= 7);
        assert!(
            outcome.evaluations <= 7 + capped.limits.max_in_flight as u64 + capped.workers as u64
        );
        // Run it again: the cutoff is bit-stable.
        let again = run_campaign(
            &capped,
            TrialStore::in_memory(),
            &pool,
            &gate,
            &flags,
            None,
            &mut |_| {},
        )
        .unwrap();
        assert_eq!(again.outcome, outcome.outcome);
        assert_eq!(again.evaluations, outcome.evaluations);
    }

    #[test]
    fn stop_flag_settles_with_partial_outcome() {
        let spec = spec("stopped", 3);
        let pool = SharedPool::new(2);
        let gate = FairGate::new(4);
        let flags = CampaignFlags::default();
        // Raised before the first step: the halt drains the first dispatch
        // wave and settles.
        flags.stop.store(true, Ordering::Relaxed);
        let outcome = run_campaign(
            &spec,
            TrialStore::in_memory(),
            &pool,
            &gate,
            &flags,
            None,
            &mut |_| {},
        )
        .unwrap();
        assert_eq!(outcome.halt, Some(HaltReason::Stopped));
        assert!(!outcome.outcome.finished);
        assert!(outcome.evaluations < 30, "halt cut the schedule short");
    }

    #[test]
    fn kill_flag_aborts_without_terminal_outcome() {
        let spec = spec("killed", 29);
        let pool = SharedPool::new(2);
        let gate = FairGate::new(4);
        let flags = CampaignFlags::default();
        flags.kill.store(true, Ordering::Relaxed);
        let err = run_campaign(
            &spec,
            TrialStore::in_memory(),
            &pool,
            &gate,
            &flags,
            None,
            &mut |_| {},
        )
        .unwrap_err();
        assert_eq!(err, ServeError::Killed);
        assert_eq!(gate.global_in_flight(), 0, "guard released gate capacity");
    }

    #[test]
    fn a_panicking_campaign_fails_alone() {
        let mut rigged = spec("panics", 7);
        rigged.objective = ObjectiveSpec::Analytic {
            target: 0.3,
            noise_sd: 0.0,
            latency_scale: 0.0,
            fail_trial: None,
            panic_trial: Some(2),
        };
        let pool = SharedPool::new(2);
        let gate = FairGate::new(4);
        let flags = CampaignFlags::default();
        let err = run_campaign(
            &rigged,
            TrialStore::in_memory(),
            &pool,
            &gate,
            &flags,
            None,
            &mut |_| {},
        )
        .unwrap_err();
        assert_eq!(err, ServeError::EvalPanicked);
        // The pool survived the panic: a healthy campaign runs fine on the
        // same pool and gate afterwards.
        let healthy = spec("after-panic", 7);
        let outcome = run_campaign(
            &healthy,
            TrialStore::in_memory(),
            &pool,
            &gate,
            &flags,
            None,
            &mut |_| {},
        )
        .unwrap();
        assert!(outcome.outcome.finished);
        assert_eq!(outcome.outcome, standalone(&healthy, 2));
    }
}
