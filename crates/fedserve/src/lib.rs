//! The multi-tenant tuning service: many concurrent campaigns, one machine.
//!
//! Every piece of a long-lived campaign *server* exists elsewhere in this
//! workspace — fedstore's crash-recoverable segment ledger, fedhpo's ask/tell
//! [`Scheduler`](fedhpo::Scheduler), and fedtune_core's sans-io
//! [`ExecutorCore`](fedtune_core::ExecutorCore) whose completions can be fed
//! from the outside in any order. This crate fuses them into a daemon (the
//! Optuna `storage=` / Ray Tune driver role) that runs many campaigns
//! concurrently against one shared real-thread pool:
//!
//! - [`proto`] — a std-only length-prefixed JSON protocol spoken over unix
//!   sockets and TCP behind one listener trait, plus the [`Client`] library.
//! - [`spec`] — serializable campaign specifications (search space,
//!   scheduler, objective, cost model, limits) that double as the on-disk
//!   `spec.json` a crashed service restarts from.
//! - [`dispatch`] — deficit-round-robin fair-share admission: ready
//!   dispatches from all campaigns multiplex onto the bounded worker pool
//!   with per-campaign max-in-flight and queue-depth caps.
//! - [`campaign`] — one driver per campaign, pumping its `ExecutorCore`
//!   non-blockingly through grants and completions.
//! - [`service`] — the registry: per-campaign directories (own segment
//!   ledger, lock, fedtrace registry), budget enforcement, crash-restart
//!   from the ledgers alone, and the socket frontend.
//!
//! # Isolation and determinism
//!
//! Each campaign owns its scheduler, RNG, ledger, and trace registry; a
//! panicking evaluation or exhausted budget terminates *that* campaign only
//! (the shared pool isolates job panics). Because every evaluation is a pure
//! function of its canonical `(config, resource, noise_rep)` coordinates and
//! commits happen in dispatch order, a campaign's selections and
//! `sim_elapsed` are bit-identical whether it runs alone through
//! [`run_event_driven_concurrent`](fedtune_core::run_event_driven_concurrent),
//! shares the daemon with other tenants, or is killed and resumed from its
//! ledger — the service-level integration tests assert all three.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod client;
pub mod dispatch;
pub mod objective;
pub mod proto;
pub mod service;
pub mod spec;

pub use campaign::{CampaignOutcome, HaltReason};
pub use client::Client;
pub use dispatch::{DrrConfig, DrrState, FairGate, GateError};
pub use objective::{build_objective, ServeEval, ServeObjective, ServeSink};
pub use proto::{
    decode_frame, encode_frame, ErrorCode, FrameError, Request, Response, MAGIC, MAX_FRAME,
};
pub use service::{ServeListener, Service, ServiceConfig, TcpServeListener, UnixServeListener};
pub use spec::{
    CampaignLimits, CampaignSpec, CampaignState, CampaignStatus, CostSpec, DimSpec, ObjectiveSpec,
    SchedulerSpec, Selection,
};

use std::fmt;

/// Errors produced by the tuning service.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// A campaign specification failed validation.
    InvalidSpec {
        /// What was wrong with it.
        message: String,
    },
    /// A filesystem or socket operation failed.
    Io {
        /// What failed.
        message: String,
    },
    /// A protocol frame could not be read or written.
    Proto(proto::FrameError),
    /// The executor core or an evaluation failed.
    Core {
        /// The underlying failure.
        message: String,
    },
    /// The campaign's ledger failed.
    Store {
        /// The underlying failure.
        message: String,
    },
    /// A submitted campaign name is already registered.
    DuplicateCampaign {
        /// The colliding name.
        name: String,
    },
    /// A request referenced a campaign the registry does not know.
    UnknownCampaign {
        /// The missing name.
        name: String,
    },
    /// An evaluation task panicked on a worker thread.
    EvalPanicked,
    /// The campaign driver observed the service kill flag (simulated crash);
    /// no terminal state is recorded so a restart resumes from the ledger.
    Killed,
    /// The service is shutting down and not accepting work.
    ShuttingDown,
    /// The server answered a client request with a structured error.
    Remote {
        /// Machine-readable error code.
        code: proto::ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Waiting on a campaign timed out before it reached a terminal state.
    WaitTimeout {
        /// The campaign waited on.
        name: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidSpec { message } => {
                write!(f, "invalid campaign spec: {message}")
            }
            ServeError::Io { message } => write!(f, "service io error: {message}"),
            ServeError::Proto(e) => write!(f, "protocol error: {e}"),
            ServeError::Core { message } => write!(f, "executor error: {message}"),
            ServeError::Store { message } => write!(f, "ledger error: {message}"),
            ServeError::DuplicateCampaign { name } => {
                write!(f, "campaign {name:?} already exists")
            }
            ServeError::UnknownCampaign { name } => write!(f, "unknown campaign {name:?}"),
            ServeError::EvalPanicked => write!(f, "an evaluation task panicked"),
            ServeError::Killed => write!(f, "service killed mid-campaign"),
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Remote { code, message } => {
                write!(f, "server error [{code:?}]: {message}")
            }
            ServeError::WaitTimeout { name } => {
                write!(f, "timed out waiting for campaign {name:?}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<proto::FrameError> for ServeError {
    fn from(e: proto::FrameError) -> Self {
        ServeError::Proto(e)
    }
}

impl From<fedtune_core::CoreError> for ServeError {
    fn from(e: fedtune_core::CoreError) -> Self {
        ServeError::Core {
            message: e.to_string(),
        }
    }
}

impl From<fedstore::StoreError> for ServeError {
    fn from(e: fedstore::StoreError) -> Self {
        ServeError::Store {
            message: e.to_string(),
        }
    }
}

impl From<fedhpo::HpoError> for ServeError {
    fn from(e: fedhpo::HpoError) -> Self {
        ServeError::Core {
            message: e.to_string(),
        }
    }
}

/// Convenience alias for service results.
pub type Result<T> = std::result::Result<T, ServeError>;
