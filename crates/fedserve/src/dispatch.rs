//! Fair-share admission: deficit round robin over campaigns.
//!
//! Every campaign driver turns its ready virtual dispatches into admission
//! requests; this module decides *which* of them may occupy the shared real
//! worker pool, and in what order. The policy is classic deficit round
//! robin (DRR):
//!
//! - Each campaign has a **quantum** — admission credit, in cost units
//!   (training rounds) — accrued once per scheduling pass while it has
//!   queued work and spare in-flight capacity.
//! - A queued dispatch is granted when the campaign's accumulated
//!   **deficit** covers its cost; the cost is then deducted. Cheap-round
//!   campaigns therefore get proportionally more *grants*, heavy-round
//!   campaigns proportionally fewer, and long-run admitted cost per
//!   campaign converges to the quantum ratio — wall-clock never enters the
//!   accounting, which is what makes fairness testable deterministically.
//! - A campaign that empties its queue forfeits its remaining deficit
//!   (standard DRR: you cannot bank credit while idle).
//!
//! Two caps bound each campaign regardless of deficit: `max_in_flight`
//! (its evaluations on real workers at once) and the gate-wide
//! `global_in_flight` cap sized to the worker pool. [`DrrState`] is the
//! pure, single-threaded policy — directly unit-testable; [`FairGate`]
//! wraps it in a mutex and pushes grants to campaign drivers through
//! registered notifier callbacks, so drivers block on their own channels,
//! never on the gate.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Mutex;

/// Per-campaign fairness parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrrConfig {
    /// Admission credit accrued per scheduling pass.
    pub quantum: u64,
    /// Cap on this campaign's concurrently admitted dispatches.
    pub max_in_flight: usize,
    /// Cap on this campaign's queued (admitted-pending) dispatches.
    pub max_queued: usize,
}

/// Why an enqueue was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GateError {
    /// The member's pending queue is at `max_queued`.
    QueueFull {
        /// The refusing member.
        member: u64,
        /// Its queue-depth cap.
        cap: usize,
    },
    /// The member id is not registered.
    UnknownMember {
        /// The unknown id.
        member: u64,
    },
}

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateError::QueueFull { member, cap } => {
                write!(f, "member {member} queue is full (cap {cap})")
            }
            GateError::UnknownMember { member } => write!(f, "unknown gate member {member}"),
        }
    }
}

impl std::error::Error for GateError {}

struct Member {
    config: DrrConfig,
    deficit: u64,
    in_flight: usize,
    queue: VecDeque<(u64, u64)>,
}

/// The pure DRR policy state (no locking, no callbacks).
pub struct DrrState {
    members: HashMap<u64, Member>,
    /// Round-robin ring of member ids with queued work. Invariant: every
    /// member with a non-empty queue appears exactly once.
    ring: VecDeque<u64>,
    global_cap: usize,
    global_in_flight: usize,
    next_member: u64,
    next_ticket: u64,
}

impl DrrState {
    /// A gate admitting at most `global_cap` dispatches at once across all
    /// members (size it to the worker pool).
    pub fn new(global_cap: usize) -> Self {
        DrrState {
            members: HashMap::new(),
            ring: VecDeque::new(),
            global_cap: global_cap.max(1),
            global_in_flight: 0,
            next_member: 0,
            next_ticket: 0,
        }
    }

    /// Registers a member, returning its id.
    pub fn register(&mut self, config: DrrConfig) -> u64 {
        let id = self.next_member;
        self.next_member += 1;
        self.members.insert(
            id,
            Member {
                config: DrrConfig {
                    quantum: config.quantum.max(1),
                    max_in_flight: config.max_in_flight.max(1),
                    max_queued: config.max_queued.max(1),
                },
                deficit: 0,
                in_flight: 0,
                queue: VecDeque::new(),
            },
        );
        id
    }

    /// Removes a member, releasing all its admitted capacity. Queued
    /// tickets die with it; the ring entry is lazily skipped.
    pub fn deregister(&mut self, id: u64) {
        if let Some(member) = self.members.remove(&id) {
            self.global_in_flight -= member.in_flight;
        }
    }

    /// Queues one dispatch of the given cost, returning its ticket.
    ///
    /// # Errors
    ///
    /// [`GateError::QueueFull`] at the member's queue cap,
    /// [`GateError::UnknownMember`] for unregistered ids.
    pub fn enqueue(&mut self, id: u64, cost: u64) -> Result<u64, GateError> {
        let member = self
            .members
            .get_mut(&id)
            .ok_or(GateError::UnknownMember { member: id })?;
        if member.queue.len() >= member.config.max_queued {
            return Err(GateError::QueueFull {
                member: id,
                cap: member.config.max_queued,
            });
        }
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        if member.queue.is_empty() {
            self.ring.push_back(id);
        }
        member.queue.push_back((ticket, cost.max(1)));
        Ok(ticket)
    }

    /// Returns one admitted dispatch; the member's slot frees up.
    pub fn release(&mut self, id: u64) {
        if let Some(member) = self.members.get_mut(&id) {
            if member.in_flight > 0 {
                member.in_flight -= 1;
                self.global_in_flight -= 1;
            }
        }
    }

    /// Admitted dispatches across all members right now.
    pub fn global_in_flight(&self) -> usize {
        self.global_in_flight
    }

    /// Admitted dispatches of one member right now.
    pub fn member_in_flight(&self, id: u64) -> usize {
        self.members.get(&id).map_or(0, |m| m.in_flight)
    }

    /// Queued (not yet admitted) dispatches of one member.
    pub fn member_queued(&self, id: u64) -> usize {
        self.members.get(&id).map_or(0, |m| m.queue.len())
    }

    /// Runs DRR passes until no further grant is possible, returning the
    /// granted `(member, ticket)` pairs in admission order.
    ///
    /// Two details keep the rotation fair when capacity is the binding
    /// constraint (the steady state of a saturated pool, where slots free
    /// one at a time):
    ///
    /// - When global capacity fills **mid-pass**, the pass stops right
    ///   there, so the ring position persists across pumps and the next
    ///   freed slot is offered to the member *after* the last grantee —
    ///   always restarting from the same front would let a cheap-dispatch
    ///   campaign permanently outrun a costly one.
    /// - Deficit accrues on every visited pass (including those where the
    ///   grant then fails on capacity) but is **clamped** to the larger of
    ///   the member's front cost and four quanta: enough bank to ever admit
    ///   its costliest dispatch, never enough to hoard credit while
    ///   saturated and burst far past its share on release.
    pub fn pump(&mut self) -> Vec<(u64, u64)> {
        let mut grants = Vec::new();
        'pumping: loop {
            if self.global_in_flight >= self.global_cap {
                break;
            }
            let mut granted_this_pass = false;
            let mut blocked_on_deficit = false;
            for _ in 0..self.ring.len() {
                if self.global_in_flight >= self.global_cap {
                    // Mid-pass stop: the ring keeps its rotation point.
                    break 'pumping;
                }
                let Some(id) = self.ring.pop_front() else {
                    break;
                };
                let Some(member) = self.members.get_mut(&id) else {
                    continue; // deregistered while ringed
                };
                if member.queue.is_empty() {
                    // Idle members forfeit banked credit and leave the ring.
                    member.deficit = 0;
                    continue;
                }
                if member.in_flight >= member.config.max_in_flight {
                    // Self-capped: no credit accrues the member cannot use.
                    self.ring.push_back(id);
                    continue;
                }
                let front_cost = member.queue.front().map_or(1, |&(_, cost)| cost);
                let bank_cap = front_cost.max(member.config.quantum.saturating_mul(4));
                member.deficit = member
                    .deficit
                    .saturating_add(member.config.quantum)
                    .min(bank_cap);
                while let Some(&(ticket, cost)) = member.queue.front() {
                    if member.in_flight >= member.config.max_in_flight
                        || self.global_in_flight >= self.global_cap
                    {
                        break;
                    }
                    if cost > member.deficit {
                        blocked_on_deficit = true;
                        break;
                    }
                    member.queue.pop_front();
                    member.deficit -= cost;
                    member.in_flight += 1;
                    self.global_in_flight += 1;
                    grants.push((id, ticket));
                    granted_this_pass = true;
                }
                if member.queue.is_empty() {
                    member.deficit = 0;
                } else {
                    self.ring.push_back(id);
                }
            }
            if self.ring.is_empty() {
                break;
            }
            if !granted_this_pass && !blocked_on_deficit {
                // Another pass only helps if someone is short on deficit
                // (quantum accrual is the only thing a pass changes).
                break;
            }
        }
        grants
    }
}

type Notifier = Box<dyn Fn(u64) + Send>;

struct GateInner {
    drr: DrrState,
    notifiers: HashMap<u64, Notifier>,
}

/// The thread-safe gate shared by all campaign drivers.
///
/// Grants are *pushed*: each driver registers a notifier (typically an
/// `mpsc::Sender` wrapper) and blocks on its own channel. All notifier
/// calls happen under the gate lock, which serializes admission order;
/// notifiers must therefore never block (channel sends are fine).
pub struct FairGate {
    inner: Mutex<GateInner>,
}

impl FairGate {
    /// A gate admitting at most `global_cap` dispatches at once.
    pub fn new(global_cap: usize) -> Self {
        FairGate {
            inner: Mutex::new(GateInner {
                drr: DrrState::new(global_cap),
                notifiers: HashMap::new(),
            }),
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, GateInner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Registers a campaign with its fairness parameters and grant
    /// notifier; returns the member id used in all later calls.
    pub fn register(&self, config: DrrConfig, notifier: impl Fn(u64) + Send + 'static) -> u64 {
        let mut inner = self.locked();
        let id = inner.drr.register(config);
        inner.notifiers.insert(id, Box::new(notifier));
        id
    }

    /// Removes a campaign and rebalances; its queued tickets are dropped.
    pub fn deregister(&self, id: u64) {
        let mut inner = self.locked();
        inner.drr.deregister(id);
        inner.notifiers.remove(&id);
        Self::pump_locked(&mut inner);
    }

    /// Queues one dispatch and pumps; the grant (now or later) arrives via
    /// the member's notifier.
    ///
    /// # Errors
    ///
    /// See [`DrrState::enqueue`].
    pub fn enqueue(&self, id: u64, cost: u64) -> Result<u64, GateError> {
        let mut inner = self.locked();
        let ticket = inner.drr.enqueue(id, cost)?;
        Self::pump_locked(&mut inner);
        Ok(ticket)
    }

    /// Returns one admitted dispatch and pumps freed capacity to waiters.
    pub fn release(&self, id: u64) {
        let mut inner = self.locked();
        inner.drr.release(id);
        Self::pump_locked(&mut inner);
    }

    /// Admitted dispatches across all members right now.
    pub fn global_in_flight(&self) -> usize {
        self.locked().drr.global_in_flight()
    }

    fn pump_locked(inner: &mut GateInner) {
        for (member, ticket) in inner.drr.pump() {
            if let Some(notify) = inner.notifiers.get(&member) {
                notify(ticket);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(quantum: u64, max_in_flight: usize, max_queued: usize) -> DrrConfig {
        DrrConfig {
            quantum,
            max_in_flight,
            max_queued,
        }
    }

    /// The fairness acceptance check, at the accounting level (no threads,
    /// no wall clock): a greedy campaign with a huge backlog cannot starve
    /// a small one — the small campaign's dispatches finish within a
    /// bounded number of total grants.
    #[test]
    fn greedy_backlog_cannot_starve_a_small_campaign() {
        const GLOBAL_CAP: usize = 4;
        let mut drr = DrrState::new(GLOBAL_CAP);
        let greedy = drr.register(config(1, GLOBAL_CAP, 2000));
        let small = drr.register(config(1, GLOBAL_CAP, 64));
        let mut greedy_tickets = std::collections::HashSet::new();
        for _ in 0..1000 {
            greedy_tickets.insert(drr.enqueue(greedy, 1).unwrap());
        }
        let small_jobs = 12;
        let mut small_tickets = std::collections::HashSet::new();
        for _ in 0..small_jobs {
            small_tickets.insert(drr.enqueue(small, 1).unwrap());
        }

        // Drive to completion: grant, then immediately release one admitted
        // slot, so admission order is fully determined by the policy.
        let mut order = Vec::new();
        let mut admitted: VecDeque<u64> = VecDeque::new();
        loop {
            let grants = drr.pump();
            if grants.is_empty() && admitted.is_empty() {
                break;
            }
            for (member, ticket) in grants {
                assert!(drr.global_in_flight() <= GLOBAL_CAP, "global cap violated");
                if member == small {
                    assert!(small_tickets.remove(&ticket));
                } else {
                    assert!(greedy_tickets.remove(&ticket));
                }
                order.push(member);
                admitted.push_back(member);
            }
            let done = admitted.pop_front().unwrap();
            drr.release(done);
        }
        assert_eq!(order.len(), 1000 + small_jobs);
        assert!(small_tickets.is_empty(), "small campaign fully served");

        // Equal quanta ⇒ near-alternating admission: the small campaign's
        // last grant lands within ~2x its fair share of the prefix, not
        // after the greedy backlog.
        let last_small = order
            .iter()
            .rposition(|&member| member == small)
            .expect("small campaign was granted");
        assert!(
            last_small <= 4 * small_jobs,
            "small campaign starved: last grant at position {last_small} of {}",
            order.len()
        );
    }

    /// The core DRR property: with equal quanta, members converge to equal
    /// admitted *cost* shares — a campaign whose dispatches cost 5 rounds
    /// each is granted ~5x less often than a 1-round campaign, instead of
    /// alternating 1:1 with it.
    #[test]
    fn equal_quanta_split_cost_not_grants() {
        let mut drr = DrrState::new(2);
        let cheap = drr.register(config(1, 2, 4096));
        let heavy = drr.register(config(1, 2, 4096));
        for _ in 0..900 {
            drr.enqueue(cheap, 1).unwrap();
            drr.enqueue(heavy, 5).unwrap();
        }
        let mut counts = HashMap::new();
        let mut admitted: VecDeque<u64> = VecDeque::new();
        for (member, _) in drr.pump() {
            *counts.entry(member).or_insert(0usize) += 1;
            admitted.push_back(member);
        }
        for _ in 0..500 {
            if let Some(done) = admitted.pop_front() {
                drr.release(done);
            }
            for (member, _) in drr.pump() {
                assert!(drr.global_in_flight() <= 2);
                *counts.entry(member).or_insert(0usize) += 1;
                admitted.push_back(member);
            }
        }
        let cheap_grants = counts.get(&cheap).copied().unwrap_or(0);
        let heavy_grants = counts.get(&heavy).copied().unwrap_or(0);
        assert!(heavy_grants > 0, "heavy member starved");
        let grant_ratio = cheap_grants as f64 / heavy_grants as f64;
        assert!(
            (3.5..=6.5).contains(&grant_ratio),
            "5x dispatch cost should mean ~5x fewer grants, \
             got {cheap_grants}:{heavy_grants}"
        );
        // Admitted cost (rounds) is what equalizes.
        let cost_ratio = cheap_grants as f64 / (heavy_grants * 5) as f64;
        assert!(
            (0.75..=1.25).contains(&cost_ratio),
            "cost shares should be near-equal, got {cheap_grants} vs {}",
            heavy_grants * 5
        );
    }

    #[test]
    fn caps_are_hard() {
        let mut drr = DrrState::new(8);
        let member = drr.register(config(100, 2, 3));
        for _ in 0..3 {
            drr.enqueue(member, 1).unwrap();
        }
        // Queue cap: the fourth enqueue is refused.
        assert!(matches!(
            drr.enqueue(member, 1),
            Err(GateError::QueueFull { cap: 3, .. })
        ));
        // In-flight cap: plenty of deficit and global room, two grants only.
        let grants = drr.pump();
        assert_eq!(grants.len(), 2);
        assert_eq!(drr.member_in_flight(member), 2);
        assert_eq!(drr.member_queued(member), 1);
        // No progress without a release, then exactly one more.
        assert!(drr.pump().is_empty());
        drr.release(member);
        assert_eq!(drr.pump().len(), 1);
        assert!(matches!(
            drr.enqueue(999, 1),
            Err(GateError::UnknownMember { member: 999 })
        ));
    }

    #[test]
    fn costly_dispatches_wait_for_deficit() {
        let mut drr = DrrState::new(8);
        let member = drr.register(config(2, 8, 8));
        drr.enqueue(member, 5).unwrap();
        // Cost 5 at quantum 2: admitted once accrued passes cover it; a
        // single pump keeps passing (capacity is free) until it grants.
        let grants = drr.pump();
        assert_eq!(grants.len(), 1);
        // Idle members forfeit leftover deficit.
        drr.release(member);
        drr.enqueue(member, 5).unwrap();
        assert_eq!(drr.pump().len(), 1, "deficit was reset while idle");
    }

    #[test]
    fn deregister_releases_global_capacity() {
        let mut drr = DrrState::new(2);
        // Quantum 2 covers both of a's unit dispatches in one visit, so a
        // fills the whole gate before b is considered.
        let a = drr.register(config(2, 2, 8));
        let b = drr.register(config(1, 2, 8));
        drr.enqueue(a, 1).unwrap();
        drr.enqueue(a, 1).unwrap();
        drr.enqueue(b, 1).unwrap();
        assert_eq!(drr.pump().len(), 2, "global cap fills with member a");
        // Member a dies (campaign failed) while holding both slots.
        drr.deregister(a);
        assert_eq!(drr.global_in_flight(), 0);
        assert_eq!(drr.pump().len(), 1, "member b admitted after the crash");
    }

    #[test]
    fn fair_gate_pushes_grants_through_notifiers() {
        use std::sync::mpsc;
        let gate = FairGate::new(2);
        let (tx_a, rx_a) = mpsc::channel();
        let (tx_b, rx_b) = mpsc::channel();
        let a = gate.register(config(1, 2, 8), move |ticket| {
            let _ = tx_a.send(ticket);
        });
        let b = gate.register(config(1, 2, 8), move |ticket| {
            let _ = tx_b.send(ticket);
        });
        let t0 = gate.enqueue(a, 1).unwrap();
        let t1 = gate.enqueue(a, 1).unwrap();
        let t2 = gate.enqueue(b, 1).unwrap();
        // Global cap 2: both of a's grants arrive eagerly, b waits.
        assert_eq!(rx_a.try_recv().unwrap(), t0);
        assert_eq!(rx_a.try_recv().unwrap(), t1);
        assert!(rx_b.try_recv().is_err());
        gate.release(a);
        assert_eq!(rx_b.try_recv().unwrap(), t2);
        gate.release(a);
        gate.release(b);
        assert_eq!(gate.global_in_flight(), 0);
        gate.deregister(a);
        gate.deregister(b);
    }
}
