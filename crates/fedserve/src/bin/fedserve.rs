//! Command-line frontend for the tuning service daemon.
//!
//! ```text
//! fedserve serve  --root DIR (--unix PATH | --tcp ADDR) [--threads N] [--in-flight N]
//! fedserve submit (--unix PATH | --tcp ADDR) SPEC.json [...]
//! fedserve status (--unix PATH | --tcp ADDR) [NAME]
//! fedserve watch  (--unix PATH | --tcp ADDR) NAME [--timeout-ms MS]
//! fedserve stop   (--unix PATH | --tcp ADDR) NAME
//! fedserve shutdown (--unix PATH | --tcp ADDR)
//! ```
//!
//! `serve` runs the daemon in the foreground; everything else speaks the
//! framed protocol to a running daemon and prints JSON to stdout.

use fedserve::{CampaignSpec, Client, Service, ServiceConfig, TcpServeListener, UnixServeListener};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "serve" => cmd_serve(rest),
        "submit" => cmd_submit(rest),
        "status" => cmd_status(rest),
        "watch" => cmd_watch(rest),
        "stop" => cmd_stop(rest),
        "shutdown" => cmd_shutdown(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("fedserve: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  fedserve serve  --root DIR (--unix PATH | --tcp ADDR) [--threads N] [--in-flight N]
  fedserve submit (--unix PATH | --tcp ADDR) SPEC.json [SPEC.json ...]
  fedserve status (--unix PATH | --tcp ADDR) [NAME]
  fedserve watch  (--unix PATH | --tcp ADDR) NAME [--timeout-ms MS]
  fedserve stop   (--unix PATH | --tcp ADDR) NAME
  fedserve shutdown (--unix PATH | --tcp ADDR)";

/// Parsed `--unix PATH` / `--tcp ADDR` endpoint plus leftover positionals.
struct Endpoint {
    unix: Option<String>,
    tcp: Option<String>,
    positional: Vec<String>,
    options: Vec<(String, String)>,
}

fn parse_endpoint(args: &[String]) -> Result<Endpoint, String> {
    let mut endpoint = Endpoint {
        unix: None,
        tcp: None,
        positional: Vec::new(),
        options: Vec::new(),
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--unix" => {
                let value = iter.next().ok_or("--unix needs a socket path")?;
                endpoint.unix = Some(value.clone());
            }
            "--tcp" => {
                let value = iter.next().ok_or("--tcp needs host:port")?;
                endpoint.tcp = Some(value.clone());
            }
            flag if flag.starts_with("--") => {
                let value = iter.next().ok_or_else(|| format!("{flag} needs a value"))?;
                endpoint
                    .options
                    .push((flag.trim_start_matches("--").to_string(), value.clone()));
            }
            positional => endpoint.positional.push(positional.to_string()),
        }
    }
    Ok(endpoint)
}

impl Endpoint {
    fn option(&self, name: &str) -> Option<&str> {
        self.options
            .iter()
            .find(|(key, _)| key == name)
            .map(|(_, value)| value.as_str())
    }

    fn connect(&self) -> Result<Client, String> {
        match (&self.unix, &self.tcp) {
            (Some(path), None) => Client::connect_unix(path).map_err(|e| e.to_string()),
            (None, Some(addr)) => Client::connect_tcp(addr).map_err(|e| e.to_string()),
            _ => Err("pick exactly one of --unix PATH or --tcp ADDR".to_string()),
        }
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let endpoint = parse_endpoint(args)?;
    let root = endpoint
        .option("root")
        .ok_or("serve needs --root DIR")?
        .to_string();
    let threads = parse_num(endpoint.option("threads"), 0)?;
    let in_flight = parse_num(endpoint.option("in-flight"), 0)?;
    let service = Service::open(
        &root,
        ServiceConfig {
            threads,
            global_in_flight: in_flight,
        },
    )
    .map_err(|e| e.to_string())?;
    let mut listener: Box<dyn fedserve::ServeListener> = match (&endpoint.unix, &endpoint.tcp) {
        (Some(path), None) => Box::new(UnixServeListener::bind(path).map_err(|e| e.to_string())?),
        (None, Some(addr)) => Box::new(TcpServeListener::bind(addr).map_err(|e| e.to_string())?),
        _ => return Err("pick exactly one of --unix PATH or --tcp ADDR".to_string()),
    };
    eprintln!(
        "fedserve: serving {} on {}",
        service.root().display(),
        listener.describe()
    );
    service
        .serve(listener.as_mut())
        .map_err(|e| e.to_string())?;
    eprintln!("fedserve: shut down");
    Ok(())
}

fn cmd_submit(args: &[String]) -> Result<(), String> {
    let endpoint = parse_endpoint(args)?;
    if endpoint.positional.is_empty() {
        return Err("submit needs at least one SPEC.json".to_string());
    }
    let mut client = endpoint.connect()?;
    for path in &endpoint.positional {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let spec: CampaignSpec =
            serde_json::from_str(&text).map_err(|e| format!("decoding {path}: {e}"))?;
        let name = client.submit(spec).map_err(|e| e.to_string())?;
        println!("submitted {name}");
    }
    Ok(())
}

fn cmd_status(args: &[String]) -> Result<(), String> {
    let endpoint = parse_endpoint(args)?;
    let mut client = endpoint.connect()?;
    let name = endpoint.positional.first().map(String::as_str);
    let campaigns = client.status(name).map_err(|e| e.to_string())?;
    print_json(&campaigns)
}

fn cmd_watch(args: &[String]) -> Result<(), String> {
    let endpoint = parse_endpoint(args)?;
    let name = endpoint
        .positional
        .first()
        .ok_or("watch needs a campaign NAME")?;
    let timeout_ms = parse_num(endpoint.option("timeout-ms"), 300_000)? as u64;
    let mut client = endpoint.connect()?;
    let status = client.wait(name, timeout_ms).map_err(|e| e.to_string())?;
    print_json(&status)
}

fn cmd_stop(args: &[String]) -> Result<(), String> {
    let endpoint = parse_endpoint(args)?;
    let name = endpoint
        .positional
        .first()
        .ok_or("stop needs a campaign NAME")?;
    let mut client = endpoint.connect()?;
    client.stop(name).map_err(|e| e.to_string())?;
    println!("stopping {name}");
    Ok(())
}

fn cmd_shutdown(args: &[String]) -> Result<(), String> {
    let endpoint = parse_endpoint(args)?;
    let mut client = endpoint.connect()?;
    client.shutdown().map_err(|e| e.to_string())?;
    println!("shutting down");
    Ok(())
}

fn parse_num(value: Option<&str>, default: usize) -> Result<usize, String> {
    match value {
        None => Ok(default),
        Some(text) => text
            .parse()
            .map_err(|_| format!("expected a number, got {text:?}")),
    }
}

fn print_json<T: serde::Serialize>(value: &T) -> Result<(), String> {
    let json = serde_json::to_string_pretty(value).map_err(|e| e.to_string())?;
    println!("{json}");
    Ok(())
}
