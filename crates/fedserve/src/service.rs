//! The campaign registry and socket frontend.
//!
//! A [`Service`] owns one shared worker pool, one fair gate, and a
//! directory tree of campaigns:
//!
//! ```text
//! <root>/campaigns/<name>/
//!     spec.json     the full CampaignSpec (written once at submit)
//!     ledger/       the campaign's segment ledger (every commit, durable)
//!     LOCK          single-writer pid file while a driver is live
//!     DONE.json     terminal CampaignStatus (absent while incomplete)
//! ```
//!
//! That tree *is* the service's persistent state — there is no separate
//! database. [`Service::open`] scans it: campaigns with `DONE.json` are
//! terminal and merely reported; campaigns without it had their process die
//! (or suspend) mid-run, so the service breaks their stale locks and
//! respawns their drivers, which replay the ledger prefix bit-exactly and
//! continue. Crash-restart therefore needs no coordination beyond what the
//! objective layer already guarantees.
//!
//! Each campaign runs on its own driver thread with its own fedtrace
//! registry; the frontend ([`Service::serve`] over a [`ServeListener`])
//! is a thread-per-connection loop speaking the [`proto`]
//! framing. Unix sockets and TCP differ only in the listener constructor.

use crate::campaign::{run_campaign, CampaignFlags, CampaignOutcome, HaltReason, Progress};
use crate::dispatch::FairGate;
use crate::proto::{self, ErrorCode, Request, Response};
use crate::spec::{CampaignSpec, CampaignState, CampaignStatus, Selection};
use crate::{Result, ServeError};
use fedsim::SharedPool;
use fedstore::{Durability, LedgerLock, TrialStore};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Sizing knobs of a service instance.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceConfig {
    /// Real worker threads in the shared pool (`0` = all cores).
    pub threads: usize,
    /// Gate-wide cap on admitted evaluations; `0` sizes it to the pool.
    pub global_in_flight: usize,
}

/// One campaign's registry cell.
struct Cell {
    status: CampaignStatus,
    flags: Arc<CampaignFlags>,
    trace: Arc<fedtrace::Trace>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Registry state shared with driver threads.
struct State {
    cells: Mutex<BTreeMap<String, Cell>>,
    settled: Condvar,
}

/// Service-level metric names.
const M_SUBMITTED: &str = "serve.campaigns_submitted";
const M_RESUMED: &str = "serve.campaigns_resumed";
const M_SETTLED: &str = "serve.campaigns_settled";
const M_FRAMES: &str = "serve.frames_rx";
const M_PROTO_ERRORS: &str = "serve.proto_errors";

/// The multi-tenant tuning service (see module docs).
pub struct Service {
    root: PathBuf,
    pool: Arc<SharedPool>,
    gate: Arc<FairGate>,
    trace: Arc<fedtrace::Trace>,
    state: Arc<State>,
    shutdown: Arc<AtomicBool>,
}

impl Service {
    /// Opens (or creates) a service root and resumes every incomplete
    /// campaign found in it.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures and undecodable on-disk state.
    pub fn open(root: impl AsRef<Path>, config: ServiceConfig) -> Result<Arc<Self>> {
        let root = root.as_ref().to_path_buf();
        let campaigns = root.join("campaigns");
        std::fs::create_dir_all(&campaigns).map_err(|e| ServeError::Io {
            message: format!("creating {}: {e}", campaigns.display()),
        })?;
        let threads = if config.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.threads
        };
        let global = if config.global_in_flight == 0 {
            threads
        } else {
            config.global_in_flight
        };
        let service = Arc::new(Service {
            root,
            pool: Arc::new(SharedPool::new(threads)),
            gate: Arc::new(FairGate::new(global)),
            trace: Arc::new(fedtrace::Trace::new()),
            state: Arc::new(State {
                cells: Mutex::new(BTreeMap::new()),
                settled: Condvar::new(),
            }),
            shutdown: Arc::new(AtomicBool::new(false)),
        });
        service.recover(&campaigns)?;
        Ok(service)
    }

    /// The service root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Scans the campaign tree, reporting terminal campaigns and
    /// respawning incomplete ones.
    fn recover(self: &Arc<Self>, campaigns: &Path) -> Result<()> {
        let entries = std::fs::read_dir(campaigns).map_err(|e| ServeError::Io {
            message: format!("scanning {}: {e}", campaigns.display()),
        })?;
        let mut dirs: Vec<PathBuf> = entries
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|path| path.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let spec_path = dir.join("spec.json");
            if !spec_path.exists() {
                continue;
            }
            let spec: CampaignSpec = read_json(&spec_path)?;
            let done_path = dir.join("DONE.json");
            if done_path.exists() {
                // Terminal: report as-is, never respawn.
                let status: CampaignStatus = read_json(&done_path)?;
                let mut cells = self.locked_cells();
                cells.insert(
                    spec.name.clone(),
                    Cell {
                        status,
                        flags: Arc::new(CampaignFlags::default()),
                        trace: Arc::new(fedtrace::Trace::new()),
                        handle: None,
                    },
                );
                continue;
            }
            // Incomplete: the previous process died or suspended. We own
            // this tree exclusively, so a leftover lock is stale by
            // definition.
            LedgerLock::break_stale(&dir)?;
            self.trace.registry().counter(M_RESUMED).add(1);
            self.spawn(spec)?;
        }
        Ok(())
    }

    fn locked_cells(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Cell>> {
        match self.state.cells.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn campaign_dir(&self, name: &str) -> PathBuf {
        self.root.join("campaigns").join(name)
    }

    /// Registers a new campaign, persists its spec, and starts its driver.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidSpec`] / [`ServeError::DuplicateCampaign`] /
    /// [`ServeError::ShuttingDown`], or filesystem failures.
    pub fn submit(self: &Arc<Self>, spec: CampaignSpec) -> Result<()> {
        spec.validate()?;
        if self.shutdown.load(Ordering::Relaxed) {
            return Err(ServeError::ShuttingDown);
        }
        {
            let cells = self.locked_cells();
            if cells.contains_key(&spec.name) {
                return Err(ServeError::DuplicateCampaign {
                    name: spec.name.clone(),
                });
            }
        }
        let dir = self.campaign_dir(&spec.name);
        std::fs::create_dir_all(&dir).map_err(|e| ServeError::Io {
            message: format!("creating {}: {e}", dir.display()),
        })?;
        write_json(&dir.join("spec.json"), &spec)?;
        self.trace.registry().counter(M_SUBMITTED).add(1);
        self.spawn(spec)
    }

    /// Inserts a Running cell and spawns the driver thread for `spec`.
    fn spawn(self: &Arc<Self>, spec: CampaignSpec) -> Result<()> {
        let name = spec.name.clone();
        let flags = Arc::new(CampaignFlags::default());
        let trace = Arc::new(fedtrace::Trace::new());
        if self.shutdown.load(Ordering::Relaxed) {
            return Err(ServeError::ShuttingDown);
        }
        let mut status = CampaignStatus::fresh(&name);
        status.state = CampaignState::Running;
        {
            let mut cells = self.locked_cells();
            cells.insert(
                name.clone(),
                Cell {
                    status,
                    flags: Arc::clone(&flags),
                    trace: Arc::clone(&trace),
                    handle: None,
                },
            );
        }
        let service = Arc::clone(self);
        let thread_name = format!("fedserve-{name}");
        let handle = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || service.drive(spec, flags, trace))
            .map_err(|e| ServeError::Io {
                message: format!("spawning campaign driver: {e}"),
            })?;
        let mut cells = self.locked_cells();
        if let Some(cell) = cells.get_mut(&name) {
            cell.handle = Some(handle);
        }
        Ok(())
    }

    /// Body of one campaign driver thread: lock, recover, run, settle.
    fn drive(
        self: Arc<Self>,
        spec: CampaignSpec,
        flags: Arc<CampaignFlags>,
        trace: Arc<fedtrace::Trace>,
    ) {
        let dir = self.campaign_dir(&spec.name);
        let name = spec.name.clone();
        let result = (|| -> Result<CampaignOutcome> {
            let _lock = LedgerLock::acquire(&dir)?;
            let mut store = TrialStore::open_segments(dir.join("ledger"))?;
            // Per-insert durability: a committed result is on disk before
            // the scheduler ever sees it.
            store.set_durability(Durability::PerInsert);
            let state = Arc::clone(&self.state);
            let progress_name = name.clone();
            let mut on_progress = move |p: Progress| {
                let mut cells = match state.cells.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                if let Some(cell) = cells.get_mut(&progress_name) {
                    cell.status.evaluations = p.evaluations;
                    cell.status.resource_spent = p.resource_spent;
                    cell.status.sim_elapsed = p.sim_time;
                    cell.status.ledger_hits = p.ledger_hits;
                    cell.status.ledger_misses = p.ledger_misses;
                }
            };
            run_campaign(
                &spec,
                store,
                &self.pool,
                &self.gate,
                &flags,
                Some(trace),
                &mut on_progress,
            )
        })();
        self.settle(&name, &dir, result);
    }

    /// Folds a driver result into the cell's terminal (or suspended)
    /// status and persists `DONE.json` for terminal states.
    fn settle(&self, name: &str, dir: &Path, result: Result<CampaignOutcome>) {
        let status = {
            let mut cells = self.locked_cells();
            let Some(cell) = cells.get_mut(name) else {
                return;
            };
            match &result {
                Ok(out) => {
                    cell.status.evaluations = out.evaluations;
                    cell.status.resource_spent = out.resource_spent;
                    cell.status.sim_elapsed = out.outcome.sim_elapsed;
                    cell.status.ledger_hits = out.ledger_hits;
                    cell.status.ledger_misses = out.ledger_misses;
                    cell.status.selection = out.outcome.outcome.best().map(|best| Selection {
                        trial_id: best.trial_id,
                        config: best.config.values().to_vec(),
                        score: best.score,
                        resource: best.resource,
                        sim_time: best.sim_time,
                    });
                    cell.status.state = match out.halt {
                        None if out.outcome.finished => CampaignState::Completed,
                        // No halt but unfinished: the simulated budget cut
                        // the schedule off.
                        None => CampaignState::BudgetExhausted,
                        Some(HaltReason::Stopped) => CampaignState::Stopped,
                        Some(HaltReason::Suspended) => CampaignState::Suspended,
                        Some(HaltReason::BudgetEvaluations | HaltReason::BudgetResource) => {
                            CampaignState::BudgetExhausted
                        }
                    };
                }
                Err(ServeError::Killed) => {
                    // Simulated crash: leave no terminal marker so the next
                    // open resumes from the ledger, exactly like a real
                    // process death.
                    cell.status.state = CampaignState::Suspended;
                    cell.status.error = Some("killed (crash simulation)".to_string());
                }
                Err(e) => {
                    cell.status.state = CampaignState::Failed;
                    cell.status.error = Some(e.to_string());
                }
            }
            cell.status.clone()
        };
        if status.state.is_terminal() {
            // Persist terminal statuses; failures to do so leave the
            // campaign resumable, which is safe (it will settle the same
            // way again).
            let _ = write_json(&dir.join("DONE.json"), &status);
        }
        self.trace.registry().counter(M_SETTLED).add(1);
        self.state.settled.notify_all();
    }

    /// Statuses of all campaigns (name-sorted), or of one.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownCampaign`] when `name` is not registered.
    pub fn status(&self, name: Option<&str>) -> Result<Vec<CampaignStatus>> {
        let cells = self.locked_cells();
        match name {
            None => Ok(cells.values().map(|cell| cell.status.clone()).collect()),
            Some(name) => cells
                .get(name)
                .map(|cell| vec![cell.status.clone()])
                .ok_or_else(|| ServeError::UnknownCampaign {
                    name: name.to_string(),
                }),
        }
    }

    /// Blocks until the named campaign settles (completes, stops, fails,
    /// exhausts a budget, or suspends), returning its status.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownCampaign`], or [`ServeError::WaitTimeout`] if
    /// the deadline passes first.
    pub fn wait(&self, name: &str, timeout: Duration) -> Result<CampaignStatus> {
        let deadline = Instant::now() + timeout;
        let mut cells = self.locked_cells();
        loop {
            let Some(cell) = cells.get(name) else {
                return Err(ServeError::UnknownCampaign {
                    name: name.to_string(),
                });
            };
            if cell.status.state.is_settled() {
                return Ok(cell.status.clone());
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(ServeError::WaitTimeout {
                    name: name.to_string(),
                });
            }
            let (guard, _) = self
                .state
                .settled
                .wait_timeout(cells, remaining)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            cells = guard;
        }
    }

    /// Requests a cooperative stop of one campaign (terminal once drained).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownCampaign`].
    pub fn stop(&self, name: &str) -> Result<()> {
        let cells = self.locked_cells();
        let Some(cell) = cells.get(name) else {
            return Err(ServeError::UnknownCampaign {
                name: name.to_string(),
            });
        };
        cell.flags.stop.store(true, Ordering::Relaxed);
        Ok(())
    }

    /// Gracefully shuts the service down: no new submissions, every running
    /// campaign suspends (resumable on the next [`Service::open`]), and all
    /// driver threads are joined.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        let handles: Vec<_> = {
            let mut cells = self.locked_cells();
            cells
                .values_mut()
                .map(|cell| {
                    cell.flags.suspend.store(true, Ordering::Relaxed);
                    cell.handle.take()
                })
                .collect()
        };
        for handle in handles.into_iter().flatten() {
            let _ = handle.join();
        }
    }

    /// Simulates a crash: every driver aborts as soon as it observes the
    /// flag, leaving only spec + ledger on disk (no terminal markers, locks
    /// possibly stale) — exactly the state a killed process leaves. The
    /// next [`Service::open`] on the same root must resume bit-exactly.
    pub fn kill(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        let handles: Vec<_> = {
            let mut cells = self.locked_cells();
            cells
                .values_mut()
                .map(|cell| {
                    cell.flags.kill.store(true, Ordering::Relaxed);
                    cell.handle.take()
                })
                .collect()
        };
        for handle in handles.into_iter().flatten() {
            let _ = handle.join();
        }
    }

    /// Merged metrics: the service registry plus every campaign registry.
    pub fn metrics(&self) -> fedtrace::MetricsSnapshot {
        let mut snapshot = self.trace.snapshot();
        let cells = self.locked_cells();
        for cell in cells.values() {
            snapshot.merge(&cell.trace.snapshot());
        }
        snapshot
    }

    /// Whether [`Service::shutdown`] or [`Service::kill`] has been called.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Serves connections until a `Shutdown` request (or
    /// [`Service::shutdown`] from another thread) stops the loop. Each
    /// connection gets its own handler thread.
    ///
    /// # Errors
    ///
    /// Propagates listener accept failures (individual connection errors
    /// only terminate that connection).
    pub fn serve(self: &Arc<Self>, listener: &mut dyn ServeListener) -> Result<()> {
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                return Ok(());
            }
            match listener.accept_conn().map_err(|e| ServeError::Io {
                message: format!("accepting connection: {e}"),
            })? {
                Some(conn) => {
                    let service = Arc::clone(self);
                    let _ = std::thread::Builder::new()
                        .name("fedserve-conn".to_string())
                        .spawn(move || service.handle_conn(conn));
                }
                None => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    }

    /// Speaks the framed protocol on one connection until the peer closes,
    /// an unrecoverable frame arrives, or the service shuts down.
    fn handle_conn(self: Arc<Self>, mut conn: Box<dyn Conn>) {
        loop {
            let request = match proto::read_message::<Request>(&mut conn) {
                Ok(Some(request)) => request,
                Ok(None) => return, // clean close
                Err(e) => {
                    // Satellite contract: malformed frames get a structured
                    // error reply, never a silent drop. Only unresyncable
                    // framing errors close the connection (after replying).
                    self.trace.registry().counter(M_PROTO_ERRORS).add(1);
                    let reply = Response::Error {
                        code: e.code(),
                        message: e.to_string(),
                    };
                    if proto::write_message(&mut conn, &reply).is_err() || !e.recoverable() {
                        return;
                    }
                    continue;
                }
            };
            self.trace.registry().counter(M_FRAMES).add(1);
            let (reply, hangup) = self.answer(request);
            if proto::write_message(&mut conn, &reply).is_err() || hangup {
                return;
            }
        }
    }

    /// Maps one request to its response; the bool asks the connection loop
    /// to hang up after replying.
    fn answer(self: &Arc<Self>, request: Request) -> (Response, bool) {
        match request {
            Request::Ping => (Response::Pong, false),
            Request::Submit { spec } => {
                let name = spec.name.clone();
                match self.submit(spec) {
                    Ok(()) => (Response::Submitted { name }, false),
                    Err(e) => (error_response(&e), false),
                }
            }
            Request::Status { name } => match self.status(name.as_deref()) {
                Ok(campaigns) => (Response::Status { campaigns }, false),
                Err(e) => (error_response(&e), false),
            },
            Request::Wait { name, timeout_ms } => {
                match self.wait(&name, Duration::from_millis(timeout_ms)) {
                    Ok(status) => (
                        Response::Status {
                            campaigns: vec![status],
                        },
                        false,
                    ),
                    Err(e) => (error_response(&e), false),
                }
            }
            Request::Stop { name } => match self.stop(&name) {
                Ok(()) => (Response::Stopping { name }, false),
                Err(e) => (error_response(&e), false),
            },
            Request::Metrics => (
                Response::Metrics {
                    snapshot: self.metrics(),
                },
                false,
            ),
            Request::Shutdown => {
                // Reply first, then suspend campaigns; the serve loop exits
                // on the flag.
                let service = Arc::clone(self);
                let _ = std::thread::Builder::new()
                    .name("fedserve-shutdown".to_string())
                    .spawn(move || service.shutdown());
                (Response::ShuttingDown, true)
            }
        }
    }
}

/// Maps a service error to its wire representation.
fn error_response(e: &ServeError) -> Response {
    let code = match e {
        ServeError::InvalidSpec { .. } => ErrorCode::InvalidSpec,
        ServeError::DuplicateCampaign { .. } => ErrorCode::Duplicate,
        ServeError::UnknownCampaign { .. } => ErrorCode::Unknown,
        ServeError::WaitTimeout { .. } => ErrorCode::Timeout,
        ServeError::ShuttingDown => ErrorCode::ShuttingDown,
        ServeError::Proto(frame) => frame.code(),
        _ => ErrorCode::Internal,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

fn read_json<T: serde::Deserialize>(path: &Path) -> Result<T> {
    let text = std::fs::read_to_string(path).map_err(|e| ServeError::Io {
        message: format!("reading {}: {e}", path.display()),
    })?;
    serde_json::from_str(&text).map_err(|e| ServeError::Io {
        message: format!("decoding {}: {e}", path.display()),
    })
}

/// Writes `value` as JSON via temp-file + rename, so readers never observe
/// a torn file.
fn write_json<T: serde::Serialize>(path: &Path, value: &T) -> Result<()> {
    let json = serde_json::to_string_pretty(value).map_err(|e| ServeError::Io {
        message: format!("encoding {}: {e}", path.display()),
    })?;
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, json.as_bytes()).map_err(|e| ServeError::Io {
        message: format!("writing {}: {e}", tmp.display()),
    })?;
    std::fs::rename(&tmp, path).map_err(|e| ServeError::Io {
        message: format!("publishing {}: {e}", path.display()),
    })
}

/// One accepted connection: a bidirectional byte stream.
pub trait Conn: Read + Write + Send {}
impl<T: Read + Write + Send> Conn for T {}

/// A transport the service can accept connections from. Implementations
/// must poll non-blockingly: `Ok(None)` when no connection is pending.
pub trait ServeListener {
    /// Accepts one pending connection, if any.
    ///
    /// # Errors
    ///
    /// Fatal listener failures (individual connection hiccups should be
    /// swallowed and reported as `Ok(None)`).
    fn accept_conn(&mut self) -> std::io::Result<Option<Box<dyn Conn>>>;

    /// Human-readable bound address, for logs.
    fn describe(&self) -> String;
}

/// Unix-domain-socket listener.
pub struct UnixServeListener {
    listener: std::os::unix::net::UnixListener,
    path: PathBuf,
}

impl UnixServeListener {
    /// Binds `path`, replacing a leftover socket file from a dead server.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = std::os::unix::net::UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        Ok(UnixServeListener { listener, path })
    }
}

impl ServeListener for UnixServeListener {
    fn accept_conn(&mut self) -> std::io::Result<Option<Box<dyn Conn>>> {
        match self.listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                Ok(Some(Box::new(stream)))
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn describe(&self) -> String {
        format!("unix:{}", self.path.display())
    }
}

impl Drop for UnixServeListener {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// TCP listener (loopback development / cross-host access).
pub struct TcpServeListener {
    listener: std::net::TcpListener,
}

impl TcpServeListener {
    /// Binds `addr` (e.g. `127.0.0.1:7878`; port `0` picks a free port).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        let listener = std::net::TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(TcpServeListener { listener })
    }

    /// The actually bound address (resolves port `0`).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }
}

impl ServeListener for TcpServeListener {
    fn accept_conn(&mut self) -> std::io::Result<Option<Box<dyn Conn>>> {
        match self.listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                stream.set_nodelay(true)?;
                Ok(Some(Box::new(stream)))
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn describe(&self) -> String {
        self.listener
            .local_addr()
            .map_or_else(|_| "tcp:?".to_string(), |addr| format!("tcp:{addr}"))
    }
}
