//! Serializable campaign specifications and statuses.
//!
//! A [`CampaignSpec`] is the *whole* definition of a tuning campaign — search
//! space, scheduler, objective, cost model, budgets, and fairness limits — in
//! one serde value. It travels over the wire in a
//! [`Request::Submit`](crate::proto::Request) and is persisted as
//! `spec.json` in the campaign's directory, which is what lets a crashed
//! service reconstruct every incomplete campaign from disk alone: the spec
//! rebuilds the scheduler/space/objective, and the segment ledger replays
//! the already-paid evaluations bit-exactly.
//!
//! Determinism is positional throughout: the spec carries a root `seed`, and
//! every derived quantity (suggestions, noise draws) is keyed off canonical
//! coordinates — so building a campaign twice from the same spec yields
//! bit-identical behavior.

use crate::{Result, ServeError};
use fedhpo::{AsyncAsha, IntoScheduler, Scheduler, SearchSpace};
use fedsim::clock::{ClientRuntimeModel, CostModel};
use fedstore::Provenance;
use serde::{Deserialize, Serialize};

/// One dimension of a campaign's search space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DimSpec {
    /// Uniform in `[low, high]`.
    Uniform {
        /// Dimension name.
        name: String,
        /// Lower bound.
        low: f64,
        /// Upper bound.
        high: f64,
    },
    /// Log-uniform in `[low, high]` (both positive).
    LogUniform {
        /// Dimension name.
        name: String,
        /// Lower bound.
        low: f64,
        /// Upper bound.
        high: f64,
    },
    /// A finite set of values.
    Categorical {
        /// Dimension name.
        name: String,
        /// The candidate values.
        choices: Vec<f64>,
    },
    /// A constant.
    Fixed {
        /// Dimension name.
        name: String,
        /// The pinned value.
        value: f64,
    },
}

/// Which tuning method drives the campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SchedulerSpec {
    /// Pure random search: `trials` configurations, each evaluated once
    /// after `resource` rounds.
    RandomSearch {
        /// Number of configurations.
        trials: usize,
        /// Training rounds per configuration.
        resource: usize,
    },
    /// Synchronous successive halving (ASHA ladder, barrier rungs).
    Asha {
        /// Configurations in the bottom rung.
        trials: usize,
        /// Promotion ratio.
        eta: usize,
        /// Bottom-rung resource.
        min_resource: usize,
        /// Top-rung resource.
        max_resource: usize,
    },
    /// Asynchronous successive halving: promotions overtake fresh configs,
    /// only idle virtual workers accept work.
    AsyncAsha {
        /// Configurations in the bottom rung.
        trials: usize,
        /// Promotion ratio.
        eta: usize,
        /// Bottom-rung resource.
        min_resource: usize,
        /// Top-rung resource.
        max_resource: usize,
    },
}

impl SchedulerSpec {
    /// Short label used in provenance and status lines.
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerSpec::RandomSearch { .. } => "random_search",
            SchedulerSpec::Asha { .. } => "asha",
            SchedulerSpec::AsyncAsha { .. } => "async_asha",
        }
    }

    /// Builds the scheduler this spec describes.
    ///
    /// # Errors
    ///
    /// Propagates invalid scheduler parameters.
    pub fn build(&self) -> Result<Box<dyn Scheduler>> {
        match *self {
            SchedulerSpec::RandomSearch { trials, resource } => Ok(Box::new(
                fedhpo::RandomSearch::new(trials, resource).scheduler()?,
            )),
            SchedulerSpec::Asha {
                trials,
                eta,
                min_resource,
                max_resource,
            } => Ok(Box::new(
                fedhpo::Asha::new(trials, eta, min_resource, max_resource).scheduler()?,
            )),
            SchedulerSpec::AsyncAsha {
                trials,
                eta,
                min_resource,
                max_resource,
            } => Ok(Box::new(
                AsyncAsha::from_ladder(fedhpo::Asha::new(trials, eta, min_resource, max_resource))
                    .scheduler()?,
            )),
        }
    }
}

/// The virtual cost model evaluations are billed under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CostSpec {
    /// Every round costs one virtual second.
    Unit,
    /// Fixed per-round and per-evaluation virtual costs.
    PerRound {
        /// Virtual seconds per training round.
        round_seconds: f64,
        /// Virtual seconds per evaluation pass.
        eval_seconds: f64,
    },
    /// Heavy-tailed straggler clients (the paper's systems heterogeneity).
    HeavyTailedClients {
        /// Total simulated clients.
        clients: usize,
        /// Clients sampled per round.
        per_round: usize,
        /// Positional seed of the runtime model.
        seed: u64,
    },
}

impl CostSpec {
    /// Builds the cost model this spec describes.
    pub fn build(&self) -> CostModel {
        match *self {
            CostSpec::Unit => CostModel::Unit,
            CostSpec::PerRound {
                round_seconds,
                eval_seconds,
            } => CostModel::PerRound {
                round_seconds,
                eval_seconds,
            },
            CostSpec::HeavyTailedClients {
                clients,
                per_round,
                seed,
            } => CostModel::HeterogeneousClients(ClientRuntimeModel::heavy_tailed(
                clients, per_round, seed,
            )),
        }
    }
}

/// The campaign's objective function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ObjectiveSpec {
    /// The analytic test objective used throughout the workspace:
    /// `mean_i |x_i - target| + 1/(resource + 1)`, with optional positional
    /// Gaussian observation noise keyed by `(seed, config fingerprint,
    /// resource, rep)` — bit-deterministic under any execution order.
    Analytic {
        /// The optimum each dimension is pulled toward.
        target: f64,
        /// Standard deviation of the observation noise (`0` = noiseless).
        noise_sd: f64,
        /// Real seconds slept per *virtual* second of evaluation cost; `0`
        /// disables sleeping. Models latency-bound evaluations for the
        /// throughput benchmarks without changing any result bits.
        latency_scale: f64,
        /// Trial id whose first live evaluation returns an error (isolation
        /// tests).
        fail_trial: Option<usize>,
        /// Trial id whose first live evaluation panics (isolation tests).
        panic_trial: Option<usize>,
    },
}

impl ObjectiveSpec {
    /// Short label recorded in ledger provenance.
    pub fn label(&self) -> String {
        match self {
            ObjectiveSpec::Analytic { noise_sd, .. } => {
                if *noise_sd > 0.0 {
                    format!("analytic-noisy-{noise_sd}")
                } else {
                    "analytic-noiseless".to_string()
                }
            }
        }
    }
}

/// Per-campaign fairness and budget limits enforced by the service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignLimits {
    /// Maximum evaluations of this campaign in flight on real workers at
    /// once.
    pub max_in_flight: usize,
    /// Maximum dispatches queued at the fair-share gate awaiting admission.
    pub max_queued: usize,
    /// Deficit-round-robin quantum: admission credit (in cost units —
    /// training rounds) granted per scheduling pass. Larger quanta favor
    /// this campaign proportionally.
    pub quantum: u64,
    /// Terminate the campaign after this many committed evaluations.
    pub max_evaluations: Option<u64>,
    /// Terminate the campaign once committed training rounds reach this.
    pub max_resource: Option<u64>,
}

impl Default for CampaignLimits {
    fn default() -> Self {
        CampaignLimits {
            max_in_flight: 8,
            max_queued: 64,
            quantum: 4,
            max_evaluations: None,
            max_resource: None,
        }
    }
}

/// A complete, self-contained campaign definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Unique campaign name; doubles as its directory name under the
    /// service root (restricted charset, see [`validate`](Self::validate)).
    pub name: String,
    /// Root seed: every suggestion and noise draw derives from it
    /// positionally.
    pub seed: u64,
    /// The search space.
    pub space: Vec<DimSpec>,
    /// The tuning method.
    pub scheduler: SchedulerSpec,
    /// The objective.
    pub objective: ObjectiveSpec,
    /// The virtual cost model.
    pub cost: CostSpec,
    /// Virtual workers of this campaign's simulated tuning service.
    pub workers: usize,
    /// Optional simulated wall-clock budget in virtual seconds.
    pub sim_budget: Option<f64>,
    /// Fairness and budget limits.
    pub limits: CampaignLimits,
}

impl CampaignSpec {
    /// Validates everything the registry relies on before accepting a
    /// campaign.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidSpec`] with the first violation found.
    pub fn validate(&self) -> Result<()> {
        let fail = |message: String| Err(ServeError::InvalidSpec { message });
        if self.name.is_empty() || self.name.len() > 64 {
            return fail(format!("name {:?} must be 1..=64 characters", self.name));
        }
        if !self
            .name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
            || self.name.starts_with('.')
        {
            return fail(format!(
                "name {:?} may only contain [A-Za-z0-9._-] and must not start with '.'",
                self.name
            ));
        }
        if self.space.is_empty() {
            return fail("search space has no dimensions".to_string());
        }
        if self.workers == 0 {
            return fail("campaign needs at least one virtual worker".to_string());
        }
        if let Some(budget) = self.sim_budget {
            if !budget.is_finite() || budget <= 0.0 {
                return fail(format!("sim budget {budget} must be finite and positive"));
            }
        }
        let limits = &self.limits;
        if limits.max_in_flight == 0 || limits.max_queued == 0 || limits.quantum == 0 {
            return fail(format!(
                "limits must be positive: max_in_flight {}, max_queued {}, quantum {}",
                limits.max_in_flight, limits.max_queued, limits.quantum
            ));
        }
        match &self.scheduler {
            SchedulerSpec::RandomSearch { trials, resource } => {
                if *trials == 0 || *resource == 0 {
                    return fail("random search needs trials >= 1 and resource >= 1".to_string());
                }
            }
            SchedulerSpec::Asha {
                trials,
                eta,
                min_resource,
                max_resource,
            }
            | SchedulerSpec::AsyncAsha {
                trials,
                eta,
                min_resource,
                max_resource,
            } => {
                if *trials == 0 || *eta < 2 || *min_resource == 0 || max_resource < min_resource {
                    return fail(format!(
                        "invalid ASHA ladder: trials {trials}, eta {eta}, \
                         resource {min_resource}..{max_resource}"
                    ));
                }
            }
        }
        match &self.objective {
            ObjectiveSpec::Analytic {
                target,
                noise_sd,
                latency_scale,
                ..
            } => {
                if !target.is_finite() || !noise_sd.is_finite() || *noise_sd < 0.0 {
                    return fail(format!(
                        "analytic objective needs finite target ({target}) and \
                         non-negative finite noise sd ({noise_sd})"
                    ));
                }
                if !latency_scale.is_finite() || *latency_scale < 0.0 {
                    return fail(format!(
                        "latency scale {latency_scale} must be finite and non-negative"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Builds the search space this spec describes.
    ///
    /// # Errors
    ///
    /// Propagates invalid dimension bounds.
    pub fn build_space(&self) -> Result<SearchSpace> {
        let mut space = SearchSpace::new();
        for dim in &self.space {
            space = match dim {
                DimSpec::Uniform { name, low, high } => space.with_uniform(name, *low, *high)?,
                DimSpec::LogUniform { name, low, high } => {
                    space.with_log_uniform(name, *low, *high)?
                }
                DimSpec::Categorical { name, choices } => {
                    space.with_categorical(name, choices.clone())?
                }
                DimSpec::Fixed { name, value } => space.with_fixed(name, *value)?,
            };
        }
        Ok(space)
    }

    /// Builds the scheduler this spec describes.
    ///
    /// # Errors
    ///
    /// Propagates invalid scheduler parameters.
    pub fn build_scheduler(&self) -> Result<Box<dyn Scheduler>> {
        self.scheduler.build()
    }

    /// The ledger provenance records of this campaign carry.
    pub fn provenance(&self) -> Provenance {
        Provenance {
            benchmark: format!("fedserve:{}", self.scheduler.label()),
            scale: "service".to_string(),
            seed: self.seed,
            noise: self.objective.label(),
        }
    }
}

/// Lifecycle state of a campaign in the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CampaignState {
    /// Accepted; driver not yet running.
    Pending,
    /// Driver thread live.
    Running,
    /// Schedule ran to completion. Terminal.
    Completed,
    /// Stopped by an operator request. Terminal.
    Stopped,
    /// A trial/resource/sim budget cut the schedule off. Terminal.
    BudgetExhausted,
    /// The campaign's evaluation or ledger failed (including panics).
    /// Terminal.
    Failed,
    /// Halted cleanly by a service shutdown while incomplete; resumes on
    /// the next service start. Not terminal.
    Suspended,
}

impl CampaignState {
    /// Whether the campaign will make no further progress in this service
    /// process (a suspended campaign resumes only in a *new* process).
    pub fn is_settled(&self) -> bool {
        !matches!(self, CampaignState::Pending | CampaignState::Running)
    }

    /// Whether the campaign is finished for good — restarting the service
    /// must not resume it.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            CampaignState::Completed
                | CampaignState::Stopped
                | CampaignState::BudgetExhausted
                | CampaignState::Failed
        )
    }
}

/// The winning evaluation of a finished (or partially run) campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Selection {
    /// Trial id of the selected configuration.
    pub trial_id: usize,
    /// Canonical values of the selected configuration.
    pub config: Vec<f64>,
    /// Its (noisy) selection score.
    pub score: f64,
    /// Cumulative resource the configuration had received.
    pub resource: usize,
    /// Virtual completion time of the selected evaluation.
    pub sim_time: f64,
}

/// A point-in-time public view of one campaign; also the on-disk `DONE.json`
/// a terminal campaign leaves behind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignStatus {
    /// Campaign name.
    pub name: String,
    /// Lifecycle state.
    pub state: CampaignState,
    /// Committed evaluations so far.
    pub evaluations: u64,
    /// Committed training rounds so far.
    pub resource_spent: u64,
    /// Virtual clock of the campaign (final `sim_elapsed` once settled).
    pub sim_elapsed: f64,
    /// Evaluations served from the recovered ledger instead of computed
    /// live (non-zero only on resumed campaigns).
    pub ledger_hits: u64,
    /// Evaluations computed live.
    pub ledger_misses: u64,
    /// Best evaluation seen, if any finite-scored evaluation committed.
    pub selection: Option<Selection>,
    /// Failure detail when `state == Failed`.
    pub error: Option<String>,
}

impl CampaignStatus {
    /// A fresh status for a newly registered campaign.
    pub fn fresh(name: &str) -> Self {
        CampaignStatus {
            name: name.to_string(),
            state: CampaignState::Pending,
            evaluations: 0,
            resource_spent: 0,
            sim_elapsed: 0.0,
            ledger_hits: 0,
            ledger_misses: 0,
            selection: None,
            error: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn demo_spec(name: &str) -> CampaignSpec {
        CampaignSpec {
            name: name.to_string(),
            seed: 7,
            space: vec![DimSpec::Uniform {
                name: "x".to_string(),
                low: 0.0,
                high: 1.0,
            }],
            scheduler: SchedulerSpec::AsyncAsha {
                trials: 9,
                eta: 3,
                min_resource: 1,
                max_resource: 9,
            },
            objective: ObjectiveSpec::Analytic {
                target: 0.3,
                noise_sd: 0.0,
                latency_scale: 0.0,
                fail_trial: None,
                panic_trial: None,
            },
            cost: CostSpec::Unit,
            workers: 2,
            sim_budget: None,
            limits: CampaignLimits::default(),
        }
    }

    #[test]
    fn spec_round_trips_through_json_bit_exactly() {
        let mut spec = demo_spec("round-trip");
        spec.sim_budget = Some(123.456789);
        spec.cost = CostSpec::HeavyTailedClients {
            clients: 60,
            per_round: 5,
            seed: 17,
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: CampaignSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        assert_eq!(
            spec.sim_budget.unwrap().to_bits(),
            back.sim_budget.unwrap().to_bits()
        );
    }

    #[test]
    fn validate_rejects_bad_specs() {
        assert!(demo_spec("ok-name_1.2").validate().is_ok());
        let mut bad = demo_spec("");
        assert!(bad.validate().is_err());
        bad = demo_spec("../escape");
        assert!(bad.validate().is_err());
        bad = demo_spec(".hidden");
        assert!(bad.validate().is_err());
        bad = demo_spec("ok");
        bad.workers = 0;
        assert!(bad.validate().is_err());
        bad = demo_spec("ok");
        bad.space.clear();
        assert!(bad.validate().is_err());
        bad = demo_spec("ok");
        bad.limits.quantum = 0;
        assert!(bad.validate().is_err());
        bad = demo_spec("ok");
        bad.sim_budget = Some(0.0);
        assert!(bad.validate().is_err());
        bad = demo_spec("ok");
        bad.scheduler = SchedulerSpec::Asha {
            trials: 4,
            eta: 1,
            min_resource: 1,
            max_resource: 9,
        };
        assert!(bad.validate().is_err());
        bad = demo_spec("ok");
        bad.objective = ObjectiveSpec::Analytic {
            target: 0.3,
            noise_sd: -1.0,
            latency_scale: 0.0,
            fail_trial: None,
            panic_trial: None,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn builders_produce_working_components() {
        let spec = demo_spec("build");
        let space = spec.build_space().unwrap();
        let mut rng = fedmath::rng::rng_for(spec.seed, 0);
        assert!(space.sample(&mut rng).is_ok());
        let scheduler = spec.build_scheduler().unwrap();
        assert!(scheduler.async_capable());
        assert_eq!(spec.cost.build(), CostModel::Unit);
        let provenance = spec.provenance();
        assert_eq!(provenance.benchmark, "fedserve:async_asha");
        assert_eq!(provenance.noise, "analytic-noiseless");
    }
}
