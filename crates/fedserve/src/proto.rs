//! The wire protocol: length-prefixed JSON frames.
//!
//! Every message on a service connection — either direction, over unix
//! sockets or TCP alike — is one frame:
//!
//! ```text
//! +----------+----------------+------------------+
//! | magic 4B | length 4B (LE) | payload (JSON)   |
//! | b"FSV1"  | n <= MAX_FRAME | exactly n bytes  |
//! +----------+----------------+------------------+
//! ```
//!
//! The codec is split sans-io: [`encode_frame`] and [`decode_frame`] are
//! pure functions over byte buffers (that is what the property tests
//! exercise — round-trips, every single-byte truncation, garbage prefixes —
//! without sockets), and [`read_message`] / [`write_message`] adapt them to
//! blocking streams.
//!
//! # Robustness contract
//!
//! A malformed frame never panics the peer and never silently drops the
//! connection; the server answers with a structured [`Response::Error`]
//! first. Whether the connection can *continue* depends on what went wrong:
//! a payload that fails JSON decoding was still fully consumed at a frame
//! boundary, so the stream stays in sync and later requests work; a bad
//! magic or oversized length means framing itself is lost, so the server
//! replies and then closes (there is no reliable way to find the next frame
//! boundary).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{Read, Write};

use crate::spec::{CampaignSpec, CampaignStatus};

/// Frame magic: protocol name + version. Bump for incompatible changes.
pub const MAGIC: [u8; 4] = *b"FSV1";

/// Largest accepted payload, in bytes. Generous for specs and statuses
/// while keeping a garbage length prefix from provoking a huge allocation.
pub const MAX_FRAME: usize = 1 << 20;

/// Ways a frame can fail to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic {
        /// What was found instead.
        found: [u8; 4],
    },
    /// The length prefix exceeded [`MAX_FRAME`].
    Oversized {
        /// The declared payload length.
        len: u64,
    },
    /// The buffer or stream ended mid-frame.
    Truncated {
        /// Bytes the complete frame needs.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The payload was not valid JSON for the expected message type.
    BadPayload {
        /// Decoder detail.
        message: String,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic { found } => {
                write!(f, "bad frame magic {found:?} (expected {MAGIC:?})")
            }
            FrameError::Oversized { len } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {MAX_FRAME} byte cap"
                )
            }
            FrameError::Truncated { needed, have } => {
                write!(f, "truncated frame: needed {needed} bytes, have {have}")
            }
            FrameError::BadPayload { message } => write!(f, "undecodable payload: {message}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameError {
    /// Whether the stream is still at a frame boundary after this error.
    /// `true` means the connection can keep serving requests; `false`
    /// means framing is lost and the peer should close after replying.
    pub fn recoverable(&self) -> bool {
        matches!(self, FrameError::BadPayload { .. })
    }

    /// The machine-readable code a server reply carries for this error.
    pub fn code(&self) -> ErrorCode {
        match self {
            FrameError::BadMagic { .. } => ErrorCode::BadFrame,
            FrameError::Oversized { .. } => ErrorCode::Oversized,
            FrameError::Truncated { .. } => ErrorCode::BadFrame,
            FrameError::BadPayload { .. } => ErrorCode::BadRequest,
        }
    }
}

/// Encodes one payload as a complete frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_FRAME, "encoding an oversized frame");
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Decodes one frame from the front of `buf`, returning the payload and the
/// number of bytes consumed.
///
/// Pure and panic-free on arbitrary input: the property tests feed this
/// every prefix truncation and byte-level mutation of valid frames.
///
/// # Errors
///
/// [`FrameError::BadMagic`] / [`FrameError::Oversized`] when the header is
/// corrupt, [`FrameError::Truncated`] when `buf` ends before the frame does.
pub fn decode_frame(buf: &[u8]) -> Result<(Vec<u8>, usize), FrameError> {
    if buf.len() < 4 {
        return Err(FrameError::Truncated {
            needed: 8,
            have: buf.len(),
        });
    }
    let found = [buf[0], buf[1], buf[2], buf[3]];
    if found != MAGIC {
        return Err(FrameError::BadMagic { found });
    }
    if buf.len() < 8 {
        return Err(FrameError::Truncated {
            needed: 8,
            have: buf.len(),
        });
    }
    let len = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Oversized { len: len as u64 });
    }
    let total = 8 + len;
    if buf.len() < total {
        return Err(FrameError::Truncated {
            needed: total,
            have: buf.len(),
        });
    }
    Ok((buf[8..total].to_vec(), total))
}

/// Reads one raw frame payload from a stream. `Ok(None)` is a clean close:
/// EOF exactly at a frame boundary.
///
/// # Errors
///
/// [`FrameError::Truncated`] when the peer hung up mid-frame, otherwise the
/// header errors of [`decode_frame`]; io failures surface as a truncation
/// at the current offset (the caller treats both as a dead connection).
pub fn read_frame(stream: &mut dyn Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; 8];
    let mut filled = 0;
    while filled < header.len() {
        match stream.read(&mut header[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(FrameError::Truncated {
                    needed: 8,
                    have: filled,
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                return Err(FrameError::Truncated {
                    needed: 8,
                    have: filled,
                })
            }
        }
    }
    let found = [header[0], header[1], header[2], header[3]];
    if found != MAGIC {
        return Err(FrameError::BadMagic { found });
    }
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Oversized { len: len as u64 });
    }
    let mut payload = vec![0u8; len];
    let mut got = 0;
    while got < len {
        match stream.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(FrameError::Truncated {
                    needed: 8 + len,
                    have: 8 + got,
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                return Err(FrameError::Truncated {
                    needed: 8 + len,
                    have: 8 + got,
                })
            }
        }
    }
    Ok(Some(payload))
}

/// Writes one frame to a stream and flushes it.
///
/// # Errors
///
/// Propagates stream write failures.
pub fn write_frame(stream: &mut dyn Write, payload: &[u8]) -> std::io::Result<()> {
    stream.write_all(&encode_frame(payload))?;
    stream.flush()
}

/// Reads and decodes one message. `Ok(None)` is a clean close.
///
/// # Errors
///
/// Framing errors from [`read_frame`], or [`FrameError::BadPayload`] when
/// the payload is not valid JSON for `T` (the stream *is* still in sync).
pub fn read_message<T: Deserialize>(stream: &mut dyn Read) -> Result<Option<T>, FrameError> {
    let Some(payload) = read_frame(stream)? else {
        return Ok(None);
    };
    let text = std::str::from_utf8(&payload).map_err(|e| FrameError::BadPayload {
        message: format!("payload is not utf-8: {e}"),
    })?;
    match serde_json::from_str(text) {
        Ok(message) => Ok(Some(message)),
        Err(e) => Err(FrameError::BadPayload {
            message: e.to_string(),
        }),
    }
}

/// Serializes and writes one message.
///
/// # Errors
///
/// Propagates stream write failures.
pub fn write_message<T: Serialize>(stream: &mut dyn Write, message: &T) -> std::io::Result<()> {
    let json = serde_json::to_string(message)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    write_frame(stream, json.as_bytes())
}

/// Machine-readable error classes in [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// Frame header was corrupt or truncated; connection closes after this.
    BadFrame,
    /// Frame payload exceeded [`MAX_FRAME`]; connection closes after this.
    Oversized,
    /// Payload was not a decodable request; connection stays usable.
    BadRequest,
    /// The submitted campaign spec failed validation.
    InvalidSpec,
    /// Submitted name collides with an existing campaign.
    Duplicate,
    /// Referenced campaign does not exist.
    Unknown,
    /// A wait did not finish within its timeout.
    Timeout,
    /// The service is shutting down.
    ShuttingDown,
    /// Internal failure while handling the request.
    Internal,
}

/// Client-to-server messages.
///
/// `Submit` dwarfs the other variants (it carries a whole `CampaignSpec`),
/// but requests are transient — one short-lived value per frame on a
/// connection thread — so boxing the spec would only add indirection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Register and start a new campaign.
    Submit {
        /// The campaign definition.
        spec: CampaignSpec,
    },
    /// Snapshot one campaign (`Some(name)`) or all of them (`None`).
    Status {
        /// Optional campaign filter.
        name: Option<String>,
    },
    /// Block until the named campaign settles (or the timeout elapses),
    /// then return its status.
    Wait {
        /// Campaign to wait on.
        name: String,
        /// Cap on the wait, in milliseconds.
        timeout_ms: u64,
    },
    /// Ask a running campaign to stop after its in-flight work drains.
    Stop {
        /// Campaign to stop.
        name: String,
    },
    /// Aggregated service + campaign metrics.
    Metrics,
    /// Gracefully shut the whole service down (suspends incomplete
    /// campaigns so a restart resumes them).
    Shutdown,
}

/// Server-to-client messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// The campaign was registered and its driver started.
    Submitted {
        /// Name echoed back.
        name: String,
    },
    /// Reply to [`Request::Status`] and [`Request::Wait`].
    Status {
        /// Matching campaigns, name-sorted.
        campaigns: Vec<CampaignStatus>,
    },
    /// The stop request was delivered.
    Stopping {
        /// Name echoed back.
        name: String,
    },
    /// Aggregated metrics snapshot (service registry merged with every
    /// campaign registry).
    Metrics {
        /// The merged snapshot.
        snapshot: fedtrace::MetricsSnapshot,
    },
    /// Shutdown acknowledged; the listener closes after this reply.
    ShuttingDown,
    /// The request failed.
    Error {
        /// Machine-readable class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        for payload in [&b""[..], b"x", br#"{"Ping":null}"#, &[0u8; 1024][..]] {
            let frame = encode_frame(payload);
            let (decoded, consumed) = decode_frame(&frame).unwrap();
            assert_eq!(decoded, payload);
            assert_eq!(consumed, frame.len());
            // Trailing bytes (the next frame) are left untouched.
            let mut two = frame.clone();
            two.extend_from_slice(&frame);
            let (first, used) = decode_frame(&two).unwrap();
            assert_eq!(first, payload);
            let (second, _) = decode_frame(&two[used..]).unwrap();
            assert_eq!(second, payload);
        }
    }

    #[test]
    fn corrupt_headers_are_classified() {
        match decode_frame(b"NOPE\x00\x00\x00\x00") {
            Err(FrameError::BadMagic { found }) => assert_eq!(&found, b"NOPE"),
            other => panic!("expected BadMagic, got {other:?}"),
        }
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&MAGIC);
        oversized.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        assert!(matches!(
            decode_frame(&oversized),
            Err(FrameError::Oversized { .. })
        ));
        let frame = encode_frame(b"hello");
        for cut in 0..frame.len() {
            assert!(matches!(
                decode_frame(&frame[..cut]),
                Err(FrameError::Truncated { .. })
            ));
        }
        assert!(FrameError::BadPayload {
            message: String::new()
        }
        .recoverable());
        assert!(!FrameError::Oversized { len: 0 }.recoverable());
    }

    #[test]
    fn messages_round_trip_over_a_stream() {
        let spec = crate::spec::CampaignSpec {
            name: "wire".to_string(),
            seed: 3,
            space: vec![crate::spec::DimSpec::Uniform {
                name: "lr".to_string(),
                low: 0.001,
                high: 0.1,
            }],
            scheduler: crate::spec::SchedulerSpec::RandomSearch {
                trials: 4,
                resource: 2,
            },
            objective: crate::spec::ObjectiveSpec::Analytic {
                target: 0.5,
                noise_sd: 0.1,
                latency_scale: 0.0,
                fail_trial: None,
                panic_trial: None,
            },
            cost: crate::spec::CostSpec::Unit,
            workers: 2,
            sim_budget: Some(64.125),
            limits: crate::spec::CampaignLimits::default(),
        };
        let requests = vec![
            Request::Ping,
            Request::Submit { spec },
            Request::Status { name: None },
            Request::Wait {
                name: "wire".to_string(),
                timeout_ms: 250,
            },
            Request::Stop {
                name: "wire".to_string(),
            },
            Request::Metrics,
            Request::Shutdown,
        ];
        let mut stream = Vec::new();
        for request in &requests {
            write_message(&mut stream, request).unwrap();
        }
        let mut cursor = std::io::Cursor::new(stream);
        for request in &requests {
            let back: Request = read_message(&mut cursor).unwrap().unwrap();
            assert_eq!(&back, request);
        }
        // EOF exactly at the frame boundary is a clean close.
        assert!(read_message::<Request>(&mut cursor).unwrap().is_none());

        let responses = vec![
            Response::Pong,
            Response::Submitted {
                name: "wire".to_string(),
            },
            Response::Status {
                campaigns: vec![CampaignStatus::fresh("wire")],
            },
            Response::Error {
                code: ErrorCode::BadRequest,
                message: "nope".to_string(),
            },
            Response::ShuttingDown,
        ];
        let mut stream = Vec::new();
        for response in &responses {
            write_message(&mut stream, response).unwrap();
        }
        let mut cursor = std::io::Cursor::new(stream);
        for response in &responses {
            let back: Response = read_message(&mut cursor).unwrap().unwrap();
            assert_eq!(&back, response);
        }
    }

    #[test]
    fn bad_payload_keeps_the_stream_in_sync() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"this is not json").unwrap();
        write_message(&mut stream, &Request::Ping).unwrap();
        let mut cursor = std::io::Cursor::new(stream);
        let err = read_message::<Request>(&mut cursor).unwrap_err();
        assert!(matches!(err, FrameError::BadPayload { .. }));
        assert!(err.recoverable());
        // The bad frame was fully consumed: the next message still parses.
        let next: Request = read_message(&mut cursor).unwrap().unwrap();
        assert_eq!(next, Request::Ping);
    }
}
